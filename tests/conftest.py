"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.datasets import build_supersede
from repro.query import QueryEngine


@pytest.fixture()
def scenario():
    """A fresh SUPERSEDE scenario (paper sample data, no evolution)."""
    return build_supersede()


@pytest.fixture()
def evolved_scenario():
    """SUPERSEDE after the §2.1 evolution (w4 registered)."""
    return build_supersede(with_evolution=True)


@pytest.fixture()
def ontology(scenario):
    return scenario.ontology


@pytest.fixture()
def engine(scenario):
    return QueryEngine(scenario.ontology)


@pytest.fixture()
def evolved_engine(evolved_scenario):
    return QueryEngine(evolved_scenario.ontology)


@pytest.fixture()
def fleet_harness(tmp_path):
    """Boot leader + N replica + router fleets on ephemeral ports.

    Yields a factory: ``fleet = fleet_harness(replicas=2)`` seeds a
    governed state directory (override with ``seed=callable``), boots
    the fleet, and waits for every replica to converge. Teardown is
    guaranteed — every child process is reaped even when the test
    fails or chaos-kills replicas mid-run — and the fixture fails the
    test if any child survives close (no orphan gateways may leak
    between tests).
    """
    from repro.fleet import Fleet
    from repro.fleet.__main__ import seed_demo_state

    fleets = []

    def _boot(replicas=2, *, seed=seed_demo_state, converge=True,
              **kwargs):
        state_dir = tmp_path / f"fleet-{len(fleets)}"
        if seed is not None:
            seed(state_dir)
        fleet = Fleet(state_dir, replicas=replicas, **kwargs)
        fleets.append(fleet)
        fleet.start()
        if converge:
            fleet.wait_converged(timeout=60)
        return fleet

    yield _boot

    leaked = []
    for fleet in fleets:
        procs = fleet.supervisor.processes()
        fleet.close()
        leaked += [p for p in procs if p.popen.poll() is None]
    assert not leaked, f"fleet children leaked past teardown: {leaked}"
