"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.datasets import build_supersede
from repro.query import QueryEngine


@pytest.fixture()
def scenario():
    """A fresh SUPERSEDE scenario (paper sample data, no evolution)."""
    return build_supersede()


@pytest.fixture()
def evolved_scenario():
    """SUPERSEDE after the §2.1 evolution (w4 registered)."""
    return build_supersede(with_evolution=True)


@pytest.fixture()
def ontology(scenario):
    return scenario.ontology


@pytest.fixture()
def engine(scenario):
    return QueryEngine(scenario.ontology)


@pytest.fixture()
def evolved_engine(evolved_scenario):
    return QueryEngine(evolved_scenario.ontology)
