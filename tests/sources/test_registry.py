"""Unit tests for the source registry and generators."""

import pytest

from repro.errors import SourceError
from repro.sources.generators import (
    application_relationships, feedback_events, vod_monitor_events,
)
from repro.sources.registry import DataSource, SourceRegistry
from repro.wrappers.base import StaticWrapper


def wrapper(name="w1", source="D1"):
    return StaticWrapper(name, source, ["id"], [], [{"id": 1}])


class TestDataSource:
    def test_register_and_get(self):
        d = DataSource("D1")
        w = wrapper()
        d.register_wrapper(w)
        assert d.wrapper("w1") is w
        assert len(d) == 1

    def test_duplicate_wrapper_rejected(self):
        d = DataSource("D1")
        d.register_wrapper(wrapper())
        with pytest.raises(SourceError):
            d.register_wrapper(wrapper())

    def test_source_name_mismatch(self):
        d = DataSource("D1")
        with pytest.raises(SourceError):
            d.register_wrapper(wrapper(source="D2"))

    def test_invalid_names(self):
        with pytest.raises(SourceError):
            DataSource("")
        with pytest.raises(SourceError):
            DataSource("a/b")

    def test_wrappers_sorted(self):
        d = DataSource("D1")
        d.register_wrapper(wrapper("w2"))
        d.register_wrapper(wrapper("w1"))
        assert [w.name for w in d.wrappers()] == ["w1", "w2"]


class TestSourceRegistry:
    def test_source_of(self):
        reg = SourceRegistry()
        d1 = reg.add(DataSource("D1"))
        w = wrapper()
        d1.register_wrapper(w)
        assert reg.source_of(w) is d1

    def test_duplicate_source_rejected(self):
        reg = SourceRegistry([DataSource("D1")])
        with pytest.raises(SourceError):
            reg.add(DataSource("D1"))

    def test_get_or_create(self):
        reg = SourceRegistry()
        d = reg.get_or_create("D9")
        assert reg.get_or_create("D9") is d

    def test_wrapper_lookup_across_sources(self):
        reg = SourceRegistry()
        reg.get_or_create("D1").register_wrapper(wrapper("w1"))
        reg.get_or_create("D2").register_wrapper(wrapper("w2", "D2"))
        assert reg.wrapper("w2").source_name == "D2"
        with pytest.raises(SourceError):
            reg.wrapper("w9")

    def test_all_wrappers_deterministic(self):
        reg = SourceRegistry()
        reg.get_or_create("D2").register_wrapper(wrapper("wb", "D2"))
        reg.get_or_create("D1").register_wrapper(wrapper("wa"))
        assert [w.name for w in reg.all_wrappers()] == ["wa", "wb"]


class TestGenerators:
    def test_vod_events_shape(self):
        events = vod_monitor_events(4, seed=1)
        assert len(events) == 4
        assert set(events[0]) == {"monitorId", "timestamp", "bitrate",
                                  "waitTime", "watchTime"}

    def test_vod_deterministic(self):
        assert vod_monitor_events(3, seed=5) == vod_monitor_events(3, seed=5)

    def test_vod_watch_time_positive(self):
        assert all(e["watchTime"] >= 1
                   for e in vod_monitor_events(50, seed=2))

    def test_feedback_alternates_ids(self):
        events = feedback_events(4, gathering_ids=(7, 8), seed=0)
        assert [e["feedbackGatheringId"] for e in events] == [7, 8, 7, 8]

    def test_relationships_cover_apps(self):
        rows = application_relationships(5, seed=0)
        assert [r["appId"] for r in rows] == [1, 2, 3, 4, 5]
