"""Unit tests for the document store and its aggregation subset."""

import pytest

from repro.errors import AggregationError, UnknownCollectionError
from repro.sources.document_store import DocumentStore, aggregate

DOCS = [
    {"monitorId": 12, "waitTime": 3, "watchTime": 4,
     "meta": {"region": "eu"}},
    {"monitorId": 12, "waitTime": 9, "watchTime": 10,
     "meta": {"region": "us"}},
    {"monitorId": 18, "waitTime": 1, "watchTime": 10,
     "meta": {"region": "eu"}},
]


class TestCollections:
    def test_insert_assigns_ids(self):
        store = DocumentStore()
        doc = store.collection("c").insert_one({"a": 1})
        assert doc["_id"] == 1

    def test_insert_many_counts(self):
        store = DocumentStore()
        assert store.collection("c").insert_many(DOCS) == 3
        assert len(store.collection("c")) == 3

    def test_find_with_query(self):
        store = DocumentStore()
        store.collection("c").insert_many(DOCS)
        assert len(store.collection("c").find({"monitorId": 12})) == 2

    def test_get_collection_strict(self):
        store = DocumentStore()
        with pytest.raises(UnknownCollectionError):
            store.get_collection("absent")

    def test_drop_collection(self):
        store = DocumentStore()
        store.collection("c")
        assert store.drop_collection("c") is True
        assert "c" not in store

    def test_delete_many(self):
        store = DocumentStore()
        c = store.collection("c")
        c.insert_many(DOCS)
        assert c.delete_many({"monitorId": 12}) == 2
        assert len(c) == 1


class TestMatch:
    def test_equality(self):
        assert len(aggregate(DOCS, [{"$match": {"monitorId": 18}}])) == 1

    def test_comparison_operators(self):
        out = aggregate(DOCS, [{"$match": {"waitTime": {"$gte": 3}}}])
        assert len(out) == 2

    def test_in_nin(self):
        assert len(aggregate(
            DOCS, [{"$match": {"monitorId": {"$in": [18, 99]}}}])) == 1
        assert len(aggregate(
            DOCS, [{"$match": {"monitorId": {"$nin": [18]}}}])) == 2

    def test_exists(self):
        out = aggregate(DOCS, [{"$match": {"bogus": {"$exists": False}}}])
        assert len(out) == 3

    def test_nested_path(self):
        out = aggregate(DOCS, [{"$match": {"meta.region": "eu"}}])
        assert len(out) == 2

    def test_or(self):
        out = aggregate(DOCS, [{"$match": {"$or": [
            {"monitorId": 18}, {"waitTime": 9}]}}])
        assert len(out) == 2

    def test_regex(self):
        docs = [{"t": "hello world"}, {"t": "bye"}]
        out = aggregate(docs, [{"$match": {"t": {"$regex": "^hel"}}}])
        assert len(out) == 1

    def test_unknown_operator(self):
        with pytest.raises(AggregationError):
            aggregate(DOCS, [{"$match": {"waitTime": {"$mod": 2}}}])


class TestProject:
    def test_paper_code2_pipeline(self):
        out = aggregate(DOCS, [{"$project": {
            "_id": 0,
            "VoDmonitorId": "$monitorId",
            "lagRatio": {"$divide": ["$waitTime", "$watchTime"]},
        }}])
        assert out[0] == {"VoDmonitorId": 12, "lagRatio": 0.75}
        assert out[2]["lagRatio"] == 0.1

    def test_inclusion(self):
        out = aggregate(DOCS, [{"$project": {"monitorId": 1}}])
        assert set(out[0]) == {"monitorId"}

    def test_arithmetic(self):
        out = aggregate([{"a": 6, "b": 2}], [{"$project": {
            "sum": {"$add": ["$a", "$b"]},
            "diff": {"$subtract": ["$a", "$b"]},
            "prod": {"$multiply": ["$a", "$b"]},
        }}])
        assert out[0] == {"sum": 8, "diff": 4, "prod": 12}

    def test_concat_and_case(self):
        out = aggregate([{"a": "Ab", "b": "cD"}], [{"$project": {
            "joined": {"$concat": ["$a", "-", "$b"]},
            "low": {"$toLower": "$a"},
            "up": {"$toUpper": "$b"},
        }}])
        assert out[0] == {"joined": "Ab-cD", "low": "ab", "up": "CD"}

    def test_if_null_and_literal(self):
        out = aggregate([{"a": None}], [{"$project": {
            "v": {"$ifNull": ["$a", "fallback"]},
            "l": {"$literal": "$a"},
        }}])
        assert out[0] == {"v": "fallback", "l": "$a"}

    def test_divide_by_zero(self):
        with pytest.raises(AggregationError):
            aggregate([{"a": 1, "b": 0}],
                      [{"$project": {"r": {"$divide": ["$a", "$b"]}}}])

    def test_divide_non_numeric(self):
        with pytest.raises(AggregationError):
            aggregate([{"a": "x", "b": 1}],
                      [{"$project": {"r": {"$divide": ["$a", "$b"]}}}])


class TestOtherStages:
    def test_sort_skip_limit(self):
        out = aggregate(DOCS, [
            {"$sort": {"waitTime": -1}},
            {"$skip": 1},
            {"$limit": 1},
        ])
        assert out[0]["waitTime"] == 3

    def test_unwind(self):
        docs = [{"id": 1, "tags": ["a", "b"]}]
        out = aggregate(docs, [{"$unwind": "$tags"}])
        assert [d["tags"] for d in out] == ["a", "b"]

    def test_unwind_nested_path_leaves_input_untouched(self):
        docs = [{"a": {"b": [1, 2]}}]
        out = aggregate(docs, [{"$unwind": "$a.b"}])
        assert [d["a"]["b"] for d in out] == [1, 2]
        assert docs == [{"a": {"b": [1, 2]}}]  # input never mutated

    def test_unwind_nested_path_on_collection(self):
        from repro.sources.document_store import DocumentStore
        store = DocumentStore()
        store.collection("c").insert_one({"a": {"b": [1, 2]}})
        out = store.get_collection("c").aggregate(
            [{"$unwind": "$a.b"}])
        assert sorted(d["a"]["b"] for d in out) == [1, 2]
        # The stored document survives the pipeline intact.
        assert store.get_collection("c").find()[0]["a"]["b"] == [1, 2]

    def test_group_sum_avg(self):
        out = aggregate(DOCS, [{"$group": {
            "_id": "$monitorId",
            "n": {"$sum": 1},
            "avg_wait": {"$avg": "$waitTime"},
        }}])
        by_id = {d["_id"]: d for d in out}
        assert by_id[12]["n"] == 2
        assert by_id[12]["avg_wait"] == 6
        assert by_id[18]["n"] == 1

    def test_group_min_max_push(self):
        out = aggregate(DOCS, [{"$group": {
            "_id": None,
            "lo": {"$min": "$waitTime"},
            "hi": {"$max": "$waitTime"},
            "all": {"$push": "$monitorId"},
        }}])
        assert out[0]["lo"] == 1 and out[0]["hi"] == 9
        assert sorted(out[0]["all"]) == [12, 12, 18]

    def test_group_requires_id(self):
        with pytest.raises(AggregationError):
            aggregate(DOCS, [{"$group": {"n": {"$sum": 1}}}])

    def test_count(self):
        out = aggregate(DOCS, [{"$count": "total"}])
        assert out == [{"total": 3}]

    def test_unknown_stage(self):
        with pytest.raises(AggregationError):
            aggregate(DOCS, [{"$lookup": {}}])

    def test_stage_shape_validation(self):
        with pytest.raises(AggregationError):
            aggregate(DOCS, [{"$match": {}, "$limit": 1}])

    def test_pipeline_does_not_mutate_input(self):
        docs = [{"a": 1}]
        aggregate(docs, [{"$project": {"b": "$a"}}])
        assert docs == [{"a": 1}]
