"""Unit tests for the simulated REST APIs."""

import pytest

from repro.errors import EndpointError, UnknownVersionError
from repro.sources.rest_api import ApiVersion, Endpoint, FieldSpec, RestApi


def posts_endpoint() -> Endpoint:
    ep = Endpoint("GET /posts")
    ep.add_version(ApiVersion("1", [FieldSpec("ID", "int"),
                                    FieldSpec("title", "string")]))
    ep.add_version(ApiVersion("2", [FieldSpec("id", "int"),
                                    FieldSpec("title", "string")]))
    ep.add_version(ApiVersion("2.1", [FieldSpec("id", "int"),
                                      FieldSpec("title", "string"),
                                      FieldSpec("template", "string")]))
    return ep


class TestApiVersion:
    def test_field_names(self):
        v = ApiVersion("1", [FieldSpec("a"), FieldSpec("b")])
        assert v.field_names() == ["a", "b"]

    def test_generation_is_deterministic(self):
        v = ApiVersion("1", [FieldSpec("a", "int")])
        assert v.generate_documents(5, seed=7) == \
            v.generate_documents(5, seed=7)

    def test_generation_differs_by_seed(self):
        v = ApiVersion("1", [FieldSpec("a", "int")])
        assert v.generate_documents(5, seed=1) != \
            v.generate_documents(5, seed=2)

    def test_field_types(self):
        v = ApiVersion("1", [
            FieldSpec("i", "int"), FieldSpec("f", "float"),
            FieldSpec("b", "bool"), FieldSpec("t", "timestamp"),
            FieldSpec("s", "string"),
        ])
        doc = v.generate_documents(1)[0]
        assert isinstance(doc["i"], int)
        assert isinstance(doc["f"], float)
        assert isinstance(doc["b"], bool)
        assert doc["t"] >= 1_475_000_000
        assert isinstance(doc["s"], str)

    def test_custom_generator(self):
        v = ApiVersion("1", [FieldSpec("k", generator=lambda rng, i: i)])
        docs = v.generate_documents(3)
        assert [d["k"] for d in docs] == [0, 1, 2]

    def test_copy_with(self):
        v = ApiVersion("1", [FieldSpec("a")])
        v2 = v.copy_with("2")
        assert v2.version == "2"
        assert v2.field_names() == ["a"]


class TestEndpoint:
    def test_duplicate_version_rejected(self):
        ep = posts_endpoint()
        with pytest.raises(EndpointError):
            ep.add_version(ApiVersion("1", []))

    def test_unknown_version(self):
        with pytest.raises(UnknownVersionError):
            posts_endpoint().version("9")

    def test_latest_version_numeric_ordering(self):
        assert posts_endpoint().latest_version().version == "2.1"

    def test_latest_requires_any_version(self):
        with pytest.raises(EndpointError):
            Endpoint("GET /x").latest_version()

    def test_fetch_specific_version(self):
        docs = posts_endpoint().fetch("1", count=2)
        assert set(docs[0]) == {"ID", "title"}

    def test_fetch_defaults_to_latest(self):
        docs = posts_endpoint().fetch(count=1)
        assert "template" in docs[0]


class TestRestApi:
    def test_add_and_get_endpoint(self):
        api = RestApi("X")
        api.add_endpoint(posts_endpoint())
        assert api.endpoint("GET /posts").name == "GET /posts"

    def test_duplicate_endpoint_rejected(self):
        api = RestApi("X")
        api.add_endpoint(posts_endpoint())
        with pytest.raises(EndpointError):
            api.add_endpoint(posts_endpoint())

    def test_missing_endpoint(self):
        with pytest.raises(EndpointError):
            RestApi("X").endpoint("GET /nope")

    def test_remove_endpoint(self):
        api = RestApi("X")
        api.add_endpoint(posts_endpoint())
        assert api.remove_endpoint("GET /posts") is True
        assert api.remove_endpoint("GET /posts") is False

    def test_rename_endpoint(self):
        api = RestApi("X")
        api.add_endpoint(posts_endpoint())
        api.rename_endpoint("GET /posts", "GET /articles")
        assert api.endpoint("GET /articles").name == "GET /articles"
        with pytest.raises(EndpointError):
            api.endpoint("GET /posts")
