"""CDC change logs of the source substrate, and the data_version
bugfixes the streaming layer flushed out (mutations that used to leave
stale cache evidence behind)."""

import pytest

from repro.errors import AggregationError
from repro.sources.document_store import (
    CHANGE_LOG_LIMIT, Collection, DocumentStore,
)
from repro.sources.rest_api import ApiVersion, Endpoint, FieldSpec


class TestCollectionChangeLog:
    def test_insert_update_delete_are_recorded(self):
        c = Collection("events")
        c.insert_one({"id": 1, "v": 10})
        c.insert_one({"id": 2, "v": 20})
        cursor = c.data_version
        c.update_many({"id": 1}, {"$set": {"v": 11}})
        c.delete_many({"id": 2})
        records = c.changes_since(cursor)
        assert [r.op for r in records] == ["update", "delete"]
        update, delete = records
        assert update.before["v"] == 10 and update.document["v"] == 11
        assert delete.document["id"] == 2
        # seqs advance with data_version, strictly past the cursor
        assert all(r.seq > cursor for r in records)
        assert records[-1].seq == c.data_version

    def test_changes_since_current_is_empty(self):
        c = Collection("events")
        c.insert_one({"id": 1})
        assert c.changes_since(c.data_version) == []

    def test_changes_since_future_cursor_is_none(self):
        c = Collection("events")
        c.insert_one({"id": 1})
        assert c.changes_since(c.data_version + 1) is None

    def test_truncated_log_returns_none(self):
        c = Collection("events", change_log_limit=3)
        for i in range(6):
            c.insert_one({"id": i})
        assert c.changes_since(0) is None  # fell off the window
        # cursors still inside the window keep working
        recent = c.changes_since(c.data_version - 2)
        assert [r.document["id"] for r in recent] == [4, 5]

    def test_log_is_bounded(self):
        c = Collection("events", change_log_limit=4)
        for i in range(50):
            c.insert_one({"id": i})
        assert len(c._log) == 4
        assert CHANGE_LOG_LIMIT >= 1024  # production default is roomy

    def test_update_many_set_unset_inc(self):
        c = Collection("events")
        c.insert_one({"id": 1, "v": 1, "tag": "x"})
        changed = c.update_many({"id": 1}, {"$set": {"v": 5},
                                           "$unset": {"tag": ""},
                                           "$inc": {"n": 2}})
        assert changed == 1
        doc = c.find({"id": 1})[0]
        assert doc["v"] == 5 and doc["n"] == 2 and "tag" not in doc

    def test_update_many_unknown_operator_raises(self):
        c = Collection("events")
        c.insert_one({"id": 1})
        with pytest.raises(AggregationError):
            c.update_many({}, {"$rename": {"id": "key"}})

    def test_noop_update_bumps_nothing(self):
        c = Collection("events")
        c.insert_one({"id": 1, "v": 1})
        version = c.data_version
        assert c.update_many({"id": 99}, {"$set": {"v": 2}}) == 0
        assert c.data_version == version
        assert c.changes_since(version) == []


class TestVersionBumpRegressions:
    def test_insert_one_returns_a_copy(self):
        # Regression: insert_one used to hand back the stored dict —
        # callers mutating the "returned document" silently edited the
        # collection without a data_version bump.
        c = Collection("events")
        returned = c.insert_one({"id": 1, "v": 10})
        version = c.data_version
        returned["v"] = 999
        assert c.find({"id": 1})[0]["v"] == 10
        assert c.data_version == version

    def test_drop_recreate_advances_the_version_floor(self):
        # Regression: a dropped-and-recreated collection restarted its
        # data_version at 0, so ScanCache/AnswerCache entries keyed
        # under the dead collection's versions could be served again.
        store = DocumentStore()
        first = store.collection("vod")
        first.insert_many([{"id": 1}, {"id": 2}])
        dropped_at = first.data_version
        assert store.drop_collection("vod")
        recreated = store.collection("vod")
        assert recreated.data_version > dropped_at
        recreated.insert_one({"id": 3})
        assert recreated.data_version > dropped_at + 1


class TestEndpointChangeLog:
    def make_endpoint(self):
        spec = ApiVersion("v1", [FieldSpec("id", "int"),
                                 FieldSpec("score", "float")])
        return Endpoint("metrics", {"v1": spec})

    def test_live_overlay_is_served_and_logged(self):
        endpoint = self.make_endpoint()
        base = endpoint.fetch("v1", count=3, seed=0)
        cursor = endpoint.live_seq("v1")
        assert endpoint.push_documents(
            "v1", [{"id": 100, "score": 1.5}]) == 1
        docs = endpoint.fetch("v1", count=3, seed=0)
        assert len(docs) == len(base) + 1
        assert docs[-1] == {"id": 100, "score": 1.5}
        records = endpoint.changes_since(cursor, "v1")
        assert [r.op for r in records] == ["insert"]

    def test_update_and_delete_documents(self):
        endpoint = self.make_endpoint()
        endpoint.push_documents("v1", [{"id": 1, "score": 0.5},
                                       {"id": 2, "score": 0.7}])
        cursor = endpoint.live_seq("v1")
        assert endpoint.update_documents(
            "v1", {"id": 1}, {"score": 0.9}) == 1
        assert endpoint.delete_documents("v1", {"id": 2}) == 1
        records = endpoint.changes_since(cursor, "v1")
        assert [r.op for r in records] == ["update", "delete"]
        assert records[0].before["score"] == 0.5
        assert records[0].document["score"] == 0.9

    def test_changes_are_per_version(self):
        spec_v1 = ApiVersion("v1", [FieldSpec("id", "int")])
        spec_v2 = ApiVersion("v2", [FieldSpec("id", "int")])
        endpoint = Endpoint("metrics", {"v1": spec_v1, "v2": spec_v2})
        endpoint.push_documents("v1", [{"id": 1}])
        endpoint.push_documents("v2", [{"id": 2}])
        v1_records = endpoint.changes_since(0, "v1")
        assert [r.document["id"] for r in v1_records] == [1]

    def test_update_field_bumps_revision(self):
        # Regression: refreshing a field's generator regenerated every
        # payload but left the version's identity unchanged, so caches
        # kept serving the pre-refresh rows.
        endpoint = self.make_endpoint()
        spec = endpoint.version("v1")
        before = spec.revision
        first = endpoint.fetch("v1", count=3, seed=0)
        spec.update_field("score", field_type="int")
        assert spec.revision == before + 1
        second = endpoint.fetch("v1", count=3, seed=0)
        assert first != second  # payload actually regenerated
