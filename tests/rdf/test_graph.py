"""Unit tests for the indexed triple store."""

import pytest

from repro.errors import TermError
from repro.rdf.graph import Graph
from repro.rdf.term import IRI, Literal, Variable
from repro.rdf.triple import Triple

A = IRI("http://x/a")
B = IRI("http://x/b")
C = IRI("http://x/c")
P = IRI("http://x/p")
Q = IRI("http://x/q")


@pytest.fixture()
def graph():
    g = Graph()
    g.add((A, P, B))
    g.add((A, P, C))
    g.add((B, Q, C))
    g.add((A, Q, Literal("v")))
    return g


class TestMutation:
    def test_add_is_idempotent(self, graph):
        size = len(graph)
        graph.add((A, P, B))
        assert len(graph) == size

    def test_remove_existing(self, graph):
        assert graph.remove((A, P, B)) is True
        assert (A, P, B) not in graph

    def test_remove_missing_returns_false(self, graph):
        assert graph.remove((C, P, A)) is False

    def test_remove_cleans_indexes(self):
        g = Graph()
        g.add((A, P, B))
        g.remove((A, P, B))
        assert list(g.match(A, None, None)) == []
        assert list(g.match(None, P, None)) == []
        assert list(g.match(None, None, B)) == []
        assert len(g) == 0

    def test_remove_matching(self, graph):
        removed = graph.remove_matching(A, None, None)
        assert removed == 3
        assert not graph.contains(A, None, None)

    def test_clear(self, graph):
        graph.clear()
        assert len(graph) == 0
        assert not graph

    def test_rejects_variable_in_asserted_triple(self):
        g = Graph()
        with pytest.raises(TermError):
            g.add(Triple(A, P, Variable("x")))

    def test_rejects_literal_subject(self):
        g = Graph()
        with pytest.raises(TermError):
            g.add((Literal("s"), P, B))


class TestMatching:
    def test_fully_bound(self, graph):
        assert list(graph.match(A, P, B)) == [Triple(A, P, B)]

    def test_spo_shapes(self, graph):
        assert len(list(graph.match(A, None, None))) == 3
        assert len(list(graph.match(A, P, None))) == 2

    def test_pos_shapes(self, graph):
        assert len(list(graph.match(None, P, None))) == 2
        assert len(list(graph.match(None, Q, C))) == 1

    def test_osp_shapes(self, graph):
        assert len(list(graph.match(None, None, C))) == 2
        assert len(list(graph.match(A, None, C))) == 1

    def test_full_scan(self, graph):
        assert len(list(graph.match())) == len(graph) == 4

    def test_variables_act_as_wildcards(self, graph):
        results = list(graph.match(Variable("s"), P, Variable("o")))
        assert len(results) == 2

    def test_contains_and_count(self, graph):
        assert graph.contains(None, Q, None)
        assert graph.count(None, Q, None) == 2
        assert not graph.contains(C, None, None)

    def test_subjects_objects_predicates(self, graph):
        assert set(graph.subjects(P, None)) == {A}
        assert set(graph.objects(A, P)) == {B, C}
        assert set(graph.predicates(A, None)) == {P, Q}

    def test_value_single_hole(self, graph):
        assert graph.value(B, Q, None) == C
        assert graph.value(None, Q, C) == B

    def test_value_requires_exactly_one_hole(self, graph):
        with pytest.raises(ValueError):
            graph.value(None, None, C)

    def test_value_missing_returns_none(self, graph):
        assert graph.value(C, P, None) is None


class TestSetAlgebra:
    def test_union(self, graph):
        other = Graph([(C, P, A)])
        merged = graph | other
        assert len(merged) == 5
        assert len(graph) == 4  # unchanged

    def test_intersection(self, graph):
        other = Graph([(A, P, B), (C, P, A)])
        common = graph.intersection(other)
        assert len(common) == 1
        assert (A, P, B) in common

    def test_difference(self, graph):
        other = Graph([(A, P, B)])
        rest = graph.difference(other)
        assert len(rest) == 3
        assert (A, P, B) not in rest

    def test_issubset(self, graph):
        smaller = Graph([(A, P, B)])
        assert smaller.issubset(graph)
        assert smaller <= graph
        assert not graph.issubset(smaller)

    def test_equality_ignores_identifier(self):
        g1 = Graph("http://g/1", [(A, P, B)])
        g2 = Graph("http://g/2", [(A, P, B)])
        assert g1 == g2

    def test_copy_independent(self, graph):
        clone = graph.copy()
        clone.add((C, P, A))
        assert len(graph) == 4
        assert len(clone) == 5

    def test_string_coercion_on_add(self):
        g = Graph()
        g.add(("http://x/s", "http://x/p", "http://x/o"))
        assert g.contains(IRI("http://x/s"), None, None)

    def test_python_native_object_becomes_literal(self):
        g = Graph()
        g.add((A, P, 42))
        triple = next(iter(g))
        assert isinstance(triple.o, Literal)
        assert triple.o.to_python() == 42
