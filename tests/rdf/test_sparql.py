"""Unit tests for the SPARQL subset: parser, algebra, evaluator."""

import pytest

from repro.errors import SparqlSyntaxError
from repro.rdf.dataset import Dataset
from repro.rdf.graph import Graph
from repro.rdf.namespace import G as G_NS, RDF, RDFS, SC
from repro.rdf.sparql import (
    ask, evaluate, parse_sparql, render_algebra, select, select_one,
    to_algebra,
)
from repro.rdf.sparql.ast import BGP, GraphPattern, ValuesClause
from repro.rdf.term import IRI, Literal, Variable


class TestParser:
    def test_simple_select(self):
        q = parse_sparql("SELECT ?s WHERE { ?s ?p ?o }")
        assert q.variables == (Variable("s"),)
        assert len(q.bgp()) == 1

    def test_select_star(self):
        q = parse_sparql("SELECT * WHERE { ?s ?p ?o }")
        assert q.select_all
        assert set(q.projected()) == {Variable("s"), Variable("p"),
                                      Variable("o")}

    def test_distinct(self):
        q = parse_sparql("SELECT DISTINCT ?s WHERE { ?s ?p ?o }")
        assert q.distinct

    def test_prefixed_names(self):
        q = parse_sparql("SELECT ?s WHERE { ?s rdf:type G:Concept }")
        pattern = q.bgp().patterns[0]
        assert pattern.p == RDF.type
        assert pattern.o == G_NS.Concept

    def test_a_keyword(self):
        q = parse_sparql("SELECT ?s WHERE { ?s a G:Concept }")
        assert q.bgp().patterns[0].p == RDF.type

    def test_prefix_declaration(self):
        q = parse_sparql("""
            PREFIX ex: <http://example.org/>
            SELECT ?s WHERE { ?s ex:p ex:o }
        """)
        assert q.bgp().patterns[0].p == IRI("http://example.org/p")

    def test_from_clause(self):
        q = parse_sparql(
            "SELECT ?s FROM <http://g/1> WHERE { ?s ?p ?o }")
        assert q.from_graphs == (IRI("http://g/1"),)

    def test_values_clause(self):
        q = parse_sparql("""
            SELECT ?x WHERE {
                VALUES (?x) { (<http://x/a>) (<http://x/b>) }
                ?x ?p ?o
            }""")
        values = q.values_clause()
        assert isinstance(values, ValuesClause)
        assert len(values.rows) == 2

    def test_values_arity_mismatch(self):
        with pytest.raises(SparqlSyntaxError):
            parse_sparql("""
                SELECT ?x ?y WHERE {
                    VALUES (?x ?y) { (<http://x/a>) }
                }""")

    def test_graph_pattern_variable(self):
        q = parse_sparql(
            "SELECT ?g WHERE { GRAPH ?g { ?s ?p ?o } }")
        assert isinstance(q.patterns[0], GraphPattern)
        assert q.patterns[0].graph == Variable("g")

    def test_graph_pattern_iri(self):
        q = parse_sparql(
            "SELECT ?s WHERE { GRAPH <http://g/1> { ?s ?p ?o } }")
        assert q.patterns[0].graph == IRI("http://g/1")

    def test_literals(self):
        q = parse_sparql(
            'SELECT ?s WHERE { ?s ?p "text" . ?s ?q 5 . ?s ?r true }')
        objects = [p.o for p in q.bgp().patterns]
        assert Literal("text") in objects
        assert Literal(5) in objects
        assert Literal(True) in objects

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            parse_sparql("SELECT ?s WHERE { ?s ?p ?o } garbage:x")

    def test_select_requires_projection(self):
        with pytest.raises(SparqlSyntaxError):
            parse_sparql("SELECT WHERE { ?s ?p ?o }")

    def test_unknown_prefix(self):
        with pytest.raises(SparqlSyntaxError):
            parse_sparql("SELECT ?s WHERE { ?s nope:p ?o }")

    def test_where_keyword_optional(self):
        q = parse_sparql("SELECT ?s { ?s ?p ?o }")
        assert len(q.bgp()) == 1


class TestAlgebra:
    def test_code4_shape(self):
        q = parse_sparql("""
            SELECT ?x WHERE {
                VALUES (?x) { (<http://x/attr>) }
                <http://x/c> G:hasFeature <http://x/attr>
            }""")
        tree = to_algebra(q)
        assert tree.op == "project"
        body = tree.args[1]
        assert body.op == "join"
        ops = [child.op for child in body.args]
        assert ops == ["table", "bgp"]

    def test_rendering_contains_rows(self):
        q = parse_sparql("""
            SELECT ?x WHERE {
                VALUES (?x) { (<http://x/attr>) }
                <http://x/c> G:hasFeature <http://x/attr>
            }""")
        text = render_algebra(to_algebra(q))
        assert "(project (?x)" in text
        assert "(table (vars ?x)" in text
        assert "(row [?x" in text
        assert "(bgp" in text

    def test_single_pattern_no_join(self):
        q = parse_sparql("SELECT ?s WHERE { ?s ?p ?o }")
        tree = to_algebra(q)
        assert tree.args[1].op == "bgp"


@pytest.fixture()
def small_graph():
    g = Graph()
    c1, c2 = IRI("http://x/c1"), IRI("http://x/c2")
    f1, f2 = IRI("http://x/f1"), IRI("http://x/f2")
    g.add((c1, RDF.type, G_NS.Concept))
    g.add((c2, RDF.type, G_NS.Concept))
    g.add((f1, RDF.type, G_NS.Feature))
    g.add((f2, RDF.type, G_NS.Feature))
    g.add((c1, G_NS.hasFeature, f1))
    g.add((c2, G_NS.hasFeature, f2))
    g.add((f1, RDFS.subClassOf, SC.identifier))
    g.add((c1, IRI("http://x/rel"), c2))
    return g


class TestEvaluator:
    def test_bgp_join(self, small_graph):
        rows = select(small_graph, """
            SELECT ?c ?f WHERE {
                ?c rdf:type G:Concept .
                ?c G:hasFeature ?f
            }""")
        assert len(rows) == 2

    def test_values_restricts(self, small_graph):
        rows = select(small_graph, """
            SELECT ?c WHERE {
                VALUES (?c) { (<http://x/c1>) }
                ?c rdf:type G:Concept
            }""")
        assert [str(r["c"]) for r in rows] == ["http://x/c1"]

    def test_entailment_subclass(self, small_graph):
        rows = select(small_graph, """
            SELECT ?f WHERE {
                <http://x/c1> G:hasFeature ?f .
                ?f rdfs:subClassOf sc:identifier
            }""")
        assert len(rows) == 1

    def test_entailment_off(self, small_graph):
        small_graph.add((IRI("http://x/f3"), RDFS.subClassOf,
                         IRI("http://x/f1")))
        with_ent = select(small_graph,
                          "SELECT ?x WHERE { ?x rdfs:subClassOf "
                          "sc:identifier }", entailment=True)
        without = select(small_graph,
                         "SELECT ?x WHERE { ?x rdfs:subClassOf "
                         "sc:identifier }", entailment=False)
        assert len(with_ent) == 2  # f1 direct + f3 transitive
        assert len(without) == 1

    def test_distinct(self, small_graph):
        rows = select(small_graph, """
            SELECT DISTINCT ?t WHERE { ?c rdf:type ?t .
                                       ?c G:hasFeature ?f }""")
        assert len(rows) == 1

    def test_ask(self, small_graph):
        assert ask(small_graph,
                   "SELECT ?c WHERE { ?c rdf:type G:Concept }")
        assert not ask(small_graph,
                       "SELECT ?c WHERE { ?c rdf:type G:Wrapper }")

    def test_select_one(self, small_graph):
        row = select_one(small_graph,
                         "SELECT ?f WHERE { <http://x/c2> G:hasFeature ?f }")
        assert str(row["f"]) == "http://x/f2"
        assert select_one(small_graph,
                          "SELECT ?f WHERE { <http://x/f2> G:hasFeature ?f }"
                          ) is None

    def test_no_solution_when_unmatched(self, small_graph):
        rows = select(small_graph, """
            SELECT ?c WHERE {
                ?c rdf:type G:Concept .
                ?c G:hasFeature <http://x/nonexistent>
            }""")
        assert rows == []

    def test_shared_variable_consistency(self, small_graph):
        # ?x must bind consistently across patterns.
        rows = select(small_graph, """
            SELECT ?x WHERE {
                ?x rdf:type G:Concept .
                ?x G:hasFeature ?f .
                ?f rdfs:subClassOf sc:identifier
            }""")
        assert [str(r["x"]) for r in rows] == ["http://x/c1"]


class TestDatasetEvaluation:
    def test_graph_variable_enumerates(self):
        ds = Dataset()
        ds.graph("http://g/1").add(
            ("http://x/a", "http://x/p", "http://x/b"))
        ds.graph("http://g/2").add(
            ("http://x/a", "http://x/p", "http://x/c"))
        rows = select(ds, """
            SELECT ?g ?o WHERE {
                GRAPH ?g { <http://x/a> <http://x/p> ?o } }""")
        assert len(rows) == 2
        assert {str(r["g"]) for r in rows} == {"http://g/1", "http://g/2"}

    def test_graph_fixed_iri(self):
        ds = Dataset()
        ds.graph("http://g/1").add(
            ("http://x/a", "http://x/p", "http://x/b"))
        rows = select(ds, """
            SELECT ?o WHERE {
                GRAPH <http://g/1> { <http://x/a> ?p ?o } }""")
        assert len(rows) == 1

    def test_from_restricts_scope(self):
        ds = Dataset()
        ds.graph("http://g/1").add(
            ("http://x/a", "http://x/p", "http://x/b"))
        ds.graph("http://g/2").add(
            ("http://x/c", "http://x/p", "http://x/d"))
        rows = select(ds, """
            SELECT ?s FROM <http://g/1> WHERE { ?s ?p ?o }""")
        assert [str(r["s"]) for r in rows] == ["http://x/a"]

    def test_default_scope_is_union(self):
        ds = Dataset()
        ds.graph("http://g/1").add(
            ("http://x/a", "http://x/p", "http://x/b"))
        ds.default_graph.add(("http://x/c", "http://x/p", "http://x/d"))
        rows = select(ds, "SELECT ?s WHERE { ?s ?p ?o }")
        assert len(rows) == 2

    def test_graph_and_bgp_combined(self):
        ds = Dataset()
        ds.default_graph.add(("http://x/w", "http://x/maps",
                              "http://g/1"))
        ds.graph("http://g/1").add(
            ("http://x/a", "http://x/p", "http://x/b"))
        rows = select(ds, """
            SELECT ?w WHERE {
                ?w <http://x/maps> ?g .
                GRAPH ?g { <http://x/a> <http://x/p> <http://x/b> }
            }""")
        assert [str(r["w"]) for r in rows] == ["http://x/w"]
