"""Unit tests for named-graph datasets."""

import pytest

from repro.errors import GraphNotFoundError
from repro.rdf.dataset import Dataset
from repro.rdf.term import IRI
from repro.rdf.triple import Quad

A, B, P = IRI("http://x/a"), IRI("http://x/b"), IRI("http://x/p")
G1, G2 = IRI("http://g/1"), IRI("http://g/2")


@pytest.fixture()
def dataset():
    ds = Dataset()
    ds.graph(G1).add((A, P, B))
    ds.graph(G2).add((B, P, A))
    ds.default_graph.add((A, P, A))
    return ds


class TestGraphManagement:
    def test_graph_creates_on_demand(self):
        ds = Dataset()
        g = ds.graph("http://g/new")
        assert len(g) == 0
        assert ds.has_graph("http://g/new")

    def test_get_graph_strict(self, dataset):
        assert dataset.get_graph(G1).contains(A, P, B)
        with pytest.raises(GraphNotFoundError):
            dataset.get_graph("http://g/absent")

    def test_none_returns_default(self, dataset):
        assert dataset.graph(None) is dataset.default_graph

    def test_remove_graph(self, dataset):
        assert dataset.remove_graph(G1) is True
        assert not dataset.has_graph(G1)
        assert dataset.remove_graph(G1) is False

    def test_graph_names_sorted(self, dataset):
        assert dataset.graph_names() == sorted([G1, G2])


class TestQuads:
    def test_quad_count(self, dataset):
        assert dataset.quad_count() == 3
        assert len(dataset) == 3

    def test_quads_everywhere(self, dataset):
        quads = list(dataset.quads())
        assert len(quads) == 3
        graphs = {q.graph for q in quads}
        assert graphs == {None, G1, G2}

    def test_quads_default_only(self, dataset):
        quads = list(dataset.quads(graph=None))
        assert len(quads) == 1
        assert quads[0].graph is None

    def test_quads_named_only(self, dataset):
        quads = list(dataset.quads(graph=G1))
        assert quads == [Quad(A, P, B, G1)]

    def test_quads_pattern(self, dataset):
        quads = list(dataset.quads(A, P, None))
        assert len(quads) == 2  # in default and G1

    def test_add_quad(self):
        ds = Dataset()
        ds.add_quad((A, P, B, G1))
        assert ds.graph(G1).contains(A, P, B)

    def test_add_quad_default(self):
        ds = Dataset()
        ds.add_quad(Quad(A, P, B, None))
        assert ds.default_graph.contains(A, P, B)


class TestGraphsContaining:
    def test_finds_named_graphs(self, dataset):
        assert dataset.graphs_containing(A, P, B) == [G1]
        assert dataset.graphs_containing(None, P, None) == [G1, G2]

    def test_ignores_default_graph(self, dataset):
        # (A, P, A) lives only in the default graph.
        assert dataset.graphs_containing(A, P, A) == []


class TestUnionGraph:
    def test_union_all(self, dataset):
        union = dataset.union_graph()
        assert len(union) == 3

    def test_union_selected(self, dataset):
        union = dataset.union_graph([G1])
        assert len(union) == 1
        assert union.contains(A, P, B)

    def test_union_is_a_copy(self, dataset):
        union = dataset.union_graph()
        union.add((B, P, B))
        assert dataset.quad_count() == 3
