"""Unit tests for N-Triples / N-Quads."""

import pytest

from repro.errors import NTriplesSyntaxError
from repro.rdf.dataset import Dataset
from repro.rdf.graph import Graph
from repro.rdf.ntriples import (
    parse_nquads, parse_ntriples, serialize_nquads, serialize_ntriples,
)
from repro.rdf.term import BlankNode, IRI, Literal


class TestNTriples:
    def test_parse_simple(self):
        g = parse_ntriples(
            "<http://x/a> <http://x/p> <http://x/b> .")
        assert len(g) == 1

    def test_parse_literal_with_datatype(self):
        g = parse_ntriples(
            '<http://x/a> <http://x/p> '
            '"5"^^<http://www.w3.org/2001/XMLSchema#integer> .')
        assert next(iter(g)).o.to_python() == 5

    def test_parse_literal_with_lang(self):
        g = parse_ntriples('<http://x/a> <http://x/p> "oui"@fr .')
        assert next(iter(g)).o.lang == "fr"

    def test_parse_bnode(self):
        g = parse_ntriples("_:n1 <http://x/p> _:n2 .")
        triple = next(iter(g))
        assert triple.s == BlankNode("n1")
        assert triple.o == BlankNode("n2")

    def test_blank_lines_and_comments(self):
        g = parse_ntriples("""
# comment
<http://x/a> <http://x/p> <http://x/b> .

""")
        assert len(g) == 1

    def test_error_carries_line_number(self):
        with pytest.raises(NTriplesSyntaxError, match="line 1"):
            parse_ntriples("<http://x/a> <http://x/p>")

    def test_round_trip(self):
        g = Graph()
        g.add((IRI("http://x/a"), IRI("http://x/p"), Literal('q"uo\nte')))
        g.add((IRI("http://x/a"), IRI("http://x/p"), Literal(7)))
        g.add((BlankNode("z"), IRI("http://x/p"), IRI("http://x/b")))
        assert parse_ntriples(serialize_ntriples(g)) == g

    def test_canonical_sorted_output(self):
        g = Graph()
        g.add((IRI("http://x/b"), IRI("http://x/p"), IRI("http://x/c")))
        g.add((IRI("http://x/a"), IRI("http://x/p"), IRI("http://x/c")))
        lines = serialize_ntriples(g).splitlines()
        assert lines == sorted(lines)


class TestNQuads:
    def test_round_trip_dataset(self):
        ds = Dataset()
        ds.graph("http://g/1").add(
            (IRI("http://x/a"), IRI("http://x/p"), IRI("http://x/b")))
        ds.default_graph.add(
            (IRI("http://x/c"), IRI("http://x/p"), Literal("v")))
        text = serialize_nquads(ds)
        back = parse_nquads(text)
        assert back.quad_count() == 2
        assert back.graph("http://g/1").contains(
            IRI("http://x/a"), None, None)
        assert back.default_graph.contains(IRI("http://x/c"), None, None)

    def test_quad_line_has_graph_label(self):
        ds = Dataset()
        ds.graph("http://g/1").add(
            (IRI("http://x/a"), IRI("http://x/p"), IRI("http://x/b")))
        assert "<http://g/1>" in serialize_nquads(ds)

    def test_whole_ontology_round_trips(self, ontology):
        text = serialize_nquads(ontology.dataset)
        back = parse_nquads(text)
        assert back.quad_count() == ontology.dataset.quad_count()
        for name in ontology.dataset.graph_names():
            assert back.graph(name) == ontology.dataset.graph(name)
