"""Unit tests for namespaces, CURIE expansion and IRI shrinking."""

import pytest

from repro.rdf.namespace import (
    G, Namespace, PREFIXES, RDF, SUP, expand_curie, shrink_iri,
)
from repro.rdf.term import IRI


class TestNamespace:
    def test_attribute_access(self):
        ns = Namespace("http://example.org/")
        assert ns.thing == IRI("http://example.org/thing")
        assert isinstance(ns.thing, IRI)

    def test_item_access(self):
        ns = Namespace("http://example.org/")
        assert ns["a/b"] == IRI("http://example.org/a/b")

    def test_term_method(self):
        ns = Namespace("http://example.org/")
        assert ns.term("x") == ns.x

    def test_iri_property(self):
        ns = Namespace("http://example.org/")
        assert ns.iri == IRI("http://example.org/")

    def test_dunder_not_hijacked(self):
        ns = Namespace("http://example.org/")
        with pytest.raises(AttributeError):
            ns.__wrapped__  # noqa: B018

    def test_invalid_base_rejected(self):
        from repro.errors import TermError
        with pytest.raises(TermError):
            Namespace("not an iri")


class TestCurie:
    def test_expand(self):
        assert expand_curie("rdf:type") == RDF.type
        assert expand_curie("sup:lagRatio") == SUP.lagRatio

    def test_expand_unknown_prefix(self):
        with pytest.raises(KeyError):
            expand_curie("nope:x")

    def test_expand_custom_table(self):
        table = {"ex": Namespace("http://example.org/")}
        assert expand_curie("ex:y", table) == IRI("http://example.org/y")


class TestShrink:
    def test_shrinks_known_namespace(self):
        assert shrink_iri(str(G.Concept)) == "G:Concept"
        assert shrink_iri(str(RDF.type)) == "rdf:type"

    def test_unknown_falls_back_to_brackets(self):
        assert shrink_iri("http://unknown.example/x") == \
            "<http://unknown.example/x>"

    def test_slashy_locals_not_shrunk(self):
        # Attribute URIs contain '/' in the local part: keep full form.
        from repro.core.vocabulary import attribute_uri
        text = shrink_iri(str(attribute_uri("D1", "lagRatio")))
        assert text.startswith("<")

    def test_most_specific_prefix_wins(self):
        # G: is longer/more specific than any generic prefix match.
        assert shrink_iri(str(G.hasFeature)) == "G:hasFeature"

    def test_bare_namespace_not_shrunk_to_empty_local(self):
        assert shrink_iri(str(G)) == f"<{G}>"

    def test_all_default_prefixes_roundtrip(self):
        for prefix, ns in PREFIXES.items():
            iri = ns["local1"]
            assert shrink_iri(str(iri)) == f"{prefix}:local1"
