"""Unit tests for the RDF term model."""

import pytest

from repro.errors import TermError
from repro.rdf.term import BlankNode, IRI, Literal, Variable


class TestIRI:
    def test_n3(self):
        assert IRI("http://x/a").n3() == "<http://x/a>"

    def test_is_a_string(self):
        iri = IRI("http://x/a")
        assert isinstance(iri, str)
        assert iri == "http://x/a"

    def test_concatenation_yields_iri(self):
        combined = IRI("http://x/") + "suffix"
        assert isinstance(combined, IRI)
        assert str(combined) == "http://x/suffix"

    def test_rejects_empty(self):
        with pytest.raises(TermError):
            IRI("")

    def test_rejects_spaces(self):
        with pytest.raises(TermError):
            IRI("http://x/a b")

    def test_rejects_angle_brackets(self):
        with pytest.raises(TermError):
            IRI("http://x/<a>")

    def test_rejects_non_string(self):
        with pytest.raises(TermError):
            IRI(42)  # type: ignore[arg-type]

    def test_local_name_hash(self):
        assert IRI("http://x/v#frag").local_name == "frag"

    def test_local_name_slash(self):
        assert IRI("http://x/path/leaf").local_name == "leaf"

    def test_hashable_and_dict_key(self):
        d = {IRI("http://x/a"): 1}
        assert d[IRI("http://x/a")] == 1


class TestBlankNode:
    def test_label_round_trip(self):
        assert BlankNode("b1").n3() == "_:b1"

    def test_fresh_labels_differ(self):
        assert BlankNode() != BlankNode()

    def test_equality_by_label(self):
        assert BlankNode("x") == BlankNode("x")

    def test_rejects_bad_label(self):
        with pytest.raises(TermError):
            BlankNode("-bad")

    def test_immutable(self):
        node = BlankNode("b")
        with pytest.raises(TermError):
            node.label = "c"  # type: ignore[misc]


class TestLiteral:
    def test_plain_string(self):
        lit = Literal("hello")
        assert lit.n3() == '"hello"'
        assert lit.to_python() == "hello"

    def test_integer(self):
        lit = Literal(42)
        assert "XMLSchema#integer" in lit.n3()
        assert lit.to_python() == 42

    def test_float(self):
        assert Literal(1.5).to_python() == 1.5

    def test_boolean(self):
        assert Literal(True).lexical == "true"
        assert Literal(False).to_python() is False

    def test_language_tag(self):
        lit = Literal("chat", lang="fr")
        assert lit.n3() == '"chat"@fr'

    def test_lang_and_datatype_conflict(self):
        with pytest.raises(TermError):
            Literal("x", datatype="http://x/dt", lang="en")

    def test_bad_lang_tag(self):
        with pytest.raises(TermError):
            Literal("x", lang="no spaces")

    def test_escaping(self):
        lit = Literal('say "hi"\n')
        assert '\\"hi\\"' in lit.n3()
        assert "\\n" in lit.n3()

    def test_equality(self):
        assert Literal("a") == Literal("a")
        assert Literal("a") != Literal("a", lang="en")
        assert Literal("1") != Literal(1)

    def test_custom_datatype(self):
        lit = Literal("P1D", datatype="http://www.w3.org/2001/XMLSchema#duration")
        assert "duration" in lit.n3()

    def test_unsupported_value(self):
        with pytest.raises(TermError):
            Literal(object())  # type: ignore[arg-type]


class TestVariable:
    def test_strips_question_mark(self):
        assert Variable("?x").name == "x"
        assert Variable("$x").name == "x"

    def test_n3(self):
        assert Variable("ds").n3() == "?ds"

    def test_equality(self):
        assert Variable("?a") == Variable("a")

    def test_rejects_bad_name(self):
        with pytest.raises(TermError):
            Variable("9bad")


class TestOrdering:
    def test_sort_ranks(self):
        items = [Variable("v"), Literal("l"), BlankNode("b"),
                 IRI("http://x/i")]
        ordered = sorted(items)
        assert isinstance(ordered[0], IRI)
        assert isinstance(ordered[1], BlankNode)
        assert isinstance(ordered[2], Literal)
        assert isinstance(ordered[3], Variable)
