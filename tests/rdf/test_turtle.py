"""Unit tests for Turtle parsing and serialization."""

import pytest

from repro.errors import TurtleSyntaxError
from repro.rdf.graph import Graph
from repro.rdf.namespace import G as G_NS, RDF, RDFS, XSD
from repro.rdf.term import BlankNode, IRI, Literal
from repro.rdf.turtle import parse_turtle, serialize_turtle


class TestParsing:
    def test_simple_triple(self):
        g = parse_turtle("<http://x/a> <http://x/p> <http://x/b> .")
        assert len(g) == 1

    def test_prefix_declaration(self):
        g = parse_turtle("""
            @prefix ex: <http://example.org/> .
            ex:a ex:p ex:b .
        """)
        assert g.contains(IRI("http://example.org/a"), None, None)

    def test_default_prefixes_preloaded(self):
        g = parse_turtle("G:Concept a rdfs:Class .")
        assert g.contains(G_NS.Concept, RDF.type, RDFS.Class)

    def test_a_keyword(self):
        g = parse_turtle("<http://x/a> a <http://x/T> .")
        assert g.contains(None, RDF.type, None)

    def test_predicate_list(self):
        g = parse_turtle("""
            <http://x/a> <http://x/p> <http://x/b> ;
                         <http://x/q> <http://x/c> .
        """)
        assert len(g) == 2

    def test_object_list(self):
        g = parse_turtle(
            "<http://x/a> <http://x/p> <http://x/b>, <http://x/c> .")
        assert len(g) == 2

    def test_trailing_semicolon(self):
        g = parse_turtle("<http://x/a> <http://x/p> <http://x/b> ; .")
        assert len(g) == 1

    def test_string_literal(self):
        g = parse_turtle('<http://x/a> <http://x/p> "hello world" .')
        triple = next(iter(g))
        assert triple.o == Literal("hello world")

    def test_escaped_string(self):
        g = parse_turtle(r'<http://x/a> <http://x/p> "line\nbreak\t\"q\"" .')
        triple = next(iter(g))
        assert triple.o.lexical == 'line\nbreak\t"q"'

    def test_lang_tag(self):
        g = parse_turtle('<http://x/a> <http://x/p> "chat"@fr .')
        assert next(iter(g)).o.lang == "fr"

    def test_typed_literal(self):
        g = parse_turtle(
            '<http://x/a> <http://x/p> "5"^^xsd:integer .')
        assert next(iter(g)).o.datatype == XSD.integer

    def test_integer_shorthand(self):
        g = parse_turtle("<http://x/a> <http://x/p> 42 .")
        assert next(iter(g)).o == Literal(42)

    def test_decimal_shorthand(self):
        g = parse_turtle("<http://x/a> <http://x/p> 4.5 .")
        assert next(iter(g)).o.datatype == XSD.decimal

    def test_boolean_shorthand(self):
        g = parse_turtle("<http://x/a> <http://x/p> true .")
        assert next(iter(g)).o == Literal(True)

    def test_blank_node_label(self):
        g = parse_turtle("_:b0 <http://x/p> <http://x/b> .")
        assert next(iter(g)).s == BlankNode("b0")

    def test_comments_ignored(self):
        g = parse_turtle("""
            # full line comment
            <http://x/a> <http://x/p> <http://x/b> . # trailing
        """)
        assert len(g) == 1

    def test_unknown_prefix_errors(self):
        with pytest.raises(TurtleSyntaxError):
            parse_turtle("nope:a nope:p nope:b .")

    def test_missing_dot_errors(self):
        with pytest.raises(TurtleSyntaxError):
            parse_turtle("<http://x/a> <http://x/p> <http://x/b>")

    def test_error_carries_line(self):
        try:
            parse_turtle("<http://x/a> <http://x/p>\n@@@ .")
        except TurtleSyntaxError as exc:
            assert exc.line == 2
        else:  # pragma: no cover
            pytest.fail("expected TurtleSyntaxError")

    def test_base_resolution(self):
        g = parse_turtle("""
            @base <http://example.org/> .
            <a> <p> <b> .
        """)
        assert g.contains(IRI("http://example.org/a"), None, None)


class TestPaperListings:
    def test_code6_global_vocabulary(self):
        from repro.core.vocabulary import GLOBAL_VOCABULARY_TTL
        g = parse_turtle(GLOBAL_VOCABULARY_TTL)
        assert g.contains(G_NS.Concept, RDF.type, RDFS.Class)
        assert g.contains(G_NS.hasFeature, RDFS.domain, G_NS.Concept)
        assert g.contains(G_NS.hasFeature, RDFS.range, G_NS.Feature)

    def test_code7_source_vocabulary(self):
        from repro.core.vocabulary import SOURCE_VOCABULARY_TTL
        from repro.rdf.namespace import S as S_NS
        g = parse_turtle(SOURCE_VOCABULARY_TTL)
        assert g.contains(S_NS.DataSource, RDF.type, RDFS.Class)
        assert g.contains(S_NS.hasWrapper, RDFS.range, S_NS.Wrapper)
        assert g.contains(S_NS.hasAttribute, RDFS.domain, S_NS.Wrapper)


class TestRoundTrip:
    def test_round_trip_preserves_graph(self):
        g = Graph()
        g.add((IRI("http://x/a"), RDF.type, G_NS.Concept))
        g.add((IRI("http://x/a"), IRI("http://x/p"), Literal("té\nxt")))
        g.add((IRI("http://x/a"), IRI("http://x/q"), Literal(3)))
        g.add((IRI("http://x/a"), IRI("http://x/q"), Literal("x", lang="en")))
        text = serialize_turtle(g)
        assert parse_turtle(text) == g

    def test_serializer_groups_subjects(self):
        g = Graph()
        g.add((IRI("http://x/a"), IRI("http://x/p"), IRI("http://x/b")))
        g.add((IRI("http://x/a"), IRI("http://x/q"), IRI("http://x/c")))
        text = serialize_turtle(g)
        assert text.count("<http://x/a>") == 1
        assert ";" in text

    def test_serializer_emits_only_used_prefixes(self):
        g = Graph([(G_NS.Concept, RDF.type, RDFS.Class)])
        text = serialize_turtle(g)
        assert "@prefix G:" in text
        assert "@prefix owl:" not in text

    def test_empty_graph(self):
        assert serialize_turtle(Graph()) == ""
