"""Unit tests for RDFS entailment."""

from repro.rdf.graph import Graph
from repro.rdf.namespace import RDF, RDFS, SC
from repro.rdf.reasoner import (
    RDFSView, materialize, subclass_closure, subclasses, superclasses,
)
from repro.rdf.term import IRI

A, B, C, D = (IRI(f"http://x/{n}") for n in "abcd")
P, Q = IRI("http://x/p"), IRI("http://x/q")
X = IRI("http://x/instance")


def taxonomy() -> Graph:
    g = Graph()
    g.add((A, RDFS.subClassOf, B))
    g.add((B, RDFS.subClassOf, C))
    g.add((X, RDF.type, A))
    return g


class TestClosures:
    def test_superclasses_transitive(self):
        assert superclasses(taxonomy(), A) == {B, C}

    def test_superclasses_reflexive_option(self):
        assert A in superclasses(taxonomy(), A, reflexive=True)

    def test_subclasses_transitive(self):
        assert subclasses(taxonomy(), C) == {A, B}

    def test_subclass_closure_reflexive(self):
        assert subclass_closure(taxonomy(), A, A)

    def test_subclass_closure_path(self):
        assert subclass_closure(taxonomy(), A, C)
        assert not subclass_closure(taxonomy(), C, A)

    def test_cycle_terminates(self):
        g = Graph()
        g.add((A, RDFS.subClassOf, B))
        g.add((B, RDFS.subClassOf, A))
        assert B in superclasses(g, A)
        assert A not in superclasses(g, A)  # start excluded


class TestMaterialize:
    def test_rdfs11_subclass_transitivity(self):
        closed = materialize(taxonomy())
        assert closed.contains(A, RDFS.subClassOf, C)

    def test_rdfs9_type_inheritance(self):
        closed = materialize(taxonomy())
        assert closed.contains(X, RDF.type, C)

    def test_rdfs2_domain(self):
        g = Graph()
        g.add((P, RDFS.domain, C))
        g.add((A, P, B))
        closed = materialize(g)
        assert closed.contains(A, RDF.type, C)

    def test_rdfs3_range(self):
        g = Graph()
        g.add((P, RDFS.range, C))
        g.add((A, P, B))
        closed = materialize(g)
        assert closed.contains(B, RDF.type, C)

    def test_rdfs7_subproperty_inheritance(self):
        g = Graph()
        g.add((P, RDFS.subPropertyOf, Q))
        g.add((A, P, B))
        closed = materialize(g)
        assert closed.contains(A, Q, B)

    def test_original_graph_untouched(self):
        g = taxonomy()
        materialize(g)
        assert not g.contains(A, RDFS.subClassOf, C)

    def test_fixpoint_is_stable(self):
        once = materialize(taxonomy())
        twice = materialize(once)
        assert once == twice


class TestRDFSView:
    def test_transitive_subclass_bound_subject(self):
        view = RDFSView(taxonomy())
        sups = {t.o for t in view.match(A, RDFS.subClassOf, None)}
        assert sups == {B, C}

    def test_transitive_subclass_bound_object(self):
        view = RDFSView(taxonomy())
        subs = {t.s for t in view.match(None, RDFS.subClassOf, C)}
        assert subs == {A, B}

    def test_transitive_subclass_fully_bound(self):
        view = RDFSView(taxonomy())
        assert view.contains(A, RDFS.subClassOf, C)

    def test_inherited_type(self):
        view = RDFSView(taxonomy())
        assert view.contains(X, RDF.type, C)
        types = {t.o for t in view.match(X, RDF.type, None)}
        assert types == {A, B, C}

    def test_instances_of_superclass(self):
        view = RDFSView(taxonomy())
        assert set(view.subjects(RDF.type, C)) == {X}

    def test_plain_patterns_pass_through(self):
        view = RDFSView(taxonomy())
        assert view.contains(X, RDF.type, A)
        assert not view.contains(X, P, None)

    def test_identifier_taxonomy_like_paper(self):
        # sup:monitorId ⊑ sc:identifier with an intermediate level.
        g = Graph()
        monitor_id = IRI("http://x/monitorId")
        tool_id = IRI("http://x/toolId")
        g.add((monitor_id, RDFS.subClassOf, tool_id))
        g.add((tool_id, RDFS.subClassOf, SC.identifier))
        view = RDFSView(g)
        assert view.contains(monitor_id, RDFS.subClassOf, SC.identifier)
