"""Integration tests: the complete SUPERSEDE running example (paper §2).

Covers Tables 1 and 2, Figures 3-6 (structure), the §2.1 evolution story
and the §4.1 release example, end to end.
"""

import pytest

from repro.core.vocabulary import mapping_graph_uri, wrapper_uri
from repro.datasets import EXEMPLARY_QUERY, build_supersede, register_w4
from repro.query.engine import QueryEngine
from repro.rdf.namespace import G as G_NS, OWL, RDF, S as S_NS, SUP


class TestTable1:
    """Sample output of each exemplary wrapper."""

    def test_w1_output(self, scenario):
        rel = scenario.wrappers["w1"].relation()
        assert rel.as_tuples(["VoDmonitorId", "lagRatio"]) == [
            (12, 0.75), (12, 0.9), (18, 0.1)]

    def test_w2_output(self, scenario):
        rel = scenario.wrappers["w2"].relation()
        assert rel.as_tuples(["FGId", "tweet"]) == [
            (77, "I continuously see the loading symbol"),
            (45, "Your video player is great!")]

    def test_w3_output(self, scenario):
        rel = scenario.wrappers["w3"].relation()
        assert rel.as_tuples(["TargetApp", "MonitorId", "FeedbackId"]) \
            == [(1, 12, 77), (2, 18, 45)]

    def test_wrapper_notations(self, scenario):
        assert scenario.wrappers["w1"].notation() == \
            "w1({VoDmonitorId}, {lagRatio})"
        assert scenario.wrappers["w3"].notation() == \
            "w3({TargetApp, MonitorId, FeedbackId}, {})"


class TestTable2:
    """The exemplary query output."""

    def test_exact_rows(self, engine):
        table = engine.answer(EXEMPLARY_QUERY)
        assert sorted(table.as_tuples(["applicationId", "lagRatio"])) == \
            [(1, 0.75), (1, 0.9), (2, 0.1)]

    def test_rewriting_expression_shape(self, engine):
        result = engine.rewrite(EXEMPLARY_QUERY)
        assert len(result.walks) == 1
        expr = result.ucq.to_expression(engine.ontology)
        text = expr.notation()
        assert "w1" in text and "w3" in text and "⋈̃" in text


class TestEvolutionStory:
    """§2.1: the D1 API renames lagRatio → bufferingRatio (wrapper w4)."""

    def test_release_registers_w4(self, scenario):
        register_w4(scenario)
        t = scenario.ontology
        assert t.s.contains(wrapper_uri("w4"), RDF.type, S_NS.Wrapper)
        # attribute reuse: VoDmonitorId shared between w1 and w4
        shared = [a for a in t.sources.attributes()
                  if str(a).endswith("D1/VoDmonitorId")]
        assert len(shared) == 1

    def test_lav_mapping_of_w4_matches_paper(self, scenario):
        """§4.1 example: G = lagRatio ←hasFeature InfoMonitor
        ←generatesQoS Monitor →hasFeature monitorId."""
        register_w4(scenario)
        lav = scenario.ontology.lav_subgraph(wrapper_uri("w4"))
        assert lav.contains(SUP.Monitor, SUP.generatesQoS,
                            SUP.InfoMonitor)
        assert lav.contains(SUP.InfoMonitor, G_NS.hasFeature,
                            SUP.lagRatio)
        assert lav.contains(SUP.Monitor, G_NS.hasFeature, SUP.monitorId)

    def test_f_function_of_w4(self, scenario):
        register_w4(scenario)
        m = scenario.ontology.m
        from repro.core.vocabulary import attribute_uri
        assert m.contains(attribute_uri("D1", "bufferingRatio"),
                          OWL.sameAs, SUP.lagRatio)

    def test_query_unchanged_after_evolution(self, scenario):
        """The analyst's query survives the schema change verbatim."""
        engine = QueryEngine(scenario.ontology)
        before = engine.answer(EXEMPLARY_QUERY)
        register_w4(scenario)
        after = engine.answer(EXEMPLARY_QUERY)
        before_rows = set(before.as_tuples(["applicationId", "lagRatio"]))
        after_rows = set(after.as_tuples(["applicationId", "lagRatio"]))
        assert before_rows <= after_rows
        assert len(after_rows) == 5

    def test_union_expression_mirrors_paper(self, scenario):
        """§2.1: Π(w1 ⋈ w3) ∪ Π(w4 ⋈ w3)."""
        register_w4(scenario)
        result = QueryEngine(scenario.ontology).rewrite(EXEMPLARY_QUERY)
        assert {w.wrapper_names for w in result.walks} == {
            frozenset({"w1", "w3"}), frozenset({"w3", "w4"})}


class TestOntologyStructure:
    """Figures 3-5: the instantiated RDF datasets."""

    def test_named_graph_per_wrapper(self, scenario):
        names = scenario.ontology.dataset.graph_names()
        for wrapper in ("w1", "w2", "w3"):
            assert mapping_graph_uri(wrapper) in names

    def test_metamodel_loaded(self, ontology):
        from repro.rdf.namespace import RDFS
        assert ontology.g.contains(G_NS.Concept, RDF.type, RDFS.Class)
        assert ontology.s.contains(S_NS.Wrapper, RDF.type, RDFS.Class)

    def test_scaled_scenario(self):
        scenario = build_supersede(event_count=50, seed=3)
        engine = QueryEngine(scenario.ontology)
        table = engine.answer(EXEMPLARY_QUERY)
        assert len(table) > 0

    def test_scenario_deterministic(self):
        a = build_supersede(event_count=20, seed=9)
        b = build_supersede(event_count=20, seed=9)
        ta = QueryEngine(a.ontology).answer(EXEMPLARY_QUERY)
        tb = QueryEngine(b.ontology).answer(EXEMPLARY_QUERY)
        assert ta == tb
