"""Integration tests for the §5.3 worst-case construction (Figure 8)."""

import pytest

from repro.evaluation.worst_case import (
    build_worst_case, fit_constant, run_sweep, worst_case_query,
)
from repro.query.coverage import covering_and_minimal
from repro.query.rewriter import rewrite


class TestWorstCaseConstruction:
    def test_ontology_validates(self):
        setup = build_worst_case(concepts=3, wrappers_per_concept=2)
        assert setup.ontology.validate() == []

    @pytest.mark.parametrize("concepts,wrappers", [
        (2, 1), (2, 3), (3, 2), (4, 2), (5, 2), (3, 4),
    ])
    def test_walk_count_is_w_to_the_c(self, concepts, wrappers):
        """Phase 3 generates exactly W^C covering & minimal walks."""
        setup = build_worst_case(concepts, wrappers)
        result = rewrite(setup.ontology, setup.query)
        assert len(result.walks) == wrappers ** concepts

    def test_all_walks_covering_and_minimal(self):
        setup = build_worst_case(concepts=3, wrappers_per_concept=3)
        result = rewrite(setup.ontology, setup.query)
        for walk in result.walks:
            assert covering_and_minimal(setup.ontology, walk,
                                        result.well_formed)

    def test_every_walk_uses_one_wrapper_per_concept(self):
        setup = build_worst_case(concepts=4, wrappers_per_concept=2)
        result = rewrite(setup.ontology, setup.query)
        for walk in result.walks:
            assert len(walk.wrapper_names) == 4
            levels = sorted(name.split("_")[0] for name
                            in walk.wrapper_names)
            assert levels == ["w1", "w2", "w3", "w4"]

    def test_execution_with_data(self):
        setup = build_worst_case(concepts=3, wrappers_per_concept=2,
                                 rows_per_wrapper=4)
        result = rewrite(setup.ontology, setup.query)
        table = result.ucq.execute(setup.ontology)
        assert len(table) > 0
        assert set(table.schema.attribute_names) == {"val", "val_2",
                                                     "val_3"}

    def test_query_shape(self):
        query = worst_case_query(3)
        assert len(query.pi) == 3
        assert len(query.phi) == 5  # 3 hasFeature + 2 edges


class TestSweep:
    def test_sweep_points(self):
        points = run_sweep(concepts=3, max_wrappers=3)
        assert [p.wrappers_per_concept for p in points] == [1, 2, 3]
        assert [p.walks for p in points] == [1, 8, 27]

    def test_fit_constant_positive(self):
        points = run_sweep(concepts=3, max_wrappers=3)
        assert fit_constant(points) > 0

    def test_times_grow(self):
        points = run_sweep(concepts=3, max_wrappers=4)
        assert points[-1].seconds > points[0].seconds
