"""Unit tests for the MDM facade, steward aids and analyst builder."""

import pytest

from repro.datasets import EXEMPLARY_QUERY, build_supersede
from repro.errors import MalformedQueryError, UnknownFeatureError
from repro.mdm import MDM, OMQBuilder, describe_global_graph
from repro.mdm.steward import align_attributes, suggest_subgraphs
from repro.rdf.namespace import DCT, DUV, SC, SUP


@pytest.fixture()
def mdm():
    return MDM(build_supersede().ontology)


class TestStewardAids:
    def test_alignment_ranks_by_similarity(self, mdm):
        suggestions = mdm.suggest_alignments(["bufferingRatio"])
        assert suggestions[0].best == SUP.lagRatio

    def test_alignment_top_k(self, mdm):
        suggestions = mdm.suggest_alignments(["monitorId"], top_k=2)
        assert len(suggestions[0].candidates) == 2
        assert suggestions[0].candidates[0][0] == SUP.monitorId
        assert suggestions[0].confidence == 1.0

    def test_subgraph_suggestion_direct(self, mdm):
        graphs = mdm.suggest_release_subgraphs(
            [SUP.monitorId, SUP.lagRatio])
        assert graphs
        best = graphs[0]
        assert best.contains(SUP.Monitor, SUP.generatesQoS,
                             SUP.InfoMonitor)

    def test_subgraph_suggestion_needs_intermediate(self, mdm):
        # applicationId and lagRatio live on concepts connected only
        # through Monitor.
        graphs = mdm.suggest_release_subgraphs(
            [SUP.applicationId, SUP.lagRatio])
        assert graphs
        assert graphs[0].contains(SC.SoftwareApplication,
                                  SUP.hasMonitor, SUP.Monitor)

    def test_subgraph_unknown_feature(self, mdm):
        from repro.errors import OntologyError
        with pytest.raises(OntologyError):
            mdm.suggest_release_subgraphs(["http://x/ghost"])

    def test_align_attributes_deterministic(self, mdm):
        first = align_attributes(mdm.ontology, ["tweet"])
        second = align_attributes(mdm.ontology, ["tweet"])
        assert first[0].candidates == second[0].candidates


class TestRegistration:
    def test_register_wrapper_semi_automatic(self, mdm):
        """The w4 evolution through the facade with steward hints."""
        from repro.sources.document_store import DocumentStore
        from repro.wrappers.mongo import MongoWrapper
        from repro.datasets.supersede import (
            EVOLVED_VOD_EVENTS, W4_PIPELINE,
        )
        store = DocumentStore()
        store.collection("vod_v2").insert_many(EVOLVED_VOD_EVENTS)
        w4 = MongoWrapper("w4", "D1", store, "vod_v2", W4_PIPELINE,
                          id_attributes=["VoDmonitorId"],
                          non_id_attributes=["bufferingRatio"])
        delta = mdm.register_wrapper(
            w4, {"VoDmonitorId": SUP.monitorId,
                 "bufferingRatio": SUP.lagRatio})
        assert delta["S"] > 0
        table = mdm.query(EXEMPLARY_QUERY)
        assert len(table) == 5  # both versions contribute

    def test_release_log(self, mdm):
        assert mdm.statistics()["releases"] == 0


class TestQuerying:
    def test_query_runs_pipeline(self, mdm):
        table = mdm.query(EXEMPLARY_QUERY)
        assert sorted(table.as_tuples(["applicationId", "lagRatio"])) == \
            [(1, 0.75), (1, 0.9), (2, 0.1)]

    def test_explain(self, mdm):
        assert "final UCQ" in mdm.explain(EXEMPLARY_QUERY)

    def test_statistics_keys(self, mdm):
        stats = mdm.statistics()
        assert stats["concepts"] == 5
        assert stats["wrappers"] == 3
        assert stats["data_sources"] == 3

    def test_validate_clean(self, mdm):
        assert mdm.validate() == []

    def test_describe_lists_concepts(self, mdm):
        text = mdm.describe()
        assert "Monitor" in text
        assert "[ID]" in text


class TestExports:
    def test_export_nquads_round_trips(self, mdm):
        from repro.rdf.ntriples import parse_nquads
        text = mdm.export_nquads()
        assert parse_nquads(text).quad_count() == \
            mdm.ontology.dataset.quad_count()

    def test_export_turtle_graphs(self, mdm):
        assert "G:Concept" in mdm.export_turtle("G")
        assert "S:DataSource" in mdm.export_turtle("S")
        assert "sameAs" in mdm.export_turtle("M")

    def test_export_unknown_graph(self, mdm):
        from repro.errors import ReleaseError
        with pytest.raises(ReleaseError):
            mdm.export_turtle("X")


class TestOMQBuilder:
    def test_builds_running_example(self, mdm):
        sparql = (mdm.query_builder()
                  .project(SUP.applicationId, SUP.lagRatio)
                  .edge(SC.SoftwareApplication, SUP.hasMonitor,
                        SUP.Monitor)
                  .edge(SUP.Monitor, SUP.generatesQoS, SUP.InfoMonitor)
                  .to_sparql())
        table = mdm.query(sparql)
        assert len(table) == 3

    def test_concept_projection_allowed(self, mdm):
        sparql = (mdm.query_builder()
                  .project(SC.SoftwareApplication, DCT.description)
                  .edge(SC.SoftwareApplication, SUP.hasFGTool,
                        SUP.FeedbackGathering)
                  .edge(SUP.FeedbackGathering, SUP.generatesFeedback,
                        DUV.UserFeedback)
                  .to_sparql())
        table = mdm.query(sparql)
        assert "applicationId" in table.schema.attribute_names

    def test_unknown_feature_rejected(self, mdm):
        with pytest.raises(UnknownFeatureError):
            mdm.query_builder().project("http://x/ghost")

    def test_empty_builder_rejected(self, mdm):
        with pytest.raises(MalformedQueryError):
            mdm.query_builder().to_sparql()

    def test_to_omq(self, mdm):
        omq = (mdm.query_builder()
               .project(SUP.lagRatio)
               .to_omq())
        assert omq.pi == [SUP.lagRatio]

    def test_describe_function(self, mdm):
        assert "edges:" in describe_global_graph(mdm.ontology)
