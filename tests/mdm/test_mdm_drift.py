"""Tests for the MDM drift-handling entry point (future-work extension)."""

import pytest

from repro.datasets import EXEMPLARY_QUERY, build_supersede
from repro.errors import EvolutionError
from repro.mdm import MDM
from repro.wrappers.base import StaticWrapper

DRIFTED = [
    {"VoDmonitorId": 12, "bufferingRatio": 0.25},
    {"VoDmonitorId": 18, "bufferingRatio": 0.4},
]


@pytest.fixture()
def mdm():
    return MDM(build_supersede().ontology)


class TestHandleDrift:
    def test_no_drift_is_noop(self, mdm):
        docs = [{"VoDmonitorId": 12, "lagRatio": 0.5}]
        report, delta = mdm.handle_drift("w1", docs, "w_new")
        assert not report.has_drift
        assert delta == {}
        assert not mdm.ontology.sources.has_wrapper("w_new")

    def test_low_confidence_requires_confirmation(self, mdm):
        with pytest.raises(EvolutionError, match="confirmation"):
            mdm.handle_drift("w1", DRIFTED, "w_new")

    def test_confirmed_drift_registers_release(self, mdm):
        physical = StaticWrapper("w_new", "D1", ["VoDmonitorId"],
                                 ["bufferingRatio"], DRIFTED)
        report, delta = mdm.handle_drift(
            "w1", DRIFTED, "w_new",
            confirmed_renames={"bufferingRatio": "lagRatio"},
            physical_wrapper=physical)
        assert report.has_drift
        assert delta["S"] > 0
        assert mdm.ontology.sources.has_wrapper("w_new")
        assert mdm.validate() == []

    def test_query_unions_after_drift(self, mdm):
        physical = StaticWrapper("w_new", "D1", ["VoDmonitorId"],
                                 ["bufferingRatio"], DRIFTED)
        mdm.handle_drift("w1", DRIFTED, "w_new",
                         confirmed_renames={"bufferingRatio": "lagRatio"},
                         physical_wrapper=physical)
        result = mdm.rewrite(EXEMPLARY_QUERY)
        assert len(result.walks) == 2
        rows = mdm.query(EXEMPLARY_QUERY).as_tuples(
            ["applicationId", "lagRatio"])
        assert (1, 0.25) in rows and (2, 0.4) in rows

    def test_result_relation_named_result(self, mdm):
        assert mdm.query(EXEMPLARY_QUERY).schema.name == "result"

    def test_release_logged(self, mdm):
        physical = StaticWrapper("w_new", "D1", ["VoDmonitorId"],
                                 ["bufferingRatio"], DRIFTED)
        mdm.handle_drift("w1", DRIFTED, "w_new",
                         confirmed_renames={"bufferingRatio": "lagRatio"},
                         physical_wrapper=physical)
        assert mdm.statistics()["releases"] == 1
