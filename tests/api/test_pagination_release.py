"""Satellite: pagination across a release boundary — no torn pages.

The contract under test: a cursor opened at epoch *e* serves pages from
one consistent snapshot; the moment a release lands, the cursor dies
with a typed :class:`~repro.errors.EpochSuperseded` (never a silent
switch to the new epoch, never a page mixing both), and a fresh request
observes the new epoch immediately.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import EpochSuperseded, InvalidCursorError
from repro.service import build_industrial_service, next_version_release

SLUG = "twitter_api"


@pytest.fixture()
def serving_scenario():
    return build_industrial_service()


@pytest.fixture()
def service(serving_scenario):
    svc = serving_scenario.mdm.serving(max_workers=4)
    yield svc
    svc.close()


@pytest.fixture()
def client(service):
    with service.client() as session:
        yield session


def _ids(rows) -> set:
    return {row["id"] for row in rows}


class TestPaginationAcrossRelease:
    def test_cursor_dies_typed_and_fresh_request_serves_new_epoch(
            self, serving_scenario, client):
        query = serving_scenario.queries[SLUG]

        first = client.query(query, page_size=10)
        assert first.epoch == 0 and first.has_more
        second = client.fetch_page(first.cursor)
        assert second.epoch == 0

        # A release lands mid-stream (the v2 wrapper serves a disjoint
        # row set, so any torn page would be visible in the ids).
        release_response = client.submit_release(
            release=next_version_release(serving_scenario, SLUG))
        assert release_response.epoch == 1

        with pytest.raises(EpochSuperseded) as excinfo:
            client.fetch_page(first.cursor)
        assert excinfo.value.requested == 0
        assert excinfo.value.serving == 1
        # The superseded cursor is gone for good, not half-alive.
        with pytest.raises(InvalidCursorError):
            client.fetch_page(first.cursor)

        # The pages that were served came entirely from the epoch-0
        # snapshot: v1 ids only (v1 serves 0..23, v2 serves 24..47).
        served_ids = _ids(second.rows) | _ids(first.rows)
        assert served_ids and all(i < 24 for i in served_ids)

        # A fresh request immediately observes the new epoch: the
        # answer now unions both schema versions (48 ids), with no row
        # missing or doubled across the new stream's pages.
        fresh_pages = list(client.stream(query, page_size=10))
        assert {p.epoch for p in fresh_pages} == {1}
        fresh_ids = set()
        for page in fresh_pages:
            page_ids = _ids(page.rows)
            assert not (page_ids & fresh_ids), "duplicated row"
            fresh_ids |= page_ids
        assert fresh_ids == set(range(48))

    def test_bypassed_write_also_supersedes_cursors(
            self, serving_scenario, service, client):
        """Even ungoverned mutations of T kill open cursors."""
        from repro.core.release import new_release

        query = serving_scenario.queries[SLUG]
        first = client.query(query, page_size=10)
        # A release applied behind the service's back (no write lock).
        new_release(serving_scenario.ontology,
                    next_version_release(serving_scenario, SLUG))
        assert service.stats.bypassed_writes == 1
        with pytest.raises(EpochSuperseded):
            client.fetch_page(first.cursor)

    def test_release_during_concurrent_streams(self, serving_scenario,
                                               service):
        """Many streaming readers racing one release: every page a
        reader got is pure, and every stream either completed at its
        snapshot epoch or died with the typed invalidation."""
        query = serving_scenario.queries[SLUG]
        release = next_version_release(serving_scenario, SLUG)
        start = threading.Barrier(5)
        outcomes: list[tuple[str, object]] = []
        outcomes_lock = threading.Lock()

        def stream_pages() -> None:
            session = service.client()
            start.wait()
            try:
                pages = list(session.stream(query, page_size=6))
            except EpochSuperseded as exc:
                with outcomes_lock:
                    outcomes.append(("superseded", exc))
                return
            epochs = {p.epoch for p in pages}
            ids = [i for p in pages for i in _ids(p.rows)]
            with outcomes_lock:
                outcomes.append(("done", (epochs, ids)))

        def land_release() -> None:
            start.wait()
            service.client().submit_release(release=release)

        threads = [threading.Thread(target=stream_pages)
                   for _ in range(4)]
        threads.append(threading.Thread(target=land_release))
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)

        assert len(outcomes) == 4
        for kind, payload in outcomes:
            if kind == "superseded":
                continue
            epochs, ids = payload
            # One snapshot per stream, and the id set of exactly that
            # snapshot's epoch: 24 v1 ids before the release, the full
            # 48-id union after — never a torn blend in between.
            assert len(epochs) == 1
            expected = set(range(24)) if epochs == {0} \
                else set(range(48))
            assert len(ids) == len(expected)
            assert set(ids) == expected
