"""GovernedClient sessions: pinning, streaming, idempotent releases."""

from __future__ import annotations

import pytest

from repro.api import GovernedClient, InProcessTransport, as_transport
from repro.errors import (
    EpochSuperseded, InvalidCursorError, MalformedRequestError,
    UnanswerableQueryError,
)
from repro.service import build_industrial_service, next_version_release

#: an OMQ over a concept with no mapped wrapper → UnanswerableQueryError
BAD_QUERY = """SELECT ?v1 WHERE {
    VALUES (?v1) { (<urn:industrial:orphan/id>) }
    <urn:industrial:Orphan> G:hasFeature <urn:industrial:orphan/id>
}"""


def _add_orphan_concept(ontology) -> None:
    from repro.rdf.term import IRI

    orphan = ontology.globals.add_concept(IRI("urn:industrial:Orphan"))
    ontology.globals.add_feature(
        orphan, IRI("urn:industrial:orphan/id"), is_id=True)


@pytest.fixture()
def serving_scenario():
    scenario = build_industrial_service()
    _add_orphan_concept(scenario.ontology)
    return scenario


@pytest.fixture()
def service(serving_scenario):
    svc = serving_scenario.mdm.serving(max_workers=4)
    yield svc
    svc.close()


@pytest.fixture()
def client(service):
    with service.client() as session:
        yield session


class TestQuerying:
    def test_query_carries_consistency_evidence(
            self, serving_scenario, client):
        response = client.query(
            serving_scenario.queries["twitter_api"])
        assert response.ok and response.epoch == 0
        assert response.total_rows == len(response.rows) == 24
        assert response.cursor is None and not response.has_more
        ontology = serving_scenario.ontology
        assert response.fingerprint == (
            ontology.fingerprint().epoch,
            ontology.fingerprint().structure)

    def test_rows_convenience(self, serving_scenario, client):
        rows = client.rows(serving_scenario.queries["amazon_mws"])
        assert len(rows) == 24 and "id" in rows[0] and "sku" in rows[0]

    def test_typed_errors_raise(self, client):
        with pytest.raises(MalformedRequestError):
            client.fetch_page("")  # cursor="" fails validation
        with pytest.raises(UnanswerableQueryError):
            client.query(BAD_QUERY)

    def test_coercion_targets(self, serving_scenario, service):
        for target in (service, service.endpoint,
                       serving_scenario.mdm):
            session = GovernedClient(target)
            assert isinstance(session.transport, InProcessTransport)
        with pytest.raises(ValueError):
            as_transport("ftp://nope")
        with pytest.raises(TypeError):
            as_transport(42)

    def test_client_accessors_reuse_the_live_service(
            self, serving_scenario):
        """A convenience accessor never closes and replaces a
        configured (non-default) service, which would orphan its
        cursors and detach its evolution listener."""
        mdm = serving_scenario.mdm
        service = mdm.serving(max_workers=7)
        try:
            session = mdm.client()
            assert session.transport.endpoint is service.endpoint
            assert mdm._serving is service  # untouched by defaults
            assert GovernedClient(mdm).transport.endpoint \
                is service.endpoint
        finally:
            service.close()


class TestPagination:
    def test_stream_pages_one_snapshot(self, serving_scenario, client):
        query = serving_scenario.queries["google_calendar"]
        pages = list(client.stream(query, page_size=10))
        assert [len(p.rows) for p in pages] == [10, 10, 4]
        assert [p.page for p in pages] == [0, 1, 2]
        assert {p.epoch for p in pages} == {0}
        assert {p.total_rows for p in pages} == {24}
        assert pages[-1].cursor is None
        flat = [r["id"] for p in pages for r in p.rows]
        assert sorted(flat) == sorted(
            r["id"] for r in client.rows(query))

    def test_exhausted_cursor_is_invalid(self, serving_scenario,
                                         client):
        query = serving_scenario.queries["google_gadgets"]
        first = client.query(query, page_size=20)
        second = client.fetch_page(first.cursor)
        assert not second.has_more
        with pytest.raises(InvalidCursorError):
            client.fetch_page(first.cursor)

    def test_unknown_cursor_is_invalid(self, client):
        with pytest.raises(InvalidCursorError):
            client.fetch_page("c999.no-such-token")

    def test_cursor_capacity_evicts_lru(self, serving_scenario,
                                        service):
        service.endpoint.cursor_capacity = 2
        client = service.client()
        query = serving_scenario.queries["sina_weibo"]
        oldest = client.query(query, page_size=5)
        client.query(query, page_size=5)
        client.query(query, page_size=5)
        assert service.endpoint.open_cursors == 2
        with pytest.raises(InvalidCursorError):
            client.fetch_page(oldest.cursor)

    def test_stream_rows_flattens(self, serving_scenario, client):
        query = serving_scenario.queries["twitter_api"]
        rows = list(client.stream_rows(query, page_size=7))
        assert len(rows) == 24


class TestEpochPinning:
    def test_pinned_session_fails_typed_after_release(
            self, serving_scenario, client):
        query = serving_scenario.queries["twitter_api"]
        assert client.pinned_epoch is None
        client.pin()
        assert client.pinned_epoch == 0
        assert client.check_pin() == 0
        client.query(query)  # pinned epoch still served

        client.submit_release(
            release=next_version_release(serving_scenario,
                                         "twitter_api"))
        # The session's own release re-pins it (read-your-writes)...
        assert client.pinned_epoch == 1
        client.query(query)

        # ...but a *foreign* release supersedes the pin.
        other = serving_scenario.mdm.serving().client()
        other.submit_release(
            release=next_version_release(serving_scenario,
                                         "amazon_mws"))
        with pytest.raises(EpochSuperseded) as excinfo:
            client.query(query)
        assert excinfo.value.requested == 1
        assert excinfo.value.serving == 2
        with pytest.raises(EpochSuperseded):
            client.check_pin()
        assert client.refresh() == 2
        client.query(query)
        client.unpin()
        assert client.pinned_epoch is None

    def test_unpinned_session_always_reads_current(
            self, serving_scenario, client):
        query = serving_scenario.queries["twitter_api"]
        before = client.query(query)
        client.submit_release(
            release=next_version_release(serving_scenario,
                                         "twitter_api"))
        after = client.query(query)
        assert before.epoch == 0 and after.epoch == 1
        assert {r["id"] for r in after.rows} != \
            {r["id"] for r in before.rows}


class TestReleases:
    def test_declarative_release_is_queryable(self, client):
        response = client.submit_release(
            source="metrics", wrapper="metrics_v1",
            id_attributes=["id"], non_id_attributes=["value"],
            feature_hints={"id": "urn:industrial:google_gadgets/id",
                           "value":
                           "urn:industrial:google_gadgets/title"},
            rows=[{"id": 900, "value": "fresh"}])
        assert response.ok and response.epoch == 1
        assert response.triples_added["S"] > 0

    def test_idempotency_key_replays(self, serving_scenario, client):
        kwargs = dict(
            release=next_version_release(serving_scenario,
                                         "sina_weibo"),
            idempotency_key="release-77")
        first = client.submit_release(**kwargs)
        again = client.submit_release(
            release=next_version_release(serving_scenario,
                                         "sina_weibo"),
            idempotency_key="release-77", request_id="second-try")
        assert not first.replayed
        assert again.replayed
        assert again.epoch == first.epoch == 1
        assert again.triples_added == first.triples_added
        assert again.request_id == "second-try"
        # Only one release actually landed.
        assert client.describe().statistics["releases"] == 1


class TestDescribe:
    def test_describe_reports_serving_state(self, serving_scenario,
                                            client):
        client.query(serving_scenario.queries["twitter_api"],
                     page_size=4)
        description = client.describe()
        assert description.ok and description.epoch == 0
        assert description.statistics["wrappers"] == 5
        assert description.service["stats"]["queries"] == 1
        assert description.service["open_cursors"] == 1
        assert description.service["max_workers"] == 4

    def test_describe_reports_cache_maintenance_stats(
            self, serving_scenario, client):
        client.query(serving_scenario.queries["twitter_api"],
                     page_size=4)
        description = client.describe()
        answer_cache = description.service["answer_cache"]
        for field in ("hit_rate", "patches", "seeds", "fallbacks"):
            assert field in answer_cache
        assert "hit_rate" in description.service["scan_cache"]


class TestBatchEndpoint:
    def test_batch_shares_one_epoch(self, serving_scenario, service):
        from repro.api.protocol import QueryRequest

        requests = [QueryRequest(query=q)
                    for q in serving_scenario.query_texts()]
        responses = service.endpoint.handle_query_batch(requests)
        assert len(responses) == 5
        assert {r.epoch for r in responses} == {0}
        assert all(r.ok for r in responses)
        # One batch, five queries, one read section.
        assert service.stats.batches == 1
        assert service.lock.stats.reads == 1

    def test_batch_rejects_cursors_and_mixed_distinct(
            self, serving_scenario, service):
        from repro.api.protocol import QueryRequest

        query = serving_scenario.queries["twitter_api"]
        responses = service.endpoint.handle_query_batch(
            [QueryRequest(query=query),
             QueryRequest(cursor="c1.abc")])
        assert all(not r.ok for r in responses)
        assert {r.error.code for r in responses} == \
            {"malformed_request"}
        responses = service.endpoint.handle_query_batch(
            [QueryRequest(query=query, distinct=True),
             QueryRequest(query=query, distinct=False)])
        assert {r.error.code for r in responses} == \
            {"malformed_request"}

    def test_batch_pinned_slot_fails_alone(self, serving_scenario,
                                           service):
        from repro.api.protocol import QueryRequest

        query = serving_scenario.queries["twitter_api"]
        responses = service.endpoint.handle_query_batch(
            [QueryRequest(query=query),
             QueryRequest(query=query, epoch=7)])
        assert responses[0].ok
        assert responses[1].error.code == "epoch_superseded"
        assert responses[1].epoch == 0  # the epoch the batch observed


class TestServedAnswerContract:
    """Satellite: failed answers raise their stored, typed error."""

    def test_rows_reraises_stored_error(self, serving_scenario,
                                        service):
        good = serving_scenario.queries["twitter_api"]
        served = service.serve_many([good, BAD_QUERY],
                                    return_exceptions=True)
        assert served[0].ok
        assert not served[1].ok
        with pytest.raises(UnanswerableQueryError):
            served[1].rows
        with pytest.raises(UnanswerableQueryError):
            served[1].require()

    def test_rows_without_relation_raises_answer_failed(self):
        from repro.core.ontology import OntologyFingerprint
        from repro.errors import AnswerFailed
        from repro.service import ServedAnswer

        hollow = ServedAnswer(relation=None, epoch=3,
                              fingerprint=OntologyFingerprint(3, 1))
        assert not hollow.ok
        with pytest.raises(AnswerFailed) as excinfo:
            hollow.rows
        assert "epoch 3" in str(excinfo.value)
