"""Protocol envelopes: codecs, validation and the error taxonomy."""

from __future__ import annotations

import json

import pytest

from repro import errors
from repro.api.protocol import (
    PROTOCOL_VERSION, DescribeResponse, ErrorInfo, QueryRequest,
    QueryResponse, ReleaseRequest, ReleaseResponse, error_code_of,
    exception_for, http_status_of,
)


class TestQueryRequest:
    def test_roundtrip_is_lossless(self):
        request = QueryRequest(query="SELECT ...", distinct=False,
                               epoch=3, page_size=10, timeout=1.5,
                               request_id="r-1")
        assert QueryRequest.from_dict(request.to_dict()) == request

    def test_json_roundtrip(self):
        request = QueryRequest(query="SELECT ...", page_size=2)
        over_wire = json.loads(json.dumps(request.to_dict()))
        assert QueryRequest.from_dict(over_wire) == request

    def test_query_and_cursor_are_exclusive(self):
        with pytest.raises(errors.MalformedRequestError):
            QueryRequest(query="q", cursor="c").validate()
        with pytest.raises(errors.MalformedRequestError):
            QueryRequest().validate()

    def test_bad_fields_rejected(self):
        with pytest.raises(errors.MalformedRequestError):
            QueryRequest.from_dict({"query": "q", "page_size": 0})
        with pytest.raises(errors.MalformedRequestError):
            QueryRequest.from_dict({"query": "q", "epoch": "zero"})
        with pytest.raises(errors.MalformedRequestError):
            QueryRequest.from_dict({"query": "q", "distinct": "yes"})
        with pytest.raises(errors.MalformedRequestError):
            QueryRequest.from_dict({"query": 42})

    def test_programmatic_omq_has_no_wire_form(self):
        from repro.datasets import EXEMPLARY_QUERY
        from repro.query import parse_omq

        parsed = parse_omq(EXEMPLARY_QUERY)
        assert QueryRequest(query=parsed).query_text() \
            == EXEMPLARY_QUERY
        parsed.sparql = None
        with pytest.raises(errors.MalformedRequestError):
            QueryRequest(query=parsed).to_dict()


class TestQueryResponse:
    def test_roundtrip_is_lossless(self):
        response = QueryResponse(
            ok=True, columns=["a", "b"], rows=[{"a": 1, "b": "x"}],
            epoch=2, fingerprint=(2, 12345), cursor="c1.deadbeef",
            page=1, total_rows=7, has_more=True, request_id="r-9",
            elapsed_ms=0.8)
        assert QueryResponse.from_dict(
            json.loads(json.dumps(response.to_dict()))) == response

    def test_error_response_raises_typed(self):
        info = ErrorInfo.of(errors.EpochSuperseded("gone", 1, 2))
        response = QueryResponse(ok=False, error=info)
        with pytest.raises(errors.EpochSuperseded):
            response.raise_for_error()

    def test_in_process_fields_never_serialize(self):
        response = QueryResponse(ok=True, rows=[], columns=[],
                                 relation=object(),
                                 exception=ValueError("x"))
        payload = response.to_dict()
        assert "relation" not in payload
        assert "exception" not in payload


class TestReleaseEnvelopes:
    def test_declarative_roundtrip(self):
        request = ReleaseRequest(
            source="s1", wrapper="w9", id_attributes=("id",),
            non_id_attributes=("v",), feature_hints={"id": "urn:f:id"},
            rows=({"id": 1, "v": 2},), absorbed_concepts=("urn:c:C",),
            idempotency_key="k-1", request_id="r-2")
        assert ReleaseRequest.from_dict(
            json.loads(json.dumps(request.to_dict()))) == request

    def test_typed_release_cannot_cross_the_wire(self):
        request = ReleaseRequest(release=object())
        with pytest.raises(errors.MalformedRequestError):
            request.to_dict()

    def test_validation(self):
        with pytest.raises(errors.MalformedRequestError):
            ReleaseRequest(source="s").validate()
        with pytest.raises(errors.MalformedRequestError):
            ReleaseRequest(source="s", wrapper="w").validate()

    def test_response_roundtrip_and_replay(self):
        response = ReleaseResponse(ok=True, epoch=4,
                                   triples_added={"S": 3, "M": 2},
                                   request_id="a")
        wire = ReleaseResponse.from_dict(
            json.loads(json.dumps(response.to_dict())))
        assert wire == response
        replay = response.replayed_as("b")
        assert replay.replayed and replay.request_id == "b"
        assert replay.epoch == 4


class TestDescribeResponse:
    def test_roundtrip(self):
        response = DescribeResponse(
            ok=True, epoch=1, fingerprint=(1, 99),
            statistics={"concepts": 5},
            service={"stats": {"queries": 2}})
        assert DescribeResponse.from_dict(
            json.loads(json.dumps(response.to_dict()))) == response


class TestErrorTaxonomy:
    def test_every_library_error_maps_to_a_code(self):
        import inspect

        for name, obj in vars(errors).items():
            if inspect.isclass(obj) and issubclass(obj, Exception):
                code = error_code_of(obj("boom"))
                assert code and code != "internal_error", name

    def test_codes_are_stable_and_specific(self):
        assert error_code_of(
            errors.EpochSuperseded("x")) == "epoch_superseded"
        assert error_code_of(
            errors.UnanswerableQueryError("x")) == "unanswerable_query"
        assert error_code_of(
            errors.MalformedQueryError("x")) == "malformed_query"
        assert error_code_of(ValueError("x")) == "internal_error"

    def test_subclasses_inherit_the_nearest_code(self):
        class CustomDrift(errors.EvolutionError):
            pass

        assert error_code_of(CustomDrift("x")) == "evolution_error"

    def test_reconstruction_roundtrip(self):
        original = errors.UnanswerableQueryError("no walk")
        rebuilt = exception_for(ErrorInfo.of(original))
        assert type(rebuilt) is errors.UnanswerableQueryError
        assert str(rebuilt) == "no walk"

    def test_epoch_superseded_keeps_structure_across_the_wire(self):
        """requested/serving survive the JSON roundtrip, so wire
        clients can re-pin deterministically."""
        original = errors.EpochSuperseded("stale", requested=3,
                                          serving=5)
        info = ErrorInfo.from_dict(
            json.loads(json.dumps(ErrorInfo.of(original).to_dict())))
        rebuilt = exception_for(info)
        assert type(rebuilt) is errors.EpochSuperseded
        assert rebuilt.requested == 3 and rebuilt.serving == 5

    def test_unknown_code_reconstructs_as_protocol_error(self):
        info = ErrorInfo(code="from_the_future", kind="X", message="m")
        assert isinstance(exception_for(info), errors.ProtocolError)

    def test_retryable_flags(self):
        assert ErrorInfo.of(errors.EpochSuperseded("x")).retryable
        assert ErrorInfo.of(errors.EpochDrainTimeout("x")).retryable
        assert not ErrorInfo.of(
            errors.UnanswerableQueryError("x")).retryable

    def test_http_statuses(self):
        assert http_status_of("epoch_superseded") == 409
        assert http_status_of("invalid_cursor") == 410
        assert http_status_of("epoch_drain_timeout") == 503
        assert http_status_of("internal_error") == 500
        assert http_status_of("malformed_query") == 400
        assert http_status_of("never_heard_of_it") == 400

    def test_api_version_gate(self):
        from repro.api.protocol import check_api_version

        check_api_version(PROTOCOL_VERSION)
        with pytest.raises(errors.UnsupportedApiVersion):
            check_api_version("v2")
