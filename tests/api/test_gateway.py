"""The HTTP gateway: routes, error mapping, and in-process parity.

The acceptance property of the protocol redesign: the same
:class:`~repro.api.protocol.QueryRequest` served in-process and over
the wire returns byte-identical response payloads (modulo the
``elapsed_ms`` timing field), because both transports call one
:class:`~repro.api.endpoint.ProtocolEndpoint`.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.api import GovernedClient, HttpGateway
from repro.errors import (
    EpochSuperseded, GatewayError, UnanswerableQueryError,
)
from repro.service import build_industrial_service


#: an OMQ over a concept with no mapped wrapper → UnanswerableQueryError
BAD_QUERY = """SELECT ?v1 WHERE {
    VALUES (?v1) { (<urn:industrial:orphan/id>) }
    <urn:industrial:Orphan> G:hasFeature <urn:industrial:orphan/id>
}"""


@pytest.fixture(scope="module")
def serving_scenario():
    from repro.rdf.term import IRI

    scenario = build_industrial_service()
    orphan = scenario.ontology.globals.add_concept(
        IRI("urn:industrial:Orphan"))
    scenario.ontology.globals.add_feature(
        orphan, IRI("urn:industrial:orphan/id"), is_id=True)
    return scenario


@pytest.fixture(scope="module")
def gateway(serving_scenario):
    service = serving_scenario.mdm.serving(max_workers=4)
    with HttpGateway(service) as gw:
        yield gw
    service.close()


@pytest.fixture()
def remote(gateway):
    return GovernedClient(gateway.url)


@pytest.fixture()
def local(serving_scenario):
    return GovernedClient(serving_scenario.mdm.serving(max_workers=4))


def _get(url: str):
    with urllib.request.urlopen(url, timeout=10) as reply:
        return reply.status, json.load(reply)


def _post(url: str, payload) -> tuple[int, dict]:
    body = json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=10) as reply:
            return reply.status, json.load(reply)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


class TestRoutes:
    def test_healthz(self, gateway):
        status, payload = _get(gateway.url + "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert isinstance(payload["epoch"], int)

    def test_describe(self, gateway):
        status, payload = _get(gateway.url + "/v1/describe")
        assert status == 200
        assert payload["ok"]
        assert payload["statistics"]["wrappers"] == 5

    def test_unknown_route_is_404_json(self, gateway):
        status, payload = _post(gateway.url + "/v1/nope", {})
        assert status == 404
        assert payload["error"]["code"] == "not_found"

    def test_method_not_allowed(self, gateway):
        request = urllib.request.Request(
            gateway.url + "/v1/query", method="DELETE")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 405

    def test_bad_json_is_400(self, gateway):
        request = urllib.request.Request(
            gateway.url + "/v1/query", data=b"{not json",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        payload = json.loads(excinfo.value.read().decode())
        assert payload["error"]["code"] == "malformed_request"

    def test_query_error_maps_to_http_status(self, gateway,
                                             serving_scenario):
        status, payload = _post(gateway.url + "/v1/query", {
            "query": serving_scenario.queries["twitter_api"],
            "epoch": 99,
        })
        assert status == 409
        assert payload["error"]["code"] == "epoch_superseded"
        assert payload["error"]["retryable"] is True
        # The structured epochs survive the wire for deterministic
        # client-side re-pinning.
        assert payload["error"]["details"]["requested"] == 99
        assert isinstance(payload["error"]["details"]["serving"], int)

    def test_describe_timeout_param(self, gateway):
        status, payload = _get(gateway.url + "/v1/describe?timeout=5")
        assert status == 200 and payload["ok"]
        request = urllib.request.Request(
            gateway.url + "/v1/describe?timeout=soon")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_batch_route(self, gateway, serving_scenario):
        queries = serving_scenario.query_texts()
        status, payload = _post(gateway.url + "/v1/query", {
            "batch": [{"query": q} for q in queries]})
        assert status == 200
        responses = payload["responses"]
        assert len(responses) == len(queries)
        assert all(r["ok"] for r in responses)
        assert len({r["epoch"] for r in responses}) == 1


class TestRemoteClient:
    def test_typed_errors_cross_the_wire(self, remote):
        with pytest.raises(UnanswerableQueryError):
            remote.query(BAD_QUERY)

    def test_pagination_over_the_wire(self, remote, serving_scenario):
        query = serving_scenario.queries["google_calendar"]
        pages = list(remote.stream(query, page_size=9))
        assert [len(p.rows) for p in pages] == [9, 9, 6]
        assert {p.epoch for p in pages} == {pages[0].epoch}

    def test_gateway_error_when_unreachable(self):
        client = GovernedClient("http://127.0.0.1:9")
        with pytest.raises(GatewayError):
            client.describe()


class TestParity:
    """Same request, both transports, identical payloads."""

    @staticmethod
    def _payloads(local, remote, **kwargs):
        lhs = local.query(**kwargs).to_dict()
        rhs = remote.query(**kwargs).to_dict()
        for payload in (lhs, rhs):
            payload.pop("elapsed_ms")
        return (json.dumps(lhs, sort_keys=True),
                json.dumps(rhs, sort_keys=True))

    def test_full_answer_parity(self, local, remote, serving_scenario):
        for slug, query in serving_scenario.queries.items():
            lhs, rhs = self._payloads(local, remote, query=query,
                                      request_id=f"parity-{slug}")
            assert lhs == rhs, slug

    def test_error_parity(self, local, remote):
        lhs = local.transport.query(
            _request(BAD_QUERY, request_id="parity-err")).to_dict()
        rhs = remote.transport.query(
            _request(BAD_QUERY, request_id="parity-err")).to_dict()
        for payload in (lhs, rhs):
            payload.pop("elapsed_ms")
        assert json.dumps(lhs, sort_keys=True) == \
            json.dumps(rhs, sort_keys=True)

    def test_paginated_parity_modulo_cursor(self, local, remote,
                                            serving_scenario):
        query = serving_scenario.queries["amazon_mws"]
        lhs = local.query(query, page_size=10).to_dict()
        rhs = remote.query(query, page_size=10).to_dict()
        # Cursor tokens are freshly minted per request; everything else
        # — including the page rows — must match bytewise.
        for payload in (lhs, rhs):
            payload.pop("elapsed_ms")
            assert payload.pop("cursor")
        assert json.dumps(lhs, sort_keys=True) == \
            json.dumps(rhs, sort_keys=True)

    def test_shared_state_across_transports(self, local, remote,
                                            serving_scenario):
        """One endpoint: a cursor opened in-process continues over the
        wire, and a release submitted over the wire supersedes an
        in-process pin — the 'same epoch lock and scan cache' claim."""
        query = serving_scenario.queries["sina_weibo"]
        first = local.query(query, page_size=10)
        second = remote.fetch_page(first.cursor)
        assert second.page == 1 and second.epoch == first.epoch

        local.pin()
        # A wire-safe declarative release: same shape as
        # next_version_release, but inline rows instead of a typed
        # wrapper object (those cannot cross the wire).
        remote.submit_release(
            source="sina_weibo", wrapper="sina_weibo_v2",
            id_attributes=["id"],
            non_id_attributes=["body", "reposts"],
            feature_hints={
                "id": "urn:industrial:sina_weibo/id",
                "body": "urn:industrial:sina_weibo/body",
                "reposts": "urn:industrial:sina_weibo/reposts"},
            rows=[{"id": 24 + i, "body": f"b{i}", "reposts": i}
                  for i in range(24)])
        with pytest.raises(EpochSuperseded):
            local.query(query)


def _request(query: str, request_id: str):
    from repro.api.protocol import QueryRequest

    return QueryRequest(query=query, request_id=request_id)
