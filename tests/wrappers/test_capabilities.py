"""Capability-protocol tests: native pushdown, declines, validated
fallback, legacy wrappers."""

import pytest

from repro.errors import WrapperSchemaMismatchError
from repro.sources.document_store import DocumentStore
from repro.sources.rest_api import ApiVersion, Endpoint, FieldSpec
from repro.wrappers.base import (
    IdFilter, StaticWrapper, Wrapper, WrapperCapabilities,
)
from repro.wrappers.mongo import MongoWrapper
from repro.wrappers.rest import RestWrapper


class LegacyWrapper(Wrapper):
    """Third-party style wrapper predating the capability protocol."""

    def __init__(self):
        super().__init__("legacy", "DL", ["id"], ["a", "b"])
        self.calls = 0

    def fetch_rows(self):  # old zero-argument signature
        self.calls += 1
        return [{"id": 1, "a": 10, "b": 100},
                {"id": 2, "a": 20, "b": 200}]


class DecliningWrapper(Wrapper):
    """New signature but declares no capabilities — must be handed the
    full fetch and trimmed by the base."""

    def __init__(self):
        super().__init__("decline", "DD", ["id"], ["a"])
        self.seen = []

    def fetch_rows(self, columns=None, id_filter=None):
        self.seen.append((columns, id_filter))
        return [{"id": 1, "a": 10}, {"id": 2, "a": 20}]


class LyingWrapper(Wrapper):
    """Declares projection capability but ignores the column request."""

    def __init__(self):
        super().__init__("liar", "DX", ["id"], ["a", "b"])

    def capabilities(self):
        return WrapperCapabilities(projection=True, id_filter=True)

    def fetch_rows(self, columns=None, id_filter=None):
        return [{"id": 1, "a": 2, "b": 3}]  # always full rows


class TestValidatedFallback:
    def test_legacy_wrapper_still_projects_and_filters(self):
        w = LegacyWrapper()
        rows = w.fetch(columns=["id", "a"],
                       id_filter=IdFilter("id", {2}))
        assert rows == [{"id": 2, "a": 20}]
        assert w.calls == 1

    def test_declining_wrapper_never_sees_pushdowns(self):
        w = DecliningWrapper()
        rows = w.fetch(columns=["a"], id_filter=IdFilter("id", {1}))
        assert rows == [{"a": 10}]
        assert w.seen == [(None, None)]

    def test_lying_wrapper_output_is_trimmed(self):
        w = LyingWrapper()
        assert w.fetch(columns=["id"]) == [{"id": 1}]

    def test_missing_requested_attribute_rejected(self):
        w = StaticWrapper("w", "D", ["a"], [], [{"a": 1}])
        w.replace_rows([{"b": 1}])
        with pytest.raises(WrapperSchemaMismatchError):
            w.fetch()

    def test_unknown_column_rejected(self):
        w = StaticWrapper("w", "D", ["a"], [], [{"a": 1}])
        with pytest.raises(Exception, match="no attribute"):
            w.fetch(columns=["ghost"])

    def test_unknown_filter_attribute_rejected(self):
        w = StaticWrapper("w", "D", ["a"], [], [{"a": 1}])
        with pytest.raises(Exception, match="no attribute"):
            w.fetch(id_filter=IdFilter("ghost", {1}))


class TestRelationSubsets:
    def test_qualified_subset_relation(self):
        w = StaticWrapper("w", "D9", ["a"], ["b", "c"],
                          [{"a": 1, "b": 2, "c": 3}])
        rel = w.relation(qualified=True, columns=["a", "c"])
        assert set(rel.schema.attribute_names) == {"D9/a", "D9/c"}
        assert rel.rows == [{"D9/a": 1, "D9/c": 3}]
        assert rel.schema.attribute("D9/a").is_id

    def test_local_subset_relation_with_filter(self):
        w = StaticWrapper("w", "D", ["a"], ["b"],
                          [{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        rel = w.relation(columns=["a"], id_filter=IdFilter("a", {3}))
        assert rel.rows == [{"a": 3}]


class TestStaticWrapperPushdown:
    def test_capabilities_declared(self):
        w = StaticWrapper("w", "D", ["a"], [], [])
        caps = w.capabilities()
        assert caps.projection and caps.id_filter
        assert caps.notation() == "projection+id_filter"

    def test_estimate_and_data_version(self):
        w = StaticWrapper("w", "D", ["a"], [], [{"a": 1}, {"a": 2}])
        assert w.estimate_rows() == 2
        v0 = w.data_version()
        w.replace_rows([{"a": 9}])
        assert w.data_version() == v0 + 1

    def test_projection_rename_map_with_columns(self):
        w = StaticWrapper("w3", "D3", ["TargetApp"], ["tool"],
                          [{"appId": 7, "tool": "t"}],
                          projection={"TargetApp": "appId"})
        assert w.fetch_rows(columns=["TargetApp"]) == [{"TargetApp": 7}]

    def test_filter_attribute_outside_requested_columns(self):
        # The filter column must be fetched (and then trimmed) even
        # when the caller did not request it — including for wrappers
        # with native capabilities and rename projections.
        w = StaticWrapper("w", "S", ["id"], ["a"],
                          [{"raw_id": 1, "raw_a": 10},
                           {"raw_id": 2, "raw_a": 20}],
                          projection={"id": "raw_id", "a": "raw_a"})
        assert w.fetch(columns=["a"],
                       id_filter=IdFilter("id", {1})) == [{"a": 10}]

    def test_narrow_fetch_still_detects_drift(self):
        # Projection pushdown must not paper schema drift over as None.
        w = StaticWrapper("w", "S", ["id"], ["a"], [{"id": 1}])
        with pytest.raises(WrapperSchemaMismatchError):
            w.fetch(columns=["id", "a"])


class TestMongoPushdown:
    def wrapper(self):
        store = DocumentStore()
        store.collection("vod").insert_many([
            {"monitorId": i, "waitTime": i, "watchTime": 4}
            for i in range(1, 5)])
        return MongoWrapper(
            "w1", "D1", store, "vod",
            [{"$project": {"_id": 0, "VoDmonitorId": "$monitorId",
                           "lagRatio": {"$divide": ["$waitTime",
                                                    "$watchTime"]}}}],
            id_attributes=["VoDmonitorId"],
            non_id_attributes=["lagRatio"])

    def test_id_filter_as_match_stage(self):
        w = self.wrapper()
        rows = w.fetch(id_filter=IdFilter("VoDmonitorId", {2, 3}))
        assert sorted(r["VoDmonitorId"] for r in rows) == [2, 3]

    def test_projection_as_project_stage(self):
        w = self.wrapper()
        assert w.fetch(columns=["VoDmonitorId"]) == [
            {"VoDmonitorId": i} for i in range(1, 5)]

    def test_pushdown_equals_full_fetch(self):
        w = self.wrapper()
        full = w.fetch()
        narrow = w.fetch(columns=["VoDmonitorId", "lagRatio"])
        assert full == narrow

    def test_estimate_and_data_version_track_collection(self):
        w = self.wrapper()
        assert w.estimate_rows() == 4
        v0 = w.data_version()
        w.store.get_collection("vod").insert_one(
            {"monitorId": 9, "waitTime": 1, "watchTime": 2})
        assert w.data_version() != v0
        assert w.estimate_rows() == 5


class TestRestPushdown:
    def endpoint(self):
        ep = Endpoint("GET /m")
        ep.add_version(ApiVersion("1", [
            FieldSpec("deviceId", generator=lambda rng, i: i),
            FieldSpec("wait", generator=lambda rng, i: i + 1),
            FieldSpec("watch", generator=lambda rng, i: (i + 1) * 2),
            FieldSpec("noise", generator=lambda rng, i: rng.random()),
        ]))
        return ep

    def wrapper(self, **kwargs):
        defaults = dict(
            id_attributes=["id"], non_id_attributes=["ratio"],
            field_map={"id": "deviceId"},
            derived={"ratio": lambda row: row["wait"] / row["watch"]},
            count=4)
        defaults.update(kwargs)
        return RestWrapper("w", "D", self.endpoint(), "1", **defaults)

    def test_partial_response_same_values_as_full(self):
        w = self.wrapper()
        assert w.fetch(columns=["id"]) == [
            {"id": r["id"]} for r in w.fetch()]

    def test_declared_derived_inputs_keep_pruning(self):
        w = self.wrapper(derived_inputs={"ratio": ["wait", "watch"]})
        fields, paths = w._needed_paths(("id", "ratio"))
        assert fields == ["deviceId", "wait", "watch"]  # noise pruned
        assert w.fetch() == self.wrapper().fetch()

    def test_opaque_derivation_falls_back_to_full_payload(self):
        w = self.wrapper()
        fields, paths = w._needed_paths(("ratio",))
        assert fields is None and paths is None

    def test_id_filter_skips_rows_early(self):
        w = self.wrapper()
        rows = w.fetch(id_filter=IdFilter("id", {2}))
        assert [r["id"] for r in rows] == [2]

    def test_id_filter_applies_when_column_not_requested(self):
        w = self.wrapper()
        full = w.fetch()
        rows = w.fetch(columns=["ratio"], id_filter=IdFilter("id", {2}))
        assert rows == [{"ratio": r["ratio"]}
                        for r in full if r["id"] == 2]

    def test_estimate_and_deterministic_data_version(self):
        w = self.wrapper()
        assert w.estimate_rows() == 4
        assert w.data_version() == self.wrapper().data_version()
        assert w.data_version() != self.wrapper(count=5).data_version()


class TestEndpointFieldSelection:
    def test_fields_trim_without_changing_values(self):
        ep = Endpoint("GET /x")
        ep.add_version(ApiVersion("1", [
            FieldSpec("a", "int"), FieldSpec("b", "int")]))
        full = ep.fetch("1", count=3, seed=7)
        partial = ep.fetch("1", count=3, seed=7, fields=["b"])
        assert [d["b"] for d in partial] == [d["b"] for d in full]
        assert all(set(d) == {"b"} for d in partial)


class TestFlattenPruning:
    def test_paths_prune_irrelevant_subtrees(self):
        from repro.wrappers.json_flatten import flatten_document
        doc = {"keep": {"x": 1}, "drop": {"huge": list(range(5))}}
        rows = flatten_document(doc, paths=["keep.x"])
        assert rows == [{"keep.x": 1}]

    def test_unwind_multiplicity_preserved_under_pruning(self):
        from repro.wrappers.json_flatten import flatten_document
        doc = {"id": 1, "items": [{"v": "a"}, {"v": "b"}]}
        rows = flatten_document(doc, unwind=["items"], paths=["id"])
        assert len(rows) == 2  # same fan-out as the unpruned walk
        assert all(r["id"] == 1 for r in rows)
