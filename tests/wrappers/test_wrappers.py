"""Unit tests for the wrapper layer."""

import pytest

from repro.errors import WrapperError, WrapperSchemaMismatchError
from repro.sources.document_store import DocumentStore
from repro.sources.rest_api import ApiVersion, Endpoint, FieldSpec
from repro.wrappers.base import StaticWrapper, qualify
from repro.wrappers.json_flatten import flatten_document, flatten_documents
from repro.wrappers.mongo import MongoWrapper
from repro.wrappers.rest import RestWrapper


class TestQualify:
    def test_format(self):
        assert qualify("D1", "lagRatio") == "D1/lagRatio"


class TestStaticWrapper:
    def test_schema_and_notation(self):
        w = StaticWrapper("w3", "D3", ["a"], ["b"], [{"a": 1, "b": 2}])
        assert w.notation() == "w3({a}, {b})"
        assert w.schema.source == "D3"

    def test_projection_renames(self):
        w = StaticWrapper("w3", "D3", ["TargetApp"], [],
                          [{"appId": 7}],
                          projection={"TargetApp": "appId"})
        assert w.fetch_rows() == [{"TargetApp": 7}]

    def test_relation_validates_schema(self):
        w = StaticWrapper("w", "D", ["a"], [], [{"a": 1}])
        w.replace_rows([{"b": 1}])
        with pytest.raises(WrapperSchemaMismatchError):
            w.relation()

    def test_qualified_relation(self):
        w = StaticWrapper("w", "D9", ["a"], ["b"], [{"a": 1, "b": 2}])
        rel = w.relation(qualified=True)
        assert set(rel.schema.attribute_names) == {"D9/a", "D9/b"}
        assert rel.rows[0] == {"D9/a": 1, "D9/b": 2}

    def test_qualified_schema_marks_ids(self):
        w = StaticWrapper("w", "D9", ["a"], ["b"], [])
        assert w.qualified_schema.attribute("D9/a").is_id
        assert not w.qualified_schema.attribute("D9/b").is_id


class TestMongoWrapper:
    def test_paper_wrapper_w1(self):
        store = DocumentStore()
        store.collection("vod").insert_many([
            {"monitorId": 12, "waitTime": 3, "watchTime": 4}])
        w1 = MongoWrapper(
            "w1", "D1", store, "vod",
            [{"$project": {"_id": 0, "VoDmonitorId": "$monitorId",
                           "lagRatio": {"$divide": ["$waitTime",
                                                    "$watchTime"]}}}],
            id_attributes=["VoDmonitorId"],
            non_id_attributes=["lagRatio"])
        rel = w1.relation()
        assert rel.rows == [{"VoDmonitorId": 12, "lagRatio": 0.75}]

    def test_extra_pipeline_outputs_filtered(self):
        store = DocumentStore()
        store.collection("c").insert_many([{"a": 1, "b": 2}])
        w = MongoWrapper("w", "D", store, "c",
                         [{"$project": {"a": 1, "b": 1}}],
                         id_attributes=["a"], non_id_attributes=[])
        assert w.fetch_rows() == [{"a": 1}]


class TestFlatten:
    def test_nested_objects(self):
        rows = flatten_document({"a": {"b": {"c": 1}}, "d": 2})
        assert rows == [{"a.b.c": 1, "d": 2}]

    def test_scalar_arrays_joined(self):
        rows = flatten_document({"tags": [1, 2, 3]})
        assert rows == [{"tags": "1,2,3"}]

    def test_object_array_unwound(self):
        rows = flatten_document(
            {"id": 1, "items": [{"v": "a"}, {"v": "b"}]},
            unwind=["items"])
        assert rows == [{"id": 1, "items.v": "a"},
                        {"id": 1, "items.v": "b"}]

    def test_object_array_not_unwound_keeps_count(self):
        rows = flatten_document({"items": [{"v": 1}, {"v": 2}]})
        assert rows == [{"items": 2}]

    def test_many_documents(self):
        rows = flatten_documents([{"a": 1}, {"a": 2}])
        assert len(rows) == 2


class TestRestWrapper:
    def endpoint(self):
        ep = Endpoint("GET /m")
        ep.add_version(ApiVersion("1", [
            FieldSpec("deviceId", generator=lambda rng, i: i),
            FieldSpec("wait", generator=lambda rng, i: i + 1),
            FieldSpec("watch", generator=lambda rng, i: (i + 1) * 2),
        ]))
        return ep

    def test_field_map_and_derived(self):
        w = RestWrapper(
            "w", "D", self.endpoint(), "1",
            id_attributes=["id"], non_id_attributes=["ratio"],
            field_map={"id": "deviceId"},
            derived={"ratio": lambda row: row["wait"] / row["watch"]},
            count=3)
        rows = w.fetch_rows()
        assert rows[0] == {"id": 0, "ratio": 0.5}
        assert len(rows) == 3

    def test_unmapped_attribute_rejected_at_init(self):
        with pytest.raises(WrapperError, match="neither"):
            RestWrapper("w", "D", self.endpoint(), "1",
                        id_attributes=["id"], non_id_attributes=[],
                        field_map={})

    def test_schema_drift_detected(self):
        w = RestWrapper("w", "D", self.endpoint(), "1",
                        id_attributes=["id"], non_id_attributes=[],
                        field_map={"id": "goneField"}, count=1)
        with pytest.raises(WrapperError, match="schema drift"):
            w.fetch_rows()

    def test_deterministic_rows(self):
        make = lambda: RestWrapper(  # noqa: E731 - test brevity
            "w", "D", self.endpoint(), "1",
            id_attributes=["id"], non_id_attributes=[],
            field_map={"id": "deviceId"}, count=4, seed=3)
        assert make().fetch_rows() == make().fetch_rows()
