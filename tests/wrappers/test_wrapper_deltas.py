"""Wrapper-level CDC: exact deltas, capability gating, and the resync
(``None``) contract every cursor can fall back on."""

from repro.sources.document_store import DocumentStore
from repro.sources.rest_api import ApiVersion, Endpoint, FieldSpec
from repro.wrappers import MongoWrapper, RestWrapper, StaticWrapper


def apply_deltas(base_rows, deltas):
    """Fold signed changes into a bag and return it as a sorted list."""
    bag: dict[tuple, int] = {}
    def key(row):
        return tuple(sorted(row.items()))
    for row in base_rows:
        bag[key(row)] = bag.get(key(row), 0) + 1
    for sign, row in deltas.changes:
        bag[key(row)] = bag.get(key(row), 0) + sign
    out = []
    for k, count in bag.items():
        assert count >= 0, f"negative multiplicity for {k}"
        out.extend([dict(k)] * count)
    return sorted(out, key=repr)


class TestStaticWrapperDeltas:
    def make(self):
        return StaticWrapper(
            "w", "D", id_attributes=["id"], non_id_attributes=["v"],
            rows=[{"id": 1, "v": "a"}, {"id": 2, "v": "b"}])

    def test_append_update_remove_are_exact(self):
        w = self.make()
        before = w.fetch_rows()
        cursor = w.delta_cursor()
        w.append_rows([{"id": 3, "v": "c"}])
        w.update_rows(lambda r: r["id"] == 1, {"v": "a2"})
        w.remove_rows(lambda r: r["id"] == 2)
        deltas = w.fetch_deltas(cursor)
        assert deltas is not None
        assert deltas.cursor == w.delta_cursor()
        assert deltas.data_version == w.data_version()
        # replaying the log lands exactly on the current relation
        assert apply_deltas(before, deltas) == \
            sorted(w.fetch_rows(), key=repr)

    def test_update_is_retract_then_assert(self):
        w = self.make()
        cursor = w.delta_cursor()
        w.update_rows(lambda r: r["id"] == 1, {"v": "a2"})
        deltas = w.fetch_deltas(cursor)
        assert [(s, r["v"]) for s, r in deltas.changes] == \
            [(-1, "a"), (+1, "a2")]

    def test_projection_applies_to_delta_rows(self):
        w = StaticWrapper(
            "w", "D", id_attributes=["TargetApp"], non_id_attributes=[],
            rows=[{"appId": 7}], projection={"TargetApp": "appId"})
        cursor = w.delta_cursor()
        w.append_rows([{"appId": 8}])
        deltas = w.fetch_deltas(cursor)
        assert deltas.changes == ((+1, {"TargetApp": 8}),)

    def test_replace_rows_truncates_the_log(self):
        w = self.make()
        cursor = w.delta_cursor()
        w.replace_rows([{"id": 9, "v": "z"}])
        assert w.fetch_deltas(cursor) is None  # full resync required
        # a cursor taken after the swap works again
        fresh = w.delta_cursor()
        w.append_rows([{"id": 10, "v": "y"}])
        assert w.fetch_deltas(fresh) is not None

    def test_bounded_log_forces_resync(self):
        w = self.make()
        w.CHANGE_LOG_LIMIT = 4
        cursor = w.delta_cursor()
        for i in range(10):
            w.append_rows([{"id": 100 + i, "v": "x"}])
        assert w.fetch_deltas(cursor) is None

    def test_bogus_cursor_is_resync_not_error(self):
        w = self.make()
        assert w.fetch_deltas("not-a-cursor") is None
        assert w.fetch_deltas(w.data_version() + 5) is None
        assert w.fetch_deltas(True) is None  # bool is not a cursor

    def test_noop_mutations_produce_no_changes(self):
        w = self.make()
        cursor = w.delta_cursor()
        assert w.append_rows([]) == 0
        assert w.update_rows(lambda r: False, {"v": "q"}) == 0
        assert w.remove_rows(lambda r: False) == 0
        deltas = w.fetch_deltas(cursor)
        assert deltas.changes == ()


class TestMongoWrapperDeltas:
    def make(self, pipeline=None):
        store = DocumentStore()
        vod = store.collection("vod")
        vod.insert_many([
            {"monitorId": 1, "waitTime": 1.0, "watchTime": 4.0},
            {"monitorId": 2, "waitTime": 2.0, "watchTime": 4.0},
        ])
        wrapper = MongoWrapper(
            "w1", "D1", store=store, collection="vod",
            pipeline=pipeline or [{"$project": {
                "_id": 0,
                "VoDmonitorId": "$monitorId",
                "lagRatio": {"$divide": ["$waitTime", "$watchTime"]},
            }}],
            id_attributes=["VoDmonitorId"],
            non_id_attributes=["lagRatio"])
        return store, vod, wrapper

    def test_per_document_pipeline_supports_deltas(self):
        _, _, wrapper = self.make()
        assert wrapper.supports_deltas()

    def test_blocking_pipeline_refuses_deltas(self):
        _, _, wrapper = self.make(pipeline=[
            {"$group": {"_id": "$monitorId"}}])
        assert not wrapper.supports_deltas()
        assert wrapper.fetch_deltas(0) is None

    def test_changes_run_through_the_pipeline(self):
        _, vod, wrapper = self.make()
        cursor = wrapper.delta_cursor()
        vod.insert_one({"monitorId": 3, "waitTime": 3.0,
                        "watchTime": 6.0})
        vod.update_many({"monitorId": 1}, {"$set": {"waitTime": 2.0}})
        vod.delete_many({"monitorId": 2})
        before = [{"VoDmonitorId": 1, "lagRatio": 0.25},
                  {"VoDmonitorId": 2, "lagRatio": 0.5}]
        deltas = wrapper.fetch_deltas(cursor)
        assert deltas is not None
        assert apply_deltas(before, deltas) == \
            sorted(wrapper.fetch_rows(), key=repr)

    def test_truncated_collection_log_forces_resync(self):
        store = DocumentStore()
        vod = store.collection("vod")
        vod._change_log_limit = 2
        wrapper = MongoWrapper(
            "w1", "D1", store=store, collection="vod",
            pipeline=[{"$project": {"_id": 0, "id": "$monitorId"}}],
            id_attributes=["id"], non_id_attributes=[])
        cursor = wrapper.delta_cursor()
        for i in range(5):
            vod.insert_one({"monitorId": i})
        assert wrapper.fetch_deltas(cursor) is None


class TestRestWrapperDeltas:
    def make(self, count=3):
        endpoint = Endpoint("GET /m")
        endpoint.add_version(ApiVersion("1", [
            FieldSpec("deviceId", generator=lambda rng, i: i),
            FieldSpec("wait", generator=lambda rng, i: float(i + 1)),
            FieldSpec("watch",
                      generator=lambda rng, i: float((i + 1) * 2)),
        ]))
        wrapper = RestWrapper(
            "w2", "D2", endpoint, "1",
            id_attributes=["id"], non_id_attributes=["ratio"],
            field_map={"id": "deviceId"},
            derived={"ratio": lambda row: row["wait"] / row["watch"]},
            derived_inputs={"ratio": ["wait", "watch"]},
            count=count)
        return endpoint, wrapper

    def test_live_overlay_deltas(self):
        endpoint, wrapper = self.make()
        before = wrapper.fetch_rows()
        cursor = wrapper.delta_cursor()
        endpoint.push_documents("1", [
            {"deviceId": 50, "wait": 1.0, "watch": 2.0}])
        endpoint.update_documents("1", {"deviceId": 50}, {"wait": 0.5})
        deltas = wrapper.fetch_deltas(cursor)
        assert deltas is not None
        assert apply_deltas(before, deltas) == \
            sorted(wrapper.fetch_rows(), key=repr)
        # the derivation ran over the changed documents too
        assert deltas.changes[-1][1]["ratio"] == 0.25

    def test_base_token_rotation_forces_resync(self):
        endpoint, wrapper = self.make()
        cursor = wrapper.delta_cursor()
        # regenerating the payload invalidates every generated row:
        # no per-row log can describe that, so the cursor dies
        endpoint.version("1").update_field("wait", field_type="int")
        assert wrapper.fetch_deltas(cursor) is None
        assert wrapper.fetch_deltas(wrapper.delta_cursor()) is not None

    def test_malformed_cursor_is_resync(self):
        _, wrapper = self.make()
        assert wrapper.fetch_deltas(7) is None
        assert wrapper.fetch_deltas(("bad", "pair", 3)) is None
