"""Unit tests for the BDIOntology facade (using the SUPERSEDE fixture)."""

import pytest

from repro.core.vocabulary import wrapper_uri
from repro.errors import OntologyError, UnknownWrapperError
from repro.rdf.namespace import SC, SUP
from repro.rdf.namespace import DUV


class TestOntologyQueries:
    def test_id_features_of(self, ontology):
        assert ontology.id_features_of(SUP.Monitor) == [SUP.monitorId]

    def test_id_features_empty_for_event_concept(self, ontology):
        assert ontology.id_features_of(SUP.InfoMonitor) == []

    def test_wrappers_providing(self, ontology):
        providers = ontology.wrappers_providing(SUP.Monitor,
                                                SUP.monitorId)
        assert providers == [wrapper_uri("w1"), wrapper_uri("w3")]

    def test_wrappers_providing_lag_ratio(self, ontology):
        providers = ontology.wrappers_providing(SUP.InfoMonitor,
                                                SUP.lagRatio)
        assert providers == [wrapper_uri("w1")]

    def test_edge_providers_directed(self, ontology):
        forward = ontology.edge_providers(SC.SoftwareApplication,
                                          SUP.Monitor)
        backward = ontology.edge_providers(SUP.Monitor,
                                           SC.SoftwareApplication)
        assert forward == [wrapper_uri("w3")]
        assert backward == []

    def test_attribute_providing(self, ontology):
        attr = ontology.attribute_providing(wrapper_uri("w1"),
                                            SUP.monitorId)
        assert str(attr).endswith("D1/VoDmonitorId")

    def test_attribute_providing_missing(self, ontology):
        assert ontology.attribute_providing(wrapper_uri("w2"),
                                            SUP.monitorId) is None

    def test_feature_of_attribute(self, ontology):
        attr = ontology.attribute_providing(wrapper_uri("w1"),
                                            SUP.lagRatio)
        assert ontology.feature_of_attribute(attr) == SUP.lagRatio

    def test_lav_subgraph(self, ontology):
        lav = ontology.lav_subgraph(wrapper_uri("w1"))
        assert lav.contains(SUP.Monitor, SUP.generatesQoS,
                            SUP.InfoMonitor)

    def test_lav_subgraph_missing(self, ontology):
        with pytest.raises(OntologyError):
            ontology.lav_subgraph(wrapper_uri("ghost"))


class TestSchemas:
    def test_wrapper_relation_schema(self, ontology):
        schema = ontology.wrapper_relation_schema("w1")
        assert schema.notation() == "w1({D1/VoDmonitorId}, {D1/lagRatio})"

    def test_w3_all_ids(self, ontology):
        schema = ontology.wrapper_relation_schema("w3")
        assert schema.non_id_names == frozenset()
        assert len(schema.id_names) == 3

    def test_unknown_wrapper(self, ontology):
        with pytest.raises(UnknownWrapperError):
            ontology.wrapper_relation_schema("ghost")

    def test_wrapper_names(self, ontology):
        assert ontology.wrapper_names() == ["w1", "w2", "w3"]


class TestPhysicalBinding:
    def test_data_provider(self, ontology):
        rel = ontology.data_provider("w1")
        assert len(rel) == 3
        assert "D1/lagRatio" in rel.schema.attribute_names

    def test_unbound_wrapper(self, ontology):
        with pytest.raises(UnknownWrapperError):
            ontology.data_provider("ghost")

    def test_has_physical_wrapper(self, ontology):
        assert ontology.has_physical_wrapper("w2")
        assert not ontology.has_physical_wrapper("nope")


class TestStatsAndValidation:
    def test_triple_counts_keys(self, ontology):
        counts = ontology.triple_counts()
        assert set(counts) == {"G", "S", "M", "lav_graphs", "total"}
        assert counts["total"] == (counts["G"] + counts["S"] +
                                   counts["M"] + counts["lav_graphs"])

    def test_supersede_validates_clean(self, ontology):
        assert ontology.validate() == []

    def test_evolved_scenario_validates_clean(self, evolved_scenario):
        assert evolved_scenario.ontology.validate() == []

    def test_user_feedback_concept_present(self, ontology):
        assert ontology.globals.is_concept(DUV.UserFeedback)
