"""Unit tests for releases and Algorithm 1."""

import pytest

from repro.core.ontology import BDIOntology
from repro.core.release import Release, new_release
from repro.core.vocabulary import (
    attribute_uri, mapping_graph_uri, source_uri, wrapper_uri,
)
from repro.errors import ReleaseError
from repro.rdf.graph import Graph
from repro.rdf.namespace import G as G_NS, OWL, RDF, S as S_NS
from repro.rdf.term import IRI

CONCEPT = IRI("http://x/Monitor")
FEATURE_ID = IRI("http://x/monitorId")
FEATURE_V = IRI("http://x/lag")


@pytest.fixture()
def ontology():
    t = BDIOntology()
    t.globals.add_concept(CONCEPT)
    t.globals.add_feature(CONCEPT, FEATURE_ID, is_id=True)
    t.globals.add_feature(CONCEPT, FEATURE_V)
    return t


def release(wrapper="w1", source="D1", extra=None) -> Release:
    sub = Graph()
    sub.add((CONCEPT, G_NS.hasFeature, FEATURE_ID))
    sub.add((CONCEPT, G_NS.hasFeature, FEATURE_V))
    mapping = {"mid": FEATURE_ID, "lag": FEATURE_V}
    if extra:
        mapping.update(extra)
    return Release(
        wrapper_name=wrapper, source_name=source,
        id_attributes=("mid",), non_id_attributes=("lag",),
        subgraph=sub, attribute_to_feature=mapping)


class TestValidation:
    def test_valid_release_passes(self, ontology):
        release().validate(ontology)

    def test_unmapped_attribute_rejected(self, ontology):
        r = release()
        del r.attribute_to_feature["lag"]
        with pytest.raises(ReleaseError, match="no feature mapping"):
            r.validate(ontology)

    def test_unknown_mapped_attribute_rejected(self, ontology):
        r = release(extra={"ghost": FEATURE_V})
        with pytest.raises(ReleaseError, match="unknown"):
            r.validate(ontology)

    def test_feature_outside_subgraph_rejected(self, ontology):
        other = IRI("http://x/other")
        ontology.globals.add_feature(CONCEPT, other)
        r = release()
        r.attribute_to_feature["lag"] = other
        with pytest.raises(ReleaseError, match="not a vertex"):
            r.validate(ontology)

    def test_subgraph_must_subset_global(self, ontology):
        r = release()
        r.subgraph.add((CONCEPT, IRI("http://x/ghostEdge"), CONCEPT))
        with pytest.raises(ReleaseError, match="not part"):
            r.validate(ontology)

    def test_unregistered_feature_rejected(self, ontology):
        ghost = IRI("http://x/ghostFeature")
        r = release()
        r.subgraph.add((CONCEPT, G_NS.hasFeature, ghost))
        r.attribute_to_feature["lag"] = ghost
        with pytest.raises(ReleaseError, match="not a registered"):
            r.validate(ontology)


class TestAlgorithm1:
    def test_registers_everything(self, ontology):
        new_release(ontology, release())
        assert ontology.s.contains(source_uri("D1"), RDF.type,
                                   S_NS.DataSource)
        assert ontology.s.contains(wrapper_uri("w1"), RDF.type,
                                   S_NS.Wrapper)
        assert ontology.s.contains(source_uri("D1"), S_NS.hasWrapper,
                                   wrapper_uri("w1"))
        assert ontology.s.contains(wrapper_uri("w1"), S_NS.hasAttribute,
                                   attribute_uri("D1", "lag"))
        from repro.rdf.namespace import M as M_NS
        assert ontology.m.contains(wrapper_uri("w1"), M_NS.mapping,
                                   mapping_graph_uri("w1"))
        assert ontology.m.contains(attribute_uri("D1", "lag"),
                                   OWL.sameAs, FEATURE_V)

    def test_mapping_named_graph_stored(self, ontology):
        new_release(ontology, release())
        lav = ontology.lav_subgraph(wrapper_uri("w1"))
        assert lav.contains(CONCEPT, G_NS.hasFeature, FEATURE_V)

    def test_idempotent(self, ontology):
        new_release(ontology, release())
        counts = ontology.triple_counts()
        delta = new_release(ontology, release())
        assert ontology.triple_counts() == counts
        assert all(v == 0 for v in delta.values())

    def test_attribute_reuse_within_source(self, ontology):
        new_release(ontology, release("w1"))
        before = len(ontology.sources.attributes())
        new_release(ontology, release("w4"))  # same source, same attrs
        assert len(ontology.sources.attributes()) == before

    def test_delta_reporting(self, ontology):
        delta = new_release(ontology, release())
        assert delta["S"] > 0
        assert delta["M"] > 0
        assert delta["lav_graphs"] == 2
        assert delta["G"] == 0

    def test_remapping_attribute_rejected(self, ontology):
        new_release(ontology, release())
        other = IRI("http://x/other")
        ontology.globals.add_feature(CONCEPT, other)
        r = release("w9")
        r.subgraph.add((CONCEPT, G_NS.hasFeature, other))
        r.attribute_to_feature["lag"] = other
        with pytest.raises(ReleaseError, match="already mapped"):
            new_release(ontology, r)

    def test_for_wrapper_constructor(self, ontology):
        from repro.wrappers.base import StaticWrapper
        w = StaticWrapper("w1", "D1", ["mid"], ["lag"],
                          [{"mid": 1, "lag": 0.5}])
        sub = Graph([(CONCEPT, G_NS.hasFeature, FEATURE_ID),
                     (CONCEPT, G_NS.hasFeature, FEATURE_V)])
        r = Release.for_wrapper(w, sub, {"mid": FEATURE_ID,
                                         "lag": FEATURE_V})
        new_release(ontology, r)
        assert ontology.has_physical_wrapper("w1")
        assert len(ontology.data_provider("w1")) == 1

    def test_wrapper_schema_reconstruction(self, ontology):
        new_release(ontology, release())
        schema = ontology.wrapper_relation_schema("w1")
        assert schema.attribute("D1/mid").is_id
        assert not schema.attribute("D1/lag").is_id
        assert schema.source == str(source_uri("D1"))
