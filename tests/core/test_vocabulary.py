"""Unit tests for the BDI vocabulary and URI conventions."""

import pytest

from repro.core.vocabulary import (
    attribute_local_name, attribute_uri, global_metamodel,
    mapping_graph_uri, qualified_attribute_name, source_local_name,
    source_metamodel, source_uri, wrapper_local_name, wrapper_uri,
)
from repro.rdf.namespace import G as G_NS, RDF, RDFS, S as S_NS


class TestMetamodels:
    def test_global_metamodel_classes(self):
        g = global_metamodel()
        for cls in (G_NS.Concept, G_NS.Feature):
            assert g.contains(cls, RDF.type, RDFS.Class)

    def test_global_metamodel_properties(self):
        g = global_metamodel()
        assert g.contains(G_NS.hasFeature, RDF.type, RDF.Property)
        assert g.contains(G_NS.hasDataType, RDFS.domain, G_NS.Feature)

    def test_source_metamodel_classes(self):
        g = source_metamodel()
        for cls in (S_NS.DataSource, S_NS.Wrapper, S_NS.Attribute):
            assert g.contains(cls, RDF.type, RDFS.Class)

    def test_source_metamodel_properties(self):
        g = source_metamodel()
        assert g.contains(S_NS.hasWrapper, RDFS.domain, S_NS.DataSource)
        assert g.contains(S_NS.hasAttribute, RDFS.range, S_NS.Attribute)


class TestUriConventions:
    def test_source_uri(self):
        assert str(source_uri("D1")).endswith("Source/DataSource/D1")

    def test_wrapper_uri(self):
        assert str(wrapper_uri("w1")).endswith("Source/Wrapper/w1")

    def test_attribute_uri_embeds_source(self):
        uri = attribute_uri("D1", "lagRatio")
        assert str(uri).endswith("DataSource/D1/lagRatio")

    def test_mapping_graph_uri(self):
        assert str(mapping_graph_uri("w1")).endswith("Mapping/graph/w1")

    def test_round_trips(self):
        assert source_local_name(source_uri("D1")) == "D1"
        assert wrapper_local_name(wrapper_uri("w4")) == "w4"
        assert qualified_attribute_name(
            attribute_uri("D1", "lagRatio")) == "D1/lagRatio"
        assert attribute_local_name(
            attribute_uri("D1", "lagRatio")) == "lagRatio"

    def test_invalid_uris_rejected(self):
        with pytest.raises(ValueError):
            source_local_name("http://other/thing")
        with pytest.raises(ValueError):
            wrapper_local_name("http://other/thing")
        with pytest.raises(ValueError):
            qualified_attribute_name(source_uri("D1"))
