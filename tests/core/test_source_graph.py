"""Unit tests for the Source graph facade."""

import pytest

from repro.core.ontology import BDIOntology
from repro.core.vocabulary import attribute_uri, source_uri, wrapper_uri
from repro.errors import UnknownSourceError, UnknownWrapperError


@pytest.fixture()
def s():
    return BDIOntology().sources


class TestRegistration:
    def test_add_data_source(self, s):
        s.add_data_source("D1")
        assert s.has_data_source("D1")
        assert s.data_sources() == [source_uri("D1")]

    def test_add_wrapper_requires_source(self, s):
        with pytest.raises(UnknownSourceError):
            s.add_wrapper("D1", "w1")

    def test_add_wrapper(self, s):
        s.add_data_source("D1")
        s.add_wrapper("D1", "w1")
        assert s.has_wrapper("w1")
        assert s.wrappers_of_source("D1") == [wrapper_uri("w1")]
        assert s.source_of_wrapper(wrapper_uri("w1")) == source_uri("D1")

    def test_source_of_unknown_wrapper(self, s):
        with pytest.raises(UnknownWrapperError):
            s.source_of_wrapper(wrapper_uri("ghost"))

    def test_attributes(self, s):
        s.add_data_source("D1")
        s.add_wrapper("D1", "w1")
        s.add_attribute("D1", "lagRatio")
        s.link_wrapper_attribute("w1", "D1", "lagRatio")
        assert s.has_attribute("D1", "lagRatio")
        assert s.attributes_of_wrapper(wrapper_uri("w1")) == [
            attribute_uri("D1", "lagRatio")]
        assert s.qualified_attributes_of_wrapper(wrapper_uri("w1")) == [
            "D1/lagRatio"]

    def test_attribute_reuse_across_versions(self, s):
        s.add_data_source("D1")
        s.add_wrapper("D1", "w1")
        s.add_wrapper("D1", "w4")
        s.add_attribute("D1", "VoDmonitorId")
        s.link_wrapper_attribute("w1", "D1", "VoDmonitorId")
        s.link_wrapper_attribute("w4", "D1", "VoDmonitorId")
        assert len(s.attributes()) == 1  # shared, not duplicated


class TestValidation:
    def test_clean(self, s):
        s.add_data_source("D1")
        s.add_wrapper("D1", "w1")
        s.add_attribute("D1", "a")
        s.link_wrapper_attribute("w1", "D1", "a")
        assert s.validate() == []

    def test_orphan_wrapper_detected(self, s):
        from repro.rdf.namespace import RDF, S as S_NS
        s.graph.add((wrapper_uri("wx"), RDF.type, S_NS.Wrapper))
        assert any("no data source" in p for p in s.validate())

    def test_untyped_attribute_detected(self, s):
        from repro.rdf.namespace import S as S_NS
        s.add_data_source("D1")
        s.add_wrapper("D1", "w1")
        s.graph.add((wrapper_uri("w1"), S_NS.hasAttribute,
                     attribute_uri("D1", "ghost")))
        assert any("not typed S:Attribute" in p for p in s.validate())

    def test_cross_source_attribute_detected(self, s):
        s.add_data_source("D1")
        s.add_data_source("D2")
        s.add_wrapper("D1", "w1")
        s.add_attribute("D2", "foreign")
        from repro.rdf.namespace import S as S_NS
        s.graph.add((wrapper_uri("w1"), S_NS.hasAttribute,
                     attribute_uri("D2", "foreign")))
        assert any("does not belong" in p for p in s.validate())
