"""Unit tests for the Global graph facade."""

import pytest

from repro.core.ontology import BDIOntology
from repro.errors import (
    ConstraintViolationError, UnknownConceptError, UnknownFeatureError,
)
from repro.rdf.namespace import SC, XSD
from repro.rdf.term import IRI

C1 = IRI("http://x/C1")
C2 = IRI("http://x/C2")
F1 = IRI("http://x/f1")
F2 = IRI("http://x/f2")
REL = IRI("http://x/rel")


@pytest.fixture()
def g():
    return BDIOntology().globals


class TestConcepts:
    def test_add_and_query(self, g):
        g.add_concept(C1)
        assert g.is_concept(C1)
        assert g.concepts() == [C1]

    def test_add_idempotent(self, g):
        g.add_concept(C1)
        g.add_concept(C1)
        assert len(g.concepts()) == 1


class TestFeatures:
    def test_add_feature(self, g):
        g.add_concept(C1)
        g.add_feature(C1, F1)
        assert g.is_feature(F1)
        assert g.features_of(C1) == [F1]
        assert g.concept_of_feature(F1) == C1

    def test_feature_requires_registered_concept(self, g):
        with pytest.raises(UnknownConceptError):
            g.add_feature(C1, F1)

    def test_single_concept_constraint(self, g):
        g.add_concept(C1)
        g.add_concept(C2)
        g.add_feature(C1, F1)
        with pytest.raises(ConstraintViolationError):
            g.add_feature(C2, F1)

    def test_reattach_same_concept_ok(self, g):
        g.add_concept(C1)
        g.add_feature(C1, F1)
        g.add_feature(C1, F1)  # no error
        assert g.features_of(C1) == [F1]

    def test_id_marker(self, g):
        g.add_concept(C1)
        g.add_feature(C1, F1, is_id=True)
        g.add_feature(C1, F2)
        assert g.is_id_feature(F1)
        assert not g.is_id_feature(F2)
        assert g.id_features_of(C1) == [F1]

    def test_id_via_taxonomy_chain(self, g):
        g.add_concept(C1)
        g.add_feature(C1, F1)
        middle = IRI("http://x/toolId")
        g.add_feature_subclass(F1, middle)
        g.add_feature_subclass(middle, SC.identifier)
        assert g.is_id_feature(F1)

    def test_sc_identifier_itself_not_id_feature(self, g):
        assert not g.is_id_feature(SC.identifier)

    def test_datatype(self, g):
        g.add_concept(C1)
        g.add_feature(C1, F1, datatype=XSD.double)
        assert g.datatype_of(F1) == XSD.double

    def test_set_datatype_requires_feature(self, g):
        with pytest.raises(UnknownFeatureError):
            g.set_datatype(F1, XSD.double)

    def test_feature_superdomains(self, g):
        g.add_concept(C1)
        g.add_feature(C1, F1, is_id=True)
        assert SC.identifier in g.feature_superdomains(F1)


class TestProperties:
    def test_object_property(self, g):
        g.add_concept(C1)
        g.add_concept(C2)
        g.add_property(C1, REL, C2)
        edges = g.object_properties()
        assert len(edges) == 1
        assert (edges[0].s, edges[0].p, edges[0].o) == (C1, REL, C2)

    def test_property_requires_concepts(self, g):
        g.add_concept(C1)
        with pytest.raises(UnknownConceptError):
            g.add_property(C1, REL, C2)

    def test_object_properties_exclude_has_feature(self, g):
        g.add_concept(C1)
        g.add_feature(C1, F1)
        assert g.object_properties() == []


class TestValidation:
    def test_clean_graph_validates(self, g):
        g.add_concept(C1)
        g.add_feature(C1, F1)
        assert g.validate() == []

    def test_orphan_feature_detected(self, g):
        from repro.rdf.namespace import G as G_NS, RDF
        g.graph.add((F1, RDF.type, G_NS.Feature))
        problems = g.validate()
        assert any("no concept" in p for p in problems)

    def test_double_owner_detected(self, g):
        from repro.rdf.namespace import G as G_NS, RDF
        g.add_concept(C1)
        g.add_concept(C2)
        g.add_feature(C1, F1)
        g.graph.add((C2, G_NS.hasFeature, F1))  # bypass the API
        problems = g.validate()
        assert any("2 concepts" in p for p in problems)

    def test_untyped_has_feature_subject_detected(self, g):
        from repro.rdf.namespace import G as G_NS, RDF
        g.graph.add((C1, G_NS.hasFeature, F1))
        g.graph.add((F1, RDF.type, G_NS.Feature))
        problems = g.validate()
        assert any("not typed G:Concept" in p for p in problems)
