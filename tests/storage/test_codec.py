"""Change-record codecs: loss-free round-trips, checksum framing."""

from __future__ import annotations

import pytest

from repro.core.ontology import EvolutionEvent
from repro.core.release import Release
from repro.errors import JournalCorruptedError
from repro.rdf.graph import Graph
from repro.rdf.namespace import G as G_NS
from repro.rdf.term import IRI
from repro.storage.codec import (
    ChangeRecord, decode_event, decode_record_line, decode_release,
    decode_wrapper, encode_event, encode_graph, encode_record_line,
    encode_release, encode_wrapper,
)
from repro.wrappers.base import StaticWrapper, Wrapper


def _sample_release(with_wrapper: bool = True) -> Release:
    concept = IRI("urn:t:App")
    f_id = IRI("urn:t:app/id")
    f_name = IRI("urn:t:app/name")
    subgraph = Graph([(concept, G_NS.hasFeature, f_id),
                      (concept, G_NS.hasFeature, f_name)])
    wrapper = StaticWrapper(
        "w1", "D1", ["id"], ["name"],
        rows=[{"id": 1, "name": "a"}, {"id": 2, "name": "b"}],
        projection={"name": "name"}) if with_wrapper else None
    return Release(
        wrapper_name="w1", source_name="D1",
        id_attributes=("id",), non_id_attributes=("name",),
        subgraph=subgraph,
        attribute_to_feature={"id": f_id, "name": f_name},
        wrapper=wrapper)


class TestRecordFraming:
    def test_line_round_trip(self):
        record = ChangeRecord(seq=7, kind="release",
                              payload={"a": 1, "b": [1, 2]})
        assert decode_record_line(encode_record_line(record)) == record

    def test_torn_line_detected(self):
        line = encode_record_line(ChangeRecord(seq=1, kind="boot"))
        for cut in (1, len(line) // 2, len(line) - 1):
            with pytest.raises(JournalCorruptedError):
                decode_record_line(line[:cut])

    def test_bit_flip_detected(self):
        line = encode_record_line(
            ChangeRecord(seq=1, kind="add_concept",
                         payload={"concept": "urn:t:C"}))
        flipped = line.replace("urn:t:C", "urn:t:X")
        with pytest.raises(JournalCorruptedError):
            decode_record_line(flipped)

    def test_non_object_rejected(self):
        with pytest.raises(JournalCorruptedError):
            decode_record_line("[1, 2, 3]")


class TestReleaseCodec:
    def test_round_trip_is_loss_free(self):
        release = _sample_release()
        payload = encode_release(
            release, absorbed_concepts={IRI("urn:t:App")})
        decoded, absorbed = decode_release(payload)
        assert decoded.wrapper_name == release.wrapper_name
        assert decoded.source_name == release.source_name
        assert decoded.id_attributes == release.id_attributes
        assert decoded.non_id_attributes == release.non_id_attributes
        assert decoded.subgraph == release.subgraph
        assert decoded.attribute_to_feature == \
            release.attribute_to_feature
        assert absorbed == frozenset({IRI("urn:t:App")})
        # re-encoding the decoded release is byte-stable
        assert encode_release(decoded, absorbed) == payload

    def test_graph_codec_canonical(self):
        release = _sample_release(with_wrapper=False)
        lines = encode_graph(release.subgraph)
        assert lines == sorted(lines)

    def test_release_without_wrapper(self):
        release = _sample_release(with_wrapper=False)
        decoded, absorbed = decode_release(encode_release(release))
        assert decoded.wrapper is None and absorbed is None


class TestWrapperCodec:
    def test_static_round_trips_loss_free(self):
        wrapper = StaticWrapper(
            "w1", "D1", ["id"], ["v"],
            rows=[{"id": 1, "raw": 3}], projection={"v": "raw"})
        decoded = decode_wrapper(encode_wrapper(wrapper))
        assert isinstance(decoded, StaticWrapper)
        assert decoded.name == "w1" and decoded.source_name == "D1"
        assert decoded.fetch() == wrapper.fetch()

    def test_live_wrapper_materializes(self):
        class LiveWrapper(Wrapper):
            def fetch_rows(self, columns=None, id_filter=None):
                return [{"id": 1, "v": 10}]

        wrapper = LiveWrapper("w2", "D2", ["id"], ["v"])
        payload = encode_wrapper(wrapper)
        assert payload["type"] == "materialized"
        decoded = decode_wrapper(payload)
        assert isinstance(decoded, StaticWrapper)
        assert decoded.fetch() == [{"id": 1, "v": 10}]

    def test_unserializable_rows_degrade_to_opaque(self):
        class WeirdWrapper(Wrapper):
            def fetch_rows(self, columns=None, id_filter=None):
                return [{"id": object()}]

        payload = encode_wrapper(WeirdWrapper("w3", "D3", ["id"], []))
        assert payload["type"] == "opaque"
        assert decode_wrapper(payload) is None

    def test_none_round_trips(self):
        assert encode_wrapper(None) is None
        assert decode_wrapper(None) is None


class TestEventCodec:
    def test_round_trip(self):
        event = EvolutionEvent(
            epoch=3, concepts=frozenset({IRI("urn:t:A"), IRI("urn:t:B")}),
            description="release w3 (D1)", structure=-12345,
            ungoverned=True)
        assert decode_event(encode_event(event)) == event
