"""Crash atomicity: a release killed mid-append is all-or-nothing.

Property-style sweep with a fault-injecting journal stub: the append of
release B's change record is cut after *k* bytes (power loss mid-write)
for cut points spanning the whole record, the "process" dies, and a
fresh recovery must find either exactly the pre-B state or exactly the
post-B state — with fingerprints matching an independently built
reference, never a third state.
"""

from __future__ import annotations

import pytest

from repro.errors import JournalError
from repro.mdm import MDM
from repro.storage.codec import encode_record_line, encode_release
from repro.storage.journal import Journal

from storage_scenarios import (
    APP_QUERY, app_wrapper, register_app, seed_schema,
)


class TornWriteJournal(Journal):
    """Journal whose next append dies after writing *cut_at* bytes."""

    def __init__(self, path, **kwargs):
        super().__init__(path, **kwargs)
        self.cut_at: int | None = None
        #: bytes of the line the fault interrupted (newline excluded)
        self.attempted_length: int | None = None

    def _write_line(self, line: str) -> None:
        if self.cut_at is None:
            super()._write_line(line)
            return
        cut, self.cut_at = self.cut_at, None
        self.attempted_length = len(line)
        self._file.write((line + "\n")[:cut])
        self._file.flush()
        raise OSError("simulated power cut mid-append")


def _build_leader(state_dir, journal_cls=Journal):
    """A durable writer over a (possibly fault-injecting) journal."""
    state_dir.mkdir(parents=True, exist_ok=True)
    mdm = MDM()
    journal = journal_cls(state_dir / "journal.jsonl")
    journal.append_boot()
    mdm.journal = journal
    mdm._snapshot_path = state_dir / "snapshot.json"
    seed_schema(mdm)
    register_app(mdm, 1)
    return mdm


def _reference_views(tmp_path):
    """Fingerprints of the only two legal post-crash states."""
    before = _build_leader(tmp_path / "ref-before")
    after = _build_leader(tmp_path / "ref-after")
    register_app(after, 2)
    views = (
        (before.ontology.fingerprint(), before.ontology.epoch,
         [r.wrapper_name for r in before.release_log]),
        (after.ontology.fingerprint(), after.ontology.epoch,
         [r.wrapper_name for r in after.release_log]),
    )
    before.close()
    after.close()
    return views


def _release_record_length() -> int:
    mdm = MDM()
    seed_schema(mdm)
    register_app(mdm, 1)
    payload = encode_release(mdm.build_wrapper_release(
        app_wrapper(2),
        attribute_to_feature={"id": "urn:d:app/id",
                              "name": "urn:d:app/name"}))
    from repro.storage.codec import ChangeRecord
    return len(encode_record_line(
        ChangeRecord(seq=9, kind="release", payload=payload)))


LINE_LENGTH = _release_record_length()

#: cut points spanning the record: nothing written, fragments of every
#: region (seq/kind/payload/crc), one byte short, the full line without
#: its newline, and past the end (fsync'd fine, crash after)
CUT_POINTS = sorted({0, 1, 7, LINE_LENGTH // 4, LINE_LENGTH // 2,
                     (3 * LINE_LENGTH) // 4, LINE_LENGTH - 10,
                     LINE_LENGTH - 1, LINE_LENGTH, LINE_LENGTH + 1,
                     LINE_LENGTH + 2})


class TestCrashMidRelease:
    @pytest.mark.parametrize("cut_at", CUT_POINTS)
    def test_release_is_fully_absent_or_fully_applied(
            self, tmp_path, cut_at):
        state_dir = tmp_path / "leader"
        leader = _build_leader(state_dir, journal_cls=TornWriteJournal)
        pre_crash_rows = leader.query(APP_QUERY).rows

        leader.journal.cut_at = cut_at
        # the append dies for every cut point — the caller always sees
        # the failure, yet the record may or may not have hit the disk
        with pytest.raises(JournalError):
            register_app(leader, 2)
        # the exact byte length of the record the fault interrupted
        # (the estimate that chose the cut points can be off by a few
        # digits of the sequence number)
        record_length = leader.journal.attempted_length
        # the "process" dies: buffered bytes reach disk, memory is gone
        leader.close()

        recovered = MDM.open(state_dir)
        state = (recovered.ontology.fingerprint(),
                 recovered.ontology.epoch,
                 [r.wrapper_name for r in recovered.release_log])
        absent, applied = _reference_views(tmp_path)
        assert state in (absent, applied), (
            f"cut at byte {cut_at}/{LINE_LENGTH} left a third state")
        if cut_at < record_length:
            # a torn record can never have been applied
            assert state == absent
            assert recovered.query(APP_QUERY).rows == pre_crash_rows
        else:
            # the full line reached the disk before the crash: the WAL
            # contract finishes the release during recovery
            assert state == applied
        # the survivor keeps accepting releases
        register_app(recovered, 3)
        assert "w_app_v3" in recovered.ontology.wrapper_names()
        recovered.close()

    def test_crash_between_fsync_and_apply_replays_on_recovery(
            self, tmp_path):
        """The other half of the WAL contract: record durable, apply
        lost — recovery must finish the release."""
        state_dir = tmp_path / "leader"
        leader = _build_leader(state_dir)
        release = leader.build_wrapper_release(
            app_wrapper(2),
            attribute_to_feature={"id": "urn:d:app/id",
                                  "name": "urn:d:app/name"})
        # journal the command exactly like execute_release would...
        leader.journal.append("release", encode_release(
            release, absorbed_concepts={"urn:d:App"}))
        # ...and die before the in-memory apply
        leader.close()

        recovered = MDM.open(state_dir)
        assert "w_app_v2" in recovered.ontology.wrapper_names()
        assert [r.wrapper_name for r in recovered.release_log] == \
            ["w_app_v1", "w_app_v2"]
        rows = {r["name"] for r in recovered.query(APP_QUERY).rows}
        assert any(name.startswith("app-2-") for name in rows)
        recovered.close()

    def test_apply_failure_after_append_is_revoked(self, tmp_path,
                                                   monkeypatch):
        """If Algorithm 1 ever fails *after* the fsync (prevalidation
        bypassed), the revoke record keeps replay consistent."""
        state_dir = tmp_path / "leader"
        leader = _build_leader(state_dir)

        import repro.storage.journal as journal_module
        real = journal_module.new_release

        def exploding(*args, **kwargs):
            raise RuntimeError("listener blew up mid-apply")

        monkeypatch.setattr(journal_module, "new_release", exploding)
        with pytest.raises(RuntimeError):
            register_app(leader, 2)
        monkeypatch.setattr(journal_module, "new_release", real)
        register_app(leader, 3)  # the journal stays usable
        view = (leader.ontology.epoch,
                [r.wrapper_name for r in leader.release_log])
        leader.close()

        recovered = MDM.open(state_dir)
        assert (recovered.ontology.epoch,
                [r.wrapper_name for r in recovered.release_log]) == view
        assert "w_app_v2" not in recovered.ontology.wrapper_names()
        recovered.close()
