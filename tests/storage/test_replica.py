"""Journal-tailing read replicas: equivalence, lag, read-only, HTTP."""

from __future__ import annotations

import time

import pytest

from repro.api.http_gateway import HttpGateway
from repro.api.protocol import QueryRequest, ReleaseRequest
from repro.errors import EpochSuperseded, ReadOnlyReplicaError
from repro.mdm import MDM
from repro.storage.replica import FileTailer, Replica

from storage_scenarios import (
    APP_QUERY, MONITOR_QUERY, build_durable, register_app,
    register_monitor, seed_schema,
)


@pytest.fixture()
def leader(state_dir):
    mdm = build_durable(state_dir)
    service = mdm.serving()
    yield mdm
    service.close()
    mdm.close()


@pytest.fixture()
def journal_path(state_dir):
    return state_dir / "journal.jsonl"


class TestFileTailing:
    def test_follower_matches_leader_at_same_epoch(self, leader,
                                                   journal_path):
        with Replica.follow_file(journal_path) as replica:
            replica.catch_up()
            assert replica.lag == 0
            # identical governance epoch *and* identical answers
            assert replica.mdm.ontology.epoch == leader.ontology.epoch
            assert replica.mdm.ontology.fingerprint() == \
                leader.ontology.fingerprint()
            for query in (APP_QUERY, MONITOR_QUERY):
                leader_response = leader.serving().endpoint.handle_query(
                    QueryRequest(query=query))
                follower_response = \
                    replica.service.endpoint.handle_query(
                        QueryRequest(query=query))
                assert follower_response.ok
                assert follower_response.fingerprint[0] == \
                    leader_response.fingerprint[0]
                assert follower_response.rows == leader_response.rows

    def test_lag_is_visible_until_caught_up(self, leader, journal_path):
        with Replica.follow_file(journal_path) as replica:
            replica.catch_up()
            register_app(leader, 3)  # leader moves ahead
            assert replica.catch_up() > 0
            assert replica.lag == 0
            assert replica.mdm.ontology.epoch == leader.ontology.epoch

    def test_release_mid_stream_supersedes_follower_cursors(
            self, leader, journal_path):
        with Replica.follow_file(journal_path) as replica:
            replica.catch_up()
            endpoint = replica.service.endpoint
            first = endpoint.handle_query(
                QueryRequest(query=APP_QUERY, page_size=1))
            assert first.ok and first.has_more
            register_app(leader, 3)
            replica.catch_up()  # the release lands on the follower...
            second = endpoint.handle_query(
                QueryRequest(cursor=first.cursor))
            # ...and the open pagination fails typed, exactly like on
            # the leader: a page stream never switches epochs
            assert not second.ok
            assert second.error.code == "epoch_superseded"
            with pytest.raises(EpochSuperseded):
                second.raise_for_error()

    def test_replica_is_read_only(self, leader, journal_path):
        with Replica.follow_file(journal_path) as replica:
            replica.catch_up()
            response = replica.service.endpoint.handle_release(
                ReleaseRequest(source="D9", wrapper="w9",
                               id_attributes=("id",)))
            assert not response.ok
            assert response.error.code == "read_only_replica"
            with pytest.raises(ReadOnlyReplicaError):
                response.raise_for_error()
            with pytest.raises(ReadOnlyReplicaError):
                replica.service.register_wrapper(object())

    def test_interior_apply_failure_never_reapplies_the_prefix(
            self, tmp_path):
        """A retrying follow loop must not re-apply mutations that
        already landed before the failing record (silent divergence)."""
        from repro.errors import JournalCorruptedError
        from repro.storage.journal import Journal

        path = tmp_path / "j.jsonl"
        journal = Journal.open(path)
        journal.append("add_concept", {"concept": "urn:d:A"})
        journal.append("add_feature", {"concept": "urn:d:GHOST",
                                       "feature": "urn:d:g/f"})  # bad
        journal.append("add_concept", {"concept": "urn:d:B"})
        journal.close()

        with Replica.follow_file(path) as replica:
            with pytest.raises(JournalCorruptedError):
                replica.catch_up()
            state = (replica.mdm.ontology.fingerprint(),
                     replica.applied_seq)
            assert [str(c) for c in
                    replica.mdm.ontology.globals.concepts()] == \
                ["urn:d:A"]
            # every retry fails the same way without mutating anything
            for _ in range(3):
                with pytest.raises(JournalCorruptedError):
                    replica.catch_up()
            assert (replica.mdm.ontology.fingerprint(),
                    replica.applied_seq) == state

    def test_describe_reports_replication_state(self, leader,
                                                journal_path):
        with Replica.follow_file(journal_path) as replica:
            replica.catch_up()
            described = replica.service.endpoint.handle_describe()
            info = described.service["journal"]
            assert info["role"] == "replica"
            assert info["replica_lag"] == 0
            assert info["seq"] == leader.journal.last_seq
            # and the leader reports its own durability state
            leader_info = leader.serving().endpoint.handle_describe() \
                .service["journal"]
            assert leader_info["role"] == "leader"
            assert leader_info["seq"] == leader.journal.last_seq
            assert leader_info["boot_id"] == leader.journal.boot_id
            assert leader_info["replica_lag"] == 0
            assert "snapshot_seq" in leader_info

    def test_cold_replica_is_not_ready_until_first_catch_up(
            self, leader, journal_path):
        """Before its first successful poll a follower reports epoch 0
        and lag 0 — indistinguishable from a caught-up follower of an
        empty leader — so describe must expose ``ready: false`` until
        a catch-up actually succeeds (routers gate on it)."""
        with Replica.follow_file(journal_path) as replica:
            info = replica.service.endpoint.handle_describe() \
                .service["journal"]
            assert info["ready"] is False
            assert info["replica_lag"] == 0  # the trap: lag lies here
            replica.catch_up()
            info = replica.service.endpoint.handle_describe() \
                .service["journal"]
            assert info["ready"] is True
            assert info["replica_lag"] == 0

    def test_empty_catch_up_still_marks_ready(self, tmp_path):
        from repro.storage.journal import Journal

        path = tmp_path / "empty.jsonl"
        Journal.open(path).close()  # a journal with zero records
        with Replica.follow_file(path) as replica:
            assert replica.ready is False
            assert replica.catch_up() == 0
            assert replica.ready is True

    def test_describe_service_text_mentions_journal(self, leader):
        text = leader.serving().describe()
        assert "journal: leader at seq" in text
        memory_only = MDM().serving()
        assert "journal: none" in memory_only.describe()
        memory_only.close()


class TestHttpTailing:
    def test_follower_over_the_wire(self, leader):
        with HttpGateway(leader.serving()) as gateway:
            with Replica.follow_url(gateway.url) as replica:
                replica.catch_up()
                assert replica.lag == 0
                assert replica.mdm.ontology.epoch == \
                    leader.ontology.epoch
                response = replica.service.endpoint.handle_query(
                    QueryRequest(query=APP_QUERY))
                reference = leader.serving().endpoint.handle_query(
                    QueryRequest(query=APP_QUERY))
                assert response.ok and response.rows == reference.rows

                register_app(leader, 3)
                assert replica.catch_up() > 0
                assert replica.mdm.ontology.epoch == \
                    leader.ontology.epoch

    def test_broken_follow_loop_is_observable(self,
                                              background_replica):
        from repro.storage.replica import HttpTailer

        replica = background_replica(
            Replica(HttpTailer("http://127.0.0.1:9", timeout=0.2)),
            poll_interval=0.01)
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and \
                replica.failed_polls == 0:
            time.sleep(0.01)
        assert replica.failed_polls > 0
        info = replica.service.endpoint.handle_describe() \
            .service["journal"]
        assert info["failed_polls"] > 0
        assert "GatewayError" in info["last_poll_error"]
        # a replica that never completed a poll must not claim ready
        assert info["ready"] is False

    def test_background_following(self, leader, background_replica):
        with HttpGateway(leader.serving()) as gateway:
            replica = background_replica(
                Replica.follow_url(gateway.url))
            register_app(leader, 3)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and \
                    replica.mdm.ontology.epoch != \
                    leader.ontology.epoch:
                time.sleep(0.02)
            assert replica.mdm.ontology.epoch == \
                leader.ontology.epoch

    def test_journal_route_shape_and_paging(self, leader):
        import json
        import urllib.request

        with HttpGateway(leader.serving()) as gateway:
            with urllib.request.urlopen(
                    f"{gateway.url}/v1/journal?after=0") as reply:
                payload = json.loads(reply.read())
            assert payload["ok"] is True
            assert payload["seq"] == leader.journal.last_seq
            assert payload["boot_id"] == leader.journal.boot_id
            seqs = [r["seq"] for r in payload["records"]]
            assert seqs == list(range(1, leader.journal.last_seq + 1))

            with urllib.request.urlopen(
                    f"{gateway.url}/v1/journal?after=2&limit=3") as reply:
                page = json.loads(reply.read())
            assert [r["seq"] for r in page["records"]] == [3, 4, 5]

    def test_journal_route_404_without_journal(self):
        import urllib.error
        import urllib.request

        mdm = MDM()
        seed_schema_inmemory(mdm)
        with HttpGateway(mdm.serving()) as gateway:
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(f"{gateway.url}/v1/journal")
            assert info.value.code == 404
        mdm.serving().close()


def seed_schema_inmemory(mdm: MDM) -> None:
    seed_schema(mdm)
    register_app(mdm, 1)
    register_monitor(mdm)
