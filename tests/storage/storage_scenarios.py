"""Shared scenario builders for the durability test suite.

Imported by the storage tests as a plain sibling module (pytest's
rootdir import mode puts this directory on sys.path)."""

from __future__ import annotations

from repro.mdm import MDM
from repro.wrappers.base import StaticWrapper

#: an OMQ over the App concept (id + name)
APP_QUERY = """SELECT ?v1 ?v2 WHERE {
    VALUES (?v1 ?v2) { (<urn:d:app/id> <urn:d:app/name>) }
    <urn:d:App> G:hasFeature <urn:d:app/id> .
    <urn:d:App> G:hasFeature <urn:d:app/name>
}"""

#: an OMQ over the Monitor concept
MONITOR_QUERY = """SELECT ?v1 ?v2 WHERE {
    VALUES (?v1 ?v2) { (<urn:d:mon/id> <urn:d:mon/lag>) }
    <urn:d:Monitor> G:hasFeature <urn:d:mon/id> .
    <urn:d:Monitor> G:hasFeature <urn:d:mon/lag>
}"""


def seed_schema(mdm: MDM) -> None:
    """Journaled steward commands: two concepts with ID features."""
    app = mdm.add_concept("urn:d:App")
    mdm.add_feature(app, "urn:d:app/id", is_id=True)
    mdm.add_feature(app, "urn:d:app/name")
    monitor = mdm.add_concept("urn:d:Monitor")
    mdm.add_feature(monitor, "urn:d:mon/id", is_id=True)
    mdm.add_feature(monitor, "urn:d:mon/lag",
                    datatype="http://www.w3.org/2001/XMLSchema#double")
    mdm.add_property("urn:d:App", "urn:d:hasMonitor", "urn:d:Monitor")


def app_wrapper(version: int, rows=None) -> StaticWrapper:
    rows = rows if rows is not None else [
        {"id": i, "name": f"app-{version}-{i}"} for i in range(4)]
    return StaticWrapper(f"w_app_v{version}", "D1", ["id"], ["name"],
                         rows=rows)


def monitor_wrapper() -> StaticWrapper:
    return StaticWrapper(
        "w_mon_v1", "D2", ["id"], ["lag"],
        rows=[{"id": i, "lag": i / 10} for i in range(3)])


def register_app(mdm: MDM, version: int, **kwargs) -> dict[str, int]:
    return mdm.register_wrapper(
        app_wrapper(version),
        attribute_to_feature={"id": "urn:d:app/id",
                              "name": "urn:d:app/name"},
        absorbed_concepts={"urn:d:App"}, **kwargs)


def register_monitor(mdm: MDM) -> dict[str, int]:
    return mdm.register_wrapper(
        monitor_wrapper(),
        attribute_to_feature={"id": "urn:d:mon/id",
                              "lag": "urn:d:mon/lag"},
        absorbed_concepts={"urn:d:Monitor"})


def build_durable(state_dir) -> MDM:
    """A durable writer with schema + three releases journaled."""
    mdm = MDM.open(state_dir)
    seed_schema(mdm)
    register_app(mdm, 1)
    register_monitor(mdm)
    register_app(mdm, 2)
    return mdm
