"""Fixtures for the durability test suite."""

from __future__ import annotations

import pytest


@pytest.fixture()
def state_dir(tmp_path):
    return tmp_path / "state"


@pytest.fixture()
def background_replica():
    """Run replicas' background follow loops with guaranteed teardown.

    Yields a factory: ``replica = background_replica(replica_obj)``
    starts the follow thread and registers the replica for ``stop()``
    at teardown, so no follow loop outlives its test even when the
    test body raises before reaching a ``finally``.
    """
    replicas = []

    def _start(replica, *, poll_interval=0.05):
        replicas.append(replica)
        replica.start(poll_interval=poll_interval)
        return replica

    yield _start
    for replica in replicas:
        replica.stop()
