"""Fixtures for the durability test suite."""

from __future__ import annotations

import pytest


@pytest.fixture()
def state_dir(tmp_path):
    return tmp_path / "state"
