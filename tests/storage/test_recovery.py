"""Recovery determinism: replay, snapshot+replay and boot scoping.

The tentpole invariant (ISSUE 5): snapshot+replay and cold full replay
both reproduce the byte-identical ontology fingerprint, epoch and
release list versus the live writer. Fingerprint *structure* equality
is asserted within one process (Python string hashing is per-process by
design); epoch, triples, releases and query answers are additionally
asserted across reopen boundaries.
"""

from __future__ import annotations

import pytest

from repro.api.protocol import QueryRequest, ReleaseRequest
from repro.errors import InvalidCursorError, SnapshotError
from repro.mdm import MDM
from repro.storage.journal import replay_into

from storage_scenarios import (
    APP_QUERY, MONITOR_QUERY, build_durable, register_app,
    register_monitor, seed_schema,
)


def _governed_view(mdm: MDM):
    """Everything recovery must reproduce, in comparable form."""
    return {
        "fingerprint": mdm.ontology.fingerprint(),
        "epoch": mdm.ontology.epoch,
        "releases": [r.wrapper_name for r in mdm.release_log],
        "triples": mdm.ontology.triple_counts(),
        "wrappers": sorted(mdm.ontology.wrapper_names()),
        "app_rows": mdm.query(APP_QUERY).rows,
        "monitor_rows": mdm.query(MONITOR_QUERY).rows,
    }


class TestDeterministicRecovery:
    def test_cold_replay_matches_live_writer(self, state_dir):
        live = build_durable(state_dir)
        replayed = MDM()
        replay_into(replayed, live.journal.records())
        assert _governed_view(replayed) == _governed_view(live)
        live.close()

    def test_reopen_recovers_identical_state(self, state_dir):
        live = build_durable(state_dir)
        view = _governed_view(live)
        live.close()
        recovered = MDM.open(state_dir)
        assert _governed_view(recovered) == view
        recovered.close()

    def test_snapshot_plus_replay_matches_live_writer(self, state_dir):
        live = MDM.open(state_dir)
        seed_schema(live)
        register_app(live, 1)
        register_monitor(live)
        live.snapshot()  # checkpoint mid-history...
        register_app(live, 2)  # ...then more journaled suffix
        view = _governed_view(live)
        live.close()

        recovered = MDM.open(state_dir)
        assert recovered._snapshot_seq > 0  # restore actually ran
        assert _governed_view(recovered) == view
        # and the recovered node keeps evolving deterministically
        register_app(recovered, 3)
        final = _governed_view(recovered)
        recovered.close()
        again = MDM.open(state_dir)
        assert _governed_view(again) == final
        again.close()

    def test_snapshot_is_fingerprint_exact(self, state_dir):
        live = build_durable(state_dir)
        live.snapshot()
        view = _governed_view(live)
        live.close()
        restored = MDM.open(state_dir)
        # nothing to replay past the snapshot: pure restore
        assert restored._snapshot_seq == restored.journal.last_seq - 1
        assert _governed_view(restored) == view
        restored.close()

    def test_pending_gap_survives_snapshot(self, state_dir):
        live = build_durable(state_dir)
        assert not live.ontology.has_ungoverned_gap()
        # an out-of-band edit (bypassing the journaled steward API)
        live.ontology.globals.add_concept("urn:d:Rogue")
        assert live.ontology.has_ungoverned_gap()
        live.snapshot()
        live.close()
        restored = MDM.open(state_dir)
        assert restored.ontology.has_ungoverned_gap()
        restored.close()

    def test_evolution_log_survives_recovery(self, state_dir):
        live = build_durable(state_dir)
        events = [(e.epoch, e.concepts, e.ungoverned)
                  for e in live.ontology.evolution_since(0)]
        live.close()
        recovered = MDM.open(state_dir)
        assert [(e.epoch, e.concepts, e.ungoverned)
                for e in recovered.ontology.evolution_since(0)] == events
        recovered.close()

    def test_snapshot_without_state_dir_needs_a_path(self, tmp_path):
        mdm = MDM()
        with pytest.raises(SnapshotError):
            mdm.snapshot()
        snapshot = mdm.snapshot(tmp_path / "explicit.json")
        assert snapshot.seq == 0 and (tmp_path / "explicit.json").exists()


class TestGovernedApiJournaling:
    def test_taxonomy_changes_replay_to_the_same_fingerprint(
            self, tmp_path):
        from repro.evolution.changes import Change, ChangeKind
        from repro.evolution.apply import GovernedApi
        from repro.sources.rest_api import (
            ApiVersion, Endpoint, FieldSpec, RestApi,
        )
        from repro.storage.journal import Journal

        rest = RestApi("Svc")
        endpoint = Endpoint("GET /items")
        endpoint.add_version(ApiVersion("1", [
            FieldSpec("itemId", "int"), FieldSpec("name", "string")]))
        rest.add_endpoint(endpoint)

        journal = Journal.open(tmp_path / "api.jsonl")
        api = GovernedApi(rest, journal=journal)
        api.model_endpoint("GET /items", id_field="itemId")
        api.apply(Change(ChangeKind.PARAM_ADD_PARAMETER, "Svc",
                         {"endpoint": "GET /items",
                          "parameter": "bitrate", "type": "float"}))
        api.apply(Change(ChangeKind.PARAM_CHANGE_FORMAT_OR_TYPE, "Svc",
                         {"endpoint": "GET /items",
                          "parameter": "bitrate", "new_type": "int"}))
        api.apply(Change(ChangeKind.API_CHANGE_AUTHENTICATION_MODEL,
                         "Svc", {"model": "oauth2"}))  # wrapper-side: no record

        replayed = MDM()
        replay_into(replayed, journal.records())
        assert replayed.ontology.fingerprint() == \
            api.ontology.fingerprint()
        assert replayed.ontology.epoch == api.ontology.epoch
        assert sorted(replayed.ontology.wrapper_names()) == \
            sorted(api.ontology.wrapper_names())
        journal.close()


class TestBootScoping:
    """Satellite: cursor + idempotency stores vs restart (boot id)."""

    def test_cursor_from_previous_boot_is_rejected(self, state_dir):
        live = build_durable(state_dir)
        service = live.serving()
        first = service.endpoint.handle_query(
            QueryRequest(query=APP_QUERY, page_size=1))
        assert first.ok and first.cursor is not None
        token = first.cursor
        assert token.startswith(f"{service.endpoint.boot_id}.")
        service.close()
        live.close()

        recovered = MDM.open(state_dir)
        endpoint = recovered.serving().endpoint
        assert endpoint.boot_id != token.split(".", 1)[0]
        response = endpoint.handle_query(QueryRequest(cursor=token))
        assert not response.ok
        assert response.error.code == "invalid_cursor"
        assert "previous boot" in response.error.message
        with pytest.raises(InvalidCursorError):
            response.raise_for_error()
        recovered.serving().close()
        recovered.close()

    def test_idempotency_replay_survives_restart_with_fresh_epoch(
            self, state_dir):
        live = MDM.open(state_dir)
        seed_schema(live)
        register_app(live, 1)
        service = live.serving()
        request = ReleaseRequest(
            source="D9", wrapper="w9", id_attributes=("id",),
            non_id_attributes=("name",),
            feature_hints={"id": "urn:d:app/id",
                           "name": "urn:d:app/name"},
            rows=({"id": 1, "name": "nine"},),
            idempotency_key="release-w9")
        first = service.endpoint.handle_release(request)
        assert first.ok and not first.replayed
        epoch_after = live.ontology.epoch
        service.close()
        live.close()

        recovered = MDM.open(state_dir)
        triples_before = recovered.ontology.triple_counts()["total"]
        endpoint = recovered.serving().endpoint
        again = endpoint.handle_release(request)
        # the recorded outcome replays: Algorithm 1 must NOT rerun,
        # and the reported epoch is recomputed during recovery replay —
        # never the stale serving epoch of the previous boot
        assert again.ok and again.replayed
        assert again.epoch == epoch_after
        assert again.triples_added == first.triples_added
        assert recovered.ontology.triple_counts()["total"] == \
            triples_before
        assert recovered.ontology.epoch == epoch_after
        recovered.serving().close()
        recovered.close()

    def test_idempotency_replay_survives_snapshot_assisted_restart(
            self, state_dir):
        """A snapshot folds the release records in — the outcome map
        must ride the snapshot, or resubmission re-runs Algorithm 1
        (observable as a spurious epoch bump)."""
        live = MDM.open(state_dir)
        seed_schema(live)
        register_app(live, 1)
        request = ReleaseRequest(
            source="D9", wrapper="w9", id_attributes=("id",),
            non_id_attributes=("name",),
            feature_hints={"id": "urn:d:app/id",
                           "name": "urn:d:app/name"},
            rows=({"id": 1, "name": "nine"},),
            idempotency_key="release-w9")
        first = live.serving().endpoint.handle_release(request)
        assert first.ok and not first.replayed
        epoch_after = live.ontology.epoch
        live.snapshot()  # covers the keyed release entirely
        live.serving().close()
        live.close()

        recovered = MDM.open(state_dir)
        assert recovered._snapshot_seq > 0
        again = recovered.serving().endpoint.handle_release(request)
        assert again.ok and again.replayed
        assert again.epoch == epoch_after
        assert recovered.ontology.epoch == epoch_after  # no re-apply
        recovered.serving().close()
        recovered.close()
