"""Journal mechanics: framing, boot records, torn tails, replay rules."""

from __future__ import annotations

import pytest

from repro.core.ontology import BDIOntology
from repro.errors import JournalCorruptedError
from repro.mdm import MDM
from repro.rdf.term import IRI
from repro.storage.codec import encode_record_line, ChangeRecord
from repro.storage.journal import (
    Journal, apply_record, read_records, replay_into,
)


@pytest.fixture()
def journal(tmp_path):
    j = Journal.open(tmp_path / "journal.jsonl")
    yield j
    j.close()


class TestAppendAndRead:
    def test_sequences_are_contiguous_from_one(self, journal):
        records = [journal.append("add_concept", {"concept": f"urn:c{i}"})
                   for i in range(5)]
        assert [r.seq for r in records] == [1, 2, 3, 4, 5]
        assert journal.last_seq == 5

    def test_records_after_filters(self, journal):
        for i in range(4):
            journal.append("add_concept", {"concept": f"urn:c{i}"})
        tail = journal.records(after=2)
        assert [r.seq for r in tail] == [3, 4]

    def test_reopen_resumes_sequence(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = Journal.open(path)
        j.append("add_concept", {"concept": "urn:a"})
        j.close()
        j2 = Journal.open(path)
        record = j2.append("add_concept", {"concept": "urn:b"})
        assert record.seq == 2
        assert [r.seq for r in j2.records()] == [1, 2]
        j2.close()

    def test_boot_records_carry_identity(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = Journal.open(path)
        first_boot = j.append_boot()
        j.close()
        j2 = Journal.open(path)
        assert j2.boot_id == first_boot  # last boot wins until re-boot
        second_boot = j2.append_boot()
        assert second_boot != first_boot
        assert j2.boot_id == second_boot
        j2.close()


class TestTornTails:
    def _write(self, path, *lines):
        path.write_text("".join(lines), encoding="utf-8")

    def test_torn_final_line_is_truncated_on_open(self, tmp_path):
        path = tmp_path / "j.jsonl"
        good = encode_record_line(
            ChangeRecord(seq=1, kind="add_concept",
                         payload={"concept": "urn:a"}))
        torn = encode_record_line(
            ChangeRecord(seq=2, kind="add_concept",
                         payload={"concept": "urn:b"}))[:20]
        self._write(path, good + "\n", torn)
        j = Journal.open(path)
        assert j.last_seq == 1
        assert [r.seq for r in j.records()] == [1]
        # the torn bytes are gone from disk, appends resume cleanly
        record = j.append("add_concept", {"concept": "urn:c"})
        assert record.seq == 2
        assert [r.payload["concept"] for r in j.records()] == \
            ["urn:a", "urn:c"]
        j.close()

    def test_missing_final_newline_is_repaired(self, tmp_path):
        path = tmp_path / "j.jsonl"
        good = encode_record_line(
            ChangeRecord(seq=1, kind="add_concept",
                         payload={"concept": "urn:a"}))
        self._write(path, good)  # complete record, no newline
        j = Journal.open(path)
        assert j.last_seq == 1
        j.append("add_concept", {"concept": "urn:b"})
        assert [r.seq for r in j.records()] == [1, 2]
        j.close()

    def test_interior_damage_refuses_to_open(self, tmp_path):
        path = tmp_path / "j.jsonl"
        good = encode_record_line(
            ChangeRecord(seq=1, kind="add_concept",
                         payload={"concept": "urn:a"}))
        later = encode_record_line(
            ChangeRecord(seq=2, kind="add_concept",
                         payload={"concept": "urn:b"}))
        self._write(path, good[: len(good) // 2] + "\n", later + "\n")
        with pytest.raises(JournalCorruptedError):
            Journal.open(path)
        with pytest.raises(JournalCorruptedError):
            list(read_records(path))

    def test_read_side_tolerates_writer_mid_append(self, tmp_path):
        path = tmp_path / "j.jsonl"
        good = encode_record_line(
            ChangeRecord(seq=1, kind="add_concept",
                         payload={"concept": "urn:a"}))
        self._write(path, good + "\n", '{"half')
        assert [r.seq for r in read_records(path)] == [1]


class TestFailedAppends:
    class _FlakyJournal(Journal):
        """Next append writes partial bytes, then dies (e.g. ENOSPC)."""

        fail_next = False

        def _write_line(self, line: str) -> None:
            if self.fail_next:
                self.fail_next = False
                self._file.write(line[: len(line) // 2])
                self._file.flush()
                raise OSError("no space left on device")
            super()._write_line(line)

    def test_failed_append_poisons_the_handle(self, tmp_path):
        from repro.errors import JournalError

        journal = self._FlakyJournal(tmp_path / "j.jsonl")
        journal.append("add_concept", {"concept": "urn:a"})
        journal.fail_next = True
        with pytest.raises(JournalError):
            journal.append("add_concept", {"concept": "urn:b"})
        # a retry on the same handle would merge into the partial
        # line; the handle fail-stops instead
        with pytest.raises(JournalError, match="poisoned"):
            journal.append("add_concept", {"concept": "urn:b"})
        journal.close()

        # reopening recovers: the partial tail is truncated, the
        # acknowledged record survives, appends resume cleanly
        reopened = Journal.open(tmp_path / "j.jsonl")
        assert [r.payload["concept"] for r in reopened.records()] == \
            ["urn:a"]
        record = reopened.append("add_concept", {"concept": "urn:c"})
        assert record.seq == 2
        assert [r.payload["concept"] for r in reopened.records()] == \
            ["urn:a", "urn:c"]
        reopened.close()


class TestSparseIndex:
    def test_indexed_reads_match_naive_scan(self, tmp_path):
        journal = Journal.open(tmp_path / "j.jsonl")
        for i in range(600):  # crosses the 256-record checkpoints
            journal.append("add_concept", {"concept": f"urn:c{i}"})
        for after in (0, 1, 255, 256, 257, 500, 599, 600):
            expected = [r for r in read_records(tmp_path / "j.jsonl")
                        if r.seq > after]
            assert journal.records(after=after) == expected
        journal.close()

    def test_file_tailer_is_incremental_and_redelivers(self, tmp_path):
        from repro.storage.replica import FileTailer

        path = tmp_path / "j.jsonl"
        journal = Journal.open(path)
        for i in range(300):
            journal.append("add_concept", {"concept": f"urn:c{i}"})
        tailer = FileTailer(path)
        batch = tailer.poll(0)
        assert [r.seq for r in batch.records] == list(range(1, 301))
        assert batch.leader_seq == 300
        # steady state: nothing new -> nothing returned
        assert tailer.poll(300).records == []
        journal.append("add_concept", {"concept": "urn:new"})
        assert [r.seq for r in tailer.poll(300).records] == [301]
        # re-delivery: an older position replays the suffix again
        again = tailer.poll(290)
        assert [r.seq for r in again.records] == list(range(291, 302))
        journal.close()


class TestReplay:
    def test_apply_record_rejects_unknown_kind(self):
        mdm = MDM()
        with pytest.raises(JournalCorruptedError):
            apply_record(mdm, ChangeRecord(seq=1, kind="warp_core"))

    def test_replay_skips_control_and_revoked(self, journal):
        journal.append_boot()
        journal.append("add_concept", {"concept": "urn:t:A"})
        bad = journal.append("add_concept", {"concept": "urn:t:B"})
        journal.append_revoke(bad.seq, "simulated apply failure")
        journal.append("add_concept", {"concept": "urn:t:C"})
        mdm = MDM()
        replay_into(mdm, journal.records())
        concepts = {str(c) for c in mdm.ontology.globals.concepts()}
        assert concepts == {"urn:t:A", "urn:t:C"}

    def test_replay_tolerates_only_a_failing_tail(self, journal):
        journal.append("add_concept", {"concept": "urn:t:A"})
        # add_feature to a concept that was never registered fails
        journal.append("add_feature", {"concept": "urn:t:GHOST",
                                       "feature": "urn:t:g/f"})
        mdm = MDM()
        replay_into(mdm, journal.records())  # tail failure tolerated
        assert [str(c) for c in mdm.ontology.globals.concepts()] == \
            ["urn:t:A"]

        journal.append("add_concept", {"concept": "urn:t:C"})
        with pytest.raises(JournalCorruptedError):
            replay_into(MDM(), journal.records())  # now it is interior

    def test_recovery_revokes_a_tolerated_failing_tail(self, tmp_path):
        """A skipped tail record must not brick the next restart."""
        state_dir = tmp_path / "state"
        first = MDM.open(state_dir)
        first.add_concept("urn:t:A")
        # a doomed record slipped past prevalidation (simulated by
        # journaling it directly, as a crash-between-append-and-apply)
        first.journal.append("add_feature", {"concept": "urn:t:GHOST",
                                             "feature": "urn:t:g/f"})
        first.close()

        second = MDM.open(state_dir)  # tolerated AND revoked
        assert [str(c) for c in second.ontology.globals.concepts()] == \
            ["urn:t:A"]
        second.add_concept("urn:t:B")  # the bad record is now interior
        second.close()

        third = MDM.open(state_dir)  # ...but revoked: still recoverable
        assert [str(c) for c in third.ontology.globals.concepts()] == \
            ["urn:t:A", "urn:t:B"]
        third.close()

    def test_live_and_replayed_state_agree(self, journal, tmp_path):
        live = MDM()
        live.journal = journal
        concept = live.add_concept("urn:t:App")
        live.add_feature(concept, "urn:t:app/id", is_id=True)
        live.add_feature(concept, "urn:t:app/size",
                         datatype="http://www.w3.org/2001/XMLSchema#long")
        live.add_concept("urn:t:Monitor")
        live.add_property("urn:t:App", "urn:t:hasMonitor",
                          "urn:t:Monitor")
        live.set_datatype("urn:t:app/size",
                          "http://www.w3.org/2001/XMLSchema#double")

        replayed = MDM()
        replay_into(replayed, journal.records())
        assert replayed.ontology.fingerprint() == \
            live.ontology.fingerprint()
        from repro.rdf.namespace import G as G_NS
        datatypes = {str(o) for o in replayed.ontology.g.objects(
            IRI("urn:t:app/size"), G_NS.hasDataType)}
        assert "http://www.w3.org/2001/XMLSchema#double" in datatypes


class TestOntologyRestoreGuards:
    def test_mutation_counts_only_advance(self):
        from repro.core.vocabulary import GLOBAL_GRAPH

        ontology = BDIOntology()  # the metamodel already mutated G
        assert ontology.g.mutation_count > 0
        with pytest.raises(ValueError):
            ontology.dataset.restore_mutation_counts(
                {str(GLOBAL_GRAPH): 0})
        with pytest.raises(ValueError):
            ontology.dataset.restore_mutation_counts({"*retired*": -1})
