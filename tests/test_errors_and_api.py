"""Tests for the exception hierarchy and the top-level public API."""

import inspect

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name, obj in vars(errors).items():
            if inspect.isclass(obj) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError), name

    def test_substrate_roots(self):
        assert issubclass(errors.TurtleSyntaxError, errors.RDFError)
        assert issubclass(errors.SparqlSyntaxError, errors.RDFError)
        assert issubclass(errors.InvalidJoinError, errors.RelationalError)
        assert issubclass(errors.WrapperError, errors.SourceError)
        assert issubclass(errors.ReleaseError, errors.OntologyError)
        assert issubclass(errors.CyclicQueryError, errors.QueryError)
        assert issubclass(errors.UnknownChangeKindError,
                          errors.EvolutionError)

    def test_positioned_errors_format_location(self):
        err = errors.SparqlSyntaxError("bad token", line=3, column=7)
        assert "line 3" in str(err)
        assert "column 7" in str(err)
        assert err.line == 3

    def test_turtle_error_without_position(self):
        err = errors.TurtleSyntaxError("oops")
        assert str(err) == "oops"

    def test_single_except_catches_everything(self):
        try:
            raise errors.NoIdentifierError("x")
        except errors.ReproError:
            pass


class TestTopLevelAPI:
    def test_version(self):
        assert repro.__version__ == "1.10.0"

    def test_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_snippet(self):
        """The README quickstart must work verbatim."""
        from repro.datasets import build_supersede, EXEMPLARY_QUERY
        from repro.datasets.supersede import register_w4
        from repro.mdm import MDM

        scenario = build_supersede()
        mdm = MDM(scenario.ontology)
        table = mdm.query(EXEMPLARY_QUERY)
        assert len(table) == 3

        register_w4(scenario)
        table = mdm.query(EXEMPLARY_QUERY)
        assert len(table) == 5
        assert "rewriting cache" in mdm.describe_cache()

    def test_docstring_mentions_paper(self):
        assert "Big Data Ecosystems" in repro.__doc__
