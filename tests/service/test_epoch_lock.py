"""EpochLock semantics: parallel readers, draining writers, epochs."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import EpochDrainTimeout
from repro.service import EpochLock


class TestReadSide:
    def test_read_yields_current_epoch(self):
        lock = EpochLock()
        with lock.read() as epoch:
            assert epoch == 0
        with lock.write():
            pass
        with lock.read() as epoch:
            assert epoch == 1

    def test_readers_run_in_parallel(self):
        lock = EpochLock()
        inside = threading.Semaphore(0)
        proceed = threading.Event()
        peak = []

        def reader():
            with lock.read():
                inside.release()
                assert proceed.wait(timeout=10)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for _ in range(4):
            assert inside.acquire(timeout=10)
        peak.append(lock.active_readers)
        proceed.set()
        for thread in threads:
            thread.join(timeout=10)
        assert peak == [4]
        assert lock.stats.reads == 4

    def test_release_read_without_acquire_raises(self):
        with pytest.raises(RuntimeError):
            EpochLock().release_read()


class TestWriteSide:
    def test_writer_excludes_and_drains_readers(self):
        lock = EpochLock()
        reader_in = threading.Event()
        reader_release = threading.Event()
        order: list[str] = []

        def reader():
            with lock.read():
                reader_in.set()
                assert reader_release.wait(timeout=10)
                order.append("reader-exit")

        def writer():
            with lock.write() as epoch:
                order.append("writer-enter")
                assert epoch == 1

        r = threading.Thread(target=reader)
        r.start()
        assert reader_in.wait(timeout=10)
        w = threading.Thread(target=writer)
        w.start()
        # The writer must be parked behind the in-flight reader.
        time.sleep(0.05)
        assert "writer-enter" not in order
        reader_release.set()
        r.join(timeout=10)
        w.join(timeout=10)
        assert order == ["reader-exit", "writer-enter"]
        assert lock.stats.writes == 1
        assert lock.stats.writes_drained == 1
        assert lock.stats.max_drained_readers == 1

    def test_writer_preference_blocks_new_readers(self):
        lock = EpochLock()
        reader_in = threading.Event()
        reader_release = threading.Event()

        def reader_long():
            with lock.read():
                reader_in.set()
                assert reader_release.wait(timeout=10)

        r = threading.Thread(target=reader_long)
        r.start()
        assert reader_in.wait(timeout=10)
        w = threading.Thread(target=lambda: (lock.acquire_write(),
                                             lock.release_write()))
        w.start()
        time.sleep(0.05)  # writer is now waiting on the drain
        # A new reader must not jump the waiting writer.
        with pytest.raises(EpochDrainTimeout):
            lock.acquire_read(timeout=0.05)
        assert lock.stats.reads_blocked == 1
        reader_release.set()
        r.join(timeout=10)
        w.join(timeout=10)
        # After the writer finishes, readers flow again at epoch 1.
        with lock.read() as epoch:
            assert epoch == 1

    def test_write_timeout_leaves_lock_clean(self):
        lock = EpochLock()
        reader_in = threading.Event()
        reader_release = threading.Event()

        def reader():
            with lock.read():
                reader_in.set()
                assert reader_release.wait(timeout=10)

        r = threading.Thread(target=reader)
        r.start()
        assert reader_in.wait(timeout=10)
        with pytest.raises(EpochDrainTimeout):
            lock.acquire_write(timeout=0.05)
        # The failed writer withdrew: new readers are admitted again.
        with lock.read() as epoch:
            assert epoch == 0
        reader_release.set()
        r.join(timeout=10)
        # And a later write still works.
        with lock.write() as epoch:
            assert epoch == 1

    def test_release_write_without_acquire_raises(self):
        with pytest.raises(RuntimeError):
            EpochLock().release_write()

    def test_release_write_from_foreign_thread_raises(self):
        lock = EpochLock()
        lock.acquire_write()
        failure: list[Exception] = []

        def foreign():
            try:
                lock.release_write()
            except RuntimeError as exc:
                failure.append(exc)

        t = threading.Thread(target=foreign)
        t.start()
        t.join(timeout=10)
        assert failure
        assert lock.held_for_write()
        lock.release_write()
        assert not lock.held_for_write()

    def test_epoch_counts_write_sections(self):
        lock = EpochLock()
        for expected in (1, 2, 3):
            with lock.write() as epoch:
                assert epoch == expected
        assert lock.epoch == 3
        assert lock.stats.writes == 3
