"""GovernedService: epoch-consistent answers across concurrent releases."""

from __future__ import annotations

import threading

import pytest

from repro.errors import UnanswerableQueryError
from repro.query.engine import QueryEngine
from repro.rdf.term import IRI
from repro.service import (
    GovernedService, analyst_panel, build_industrial_service,
    next_version_release,
)


def _canon(relation) -> list[tuple]:
    return sorted(tuple(sorted(row.items())) for row in relation.rows)


@pytest.fixture()
def serving_scenario():
    return build_industrial_service()


@pytest.fixture()
def service(serving_scenario):
    svc = serving_scenario.mdm.serving(max_workers=4)
    yield svc
    svc.close()


class TestServe:
    def test_serve_tags_answers_with_epoch_and_fingerprint(
            self, serving_scenario, service):
        query = serving_scenario.queries["twitter_api"]
        served = service.serve(query)
        assert served.epoch == 0
        assert served.fingerprint == \
            serving_scenario.ontology.fingerprint()
        assert len(served.rows) == 24
        assert service.stats.queries == 1

    def test_serve_many_shares_one_epoch_and_dedupes(
            self, serving_scenario, service):
        panel = analyst_panel(serving_scenario, analysts=6)
        answers = service.serve_many(panel)
        assert len(answers) == len(panel)
        assert {a.epoch for a in answers} == {0}
        # 5 unique OMQs → 5 rewrites, duplicates share the relation.
        assert serving_scenario.mdm.cache.stats.misses == 5
        by_query = {}
        for query, served in zip(panel, answers):
            by_query.setdefault(query, served.relation)
            assert served.relation is by_query[query]

    def test_answer_matches_plain_engine(self, serving_scenario,
                                         service):
        query = serving_scenario.queries["amazon_mws"]
        fresh = QueryEngine(serving_scenario.ontology, use_cache=False)
        assert _canon(service.answer(query)) == _canon(
            fresh.answer(query))

    def test_batch_failure_modes(self, serving_scenario, service):
        ontology = serving_scenario.ontology
        orphan = ontology.globals.add_concept(IRI("urn:industrial:Orphan"))
        ontology.globals.add_feature(
            orphan, IRI("urn:industrial:orphan/id"), is_id=True)
        bad = """SELECT ?v1 WHERE {
            VALUES (?v1) { (<urn:industrial:orphan/id>) }
            <urn:industrial:Orphan> G:hasFeature
                <urn:industrial:orphan/id>
        }"""
        good = serving_scenario.queries["sina_weibo"]
        with pytest.raises(UnanswerableQueryError):
            service.answer_many([good, bad])
        mixed = service.answer_many([good, bad],
                                    return_exceptions=True)
        assert len(mixed[0].rows) == 24
        assert isinstance(mixed[1], UnanswerableQueryError)
        served = service.serve_many([good, bad],
                                    return_exceptions=True)
        assert served[0].ok and len(served[0].rows) == 24
        assert not served[1].ok and served[1].relation is None
        with pytest.raises(UnanswerableQueryError):
            served[1].rows

    def test_serving_accessor_is_memoized(self, serving_scenario):
        mdm = serving_scenario.mdm
        first = mdm.serving(max_workers=2)
        assert mdm.serving(max_workers=2) is first
        # Different parameters close and replace the current service.
        second = mdm.serving(max_workers=3)
        assert second is not first
        mdm.register_release(
            next_version_release(serving_scenario, "google_gadgets"))
        # The replaced service was detached — only the live one counts.
        assert first.stats.bypassed_writes == 0
        assert second.stats.bypassed_writes == 1
        second.close()
        assert mdm.serving(max_workers=3) is not second


class TestReleases:
    def test_apply_release_advances_epoch_and_answers(
            self, serving_scenario, service):
        query = serving_scenario.queries["twitter_api"]
        before = service.serve(query)
        release = next_version_release(serving_scenario, "twitter_api")
        delta = service.apply_release(release)
        assert delta["lav_graphs"] > 0
        after = service.serve(query)
        assert (before.epoch, after.epoch) == (0, 1)
        assert service.epoch == 1
        # Post-release answers match a fresh engine (never stale).
        fresh = QueryEngine(serving_scenario.ontology, use_cache=False)
        assert _canon(after.relation) == _canon(fresh.answer(query))
        assert len(after.rows) == 48  # v1 ∪ v2 rows
        assert service.stats.releases == 1
        assert service.stats.bypassed_writes == 0

    def test_release_drains_inflight_batch(self, serving_scenario,
                                           service):
        query = serving_scenario.queries["google_calendar"]
        in_batch = threading.Event()
        answers = []

        # A slow reader: holds the read side while the release tries to
        # land, via a wrapper-level latency injected for this test.
        wrapper = serving_scenario.ontology.physical_wrapper(
            "google_calendar_v1")
        wrapper.latency = 0.05

        def reader():
            in_batch.set()
            answers.append(service.serve(query))

        t = threading.Thread(target=reader)
        t.start()
        assert in_batch.wait(timeout=10)
        release = next_version_release(serving_scenario, "google_gadgets")
        service.apply_release(release)
        t.join(timeout=10)
        # The reader either fully preceded the release (epoch 0) or
        # fully followed it (epoch 1) — never a torn observation.
        assert answers[0].epoch in (0, 1)
        assert service.lock.stats.writes == 1

    def test_out_of_band_release_is_counted_as_bypassed(
            self, serving_scenario, service):
        release = next_version_release(serving_scenario, "sina_weibo")
        serving_scenario.mdm.register_release(release)  # behind the back
        assert service.stats.bypassed_writes == 1
        # The epoch lock never saw a write...
        assert service.epoch == 0
        # ...but answers are still fresh: the cache invalidated by
        # concept, exactly as in the single-threaded deployment.
        query = serving_scenario.queries["sina_weibo"]
        fresh = QueryEngine(serving_scenario.ontology, use_cache=False)
        assert _canon(service.answer(query)) == _canon(
            fresh.answer(query))

    def test_close_detaches_listener(self, serving_scenario):
        svc = GovernedService(serving_scenario.mdm)
        svc.close()
        release = next_version_release(serving_scenario, "amazon_mws")
        serving_scenario.mdm.register_release(release)
        assert svc.stats.bypassed_writes == 0


class TestIntrospection:
    def test_describe_reports_the_contract(self, serving_scenario,
                                           service):
        service.serve_many(analyst_panel(serving_scenario, analysts=2))
        service.apply_release(
            next_version_release(serving_scenario, "twitter_api"))
        text = service.describe()
        assert "governed service: epoch 1" in text
        assert "1 release(s) served" in text
        assert "bypassed writes (outside the service) = 0" in text
        assert "rewriting cache:" in text

    def test_constructor_validates_workers(self):
        with pytest.raises(ValueError):
            GovernedService(max_workers=0)
