"""Serving-layer scan-cache tests: cross-query sharing, epoch
invalidation, observability."""

from repro.service.workload import (
    analyst_panel, build_industrial_service, next_version_release,
)


def count_fetches(scenario):
    """Instrument every bound wrapper; returns the live counter dict."""
    counts: dict[str, int] = {}
    for name, wrapper in scenario.ontology._physical.items():
        original = wrapper.fetch_rows

        def counted(columns=None, id_filter=None, _o=original, _n=name):
            counts[_n] = counts.get(_n, 0) + 1
            return _o(columns=columns, id_filter=id_filter)

        wrapper.fetch_rows = counted
    return counts


class TestServingScanCache:
    def test_repeated_queries_fetch_each_wrapper_once(self):
        scenario = build_industrial_service(rows_per_wrapper=8)
        counts = count_fetches(scenario)
        service = scenario.mdm.serving()
        query = scenario.query_texts()[0]
        for _ in range(5):
            assert len(service.answer(query)) == 8
        assert sum(counts.values()) == 1  # one wrapper, one fetch
        # warm repeats are served above the scan cache entirely
        assert service.answer_cache.stats.hits >= 4

    def test_scan_cache_shares_fetches_when_answers_not_cached(self):
        scenario = build_industrial_service(rows_per_wrapper=8)
        counts = count_fetches(scenario)
        service = scenario.mdm.serving()
        query = scenario.query_texts()[0]
        for _ in range(5):
            service.answer_cache.clear()  # force re-execution
            assert len(service.answer(query)) == 8
        assert sum(counts.values()) == 1  # scans still shared
        assert service.scan_cache.stats.hits >= 4

    def test_batch_shares_scans_across_analysts(self):
        scenario = build_industrial_service(rows_per_wrapper=6)
        counts = count_fetches(scenario)
        service = scenario.mdm.serving()
        panel = analyst_panel(scenario, analysts=6)  # 30 queries, 5 keys
        answers = service.serve_many(panel)
        assert len(answers) == len(panel)
        assert all(a.ok for a in answers)
        # five unique queries over five wrappers: exactly one fetch each
        assert sum(counts.values()) == 5

    def test_release_invalidates_scan_cache(self):
        scenario = build_industrial_service(rows_per_wrapper=4)
        service = scenario.mdm.serving()
        query = scenario.queries["twitter_api"]
        before = {r["id"] for r in service.answer(query)}
        assert len(service.scan_cache) > 0
        release = next_version_release(scenario, rows_per_wrapper=4)
        service.apply_release(release)
        assert len(service.scan_cache) == 0  # epoch boundary cleared it
        after = {r["id"] for r in service.answer(query)}
        assert after != before  # fresh rows, not a stale cached scan

    def test_describe_reports_scan_cache(self):
        scenario = build_industrial_service(rows_per_wrapper=2)
        service = scenario.mdm.serving()
        service.answer(scenario.query_texts()[0])
        text = service.describe()
        assert "scan cache" in text
        assert "misses = 1" in text
