"""Unit tests for topological sorting."""

import pytest

from repro.util.toposort import CycleError, is_dag, topological_sort


class TestTopologicalSort:
    def test_chain(self):
        order = topological_sort(["a", "b", "c"],
                                 [("a", "b"), ("b", "c")])
        assert order == ["a", "b", "c"]

    def test_deterministic_ties(self):
        order = topological_sort(["c", "b", "a"], [])
        assert order == ["a", "b", "c"]

    def test_nodes_only_in_edges(self):
        order = topological_sort([], [("x", "y")])
        assert order == ["x", "y"]

    def test_diamond(self):
        order = topological_sort(
            "abcd", [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c") < order.index("d")

    def test_cycle_raises(self):
        with pytest.raises(CycleError):
            topological_sort("ab", [("a", "b"), ("b", "a")])

    def test_self_loop(self):
        with pytest.raises(CycleError):
            topological_sort("a", [("a", "a")])

    def test_cycle_error_names_nodes(self):
        try:
            topological_sort("abc", [("b", "c"), ("c", "b")])
        except CycleError as exc:
            assert set(exc.nodes) == {"b", "c"}
        else:  # pragma: no cover
            pytest.fail("expected CycleError")

    def test_is_dag(self):
        assert is_dag("ab", [("a", "b")])
        assert not is_dag("ab", [("a", "b"), ("b", "a")])

    def test_duplicate_edges_ok(self):
        order = topological_sort("ab", [("a", "b"), ("a", "b")])
        assert order == ["a", "b"]
