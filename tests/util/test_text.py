"""Unit tests for string similarity utilities."""

from repro.util.text import (
    jaccard, levenshtein, name_similarity, tokenize_identifier,
)


class TestLevenshtein:
    def test_identical(self):
        assert levenshtein("abc", "abc") == 0

    def test_empty_sides(self):
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "") == 3

    def test_substitution(self):
        assert levenshtein("kitten", "sitten") == 1

    def test_classic(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_symmetry(self):
        assert levenshtein("ab", "ba") == levenshtein("ba", "ab")


class TestTokenize:
    def test_camel_case(self):
        assert tokenize_identifier("lagRatio") == ["lag", "ratio"]

    def test_snake_case(self):
        assert tokenize_identifier("buffering_ratio") == \
            ["buffering", "ratio"]

    def test_acronyms_and_digits(self):
        assert "id" in tokenize_identifier("monitorId")
        assert "2" in tokenize_identifier("v2Format")

    def test_empty(self):
        assert tokenize_identifier("") == []


class TestJaccard:
    def test_full_overlap(self):
        assert jaccard({"a"}, {"a"}) == 1.0

    def test_empty_sets(self):
        assert jaccard(set(), set()) == 1.0

    def test_partial(self):
        assert jaccard({"a", "b"}, {"b", "c"}) == 1 / 3


class TestNameSimilarity:
    def test_exact_case_insensitive(self):
        assert name_similarity("LagRatio", "lagratio") == 1.0

    def test_rename_shares_token(self):
        # the w4 rename of the running example
        assert name_similarity("lagRatio", "bufferingRatio") > 0.3

    def test_unrelated_low(self):
        assert name_similarity("lagRatio", "authorEmail") < 0.3

    def test_bounded(self):
        for a, b in [("a", "b"), ("monitorId", "feedbackId"),
                     ("x", "xxxxxxxx")]:
            assert 0.0 <= name_similarity(a, b) <= 1.0

    def test_rename_beats_unrelated(self):
        rename = name_similarity("featured_image", "featured_media")
        unrelated = name_similarity("featured_image", "comment_status")
        assert rename > unrelated
