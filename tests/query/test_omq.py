"""Unit tests for OMQ parsing and template validation (Code 3)."""

import pytest

from repro.datasets import EXEMPLARY_QUERY
from repro.errors import MalformedQueryError
from repro.query.omq import parse_omq
from repro.rdf.namespace import SUP


class TestTemplateAcceptance:
    def test_exemplary_query_parses(self):
        omq = parse_omq(EXEMPLARY_QUERY)
        assert omq.pi == [SUP.applicationId, SUP.lagRatio]
        assert len(omq.phi) == 4

    def test_pi_subset_of_vertices(self):
        omq = parse_omq(EXEMPLARY_QUERY)
        assert set(omq.pi) <= omq.vertices()

    def test_edges_directed(self):
        omq = parse_omq(EXEMPLARY_QUERY)
        from repro.rdf.namespace import SC
        assert (SC.SoftwareApplication, SUP.Monitor) in omq.edges()

    def test_copy_is_independent(self):
        omq = parse_omq(EXEMPLARY_QUERY)
        clone = omq.copy()
        clone.pi.append(SUP.bitrate)
        clone.phi.add((SUP.Monitor, SUP.generatesQoS, SUP.InfoMonitor))
        assert len(omq.pi) == 2


class TestTemplateRejection:
    def test_missing_values(self):
        with pytest.raises(MalformedQueryError, match="VALUES"):
            parse_omq("""
                SELECT ?x WHERE {
                    sup:Monitor G:hasFeature sup:monitorId }""")

    def test_multi_row_values(self):
        with pytest.raises(MalformedQueryError, match="one row"):
            parse_omq("""
                SELECT ?x WHERE {
                    VALUES (?x) { (sup:lagRatio) (sup:bitrate) }
                    sup:InfoMonitor G:hasFeature sup:lagRatio }""")

    def test_values_variable_mismatch(self):
        with pytest.raises(MalformedQueryError, match="match the SELECT"):
            parse_omq("""
                SELECT ?x ?y WHERE {
                    VALUES (?x) { (sup:lagRatio) }
                    sup:InfoMonitor G:hasFeature sup:lagRatio }""")

    def test_literal_in_values(self):
        with pytest.raises(MalformedQueryError, match="attribute URIs"):
            parse_omq("""
                SELECT ?x WHERE {
                    VALUES (?x) { ("literal") }
                    sup:InfoMonitor G:hasFeature sup:lagRatio }""")

    def test_variable_triple_patterns_rejected(self):
        with pytest.raises(MalformedQueryError, match="concrete"):
            parse_omq("""
                SELECT ?x WHERE {
                    VALUES (?x) { (sup:lagRatio) }
                    ?c G:hasFeature sup:lagRatio }""")

    def test_empty_pattern_rejected(self):
        with pytest.raises(MalformedQueryError, match="no triple"):
            parse_omq("""
                SELECT ?x WHERE {
                    VALUES (?x) { (sup:lagRatio) } }""")

    def test_projection_outside_pattern_rejected(self):
        with pytest.raises(MalformedQueryError, match="does not occur"):
            parse_omq("""
                SELECT ?x WHERE {
                    VALUES (?x) { (sup:bitrate) }
                    sup:InfoMonitor G:hasFeature sup:lagRatio }""")
