"""Release-aware rewriting cache: keys, hits, selective invalidation."""

import pytest

from repro.datasets import EXEMPLARY_QUERY, build_supersede
from repro.datasets.supersede import register_w4
from repro.evolution.apply import GovernedApi
from repro.evolution.changes import Change, ChangeKind
from repro.mdm import MDM
from repro.query.cache import RewriteCache, canonical_omq_key
from repro.query.engine import QueryEngine
from repro.query.omq import parse_omq
from repro.rdf.namespace import DUV, SC, SUP, XSD
from repro.sources.rest_api import ApiVersion, Endpoint, FieldSpec, RestApi

#: Touches SoftwareApplication / FeedbackGathering / UserFeedback —
#: disjoint from the VoD concepts (Monitor, InfoMonitor) that the w4
#: release of §2.1 affects.
FEEDBACK_QUERY = """
SELECT ?x ?y WHERE {
    VALUES (?x ?y) { (sup:applicationId dct:description) }
    sc:SoftwareApplication G:hasFeature sup:applicationId .
    sc:SoftwareApplication sup:hasFGTool sup:FeedbackGathering .
    sup:FeedbackGathering sup:generatesFeedback duv:UserFeedback .
    duv:UserFeedback G:hasFeature dct:description
}
"""


class TestCanonicalKey:
    def test_whitespace_insensitive(self):
        compact = parse_omq(
            "SELECT ?x WHERE { VALUES (?x) { (sup:lagRatio) } "
            "sup:InfoMonitor G:hasFeature sup:lagRatio }")
        spaced = parse_omq("""
            SELECT ?x
            WHERE {
                VALUES (?x) { (sup:lagRatio) }
                sup:InfoMonitor   G:hasFeature   sup:lagRatio
            }""")
        assert canonical_omq_key(compact) == canonical_omq_key(spaced)

    def test_triple_order_insensitive(self):
        a = parse_omq(EXEMPLARY_QUERY)
        reordered = parse_omq("""
            SELECT ?x ?y WHERE {
                VALUES (?x ?y) { (sup:applicationId sup:lagRatio) }
                sup:InfoMonitor G:hasFeature sup:lagRatio .
                sup:Monitor sup:generatesQoS sup:InfoMonitor .
                sc:SoftwareApplication sup:hasMonitor sup:Monitor .
                sc:SoftwareApplication G:hasFeature sup:applicationId
            }""")
        assert canonical_omq_key(a) == canonical_omq_key(reordered)

    def test_projection_order_sensitive(self):
        """π order names the output columns, so it must key separately."""
        a = parse_omq("""
            SELECT ?x ?y WHERE {
                VALUES (?x ?y) { (sup:monitorId sup:lagRatio) }
                sup:Monitor G:hasFeature sup:monitorId .
                sup:Monitor sup:generatesQoS sup:InfoMonitor .
                sup:InfoMonitor G:hasFeature sup:lagRatio }""")
        b = parse_omq("""
            SELECT ?x ?y WHERE {
                VALUES (?x ?y) { (sup:lagRatio sup:monitorId) }
                sup:Monitor G:hasFeature sup:monitorId .
                sup:Monitor sup:generatesQoS sup:InfoMonitor .
                sup:InfoMonitor G:hasFeature sup:lagRatio }""")
        assert canonical_omq_key(a) != canonical_omq_key(b)


class TestWarmHits:
    def test_identical_query_hits(self, engine):
        first = engine.rewrite(EXEMPLARY_QUERY)
        second = engine.rewrite(EXEMPLARY_QUERY)
        assert second is first
        assert engine.cache_stats.hits == 1
        assert engine.cache_stats.misses == 1

    def test_textual_variant_hits_same_entry(self, engine):
        engine.rewrite(EXEMPLARY_QUERY)
        engine.rewrite(EXEMPLARY_QUERY.replace("\n", " "))
        assert engine.cache_stats.hits == 1
        assert len(engine.cache) == 1

    def test_cache_disabled(self, scenario):
        engine = QueryEngine(scenario.ontology, use_cache=False)
        first = engine.rewrite(EXEMPLARY_QUERY)
        second = engine.rewrite(EXEMPLARY_QUERY)
        assert first is not second
        assert engine.cache is None
        assert engine.cache_stats is None

    def test_answer_uses_cache(self, engine):
        engine.answer(EXEMPLARY_QUERY)
        engine.answer(EXEMPLARY_QUERY)
        assert engine.cache_stats.hits == 1


class TestReleaseInvalidation:
    def test_release_touching_queried_concept_misses(self, scenario):
        engine = QueryEngine(scenario.ontology)
        assert len(engine.rewrite(EXEMPLARY_QUERY).walks) == 1

        register_w4(scenario)  # affects Monitor + InfoMonitor

        result = engine.rewrite(EXEMPLARY_QUERY)
        assert len(result.walks) == 2  # recomputed: w4 branch appeared
        assert engine.cache_stats.invalidated == 1
        assert engine.cache_stats.hits == 0

    def test_release_on_unrelated_concept_survives(self, scenario):
        engine = QueryEngine(scenario.ontology)
        cached = engine.rewrite(FEEDBACK_QUERY)

        register_w4(scenario)  # VoD concepts only

        survived = engine.rewrite(FEEDBACK_QUERY)
        assert survived is cached
        assert engine.cache_stats.survived_releases == 1
        assert engine.cache_stats.hits == 1
        assert engine.cache_stats.invalidated == 0

    def test_selective_invalidation_is_per_entry(self, scenario):
        """One release evicts only the rewritings over its concepts."""
        engine = QueryEngine(scenario.ontology)
        engine.rewrite(EXEMPLARY_QUERY)
        engine.rewrite(FEEDBACK_QUERY)
        assert len(engine.cache) == 2

        register_w4(scenario)

        engine.rewrite(FEEDBACK_QUERY)   # hit (disjoint concepts)
        engine.rewrite(EXEMPLARY_QUERY)  # miss (Monitor/InfoMonitor)
        assert engine.cache_stats.hits == 1
        assert engine.cache_stats.invalidated == 1
        assert engine.cache_stats.survived_releases == 1

    def test_survivor_revalidates_once(self, scenario):
        engine = QueryEngine(scenario.ontology)
        engine.rewrite(FEEDBACK_QUERY)
        register_w4(scenario)
        engine.rewrite(FEEDBACK_QUERY)
        engine.rewrite(FEEDBACK_QUERY)
        # The second post-release lookup short-circuits: epoch matches.
        assert engine.cache_stats.survived_releases == 1
        assert engine.cache_stats.hits == 2


class TestStructureGuard:
    def test_ungoverned_mutation_evicts(self, scenario):
        """Edits that bypass Algorithm 1 still invalidate (safety net)."""
        engine = QueryEngine(scenario.ontology)
        engine.rewrite(EXEMPLARY_QUERY)
        scenario.ontology.globals.add_feature(
            SUP.InfoMonitor, SUP.jitter, datatype=XSD.double)
        result = engine.rewrite(EXEMPLARY_QUERY)
        assert result is not None
        assert engine.cache_stats.structure_evictions == 1
        assert engine.cache_stats.hits == 0

    def test_bracketed_note_evolution_enables_selective_survival(
            self, scenario):
        """Stewards bracketing out-of-band edits keep unrelated
        entries."""
        engine = QueryEngine(scenario.ontology)
        cached = engine.rewrite(EXEMPLARY_QUERY)
        assert scenario.ontology.begin_evolution() is False
        scenario.ontology.globals.add_feature(
            DUV.UserFeedback, DUV.rating, datatype=XSD.integer)
        scenario.ontology.note_evolution(
            [DUV.UserFeedback], "steward added duv:rating")
        assert engine.rewrite(EXEMPLARY_QUERY) is cached
        assert engine.cache_stats.survived_releases == 1

    def test_unbracketed_note_evolution_is_conservative(self, scenario):
        """Without a bracket, note_evolution cannot tell the caller's
        edits from a third party's: the event flushes everything."""
        engine = QueryEngine(scenario.ontology)
        engine.rewrite(EXEMPLARY_QUERY)
        scenario.ontology.globals.add_feature(
            DUV.UserFeedback, DUV.rating, datatype=XSD.integer)
        event = scenario.ontology.note_evolution(
            [DUV.UserFeedback], "unbracketed")
        assert event.ungoverned
        engine.rewrite(EXEMPLARY_QUERY)
        assert engine.cache_stats.structure_evictions == 1

    def test_bracket_does_not_launder_foreign_edits(self, scenario):
        """A third party's unreported edit cannot ride an honest
        steward's attribution: the bracket remembers it."""
        engine = QueryEngine(scenario.ontology)
        engine.rewrite(EXEMPLARY_QUERY)
        # Third party silently drops a triple from w1's LAV mapping.
        lav = scenario.ontology.mappings.mapping_graph_of("w1")
        lav.remove(next(iter(lav)))
        # Honest steward brackets their own unrelated edit.
        assert scenario.ontology.begin_evolution() is True
        scenario.ontology.globals.add_feature(
            DUV.UserFeedback, DUV.rating, datatype=XSD.integer)
        event = scenario.ontology.note_evolution(
            [DUV.UserFeedback], "steward added duv:rating")
        assert event.ungoverned
        engine.rewrite(EXEMPLARY_QUERY)
        assert engine.cache_stats.structure_evictions == 1
        assert engine.cache_stats.hits == 0


class TestStructureGuardAcrossReleases:
    def test_unabsorbed_edit_degrades_next_release_to_flush(
            self, scenario):
        """An ungoverned edit followed by an unrelated release must not
        slip through the epoch path: the release event is marked
        ungoverned and flushes even concept-disjoint entries."""
        engine = QueryEngine(scenario.ontology)
        engine.rewrite(FEEDBACK_QUERY)
        # Direct edit on a VoD concept, not reported to governance...
        scenario.ontology.globals.add_feature(
            SUP.InfoMonitor, SUP.jitter, datatype=XSD.double)
        # ...then a release on VoD concepts lands (epoch advances).
        register_w4(scenario)
        engine.rewrite(FEEDBACK_QUERY)  # disjoint, but cannot be proven
        assert engine.cache_stats.structure_evictions == 1
        assert engine.cache_stats.survived_releases == 0

    def test_edit_after_release_detected(self, scenario):
        """Mutations landing after the latest event are caught by the
        recorded-structure comparison on the survival path."""
        engine = QueryEngine(scenario.ontology)
        engine.rewrite(FEEDBACK_QUERY)
        register_w4(scenario)  # governed, disjoint from the entry
        scenario.ontology.globals.add_feature(
            DUV.UserFeedback, DUV.rating, datatype=XSD.integer)
        engine.rewrite(FEEDBACK_QUERY)
        assert engine.cache_stats.structure_evictions == 1
        assert engine.cache_stats.survived_releases == 0

    def test_count_neutral_edit_detected(self, scenario):
        """Remove-one-add-one keeps every triple count identical; the
        mutation counter still perturbs the structural hash."""
        ontology = scenario.ontology
        engine = QueryEngine(ontology)
        engine.rewrite(EXEMPLARY_QUERY)
        before = ontology.triple_counts()
        ontology.g.remove((SC.SoftwareApplication, SUP.hasMonitor,
                           SUP.Monitor))
        ontology.g.add((SC.SoftwareApplication, SUP.hasMonitor,
                        SUP.FeedbackGathering))
        assert ontology.triple_counts() == before  # counts unchanged
        engine.rewrite(EXEMPLARY_QUERY)
        assert engine.cache_stats.structure_evictions == 1

    def test_wrapper_remapping_invalidates_old_concepts(self, scenario):
        """Re-releasing a wrapper with a different subgraph invalidates
        the concepts its PREVIOUS mapping covered, not just the new
        ones."""
        from repro.core.release import Release, new_release
        from repro.rdf.graph import Graph
        from repro.rdf.namespace import DCT, G as G_NS

        engine = QueryEngine(scenario.ontology)
        cached = engine.rewrite(FEEDBACK_QUERY)  # uses w2 over feedback

        # w2 is re-released mapping ONLY UserFeedback (new attributes,
        # so the stable-semantics rule of §3.2 is not violated).
        sub = Graph()
        sub.add((DUV.UserFeedback, G_NS.hasFeature, DCT.description))
        new_release(scenario.ontology, Release(
            wrapper_name="w2", source_name="D2",
            id_attributes=(), non_id_attributes=("body",),
            subgraph=sub,
            attribute_to_feature={"body": DCT.description}))

        # The event must carry FeedbackGathering (old subgraph) even
        # though the new subgraph only spans UserFeedback.
        event = scenario.ontology.evolution_since(3)[-1]
        assert SUP.FeedbackGathering in event.concepts
        assert engine.rewrite(FEEDBACK_QUERY) is not cached
        assert engine.cache_stats.invalidated == 1

    def test_dataset_mutation_count_monotonic_across_graph_drop(self):
        """Drop-and-recreate of a graph cannot reproduce an earlier
        fingerprint."""
        from repro.rdf.dataset import Dataset
        ds = Dataset()
        g = ds.graph("urn:g:x")
        g.add(("urn:a", "urn:p", "urn:b"))
        before = ds.mutation_count()
        ds.remove_graph("urn:g:x")
        ds.graph("urn:g:x").add(("urn:a2", "urn:p", "urn:b2"))
        assert ds.mutation_count() > before

    def test_governed_api_does_not_absorb_foreign_edits(self):
        """Out-of-band edits before gov.apply() degrade the release
        event to ungoverned instead of being silently attributed."""
        api = RestApi("Svc")
        endpoint = Endpoint("GET /items")
        endpoint.add_version(ApiVersion("1", [
            FieldSpec("id", "int"), FieldSpec("val", "string")]))
        api.add_endpoint(endpoint)
        gov = GovernedApi(api)
        gov.model_endpoint("GET /items", id_field="id")

        engine = QueryEngine(gov.ontology)
        items_q = """
        SELECT ?x WHERE {
            VALUES (?x) { (<urn:api:Svc:GET_items/val>) }
            <urn:api:Svc:GET_items> G:hasFeature
                <urn:api:Svc:GET_items/val>
        }
        """
        engine.rewrite(items_q)
        # Foreign edit: a concept minted outside GovernedApi's control.
        gov.ontology.globals.add_concept(SUP.Monitor)
        gov.apply(Change(ChangeKind.PARAM_ADD_PARAMETER, "Svc",
                         {"endpoint": "GET /items",
                          "parameter": "extra"}))
        event = gov.ontology.evolution_since(gov.ontology.epoch - 1)[-1]
        assert event.ungoverned
        engine.rewrite(items_q)
        assert engine.cache_stats.structure_evictions == 1

    def test_failed_release_no_partial_state_and_bracket_reset(
            self, scenario):
        """A rejected release (§3.2 remap conflict) mutates nothing and
        leaves no stale attribution bracket behind."""
        from repro.core.release import Release, new_release
        from repro.errors import ReleaseError
        from repro.rdf.graph import Graph
        from repro.rdf.namespace import G as G_NS

        ontology = scenario.ontology
        engine = QueryEngine(ontology)
        engine.rewrite(FEEDBACK_QUERY)
        lav_before = ontology.mappings.mapping_graph_of("w2").copy()
        counts_before = ontology.triple_counts()
        epoch_before = ontology.epoch

        sub = Graph()
        sub.add((SUP.FeedbackGathering, G_NS.hasFeature,
                 SUP.feedbackGatheringId))
        bad = Release("w2", "D2", (), ("tweet",), sub,
                      {"tweet": SUP.feedbackGatheringId})
        with pytest.raises(ReleaseError):
            new_release(ontology, bad)

        assert ontology.mappings.mapping_graph_of("w2") == lav_before
        assert ontology.triple_counts() == counts_before
        assert ontology.epoch == epoch_before
        # A later unbracketed note sees reality, not a stale bracket.
        ontology.globals.add_feature(DUV.UserFeedback, DUV.rating)
        event = ontology.note_evolution([DUV.UserFeedback], "later")
        assert event.ungoverned

    def test_mdm_register_release_absorbs_steward_prep(self, scenario):
        """The steward facade can attribute G extensions made in
        preparation of a release, keeping the event fine-grained."""
        from repro.core.release import Release
        from repro.rdf.graph import Graph
        from repro.rdf.namespace import G as G_NS
        from repro.rdf.namespace import Namespace
        from repro.wrappers.base import StaticWrapper

        mdm = MDM(scenario.ontology)
        cached = mdm.rewrite(FEEDBACK_QUERY)

        # Steward extends G for a brand-new InfoMonitor feature...
        SUPX = Namespace(str(SUP))
        scenario.ontology.globals.add_feature(
            SUP.InfoMonitor, SUPX["droppedFrames"], datatype=XSD.integer)
        sub = Graph()
        sub.add((SUP.InfoMonitor, G_NS.hasFeature, SUPX["droppedFrames"]))
        wrapper = StaticWrapper(
            "w1b", "D1", id_attributes=[],
            non_id_attributes=["frames"], rows=[{"frames": 3}],
            projection={"frames": "frames"})
        # ...and lands the release attributing the prep edit.
        mdm.register_release(
            Release.for_wrapper(wrapper, sub,
                                {"frames": SUPX["droppedFrames"]}),
            absorbed_concepts={SUP.InfoMonitor})

        event = scenario.ontology.evolution_since(
            scenario.ontology.epoch - 1)[-1]
        assert not event.ungoverned
        assert SUP.InfoMonitor in event.concepts
        # The feedback entry is concept-disjoint and survives.
        assert mdm.rewrite(FEEDBACK_QUERY) is cached
        assert mdm.cache.stats.survived_releases == 1

    def test_governed_api_steward_edits_are_absorbed(self):
        """GovernedApi's G extensions ride the release event: a release
        on one endpoint never flushes other endpoints' entries."""
        api = RestApi("Svc")
        for name in ("GET /a", "GET /b"):
            endpoint = Endpoint(name)
            endpoint.add_version(ApiVersion("1", [
                FieldSpec("id", "int"), FieldSpec("val", "string")]))
            api.add_endpoint(endpoint)
        gov = GovernedApi(api)
        gov.model_endpoint("GET /a", id_field="id")
        gov.model_endpoint("GET /b", id_field="id")

        engine = QueryEngine(gov.ontology)
        b_query = """
        SELECT ?x WHERE {
            VALUES (?x) { (<urn:api:Svc:GET_b/val>) }
            <urn:api:Svc:GET_b> G:hasFeature <urn:api:Svc:GET_b/val>
        }
        """
        cached = engine.rewrite(b_query)
        # Adding a parameter to /a extends G (steward edit) + releases.
        gov.apply(Change(ChangeKind.PARAM_ADD_PARAMETER, "Svc",
                         {"endpoint": "GET /a", "parameter": "extra"}))
        assert engine.rewrite(b_query) is cached
        assert engine.cache_stats.survived_releases == 1
        assert engine.cache_stats.structure_evictions == 0


class TestCacheMechanics:
    def test_lru_eviction(self, scenario):
        cache = RewriteCache(max_entries=1)
        engine = QueryEngine(scenario.ontology, cache=cache)
        engine.rewrite(EXEMPLARY_QUERY)
        engine.rewrite(FEEDBACK_QUERY)
        assert len(cache) == 1
        assert cache.stats.lru_evictions == 1
        engine.rewrite(EXEMPLARY_QUERY)  # was evicted -> miss
        assert cache.stats.hits == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            RewriteCache(max_entries=0)

    def test_contradictory_cache_arguments_rejected(self, scenario):
        with pytest.raises(ValueError):
            QueryEngine(scenario.ontology, cache=RewriteCache(),
                        use_cache=False)
        with pytest.raises(ValueError):
            MDM(scenario.ontology, cache=RewriteCache(),
                use_cache=False)

    def test_shared_cache_never_cross_serves_ontologies(self):
        """Two structurally identical ontologies sharing one cache must
        not serve each other's rewritings."""
        cache = RewriteCache()
        a = build_supersede()
        b = build_supersede()
        engine_a = QueryEngine(a.ontology, cache=cache)
        engine_b = QueryEngine(b.ontology, cache=cache)
        result_a = engine_a.rewrite(EXEMPLARY_QUERY)
        result_b = engine_b.rewrite(EXEMPLARY_QUERY)
        assert result_b is not result_a
        assert cache.stats.hits == 0

    def test_parse_memo_tracks_prefix_changes(self, scenario):
        engine = QueryEngine(scenario.ontology)
        text = ("SELECT ?x WHERE { VALUES (?x) { (sup:lagRatio) } "
                "sup:InfoMonitor G:hasFeature sup:lagRatio }")
        first = engine._parse(text)
        assert engine._parse(text) is first  # memoized
        engine.prefixes["extra"] = "urn:extra:"
        assert engine._parse(text) is not first  # memo invalidated

    def test_manual_concept_invalidation(self, scenario):
        engine = QueryEngine(scenario.ontology)
        engine.rewrite(EXEMPLARY_QUERY)
        engine.rewrite(FEEDBACK_QUERY)
        evicted = engine.cache.invalidate_concepts([SUP.InfoMonitor])
        assert evicted == 1
        assert len(engine.cache) == 1

    def test_clear(self, scenario):
        engine = QueryEngine(scenario.ontology)
        engine.rewrite(EXEMPLARY_QUERY)
        assert engine.clear_cache() == 1
        assert len(engine.cache) == 0

    def test_fingerprint_stable_without_mutation(self, ontology):
        assert ontology.fingerprint() == ontology.fingerprint()

    def test_epoch_counts_releases(self):
        scenario = build_supersede()  # w1-w3: three releases
        assert scenario.ontology.epoch == 3
        register_w4(scenario)
        assert scenario.ontology.epoch == 4
        events = scenario.ontology.evolution_since(3)
        assert len(events) == 1
        assert SUP.Monitor in events[0].concepts
        assert SUP.InfoMonitor in events[0].concepts
        assert SUP.FeedbackGathering not in events[0].concepts


class TestGovernedApiImpact:
    @pytest.fixture()
    def gov(self):
        api = RestApi("Svc")
        endpoint = Endpoint("GET /items")
        endpoint.add_version(ApiVersion("1", [
            FieldSpec("itemId", "int"), FieldSpec("name", "string")]))
        api.add_endpoint(endpoint)
        governed = GovernedApi(api)
        governed.model_endpoint("GET /items", id_field="itemId")
        return governed

    def test_wrapper_side_change_has_no_impact(self, gov):
        epoch = gov.ontology.epoch
        report = gov.apply(Change(
            ChangeKind.API_CHANGE_RATE_LIMIT, "Svc", {"limit": 7}))
        assert report.affected_concepts == frozenset()
        assert gov.ontology.epoch == epoch  # no release, no epoch bump

    def test_ontology_side_change_names_its_concept(self, gov):
        epoch = gov.ontology.epoch
        report = gov.apply(Change(
            ChangeKind.PARAM_ADD_PARAMETER, "Svc",
            {"endpoint": "GET /items", "parameter": "stock"}))
        concept = gov.state("GET /items").concept
        assert report.affected_concepts == frozenset({concept})
        assert gov.ontology.epoch == epoch + 1
        assert concept in gov.last_release_impact

    def test_rename_method_resolves_new_name(self, gov):
        report = gov.apply(Change(
            ChangeKind.METHOD_CHANGE_METHOD_NAME, "Svc",
            {"endpoint": "GET /items", "new_name": "GET /products"}))
        concept = gov.state("GET /products").concept
        assert report.affected_concepts == frozenset({concept})

    def test_delete_method_preserves_cache(self, gov):
        report = gov.apply(Change(
            ChangeKind.METHOD_DELETE_METHOD, "Svc",
            {"endpoint": "GET /items"}))
        assert report.affected_concepts == frozenset()

    def test_param_rename_does_not_mistake_new_name_for_endpoint(
            self, gov):
        """For parameter renames, new_name is a parameter — even when
        it collides with another endpoint's name."""
        gov.apply(Change(ChangeKind.METHOD_ADD_METHOD, "Svc",
                         {"endpoint": "orders",
                          "fields": [("oid", "int")], "id_field": "oid"}))
        report = gov.apply(Change(
            ChangeKind.PARAM_RENAME_RESPONSE_PARAMETER, "Svc",
            {"endpoint": "GET /items", "parameter": "name",
             "new_name": "orders"}))
        items_concept = gov.state("GET /items").concept
        orders_concept = gov.state("orders").concept
        assert orders_concept not in report.affected_concepts
        assert report.affected_concepts == frozenset({items_concept})

    def test_release_impact_preview_covers_remapped_wrapper(self):
        """The preview matches what Algorithm 1 will record for a
        wrapper re-release."""
        from repro.core.release import Release
        from repro.evolution.release_builder import release_impact
        from repro.rdf.graph import Graph
        from repro.rdf.namespace import DCT, G as G_NS

        scenario = build_supersede()
        sub = Graph()
        sub.add((DUV.UserFeedback, G_NS.hasFeature, DCT.description))
        remap = Release("w2", "D2", (), ("body",), sub,
                        {"body": DCT.description})
        assert release_impact(remap) == frozenset({DUV.UserFeedback})
        full = release_impact(remap, scenario.ontology)
        assert SUP.FeedbackGathering in full  # old w2 subgraph concept

    def test_api_level_format_change_touches_every_concept(self, gov):
        gov.apply(Change(ChangeKind.METHOD_ADD_METHOD, "Svc",
                         {"endpoint": "GET /r",
                          "fields": [("rid", "int")], "id_field": "rid"}))
        report = gov.apply(Change(
            ChangeKind.API_ADD_RESPONSE_FORMAT, "Svc", {"format": "xml"}))
        concepts = {state.concept
                    for state in (gov.state("GET /items"),
                                  gov.state("GET /r"))}
        assert report.affected_concepts == frozenset(concepts)


class TestMDMIntegration:
    def test_statistics_expose_cache(self, scenario):
        mdm = MDM(scenario.ontology)
        mdm.rewrite(EXEMPLARY_QUERY)
        mdm.rewrite(EXEMPLARY_QUERY)
        stats = mdm.statistics()
        assert stats["cache_hits"] == 1
        assert stats["cached_rewritings"] == 1
        assert stats["evolution_epoch"] == 3

    def test_steward_release_invalidates_analyst_cache(self, scenario):
        mdm = MDM(scenario.ontology)
        mdm.rewrite(EXEMPLARY_QUERY)
        register_w4(scenario)
        assert len(mdm.rewrite(EXEMPLARY_QUERY).walks) == 2

    def test_describe_cache(self, scenario):
        mdm = MDM(scenario.ontology)
        mdm.rewrite(EXEMPLARY_QUERY)
        text = mdm.describe_cache()
        assert "1/256 entries" in text
        assert "InfoMonitor" in text

    def test_describe_cache_disabled(self, scenario):
        mdm = MDM(scenario.ontology, use_cache=False)
        assert "disabled" in mdm.describe_cache()
        assert mdm.rewrite(EXEMPLARY_QUERY) is not None
