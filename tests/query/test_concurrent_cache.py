"""RewriteCache under concurrency: consistent stats, no stale servings.

Satellite coverage for the serving layer: threaded tests hammer one
shared cache from many engines/threads and assert the counters never
tear, plus release-ordering tests proving that once a release has
landed, ``answer_many`` never serves a pre-release rewriting. A
hypothesis test pins the canonical-key property the whole dedupe path
rests on (surface syntax does not split cache entries).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from hypothesis import given, settings, strategies as st

from repro.query.cache import RewriteCache, canonical_omq_key
from repro.query.engine import QueryEngine
from repro.service import (
    analyst_panel, build_industrial_service, next_version_release,
)

THREADS = 8
ROUNDS = 40


class TestThreadedCacheConsistency:
    def test_stats_stay_consistent_under_contention(self):
        scenario = build_industrial_service()
        cache = RewriteCache(max_entries=3)  # force LRU churn too
        queries = scenario.query_texts()
        barrier = threading.Barrier(THREADS)

        def hammer(seed: int) -> None:
            engine = QueryEngine(scenario.ontology, cache=cache)
            barrier.wait()
            for i in range(ROUNDS):
                engine.rewrite(queries[(seed + i) % len(queries)])

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            list(pool.map(hammer, range(THREADS)))

        stats = cache.stats
        assert stats.lookups == THREADS * ROUNDS
        assert stats.hits + stats.misses == stats.lookups
        assert len(cache) <= 3
        # Every entry is accounted for: each miss stored once, and a
        # stored entry either is still live, was replaced by a racing
        # duplicate miss, or was evicted by exactly one counter.
        assert stats.stores == stats.misses
        assert stats.stores == (
            len(cache) + stats.replacements + stats.lru_evictions
            + stats.invalidated + stats.structure_evictions
            + stats.lineage_evictions)

    def test_concurrent_invalidation_never_tears_counters(self):
        scenario = build_industrial_service()
        engine = scenario.mdm.engine
        cache = scenario.mdm.cache
        panel = analyst_panel(scenario, analysts=4)
        stop = threading.Event()

        def invalidator() -> None:
            concepts = [entry.concepts for entry in cache.entries()]
            while not stop.is_set():
                for concept_set in concepts:
                    cache.invalidate_concepts(concept_set)
                cache.clear()
        engine.answer_many(panel)  # prime entries for the invalidator

        thread = threading.Thread(target=invalidator)
        thread.start()
        try:
            for _ in range(10):
                relations = engine.answer_many(panel, workers=4)
                assert all(len(r.rows) == 24 for r in relations)
        finally:
            stop.set()
            thread.join(timeout=10)
        stats = cache.stats
        assert stats.hits + stats.misses == stats.lookups


class TestInvalidationOrdering:
    def test_answer_many_never_serves_pre_release_rewritings(self):
        """After a release lands, batches must reflect it immediately."""
        scenario = build_industrial_service()
        engine = scenario.mdm.engine
        query = scenario.queries["twitter_api"]
        panel = analyst_panel(scenario, analysts=4)

        engine.answer_many(panel, workers=4)  # warm every entry
        before = {len(r.rows) for q, r in zip(
            panel, engine.answer_many(panel, workers=4)) if q == query}
        assert before == {24}

        scenario.mdm.register_release(
            next_version_release(scenario, "twitter_api"))

        for _ in range(3):
            relations = engine.answer_many(panel, workers=4)
            for q, relation in zip(panel, relations):
                expected = 48 if q == query else 24
                assert len(relation.rows) == expected, \
                    "stale pre-release rewriting served after release"
        # Only the touched concept's entry was invalidated.
        assert scenario.mdm.cache.stats.invalidated == 1

    def test_interleaved_batches_and_releases(self):
        scenario = build_industrial_service()
        engine = scenario.mdm.engine
        query = scenario.queries["amazon_mws"]
        engine.answer_many(analyst_panel(scenario, analysts=2))
        for version in (2, 3, 4):
            scenario.mdm.register_release(next_version_release(
                scenario, "amazon_mws", version=version))
            relations = engine.answer_many([query] * 6, workers=4)
            # v1 ∪ ... ∪ vN over disjoint 24-row id ranges.
            assert {len(r.rows) for r in relations} == {24 * version}


class TestCanonicalKeyProperty:
    _WS = st.sampled_from([" ", "  ", "\n", "\n    "])

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_surface_syntax_never_splits_keys(self, data):
        """Shuffled triple order + arbitrary whitespace → one key."""
        from repro.query.omq import parse_omq
        triples = [
            "sc:SoftwareApplication G:hasFeature sup:applicationId",
            "sc:SoftwareApplication sup:hasMonitor sup:Monitor",
            "sup:Monitor sup:generatesQoS sup:InfoMonitor",
            "sup:InfoMonitor G:hasFeature sup:lagRatio",
        ]
        shuffled = data.draw(st.permutations(triples))
        ws = data.draw(self._WS)
        query = (
            "SELECT ?x ?y WHERE {" + ws
            + "VALUES (?x ?y) { (sup:applicationId sup:lagRatio) }" + ws
            + (" ." + ws).join(shuffled) + ws + "}")
        reference = parse_omq(
            "SELECT ?x ?y WHERE {\n"
            "VALUES (?x ?y) { (sup:applicationId sup:lagRatio) }\n"
            + " .\n".join(triples) + "\n}")
        assert canonical_omq_key(parse_omq(query)) == \
            canonical_omq_key(reference)
