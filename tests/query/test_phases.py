"""Unit tests for the three rewriting phases (Algorithms 3, 4, 5)."""

import pytest

from repro.datasets import EXEMPLARY_QUERY
from repro.query.expansion import query_expansion
from repro.query.inter_concept import inter_concept_generation
from repro.query.intra_concept import intra_concept_generation
from repro.query.omq import parse_omq
from repro.query.well_formed import well_formed_query
from repro.rdf.namespace import G as G_NS, SC, SUP


@pytest.fixture()
def prepared(ontology):
    omq = well_formed_query(ontology, parse_omq(EXEMPLARY_QUERY))
    concepts, expanded = query_expansion(ontology, omq)
    return ontology, omq, concepts, expanded


@pytest.fixture()
def prepared_evolved(evolved_scenario):
    ontology = evolved_scenario.ontology
    omq = well_formed_query(ontology, parse_omq(EXEMPLARY_QUERY))
    concepts, expanded = query_expansion(ontology, omq)
    return ontology, omq, concepts, expanded


class TestPhase1Expansion:
    def test_concepts_in_topological_order(self, prepared):
        _, _, concepts, _ = prepared
        assert concepts == [SC.SoftwareApplication, SUP.Monitor,
                            SUP.InfoMonitor]

    def test_monitor_id_added(self, prepared):
        """The paper's example: Q'G gains sup:monitorId."""
        _, omq, _, expanded = prepared
        assert not omq.phi.contains(SUP.Monitor, G_NS.hasFeature,
                                    SUP.monitorId)
        assert expanded.phi.contains(SUP.Monitor, G_NS.hasFeature,
                                     SUP.monitorId)

    def test_expansion_adds_exactly_ids(self, prepared):
        _, omq, _, expanded = prepared
        assert len(expanded.phi) == len(omq.phi) + 1

    def test_pi_unchanged(self, prepared):
        _, omq, _, expanded = prepared
        assert expanded.pi == omq.pi


class TestPhase2IntraConcept:
    def test_partial_walks_match_paper(self, prepared):
        ontology, _, concepts, expanded = prepared
        partial = intra_concept_generation(ontology, concepts, expanded)
        by_concept = {cw.concept: cw.walks for cw in partial}
        assert {w.wrapper_names for w in
                by_concept[SC.SoftwareApplication]} == {frozenset({"w3"})}
        assert {next(iter(w.wrapper_names)) for w in
                by_concept[SUP.Monitor]} == {"w1", "w3"}
        assert {next(iter(w.wrapper_names)) for w in
                by_concept[SUP.InfoMonitor]} == {"w1"}

    def test_partial_walks_are_single_wrapper(self, prepared):
        ontology, _, concepts, expanded = prepared
        partial = intra_concept_generation(ontology, concepts, expanded)
        for cw in partial:
            for walk in cw.walks:
                assert len(walk) == 1

    def test_projections_select_requested_non_ids(self, prepared):
        ontology, _, concepts, expanded = prepared
        partial = intra_concept_generation(ontology, concepts, expanded)
        info = next(cw for cw in partial
                    if cw.concept == SUP.InfoMonitor)
        assert info.walks[0].projected_attributes() == {"D1/lagRatio"}

    def test_pruning_partial_providers(self, prepared_evolved):
        """A wrapper missing one requested feature must be pruned."""
        ontology, _, _, _ = prepared_evolved
        # Query asking both lagRatio and bitrate of InfoMonitor: no
        # wrapper provides bitrate, so InfoMonitor gets no partial walk.
        from repro.query.omq import OMQ
        from repro.rdf.graph import Graph
        query = OMQ(
            pi=[SUP.lagRatio, SUP.bitrate],
            phi=Graph([
                (SUP.InfoMonitor, G_NS.hasFeature, SUP.lagRatio),
                (SUP.InfoMonitor, G_NS.hasFeature, SUP.bitrate),
            ]))
        concepts, expanded = query_expansion(ontology, query)
        partial = intra_concept_generation(ontology, concepts, expanded)
        assert partial[0].walks == []

    def test_evolved_monitor_gains_w4(self, prepared_evolved):
        ontology, _, concepts, expanded = prepared_evolved
        partial = intra_concept_generation(ontology, concepts, expanded)
        monitor = next(cw for cw in partial if cw.concept == SUP.Monitor)
        names = {next(iter(w.wrapper_names)) for w in monitor.walks}
        assert names == {"w1", "w3", "w4"}


class TestPhase3InterConcept:
    def test_single_final_walk(self, prepared):
        ontology, _, concepts, expanded = prepared
        partial = intra_concept_generation(ontology, concepts, expanded)
        walks = inter_concept_generation(ontology, partial, expanded)
        assert len(walks) == 1
        walk = walks[0]
        assert walk.wrapper_names == frozenset({"w1", "w3"})
        conditions = {str(j) for j in walk.joins}
        assert conditions == {
            "w1.D1/VoDmonitorId=w3.D3/MonitorId"}

    def test_evolution_yields_two_walks(self, prepared_evolved):
        """§2.1: after the w4 release the query becomes a 2-branch UCQ."""
        ontology, _, concepts, expanded = prepared_evolved
        partial = intra_concept_generation(ontology, concepts, expanded)
        walks = inter_concept_generation(ontology, partial, expanded)
        wrapper_sets = {w.wrapper_names for w in walks}
        assert wrapper_sets == {frozenset({"w1", "w3"}),
                                frozenset({"w3", "w4"})}

    def test_same_source_wrappers_never_joined(self, prepared_evolved):
        ontology, _, concepts, expanded = prepared_evolved
        partial = intra_concept_generation(ontology, concepts, expanded)
        walks = inter_concept_generation(ontology, partial, expanded)
        for walk in walks:
            assert not {"w1", "w4"} <= set(walk.wrapper_names)

    def test_walks_are_connected(self, prepared_evolved):
        ontology, _, concepts, expanded = prepared_evolved
        partial = intra_concept_generation(ontology, concepts, expanded)
        for walk in inter_concept_generation(ontology, partial, expanded):
            assert walk.is_connected()
