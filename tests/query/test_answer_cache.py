"""Full answer cache: unit semantics, engine integration, evidence-based
invalidation (ontology fingerprint + wrapper data_versions)."""

import pytest

from repro.datasets import EXEMPLARY_QUERY, build_supersede
from repro.datasets.supersede import register_w4
from repro.query import AnswerCache, QueryEngine
from repro.relational import Relation
from repro.relational.schema import RelationSchema


def relation_of(n):
    schema = RelationSchema.of("r", ids=["id"], non_ids=[], source=None)
    return Relation(schema, [{"id": i} for i in range(n)])


VERSIONS = (("w1", 0), ("w3", 2))


class TestAnswerCacheUnit:
    def test_store_then_hit(self):
        cache = AnswerCache()
        answer = relation_of(2)
        cache.store("q", True, "fp", VERSIONS, answer)
        assert cache.lookup("q", True, "fp", VERSIONS) is answer
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1
        assert "q" in cache

    def test_distinct_keys_separately(self):
        cache = AnswerCache()
        bag, dedup = relation_of(3), relation_of(2)
        cache.store("q", False, "fp", VERSIONS, bag)
        cache.store("q", True, "fp", VERSIONS, dedup)
        assert len(cache) == 2
        assert cache.lookup("q", False, "fp", VERSIONS) is bag
        assert cache.lookup("q", True, "fp", VERSIONS) is dedup

    def test_fingerprint_mismatch_evicts(self):
        cache = AnswerCache()
        cache.store("q", True, "fp1", VERSIONS, relation_of(1))
        assert cache.lookup("q", True, "fp2", VERSIONS) is None
        assert cache.stats.evictions == 1
        assert cache.stats.misses == 1
        assert len(cache) == 0  # gone, not retried

    def test_data_version_mismatch_evicts(self):
        cache = AnswerCache()
        cache.store("q", True, "fp", VERSIONS, relation_of(1))
        moved = (("w1", 0), ("w3", 3))
        assert cache.lookup("q", True, "fp", moved) is None
        assert cache.stats.evictions == 1

    def test_lru_eviction_past_cap(self):
        cache = AnswerCache(max_entries=2)
        for key in ("a", "b", "c"):
            cache.store(key, True, "fp", VERSIONS, relation_of(1))
        assert len(cache) == 2
        assert "a" not in cache  # oldest dropped
        # a hit refreshes recency
        cache.lookup("b", True, "fp", VERSIONS)
        cache.store("d", True, "fp", VERSIONS, relation_of(1))
        assert "b" in cache and "c" not in cache

    def test_clear_counts_invalidations(self):
        cache = AnswerCache()
        cache.store("q", True, "fp", VERSIONS, relation_of(1))
        assert cache.clear() == 1
        assert cache.clear() == 0  # empty clears are not events
        assert cache.stats.invalidations == 1
        snapshot = cache.stats.snapshot()
        assert snapshot["stores"] == 1
        assert snapshot["hit_rate"] == 0.0

    def test_max_entries_validated(self):
        with pytest.raises(ValueError):
            AnswerCache(max_entries=0)


@pytest.fixture()
def scenario():
    return build_supersede(with_evolution=True)


def count_fetches(scenario):
    counts: dict[str, int] = {}
    for name, wrapper in scenario.wrappers.items():
        original = wrapper.fetch_rows

        def counted(columns=None, id_filter=None, _o=original, _n=name):
            counts[_n] = counts.get(_n, 0) + 1
            return _o(columns=columns, id_filter=id_filter)

        wrapper.fetch_rows = counted
    return counts


class TestEngineIntegration:
    def test_warm_repeat_skips_execution_entirely(self, scenario):
        counts = count_fetches(scenario)
        engine = QueryEngine(scenario.ontology)
        first = engine.answer(EXEMPLARY_QUERY)
        fetched = sum(counts.values())
        assert fetched > 0
        second = engine.answer(EXEMPLARY_QUERY)
        assert second is first  # the materialized answer itself
        assert sum(counts.values()) == fetched  # zero new fetches
        assert engine.answer_cache_stats.hits == 1

    def test_data_version_bump_invalidates(self, scenario):
        # incremental=False restores the original evict-and-recompute
        # contract (the patch path is covered in tests/streaming/)
        engine = QueryEngine(scenario.ontology, incremental=False)
        before = engine.answer(EXEMPLARY_QUERY)
        w3 = scenario.wrappers["w3"]
        w3.replace_rows(w3._rows)  # same data, new data_version
        after = engine.answer(EXEMPLARY_QUERY)
        assert after is not before
        assert after == before  # recomputed, same content
        assert engine.answer_cache.stats.evictions == 1

    def test_data_version_bump_patches_incrementally(self, scenario):
        engine = QueryEngine(scenario.ontology)
        assert engine.incremental  # the default
        before = engine.answer(EXEMPLARY_QUERY)
        w3 = scenario.wrappers["w3"]
        w3.replace_rows(w3._rows)  # same data, new data_version
        after = engine.answer(EXEMPLARY_QUERY)
        assert after == before  # maintained, same content
        stats = engine.answer_cache.stats
        assert stats.evictions == 0  # kept, not evicted
        assert stats.seeds == 1  # standing query attached lazily
        # further churn rides the now-seeded standing query
        w3.replace_rows(w3._rows)
        again = engine.answer(EXEMPLARY_QUERY)
        assert again == before
        assert engine.answer_cache.stats.patches >= 1

    def test_release_invalidates_via_fingerprint(self):
        scenario = build_supersede()  # pre-evolution
        engine = QueryEngine(scenario.ontology)
        before = engine.answer(EXEMPLARY_QUERY)
        register_w4(scenario)  # release: w4 branch appears
        after = engine.answer(EXEMPLARY_QUERY)
        assert after is not before
        assert len(after) >= len(before)
        assert engine.answer_cache.stats.hits == 0

    def test_distinct_flag_keys_separately(self, scenario):
        engine = QueryEngine(scenario.ontology)
        engine.answer(EXEMPLARY_QUERY, distinct=True)
        engine.answer(EXEMPLARY_QUERY, distinct=False)
        assert len(engine.answer_cache) == 2
        assert engine.answer_cache.stats.hits == 0

    def test_explicit_provider_bypasses_cache(self, scenario):
        engine = QueryEngine(scenario.ontology)
        provider = {
            name: wrapper.relation(qualified=True)
            for name, wrapper in scenario.wrappers.items()}
        engine.answer(EXEMPLARY_QUERY, provider=provider)
        assert len(engine.answer_cache) == 0
        assert engine.answer_cache.stats.lookups == 0

    def test_disabled_cache(self, scenario):
        engine = QueryEngine(scenario.ontology, use_answer_cache=False)
        engine.answer(EXEMPLARY_QUERY)
        engine.answer(EXEMPLARY_QUERY)
        assert engine.answer_cache is None
        assert engine.answer_cache_stats is None
        assert engine.clear_answer_cache() == 0

    def test_explicit_cache_contradiction_raises(self, scenario):
        with pytest.raises(ValueError, match="contradicts"):
            QueryEngine(scenario.ontology, answer_cache=AnswerCache(),
                        use_answer_cache=False)

    def test_env_kill_switch(self, scenario, monkeypatch):
        monkeypatch.setenv("REPRO_ANSWER_CACHE", "0")
        assert QueryEngine(scenario.ontology).answer_cache is None
        # an explicit cache beats the environment
        explicit = AnswerCache()
        engine = QueryEngine(scenario.ontology, answer_cache=explicit)
        assert engine.answer_cache is explicit
        # the serving layer keeps a detached (empty) cache for its
        # observability surfaces but the engine never populates it
        from repro.mdm import MDM
        service = MDM(scenario.ontology).serving()
        service.answer(EXEMPLARY_QUERY)
        service.answer(EXEMPLARY_QUERY)
        assert service.answer_cache.stats.lookups == 0
        assert len(service.answer_cache) == 0

    def test_shared_cache_across_engines(self, scenario):
        shared = AnswerCache()
        one = QueryEngine(scenario.ontology, answer_cache=shared)
        two = QueryEngine(scenario.ontology, answer_cache=shared)
        one.answer(EXEMPLARY_QUERY)
        two.answer(EXEMPLARY_QUERY)
        assert shared.stats.hits == 1

    def test_row_engine_populates_the_same_cache(self, scenario):
        engine = QueryEngine(scenario.ontology, vectorized=False)
        first = engine.answer(EXEMPLARY_QUERY)
        assert engine.answer(EXEMPLARY_QUERY) is first

    def test_clear_answer_cache(self, scenario):
        engine = QueryEngine(scenario.ontology)
        engine.answer(EXEMPLARY_QUERY)
        assert engine.clear_answer_cache() == 1
        assert len(engine.answer_cache) == 0


class TestServiceIntegration:
    def test_release_clears_answer_cache(self):
        from repro.mdm import MDM
        scenario = build_supersede()  # pre-evolution
        mdm = MDM(scenario.ontology)
        service = mdm.serving()
        service.answer(EXEMPLARY_QUERY)
        assert len(service.answer_cache) == 1
        register_w4(scenario)
        assert len(service.answer_cache) == 0  # listener cleared it
        assert service.answer_cache.stats.invalidations == 1

    def test_describe_reports_answer_cache(self, scenario):
        from repro.mdm import MDM
        service = MDM(scenario.ontology).serving()
        service.answer(EXEMPLARY_QUERY)
        service.answer(EXEMPLARY_QUERY)
        assert "answer cache" in service.describe()

    def test_mdm_statistics_expose_answer_cache(self, scenario):
        from repro.mdm import MDM
        mdm = MDM(scenario.ontology)
        mdm.query(EXEMPLARY_QUERY)
        mdm.query(EXEMPLARY_QUERY)
        stats = mdm.statistics()
        assert stats["cached_answers"] == 1
        assert stats["answer_cache_hits"] == 1
