"""Unit tests for the rewriter pipeline, coverage filter, UCQ, engine."""

import pytest

from repro.datasets import EXEMPLARY_QUERY
from repro.errors import UnanswerableQueryError
from repro.query.coverage import is_covering, is_minimal, lav_union
from repro.query.engine import QueryEngine
from repro.query.omq import parse_omq
from repro.query.rewriter import rewrite
from repro.rdf.namespace import DCT, G as G_NS, SC, SUP


class TestCoverage:
    def test_final_walks_are_covering_and_minimal(self, ontology):
        result = rewrite(ontology, EXEMPLARY_QUERY)
        for walk in result.walks:
            assert is_covering(ontology, walk, result.well_formed)
            assert is_minimal(ontology, walk, result.well_formed)

    def test_lav_union_merges(self, ontology):
        union = lav_union(ontology, {"w1", "w3"})
        assert union.contains(SUP.Monitor, SUP.generatesQoS,
                              SUP.InfoMonitor)
        assert union.contains(SC.SoftwareApplication, SUP.hasMonitor,
                              SUP.Monitor)

    def test_single_wrapper_walk_minimal(self, ontology):
        from repro.relational.walk import Walk
        schema = ontology.wrapper_relation_schema("w1")
        walk = Walk.single(schema, {"D1/lagRatio"})
        query = parse_omq("""
            SELECT ?x WHERE {
                VALUES (?x) { (sup:lagRatio) }
                sup:InfoMonitor G:hasFeature sup:lagRatio }""")
        assert is_covering(ontology, walk, query)
        assert is_minimal(ontology, walk, query)

    def test_superfluous_wrapper_not_minimal(self, ontology):
        from repro.relational.walk import JoinCondition, Walk
        walk = Walk.single(ontology.wrapper_relation_schema("w1"),
                           {"D1/lagRatio"})
        walk.add_wrapper(ontology.wrapper_relation_schema("w3"), set())
        walk.add_join(JoinCondition("w1", "D1/VoDmonitorId",
                                    "w3", "D3/MonitorId"))
        query = parse_omq("""
            SELECT ?x WHERE {
                VALUES (?x) { (sup:lagRatio) }
                sup:InfoMonitor G:hasFeature sup:lagRatio }""")
        assert is_covering(ontology, walk, query)
        assert not is_minimal(ontology, walk, query)


class TestRewriter:
    def test_report_mentions_phases(self, ontology):
        result = rewrite(ontology, EXEMPLARY_QUERY)
        report = result.report()
        assert "phase 1" in report
        assert "phase 2" in report
        assert "phase 3" in report

    def test_rejected_bucket_empty_on_running_example(self, ontology):
        result = rewrite(ontology, EXEMPLARY_QUERY)
        assert result.rejected == []
        assert "rejected (not covering and minimal)" not in result.report()

    def test_report_lists_rejected_walk_notations(self, ontology):
        """Cache-debugging output is self-contained: rejected walks are
        printed, not just counted."""
        from repro.relational.walk import Walk
        result = rewrite(ontology, EXEMPLARY_QUERY)
        rejected = Walk.single(ontology.wrapper_relation_schema("w1"),
                               {"D1/lagRatio"})
        result.rejected.append(rejected)
        report = result.report()
        assert "1 rejected" in report
        assert "rejected (not covering and minimal):" in report
        assert rejected.notation() in report

    def test_deterministic_output_order(self, evolved_scenario):
        t = evolved_scenario.ontology
        first = rewrite(t, EXEMPLARY_QUERY)
        second = rewrite(t, EXEMPLARY_QUERY)
        assert [w.wrapper_names for w in first.walks] == \
            [w.wrapper_names for w in second.walks]


class TestUCQ:
    def test_branch_count_after_evolution(self, evolved_scenario):
        result = rewrite(evolved_scenario.ontology, EXEMPLARY_QUERY)
        ucq = result.ucq
        assert len(ucq) == 2
        assert "∪" in ucq.to_expression(
            evolved_scenario.ontology).notation()

    def test_column_naming(self, ontology):
        result = rewrite(ontology, EXEMPLARY_QUERY)
        ucq = result.ucq
        assert set(ucq.columns.values()) == {"applicationId", "lagRatio"}

    def test_column_collision_suffix(self, ontology):
        from repro.query.ucq import _feature_columns
        from repro.rdf.term import IRI
        cols = _feature_columns([IRI("http://a/x"), IRI("http://b/x")])
        assert sorted(cols.values()) == ["x", "x_2"]

    def test_empty_ucq_unanswerable(self, ontology):
        from repro.query.ucq import UCQ
        ucq = UCQ(features=[SUP.lagRatio], walks=[])
        with pytest.raises(UnanswerableQueryError):
            ucq.to_expression(ontology)


class TestEngine:
    def test_table2_reproduction(self, engine):
        """Table 2 of the paper: (1, 0.75), (1, 0.90), (2, 0.1)."""
        table = engine.answer(EXEMPLARY_QUERY)
        rows = sorted(table.as_tuples(["applicationId", "lagRatio"]))
        assert rows == [(1, 0.75), (1, 0.9), (2, 0.1)]

    def test_union_after_evolution(self, evolved_engine):
        table = evolved_engine.answer(EXEMPLARY_QUERY)
        rows = sorted(table.as_tuples(["applicationId", "lagRatio"]))
        assert rows == [(1, 0.25), (1, 0.75), (1, 0.9),
                        (2, 0.1), (2, 0.25)]

    def test_feedback_query(self, engine):
        query = """
        SELECT ?x ?y WHERE {
            VALUES (?x ?y) { (sup:applicationId dct:description) }
            sc:SoftwareApplication G:hasFeature sup:applicationId .
            sc:SoftwareApplication sup:hasFGTool sup:FeedbackGathering .
            sup:FeedbackGathering sup:generatesFeedback duv:UserFeedback .
            duv:UserFeedback G:hasFeature dct:description
        }
        """
        table = engine.answer(query)
        rows = dict(table.as_tuples(["applicationId", "description"]))
        assert rows[1] == "I continuously see the loading symbol"
        assert rows[2] == "Your video player is great!"

    def test_unanswerable_feature(self, engine):
        # bitrate exists in G but no wrapper provides it.
        query = """
        SELECT ?x WHERE {
            VALUES (?x) { (sup:bitrate) }
            sup:InfoMonitor G:hasFeature sup:bitrate
        }
        """
        with pytest.raises(UnanswerableQueryError):
            engine.answer(query)

    def test_explain_includes_ucq(self, engine):
        text = engine.explain(EXEMPLARY_QUERY)
        assert "final UCQ" in text
        assert "w1" in text and "w3" in text

    def test_single_concept_query(self, engine):
        query = """
        SELECT ?x ?y WHERE {
            VALUES (?x ?y) { (sup:monitorId sup:lagRatio) }
            sup:Monitor G:hasFeature sup:monitorId .
            sup:Monitor sup:generatesQoS sup:InfoMonitor .
            sup:InfoMonitor G:hasFeature sup:lagRatio
        }
        """
        table = engine.answer(query)
        rows = sorted(table.as_tuples(["monitorId", "lagRatio"]))
        assert rows == [(12, 0.75), (12, 0.9), (18, 0.1)]

    def test_distinct_flag(self, evolved_engine):
        distinct = evolved_engine.answer(EXEMPLARY_QUERY, distinct=True)
        bag = evolved_engine.answer(EXEMPLARY_QUERY, distinct=False)
        assert len(bag) >= len(distinct)
