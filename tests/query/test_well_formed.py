"""Unit tests for Algorithm 2 (well-formed queries)."""

import pytest

from repro.datasets import EXEMPLARY_QUERY
from repro.errors import (
    CyclicQueryError, MalformedQueryError, NoIdentifierError,
)
from repro.query.omq import OMQ, parse_omq
from repro.query.well_formed import is_well_formed, well_formed_query
from repro.rdf.graph import Graph
from repro.rdf.namespace import DUV, G as G_NS, SC, SUP

#: Code 9 of the paper — projects concepts, hence not well-formed.
CODE9 = """
SELECT ?x ?y ?z
FROM <http://www.essi.upc.edu/~snadal/BDIOntology/Global>
WHERE {
    VALUES (?x ?y ?z) {
        (sc:SoftwareApplication sup:Monitor sup:FeedbackGathering)
    }
    sc:SoftwareApplication sup:hasMonitor sup:Monitor .
    sc:SoftwareApplication sup:hasFGTool sup:FeedbackGathering
}
"""


class TestAlreadyWellFormed:
    def test_exemplary_query_unchanged(self, ontology):
        omq = parse_omq(EXEMPLARY_QUERY)
        result = well_formed_query(ontology, omq)
        assert result.pi == omq.pi
        assert result.phi == omq.phi

    def test_is_well_formed_predicate(self, ontology):
        assert is_well_formed(ontology, parse_omq(EXEMPLARY_QUERY))
        assert not is_well_formed(ontology, parse_omq(CODE9))


class TestConceptSubstitution:
    def test_code9_becomes_code10(self, ontology):
        """The paper's Code 9 → Code 10 rewriting."""
        result = well_formed_query(ontology, parse_omq(CODE9))
        assert set(result.pi) == {
            SUP.applicationId, SUP.monitorId, SUP.feedbackGatheringId}
        # φ gained the three hasFeature triples of Code 10.
        assert result.phi.contains(SC.SoftwareApplication,
                                   G_NS.hasFeature, SUP.applicationId)
        assert result.phi.contains(SUP.Monitor, G_NS.hasFeature,
                                   SUP.monitorId)
        assert result.phi.contains(SUP.FeedbackGathering,
                                   G_NS.hasFeature,
                                   SUP.feedbackGatheringId)

    def test_input_not_mutated(self, ontology):
        omq = parse_omq(CODE9)
        well_formed_query(ontology, omq)
        assert SC.SoftwareApplication in omq.pi

    def test_concept_without_id_rejected(self, ontology):
        # InfoMonitor has no ID feature.
        query = OMQ(
            pi=[SUP.InfoMonitor],
            phi=Graph([(SUP.Monitor, SUP.generatesQoS, SUP.InfoMonitor)]))
        with pytest.raises(NoIdentifierError):
            well_formed_query(ontology, query)


class TestRejections:
    def test_cyclic_pattern_rejected(self, ontology):
        query = OMQ(
            pi=[SUP.monitorId],
            phi=Graph([
                (SUP.Monitor, SUP.generatesQoS, SUP.InfoMonitor),
                (SUP.InfoMonitor, SUP.generatesQoS, SUP.Monitor),
                (SUP.Monitor, G_NS.hasFeature, SUP.monitorId),
            ]))
        with pytest.raises(CyclicQueryError):
            well_formed_query(ontology, query)

    def test_unknown_projection_rejected(self, ontology):
        from repro.rdf.term import IRI
        ghost = IRI("http://x/ghost")
        query = OMQ(
            pi=[ghost],
            phi=Graph([(SUP.Monitor, G_NS.hasFeature, ghost)]))
        with pytest.raises(MalformedQueryError, match="neither"):
            well_formed_query(ontology, query)

    def test_projected_feature_must_be_in_phi(self, ontology):
        query = OMQ(
            pi=[SUP.lagRatio],
            phi=Graph([(SUP.Monitor, SUP.generatesQoS, SUP.InfoMonitor)]))
        with pytest.raises(MalformedQueryError, match="not part of φ"):
            well_formed_query(ontology, query)
