"""QueryEngine.answer_many: dedupe, fan-out, ordering, parse-memo LRU."""

from __future__ import annotations

import pytest

from repro.datasets import EXEMPLARY_QUERY
from repro.errors import UnanswerableQueryError
from repro.query.engine import QueryEngine

#: the same OMQ as EXEMPLARY_QUERY under different SPARQL surface syntax
#: (reordered WHERE triples, different whitespace) — one canonical key
VARIANT_QUERY = """
SELECT ?x ?y
FROM <http://www.essi.upc.edu/~snadal/BDIOntology/Global>
WHERE {
    VALUES (?x ?y) { (sup:applicationId sup:lagRatio) }
    sup:InfoMonitor G:hasFeature sup:lagRatio .
    sup:Monitor sup:generatesQoS sup:InfoMonitor .
    sc:SoftwareApplication sup:hasMonitor sup:Monitor .
    sc:SoftwareApplication   G:hasFeature   sup:applicationId
}
"""


def _canon(relation) -> list[tuple]:
    return sorted(tuple(sorted(row.items())) for row in relation.rows)


class TestBatchAnswering:
    def test_results_align_with_input_order(self, engine):
        single = engine.answer(EXEMPLARY_QUERY)
        batch = engine.answer_many(
            [EXEMPLARY_QUERY, VARIANT_QUERY, EXEMPLARY_QUERY])
        assert len(batch) == 3
        for relation in batch:
            assert _canon(relation) == _canon(single)

    def test_textual_variants_rewrite_once_and_share_result(
            self, ontology):
        engine = QueryEngine(ontology)
        batch = engine.answer_many(
            [EXEMPLARY_QUERY, VARIANT_QUERY, EXEMPLARY_QUERY],
            workers=4)
        # One canonical key → one cache miss, results share the object.
        assert engine.cache_stats.misses == 1
        assert engine.cache_stats.hits == 0
        assert batch[0] is batch[1]
        assert batch[1] is batch[2]

    def test_threaded_equals_sequential(self, ontology):
        sequential = QueryEngine(ontology).answer_many(
            [EXEMPLARY_QUERY, VARIANT_QUERY])
        threaded = QueryEngine(ontology).answer_many(
            [EXEMPLARY_QUERY, VARIANT_QUERY], workers=8)
        assert [_canon(r) for r in sequential] == \
            [_canon(r) for r in threaded]

    def test_empty_batch(self, engine):
        assert engine.answer_many([]) == []

    def test_uncached_engine_still_batches(self, ontology):
        engine = QueryEngine(ontology, use_cache=False)
        batch = engine.answer_many([EXEMPLARY_QUERY, VARIANT_QUERY],
                                   workers=2)
        assert _canon(batch[0]) == _canon(batch[1])


class TestBatchFailures:
    # bitrate exists in G but no wrapper provides it.
    UNANSWERABLE = """
    SELECT ?x WHERE {
        VALUES (?x) { (sup:bitrate) }
        sup:InfoMonitor G:hasFeature sup:bitrate
    }
    """

    def test_default_raises_after_settling(self, engine):
        with pytest.raises(UnanswerableQueryError):
            engine.answer_many([EXEMPLARY_QUERY, self.UNANSWERABLE],
                               workers=2)

    def test_return_exceptions_keeps_slots(self, engine):
        batch = engine.answer_many(
            [EXEMPLARY_QUERY, self.UNANSWERABLE, EXEMPLARY_QUERY],
            workers=2, return_exceptions=True)
        assert isinstance(batch[1], UnanswerableQueryError)
        assert _canon(batch[0]) == _canon(batch[2])


class TestParseMemo:
    def test_memo_is_lru_bounded(self, ontology):
        engine = QueryEngine(ontology, parse_memo_max=2)
        spacings = [EXEMPLARY_QUERY + "\n" * i for i in range(5)]
        for query in spacings:
            engine.rewrite(query)
        assert engine.parse_memo_size() == 2
        # All five texts canonicalize onto one cached rewriting.
        assert engine.cache_stats.misses == 1
        assert engine.cache_stats.hits == 4

    def test_memo_keeps_recently_used_entries(self, ontology):
        engine = QueryEngine(ontology, parse_memo_max=2)
        a, b, c = (EXEMPLARY_QUERY, EXEMPLARY_QUERY + "\n",
                   EXEMPLARY_QUERY + "\n\n")
        engine.rewrite(a)
        engine.rewrite(b)
        engine.rewrite(a)  # refresh a; b is now the LRU victim
        engine.rewrite(c)  # evicts b
        size_before = engine.parse_memo_size()
        engine.rewrite(a)  # must still be memoized — no growth
        assert engine.parse_memo_size() == size_before == 2

    def test_prefix_change_clears_memo(self, ontology):
        engine = QueryEngine(ontology)
        engine.rewrite(EXEMPLARY_QUERY)
        engine.rewrite(EXEMPLARY_QUERY + "\n")
        assert engine.parse_memo_size() == 2
        engine.prefixes["extra"] = "urn:extra:"
        engine.rewrite(EXEMPLARY_QUERY)
        # The stale memo (built under the old bindings) was dropped.
        assert engine.parse_memo_size() == 1

    def test_parse_memo_max_validated(self, ontology):
        with pytest.raises(ValueError):
            QueryEngine(ontology, parse_memo_max=0)
