"""Planner tests: randomized planned/naive equivalence, join ordering,
explain annotations and engine/service integration."""

import random

import pytest

from repro.datasets import EXEMPLARY_QUERY, build_supersede
from repro.errors import RewritingError, UnanswerableQueryError
from repro.query import QueryEngine
from repro.query.planner import plan_ucq, plan_walk
from repro.relational.algebra import FinalProject, Union
from repro.relational.physical import (
    CachingScanProvider, PhysicalHashJoin, PhysicalScan,
    RelationScanProvider, ScanCache, WrapperScanProvider,
)
from repro.relational.rows import Relation
from repro.relational.schema import RelationSchema
from repro.relational.walk import JoinCondition, Walk
from repro.wrappers.base import StaticWrapper


# ---------------------------------------------------------------------------
# Randomized equivalence: physical plan vs. naive logical evaluation
# ---------------------------------------------------------------------------


def random_chain(rng: random.Random, wrappers: int, rows_max: int = 12):
    """A random chain walk w0-w1-... with provider data and a final
    projection mapping — the shape rewriting produces."""
    schemas, provider, all_non_ids = {}, {}, []
    for i in range(wrappers):
        non_ids = [f"D{i}/x{j}" for j in range(rng.randint(0, 3))]
        schema = RelationSchema.of(
            f"w{i}", ids=[f"D{i}/id"], non_ids=non_ids, source=f"D{i}")
        schemas[f"w{i}"] = schema
        rows = []
        for _ in range(rng.randint(0, rows_max)):
            row = {f"D{i}/id": rng.randint(0, 6)}
            row.update({n: rng.randint(0, 4) for n in non_ids})
            rows.append(row)
        provider[f"w{i}"] = Relation(schema, rows)
        all_non_ids.extend(non_ids)

    walk = Walk()
    for name, schema in schemas.items():
        projected = {n for n in schema.non_id_names
                     if rng.random() < 0.7}
        walk.add_wrapper(schema, projected)
    for i in range(wrappers - 1):
        walk.add_join(JoinCondition(f"w{i}", f"D{i}/id",
                                    f"w{i + 1}", f"D{i + 1}/id"))

    # Output mapping: a non-empty random subset of the walk's outputs.
    outputs = sorted(walk.output_attributes())
    chosen = [a for a in outputs if rng.random() < 0.6] or [outputs[0]]
    mapping = {f"col{k}": attr for k, attr in enumerate(chosen)}
    return walk, mapping, provider


@pytest.mark.parametrize("use_accel", [True, False])
@pytest.mark.parametrize("seed", range(30))
def test_randomized_walk_equivalence(seed, use_accel, monkeypatch):
    from repro.relational import accel
    if not use_accel:
        monkeypatch.setattr(accel, "numpy", None)
    elif not accel.available():  # pragma: no cover - numpy-less env
        pytest.skip("numpy unavailable")
    rng = random.Random(seed)
    walk, mapping, provider = random_chain(rng, rng.randint(1, 4))
    logical = FinalProject(walk.to_expression(), mapping)
    naive = logical.evaluate(provider)

    scans = RelationScanProvider(provider)
    branch = plan_walk(walk, mapping, scans.estimate)
    planned = branch.execute(scans)
    assert planned == naive

    # The vectorized engine must agree with the row engine exactly,
    # and the encoded/fused tier with both.
    vectorized = branch.execute_batch(scans).to_relation()
    assert vectorized == naive
    encoded = branch.execute_encoded(scans).to_relation()
    assert encoded == naive

    # Unknown cardinalities must not change the answer either.
    blind = plan_walk(walk, mapping, lambda name: None)
    assert blind.execute(scans) == naive
    assert blind.execute_batch(scans).to_relation() == naive
    assert blind.execute_encoded(scans).to_relation() == naive


@pytest.mark.parametrize("seed", range(12))
@pytest.mark.parametrize("distinct", [True, False])
def test_randomized_union_equivalence(seed, distinct):
    rng = random.Random(1000 + seed)
    branches_logical, branches_physical = [], []
    provider = {}
    n_branches = rng.randint(1, 3)
    scans = None
    for b in range(n_branches):
        walk, _, branch_provider = random_chain(rng, rng.randint(1, 3))
        # Align all branches on one output schema: project each walk's
        # first ID attribute onto a common column name.
        first_id = sorted(
            a for s in walk.schemas.values() for a in s.id_names)[0]
        mapping = {"the_id": first_id}
        # Distinct wrapper names per branch to build one provider.
        renamed_provider = {}
        renamed_walk = Walk()
        rename = {name: f"b{b}_{name}" for name in walk.schemas}
        for name, schema in walk.schemas.items():
            new_schema = RelationSchema(rename[name], schema.attributes,
                                        f"b{b}_{schema.source}")
            renamed_walk.add_wrapper(new_schema, walk.projections[name])
            renamed_provider[rename[name]] = Relation(
                new_schema, branch_provider[name].rows)
        for join in walk.joins:
            renamed_walk.add_join(JoinCondition(
                rename[join.left_wrapper], join.left_attribute,
                rename[join.right_wrapper], join.right_attribute))
        provider.update(renamed_provider)
        branches_logical.append(
            FinalProject(renamed_walk.to_expression(), mapping))
        scans = RelationScanProvider(provider)
        branches_physical.append(
            plan_walk(renamed_walk, mapping, scans.estimate))

    from repro.relational.physical import PhysicalUnion
    naive = Union(branches_logical, distinct=distinct).evaluate(provider)
    union = PhysicalUnion(tuple(branches_physical), distinct=distinct)
    assert union.execute(scans) == naive
    assert union.execute_batch(scans).to_relation() == naive
    assert union.execute_encoded(scans).to_relation() == naive


def test_empty_wrapper_edge_case():
    schema = RelationSchema.of("w0", ids=["D0/id"], non_ids=["D0/a"],
                               source="D0")
    walk = Walk.single(schema, {"D0/a"})
    provider = {"w0": Relation(schema, [])}
    mapping = {"a": "D0/a"}
    scans = RelationScanProvider(provider)
    branch = plan_walk(walk, mapping, scans.estimate)
    planned = branch.execute(scans)
    naive = FinalProject(walk.to_expression(), mapping) \
        .evaluate(provider)
    assert planned == naive
    assert len(planned) == 0
    assert len(branch.execute_batch(scans)) == 0


# ---------------------------------------------------------------------------
# Planner structure
# ---------------------------------------------------------------------------


def two_wrapper_walk(left_rows, right_rows):
    s1 = RelationSchema.of("wa", ids=["DA/id"], non_ids=["DA/v"],
                           source="DA")
    s2 = RelationSchema.of("wb", ids=["DB/id"], non_ids=["DB/v"],
                           source="DB")
    walk = Walk()
    walk.add_wrapper(s1, {"DA/v"})
    walk.add_wrapper(s2, {"DB/v"})
    walk.add_join(JoinCondition("wa", "DA/id", "wb", "DB/id"))
    provider = {
        "wa": Relation(s1, left_rows),
        "wb": Relation(s2, right_rows),
    }
    return walk, provider


class TestJoinOrdering:
    def test_smaller_side_builds(self):
        left = [{"DA/id": i, "DA/v": i} for i in range(10)]
        right = [{"DB/id": 1, "DB/v": 1}]
        walk, provider = two_wrapper_walk(left, right)
        scans = RelationScanProvider(provider)
        branch = plan_walk(walk, {"v": "DA/v"}, scans.estimate)
        join = branch.child
        assert isinstance(join, PhysicalHashJoin)
        # wb (1 row) is the build side; wa (10 rows) probes and can
        # receive the semi-join filter.
        assert join.build.wrapper_name == "wb"
        assert join.probe.wrapper_name == "wa"
        assert join.build_estimate == 1

    def test_unknown_estimates_fall_back_to_alphabetical(self):
        walk, provider = two_wrapper_walk(
            [{"DA/id": 1, "DA/v": 1}], [{"DB/id": 1, "DB/v": 1}])
        branch = plan_walk(walk, {"v": "DA/v"}, lambda name: None)
        join = branch.child
        assert join.build.wrapper_name == "wa"  # tree starts at 'wa'

    def test_projection_pushdown_columns(self):
        walk, provider = two_wrapper_walk(
            [{"DA/id": 1, "DA/v": 2}], [{"DB/id": 1, "DB/v": 3}])
        # Only DA/v is output: wb contributes just its join key.
        branch = plan_walk(walk, {"v": "DA/v"},
                           RelationScanProvider(provider).estimate)
        scans = {s.wrapper_name: s for s in _scans_of(branch)}
        assert scans["wb"].columns == ("DB/id",)
        assert scans["wa"].columns is None  # full width needed

    def test_redundant_join_conditions_rejected(self):
        walk, _ = two_wrapper_walk([], [])
        walk.joins.add(JoinCondition("wa", "DA/id", "wb", "DB/id")
                       .normalized())
        # Inject a second, cyclic condition between the same wrappers
        # via a parallel ID attribute is not possible here; instead
        # check the planner refuses a disconnected walk.
        s3 = RelationSchema.of("wc", ids=["DC/id"], non_ids=[],
                               source="DC")
        walk.add_wrapper(s3, set())
        with pytest.raises(RewritingError, match="not connected"):
            plan_walk(walk, {"v": "DA/v"}, lambda n: None)


def _scans_of(node):
    if isinstance(node, PhysicalScan):
        yield node
    for attr in ("build", "probe", "child"):
        child = getattr(node, attr, None)
        if child is not None:
            yield from _scans_of(child)
    for branch in getattr(node, "branches", ()):
        yield from _scans_of(branch)


# ---------------------------------------------------------------------------
# Engine integration
# ---------------------------------------------------------------------------


@pytest.fixture()
def evolved():
    return build_supersede(with_evolution=True)


class TestEngineIntegration:
    def test_planned_equals_naive_on_supersede(self, evolved):
        planned = QueryEngine(evolved.ontology).answer(EXEMPLARY_QUERY)
        naive = QueryEngine(evolved.ontology, use_planner=False,
                            use_cache=False).answer(EXEMPLARY_QUERY)
        assert planned == naive
        assert len(planned) > 0

    def test_ucq_execute_planned_equals_naive(self, evolved):
        engine = QueryEngine(evolved.ontology)
        result = engine.rewrite(EXEMPLARY_QUERY)
        planned = result.ucq.execute(evolved.ontology)
        naive = result.ucq.execute(evolved.ontology, use_planner=False)
        assert planned == naive

    def test_answer_many_shares_scans(self, evolved):
        fetches = []
        for wrapper in evolved.wrappers.values():
            original = wrapper.fetch_rows

            def counted(columns=None, id_filter=None, _o=original,
                        _n=wrapper.name):
                fetches.append(_n)
                return _o(columns=columns, id_filter=id_filter)

            wrapper.fetch_rows = counted
        engine = QueryEngine(evolved.ontology)
        batch = [EXEMPLARY_QUERY] * 6
        results = engine.answer_many(batch)
        assert all(len(r) > 0 for r in results)
        # Dedup by canonical key answers once; within that one
        # evaluation the shared w3 scan fetches a single time.
        assert fetches.count("w3") == 1

    def test_explain_shows_physical_plan(self, evolved):
        text = QueryEngine(evolved.ontology).explain(EXEMPLARY_QUERY)
        assert "physical plan" in text
        assert "pushed" in text
        assert "shared ×2" in text
        assert "semi-join" in text
        assert "final UCQ" in text

    def test_explain_without_planner_keeps_logical_form(self, evolved):
        text = QueryEngine(evolved.ontology,
                           use_planner=False).explain(EXEMPLARY_QUERY)
        assert "physical plan" not in text
        assert "final UCQ" in text

    def test_plan_method_matches_execution_path(self, evolved):
        engine = QueryEngine(evolved.ontology)
        plan = engine.plan(EXEMPLARY_QUERY)
        assert plan.wrappers() == {"w1", "w3", "w4"}
        assert "physical plan" in plan.explain()

    def test_plan_unanswerable_raises(self, evolved):
        engine = QueryEngine(evolved.ontology)
        query = """
        SELECT ?x WHERE {
            VALUES (?x) { (sup:bitrate) }
            sup:InfoMonitor G:hasFeature sup:bitrate
        }
        """
        with pytest.raises(UnanswerableQueryError):
            engine.plan(query)

    def test_plan_ucq_empty_walks_raises(self, evolved):
        from repro.query.ucq import UCQ
        with pytest.raises(UnanswerableQueryError):
            plan_ucq(evolved.ontology, UCQ(features=[], walks=[]))


class TestAdaptivePlanning:
    def metrics_tree(self, wa_rows=100, wb_rows=10, out_rows=5):
        """A hand-built metrics tree shaped like wa ⋈ wb."""
        from repro.relational.metrics import PlanMetrics
        return PlanMetrics(
            kind="join", label="⋈ₕ[DA/id=DB/id]", rows_out=out_rows,
            detail={"conditions": "DA/id=DB/id"},
            children=[
                PlanMetrics(kind="scan", label="scan wa",
                            rows_out=wa_rows,
                            detail={"wrapper": "wa"}),
                PlanMetrics(kind="scan", label="scan wb",
                            rows_out=wb_rows,
                            detail={"wrapper": "wb"}),
            ])

    def test_observe_feeds_estimator_and_join_refiner(self):
        from repro.query.planner import CardinalityMemo
        memo = CardinalityMemo()
        assert memo.observe(self.metrics_tree(), lambda name: 0)
        assert memo.version == 1
        # Observed cardinalities override the base estimator…
        estimate = memo.estimator(lambda name: 1, lambda name: 0)
        assert estimate("wa") == 100
        assert estimate("wb") == 10
        assert estimate("unseen") == 1  # …wrapper by wrapper.
        # Join selectivity 5/(100×10) refines chained estimates
        # orientation-free.
        conditions = (("DA/id", "DB/id"),)
        assert memo.join_estimate(conditions, 100, 10) == 5
        assert memo.join_estimate((("DB/id", "DA/id"),), 200, 10) == 10
        assert memo.join_estimate(conditions, None, 10) is None
        # Re-observing the same numbers changes nothing.
        assert not memo.observe(self.metrics_tree(), lambda name: 0)
        assert memo.version == 1

    def test_filtered_scans_are_not_observed(self):
        from repro.query.planner import CardinalityMemo
        from repro.relational.metrics import PlanMetrics
        memo = CardinalityMemo()
        filtered = PlanMetrics(kind="scan", label="scan wa [σ]",
                               rows_out=3,
                               detail={"wrapper": "wa",
                                       "filtered": True})
        assert not memo.observe(filtered, lambda name: 0)
        assert memo.scan_estimate("wa", 0) is None

    def test_data_version_keys_out_stale_observations(self):
        from repro.query.planner import CardinalityMemo
        memo = CardinalityMemo()
        memo.observe(self.metrics_tree(wa_rows=100), lambda name: 0)
        assert memo.scan_estimate("wa", 0) == 100
        # A write bumps the wrapper's data version: the observation
        # keyed under the old version no longer answers.
        assert memo.scan_estimate("wa", 1) is None
        memo.observe(self.metrics_tree(wa_rows=7), lambda name: 1)
        assert memo.scan_estimate("wa", 1) == 7
        assert memo.scan_estimate("wa", 0) is None  # superseded

    def test_observed_cardinalities_flip_the_build_side(self):
        walk, provider = two_wrapper_walk(
            [{"DA/id": 1, "DA/v": 1}], [{"DB/id": 1, "DB/v": 1}])
        base = {"wa": 1, "wb": 10}.get
        join = plan_walk(walk, {"v": "DA/v"}, base).child
        assert join.build.wrapper_name == "wa"  # trusts the estimates

        from repro.query.planner import CardinalityMemo
        memo = CardinalityMemo()
        memo.observe(self.metrics_tree(wa_rows=100, wb_rows=10),
                     lambda name: 0)
        learned = memo.estimator(base, lambda name: 0)
        rejoin = plan_walk(walk, {"v": "DA/v"}, learned).child
        assert rejoin.build.wrapper_name == "wb"  # observed truth wins

    def test_engine_replans_once_the_memo_learns(self, evolved):
        engine = QueryEngine(evolved.ontology)
        memo = engine.adaptive_memo
        assert memo is not None
        first = engine.plan(EXEMPLARY_QUERY)
        assert first.memo_version == memo.version
        engine.answer(EXEMPLARY_QUERY)
        assert memo.snapshot()["scan_observations"] > 0
        # Execution taught the memo: the cached plan is stale and the
        # next planning sees the observed cardinalities.
        second = engine.plan(EXEMPLARY_QUERY)
        assert second is not first
        assert second.memo_version == memo.version
        # With nothing new learned, the plan is reused as before.
        assert engine.plan(EXEMPLARY_QUERY) is second

    def test_repro_adaptive_env_kill_switch(self, evolved, monkeypatch):
        from repro.query.planner import adaptive_env_enabled
        monkeypatch.setenv("REPRO_ADAPTIVE", "0")
        assert not adaptive_env_enabled()
        engine = QueryEngine(evolved.ontology)
        assert engine.adaptive_memo is None
        planned = engine.answer(EXEMPLARY_QUERY)
        naive = QueryEngine(evolved.ontology, use_planner=False,
                            use_cache=False).answer(EXEMPLARY_QUERY)
        assert planned == naive  # the kill switch never changes answers
        # An explicit adaptive=True overrides the environment.
        assert QueryEngine(evolved.ontology,
                           adaptive=True).adaptive_memo is not None
        monkeypatch.delenv("REPRO_ADAPTIVE")
        assert QueryEngine(evolved.ontology,
                           adaptive=False).adaptive_memo is None

    def test_explain_analyze_renders_runtime_metrics(self, evolved):
        # The answer cache would serve the second run from memory and
        # leave the re-planned plan unexecuted (and metric-less).
        engine = QueryEngine(evolved.ontology, use_answer_cache=False)
        assert "not yet executed" in engine.explain(EXEMPLARY_QUERY,
                                                    analyze=True)
        # Two runs: the first teaches the memo (forcing a re-plan), the
        # second executes the settled plan and leaves its metrics on it.
        engine.answer(EXEMPLARY_QUERY)
        engine.answer(EXEMPLARY_QUERY)
        text = engine.explain(EXEMPLARY_QUERY, analyze=True)
        assert "runtime metrics (last run):" in text
        assert "rows=" in text and "ms" in text

    def test_wrapper_timings_aggregate_scans(self, evolved):
        engine = QueryEngine(evolved.ontology)
        engine.answer(EXEMPLARY_QUERY)
        timings = engine.wrapper_timings()
        assert timings  # at least one wrapper observed
        for entry in timings.values():
            assert entry["scans"] >= 1
            assert entry["seconds"] >= 0.0


class TestScanCacheIntegration:
    def counting_wrapper(self):
        calls = []

        class Counting(StaticWrapper):
            def fetch_rows(self, columns=None, id_filter=None):
                calls.append(1)
                return super().fetch_rows(columns, id_filter)

        wrapper = Counting("w1", "D1", ["id"], ["a"],
                           [{"id": 1, "a": 2}])
        return wrapper, calls

    def test_cache_shared_across_calls_until_data_changes(self):
        wrapper, calls = self.counting_wrapper()
        scans = CachingScanProvider(
            WrapperScanProvider({"w1": wrapper}.__getitem__),
            ScanCache())
        scans.scan("w1", columns=["D1/id"])
        scans.scan("w1", columns=["D1/id"])
        assert len(calls) == 1
        wrapper.replace_rows([{"id": 9, "a": 1}])
        assert scans.scan("w1", columns=["D1/id"]).rows == [{"D1/id": 9}]
        assert len(calls) == 2
