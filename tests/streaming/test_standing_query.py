"""StandingQuery: O(delta) maintenance of a materialized UCQ answer.

The invariant under test everywhere: after any churn + refresh, the
standing relation is bag-equal to a cold execution of the same plan.
"""

from repro.datasets import EXEMPLARY_QUERY, build_supersede
from repro.query.planner import plan_ucq
from repro.query.rewriter import rewrite
from repro.relational.physical import as_scan_provider
from repro.streaming import (
    DeltaBatch, StandingQuery, build_states, incremental_env_enabled,
)


def make_plan(scenario, distinct=True):
    result = rewrite(scenario.ontology, EXEMPLARY_QUERY)
    return plan_ucq(scenario.ontology, result.ucq, distinct=distinct)


def provider_of(scenario):
    return as_scan_provider(None, scenario.ontology.physical_wrapper)


def cold_answer(scenario, plan):
    return plan.execute(provider_of(scenario))


def standing(scenario, plan, **kwargs):
    sq = StandingQuery(plan, scenario.ontology.physical_wrapper,
                       **kwargs)
    sq.seed(provider_of(scenario))
    return sq


def bag(relation):
    counts: dict[tuple, int] = {}
    names = relation.schema.attribute_names
    for row in relation:
        key = tuple(row[n] for n in names)
        counts[key] = counts.get(key, 0) + 1
    return counts


class TestSeed:
    def test_seed_matches_cold_execution(self):
        scenario = build_supersede(with_evolution=True)
        plan = make_plan(scenario)
        sq = standing(scenario, plan)
        assert len(sq.relation) > 0
        assert bag(sq.relation) == bag(cold_answer(scenario, plan))
        assert sq.seeded
        assert sq.reseeds == 1

    def test_data_versions_match_engine_evidence(self):
        scenario = build_supersede(with_evolution=True)
        plan = make_plan(scenario)
        sq = standing(scenario, plan)
        scans = provider_of(scenario)
        expected = tuple(sorted(
            (name, scans.data_version(name))
            for name in plan.wrappers()))
        assert sq.data_versions() == expected

    def test_refresh_before_seed_seeds(self):
        scenario = build_supersede(with_evolution=True)
        plan = make_plan(scenario)
        sq = StandingQuery(plan, scenario.ontology.physical_wrapper)
        outcome = sq.refresh(provider_of(scenario))
        assert outcome.reseeded
        assert outcome.reason == "initial seed"
        assert bag(outcome.relation) == \
            bag(cold_answer(scenario, plan))


class TestRefresh:
    def churn(self, scenario):
        vod = scenario.store.get_collection("vod")
        vod.insert_one({"monitorId": 3001, "waitTime": 1.0,
                        "watchTime": 4.0})
        vod.update_many({"monitorId": 3001},
                        {"$set": {"waitTime": 2.0}})
        w3 = scenario.wrappers["w3"]
        w3.append_rows([{"appId": "app-3001", "monitorTool": 3001,
                         "feedbackTool": 42}])

    def test_exact_delta_patch(self):
        scenario = build_supersede(with_evolution=True)
        plan = make_plan(scenario)
        sq = standing(scenario, plan)
        self.churn(scenario)
        outcome = sq.refresh(provider_of(scenario))
        assert outcome.patched and not outcome.reseeded
        assert outcome.delta_rows > 0
        assert bag(outcome.relation) == \
            bag(cold_answer(scenario, plan))
        assert sq.patches == 1

    def test_noop_refresh_short_circuits(self):
        scenario = build_supersede(with_evolution=True)
        sq = standing(scenario, make_plan(scenario))
        outcome = sq.refresh(provider_of(scenario))
        assert outcome.patched and not outcome.reseeded
        assert outcome.reason == "no changes"
        assert outcome.delta_rows == 0

    def test_deletions_retract_join_results(self):
        scenario = build_supersede(with_evolution=True)
        plan = make_plan(scenario)
        sq = standing(scenario, plan)
        before = len(sq.relation)
        assert before > 0
        vod = scenario.store.get_collection("vod")
        victim = vod.find()[0]["monitorId"]
        vod.delete_many({"monitorId": victim})
        outcome = sq.refresh(provider_of(scenario))
        assert outcome.patched
        assert len(outcome.relation) < before
        assert bag(outcome.relation) == \
            bag(cold_answer(scenario, plan))

    def test_union_distinct_across_branches(self):
        # with_evolution=True already carries the w4 union branch
        scenario = build_supersede(with_evolution=True)
        plan = make_plan(scenario, distinct=True)
        sq = standing(scenario, plan)
        self.churn(scenario)
        scenario.store.get_collection("vod_v2").insert_one(
            {"monitorId": 3002, "waitTime": 1, "watchTime": 4})
        outcome = sq.refresh(provider_of(scenario))
        cold = cold_answer(scenario, plan)
        assert bag(outcome.relation) == bag(cold)
        assert max(bag(outcome.relation).values()) == 1  # distinct held

    def test_repeated_refreshes_stay_equivalent(self):
        scenario = build_supersede(with_evolution=True)
        plan = make_plan(scenario)
        sq = standing(scenario, plan)
        for tick in range(4):
            self.churn(scenario)
            outcome = sq.refresh(provider_of(scenario))
            assert bag(outcome.relation) == \
                bag(cold_answer(scenario, plan)), f"diverged at {tick}"

    def test_valve_reseeds_on_large_deltas(self):
        scenario = build_supersede(with_evolution=True)
        plan = make_plan(scenario)
        sq = standing(scenario, plan, min_delta_rows=1,
                      max_delta_fraction=0.0)
        self.churn(scenario)
        outcome = sq.refresh(provider_of(scenario))
        assert outcome.reseeded and not outcome.patched
        assert "exceeds threshold" in outcome.reason
        assert bag(outcome.relation) == \
            bag(cold_answer(scenario, plan))
        assert sq.reseeds == 2  # seed + valve

    def test_snapshot_diff_fallback_when_log_truncated(self):
        scenario = build_supersede(with_evolution=True)
        plan = make_plan(scenario)
        sq = standing(scenario, plan)
        vod = scenario.store.get_collection("vod")
        vod._change_log_limit = 1  # every multi-record interval dies
        vod.insert_one({"monitorId": 3001, "waitTime": 1.0,
                        "watchTime": 4.0})
        vod.insert_one({"monitorId": 3002, "waitTime": 2.0,
                        "watchTime": 4.0})
        outcome = sq.refresh(provider_of(scenario))
        assert outcome.patched  # still a patch, via snapshot diff
        assert bag(outcome.relation) == \
            bag(cold_answer(scenario, plan))

    def test_snapshot_reports_counters(self):
        scenario = build_supersede(with_evolution=True)
        sq = standing(scenario, make_plan(scenario))
        snap = sq.snapshot()
        assert snap["reseeds"] == 1 and snap["refreshes"] == 1
        assert snap["state_rows"] > 0
        assert snap["result_rows"] == len(sq.relation)


class TestStateFactory:
    def test_every_plan_leaf_gets_a_state(self):
        scenario = build_supersede(with_evolution=True)
        root, scans = build_states(make_plan(scenario).root)
        assert len(scans) >= 3  # w1, w3 and the w4 branch
        names = {s.wrapper_name for s in scans}
        assert {"w1", "w3", "w4"} <= names

    def test_empty_delta_batch_is_a_noop(self):
        scenario = build_supersede(with_evolution=True)
        root, scans = build_states(make_plan(scenario).root)
        empty = {s: DeltaBatch.empty(s.schema) for s in scans}
        out = root.apply(empty)
        assert len(out) == 0


def test_env_flag_parsing(monkeypatch):
    monkeypatch.delenv("REPRO_INCREMENTAL", raising=False)
    assert incremental_env_enabled()
    monkeypatch.setenv("REPRO_INCREMENTAL", "0")
    assert not incremental_env_enabled()
    monkeypatch.setenv("REPRO_INCREMENTAL", "1")
    assert incremental_env_enabled()


def test_snapshot_is_atomic_with_refresh(monkeypatch):
    # Regression: snapshot() read the counters and the relation without
    # the lock, so a monitor polling during a refresh could see the new
    # relation paired with the old counters (or vice versa). Holding
    # the query's RLock inside refresh() must not deadlock snapshot().
    import threading

    scenario = build_supersede(with_evolution=True)
    sq = standing(scenario, make_plan(scenario))
    seen: list[dict] = []

    def monitor() -> None:
        for _ in range(50):
            seen.append(sq.snapshot())

    with sq.lock:  # snapshot must block until maintenance releases
        t = threading.Thread(target=monitor)
        t.start()
        sq.refreshes += 1
        sq.refreshes -= 1
    t.join(timeout=30)
    assert not t.is_alive()
    assert all(s["result_rows"] == len(sq.relation) for s in seen)
