"""QueryEngine + answer cache on the incremental path: the patch
lifecycle, the kill switch, and the recompute fallback valve."""

import pytest

from repro.datasets import EXEMPLARY_QUERY, build_supersede
from repro.query import QueryEngine


@pytest.fixture()
def scenario():
    return build_supersede(with_evolution=True)


def churn(scenario, n=1):
    vod = scenario.store.get_collection("vod")
    for i in range(n):
        vod.insert_one({"monitorId": 5000 + i, "waitTime": 1.0,
                        "watchTime": 4.0})


class TestKillSwitch:
    def test_env_disables_incremental(self, scenario, monkeypatch):
        monkeypatch.setenv("REPRO_INCREMENTAL", "0")
        engine = QueryEngine(scenario.ontology)
        assert not engine.incremental
        engine.answer(EXEMPLARY_QUERY)
        churn(scenario)
        engine.answer(EXEMPLARY_QUERY)
        stats = engine.answer_cache.stats
        assert stats.evictions == 1  # the old contract: evict + rerun
        assert stats.seeds == 0 and stats.patches == 0

    def test_explicit_argument_beats_env(self, scenario, monkeypatch):
        monkeypatch.setenv("REPRO_INCREMENTAL", "0")
        assert QueryEngine(scenario.ontology, incremental=True
                           ).incremental
        monkeypatch.delenv("REPRO_INCREMENTAL")
        assert not QueryEngine(scenario.ontology, incremental=False
                               ).incremental


class TestPatchLifecycle:
    def test_patch_serves_correct_answer(self, scenario):
        engine = QueryEngine(scenario.ontology)
        cold = QueryEngine(scenario.ontology, use_answer_cache=False)
        engine.answer(EXEMPLARY_QUERY)
        for tick in range(3):
            churn(scenario, n=2)
            assert engine.answer(EXEMPLARY_QUERY) == \
                cold.answer(EXEMPLARY_QUERY), f"diverged at {tick}"
        stats = engine.answer_cache.stats
        assert stats.seeds == 1
        assert stats.patches == 2  # first stale miss seeds, rest patch
        assert stats.evictions == 0

    def test_unchanged_data_is_a_plain_hit(self, scenario):
        engine = QueryEngine(scenario.ontology)
        first = engine.answer(EXEMPLARY_QUERY)
        assert engine.answer(EXEMPLARY_QUERY) is first
        stats = engine.answer_cache.stats
        assert stats.hits == 1
        assert stats.seeds == 0  # no churn → standing query never built

    def test_fingerprint_change_still_evicts(self, scenario):
        from repro.datasets.supersede import register_w4
        pre = build_supersede()  # no w4 yet
        engine = QueryEngine(pre.ontology)
        before = engine.answer(EXEMPLARY_QUERY)
        register_w4(pre)  # ontology release → fingerprint rotates
        after = engine.answer(EXEMPLARY_QUERY)
        assert len(after) >= len(before)
        assert engine.answer_cache.stats.evictions == 1
        assert engine.answer_cache.stats.patches == 0

    def test_patch_failure_falls_back_to_recompute(self, scenario,
                                                   monkeypatch):
        engine = QueryEngine(scenario.ontology)
        cold = QueryEngine(scenario.ontology, use_answer_cache=False)
        engine.answer(EXEMPLARY_QUERY)
        churn(scenario)
        from repro.streaming.standing import StandingQuery

        def boom(self, provider):
            raise RuntimeError("synthetic standing-query failure")

        monkeypatch.setattr(StandingQuery, "seed", boom)
        answer = engine.answer(EXEMPLARY_QUERY)
        assert answer == cold.answer(EXEMPLARY_QUERY)
        stats = engine.answer_cache.stats
        assert stats.fallbacks == 1
        assert stats.evictions == 1  # the broken entry was discarded

    def test_valve_reseed_counts_as_fallback(self, scenario):
        engine = QueryEngine(scenario.ontology)
        engine.answer(EXEMPLARY_QUERY)
        churn(scenario)  # attach + seed the standing query
        engine.answer(EXEMPLARY_QUERY)
        # shrink the valve so the next delta trips it
        entry = engine.answer_cache.patchable_entry(
            *self._entry_key(engine, scenario))
        entry.standing.min_delta_rows = 0
        entry.standing.max_delta_fraction = 0.0
        churn(scenario, n=3)
        cold = QueryEngine(scenario.ontology, use_answer_cache=False)
        assert engine.answer(EXEMPLARY_QUERY) == \
            cold.answer(EXEMPLARY_QUERY)
        assert engine.answer_cache.stats.fallbacks >= 1

    @staticmethod
    def _entry_key(engine, scenario):
        from repro.query.cache import canonical_omq_key
        from repro.query.omq import parse_omq
        key = canonical_omq_key(parse_omq(EXEMPLARY_QUERY))
        return key, True, scenario.ontology.fingerprint()


class TestServingPanels:
    def test_register_panel_warms_and_refreshes(self, scenario):
        from repro.mdm import MDM
        service = MDM(scenario.ontology).serving()
        service.register_panel("vod-quality", [EXEMPLARY_QUERY])
        assert "vod-quality" in service.panels
        churn(scenario)
        report = service.refresh_panels()
        panel = report["vod-quality"]
        assert panel["queries"] == 1
        assert panel["failures"] == 0
        assert panel["seeds"] + panel["patches"] >= 1

    def test_refresh_without_churn_is_cheap(self, scenario):
        from repro.mdm import MDM
        service = MDM(scenario.ontology).serving()
        service.register_panel("vod-quality", [EXEMPLARY_QUERY])
        report = service.refresh_panels()
        panel = report["vod-quality"]
        assert panel["hits"] == 1  # straight cache hit, no maintenance
        assert panel["patches"] == 0

    def test_describe_mentions_panels_and_maintenance(self, scenario):
        from repro.mdm import MDM
        service = MDM(scenario.ontology).serving()
        service.register_panel("vod-quality", [EXEMPLARY_QUERY])
        text = service.describe()
        assert "standing panels: 1" in text
        assert "incremental maintenance" in text
