"""Randomized equivalence: incremental maintenance vs recompute.

Seeded churn scripts drive inserts, updates and deletes across every
source of the SUPERSEDE scenario; after each tick the incremental
engine's answer must be bag-equal to a cold recompute. This is the
property the whole streaming layer exists to preserve — run under many
interleavings, including ones that trip the fallback valve and the
snapshot-diff path.
"""

import random

import pytest

from repro.datasets import EXEMPLARY_QUERY, build_supersede
from repro.query import QueryEngine


def bag(relation):
    names = relation.schema.attribute_names
    counts: dict[tuple, int] = {}
    for row in relation:
        key = tuple(row[n] for n in names)
        counts[key] = counts.get(key, 0) + 1
    return counts


def random_tick(rng, scenario, serial):
    """Apply 1-4 random mutations across the scenario's sources."""
    vod = scenario.store.get_collection("vod")
    w3 = scenario.wrappers["w3"]
    for _ in range(rng.randint(1, 4)):
        dice = rng.random()
        if dice < 0.45:
            monitor_id = 9000 + serial + rng.randint(0, 2)
            vod.insert_one({
                "monitorId": monitor_id,
                "waitTime": float(rng.randint(1, 9)),
                "watchTime": float(rng.randint(10, 90))})
            # sometimes the new monitor also gets an application row,
            # so the join actually produces output for it
            if rng.random() < 0.7:
                w3.append_rows([{
                    "appId": f"app{monitor_id}",
                    "monitorTool": monitor_id,
                    "feedbackTool": rng.randint(1, 5)}])
        elif dice < 0.65:
            docs = vod.find()
            if docs:
                victim = rng.choice(docs)["monitorId"]
                vod.update_many(
                    {"monitorId": victim},
                    {"$set": {"waitTime": float(rng.randint(1, 9))}})
        elif dice < 0.85:
            docs = vod.find()
            if docs:
                victim = rng.choice(docs)["monitorId"]
                vod.delete_many({"monitorId": victim})
        else:
            rows = w3.fetch_rows()
            if rows:
                victim = rng.choice(rows)["MonitorId"]
                w3.remove_rows(lambda r: r["monitorTool"] == victim)


@pytest.mark.parametrize("seed", range(5))
def test_incremental_equals_recompute_under_random_churn(seed):
    scenario = build_supersede(with_evolution=True, event_count=30,
                               seed=seed)
    incremental = QueryEngine(scenario.ontology)
    assert incremental.incremental
    cold = QueryEngine(scenario.ontology, use_answer_cache=False)
    rng = random.Random(seed)
    incremental.answer(EXEMPLARY_QUERY)  # warm the cache
    for tick in range(8):
        random_tick(rng, scenario, serial=tick * 10)
        got = incremental.answer(EXEMPLARY_QUERY)
        want = cold.answer(EXEMPLARY_QUERY)
        assert bag(got) == bag(want), \
            f"seed {seed}: diverged from recompute at tick {tick}"
    stats = incremental.answer_cache.stats
    # the suite must actually exercise the maintenance path
    assert stats.seeds >= 1
    assert stats.patches + stats.fallbacks >= 1


@pytest.mark.parametrize("seed", [0, 1])
def test_equivalence_with_tiny_valve(seed):
    """Every tick trips the valve: reseeds must stay correct too."""
    import repro.streaming.standing as standing_mod
    scenario = build_supersede(with_evolution=True, event_count=20,
                               seed=seed)
    incremental = QueryEngine(scenario.ontology)
    cold = QueryEngine(scenario.ontology, use_answer_cache=False)
    rng = random.Random(seed)
    incremental.answer(EXEMPLARY_QUERY)
    original = (standing_mod.FALLBACK_MIN_DELTA_ROWS,)
    for tick in range(4):
        random_tick(rng, scenario, serial=tick * 10)
        got = incremental.answer(EXEMPLARY_QUERY)
        # shrink the valve on the live standing query after the first
        # maintenance pass attached it
        for entry in incremental.answer_cache._entries.values():
            if entry.standing is not None:
                entry.standing.min_delta_rows = 0
                entry.standing.max_delta_fraction = 0.0
        want = cold.answer(EXEMPLARY_QUERY)
        assert bag(got) == bag(want), \
            f"seed {seed}: diverged at tick {tick}"
    del original


@pytest.mark.parametrize("seed", [0, 1])
def test_equivalence_with_truncated_logs(seed):
    """A one-record change log forces the snapshot-diff path on every
    multi-mutation tick; answers must not notice."""
    scenario = build_supersede(with_evolution=True, event_count=20,
                               seed=seed)
    scenario.store.get_collection("vod")._change_log_limit = 1
    scenario.wrappers["w3"].CHANGE_LOG_LIMIT = 1
    incremental = QueryEngine(scenario.ontology)
    cold = QueryEngine(scenario.ontology, use_answer_cache=False)
    rng = random.Random(seed)
    incremental.answer(EXEMPLARY_QUERY)
    for tick in range(5):
        random_tick(rng, scenario, serial=tick * 10)
        got = incremental.answer(EXEMPLARY_QUERY)
        want = cold.answer(EXEMPLARY_QUERY)
        assert bag(got) == bag(want), \
            f"seed {seed}: diverged at tick {tick}"
