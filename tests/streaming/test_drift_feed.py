"""CollectionDriftMonitor: change streams feeding drift detection.

The monitor tails a collection's CDC log; drifted in-flight payloads
become auto-drafted releases (or pending-confirmation drafts) for the
steward — never applied automatically.
"""

from repro.datasets import build_supersede
from repro.rdf.namespace import SUP
from repro.streaming import CollectionDriftMonitor


DECLARED = ["VoDmonitorId", "lagRatio"]


def make_monitor(scenario, **kwargs):
    live = scenario.store.collection("vod_live")
    live.insert_many([{"VoDmonitorId": 12, "lagRatio": 0.25},
                      {"VoDmonitorId": 18, "lagRatio": 0.4}])
    monitor = CollectionDriftMonitor(
        scenario.ontology, scenario.store, "vod_live",
        source_name="D1", wrapper_name="w1",
        declared_fields=DECLARED, id_fields=["VoDmonitorId"], **kwargs)
    return live, monitor


class TestPoll:
    def test_quiet_stream_yields_nothing(self):
        live, monitor = make_monitor(build_supersede())
        assert monitor.poll() is None

    def test_conforming_churn_yields_nothing(self):
        live, monitor = make_monitor(build_supersede())
        live.insert_one({"VoDmonitorId": 44, "lagRatio": 0.1})
        assert monitor.poll() is None

    def test_confident_rename_drafts_a_release(self):
        live, monitor = make_monitor(build_supersede())
        # lagRatio → lagRatioV2: string-similar enough to auto-apply
        live.insert_one({"VoDmonitorId": 44, "lagRatioV2": 0.1})
        draft = monitor.poll()
        assert draft is not None
        assert draft.auto_applicable
        assert draft.new_wrapper_name == "w1_drift1"
        assert draft.release.attribute_to_feature["lagRatioV2"] == \
            SUP.lagRatio  # feature inherited through the rename
        assert "release drafted" in draft.summary()

    def test_low_confidence_rename_stays_pending(self):
        live, monitor = make_monitor(build_supersede())
        # the paper's own rename: similarity 0.38, below auto threshold
        live.insert_one({"VoDmonitorId": 44, "bufferingRatio": 0.1})
        draft = monitor.poll()
        assert draft is not None
        assert not draft.auto_applicable
        assert draft.release is None
        assert [(p.old_field, p.new_field) for p in draft.pending] == \
            [("lagRatio", "bufferingRatio")]
        assert "confirmation" in draft.error

    def test_identical_drift_drafted_once(self):
        live, monitor = make_monitor(build_supersede())
        live.insert_one({"VoDmonitorId": 44, "lagRatioV2": 0.1})
        assert monitor.poll() is not None
        live.insert_one({"VoDmonitorId": 45, "lagRatioV2": 0.2})
        assert monitor.poll() is None  # same signature, no new draft

    def test_recovered_then_redrifted_redrafts(self):
        live, monitor = make_monitor(build_supersede())
        live.insert_one({"VoDmonitorId": 44, "lagRatioV2": 0.1})
        first = monitor.poll()
        assert first is not None
        # payloads conform again…
        live.insert_one({"VoDmonitorId": 45, "lagRatio": 0.2})
        assert monitor.poll() is None
        # …then the same drift returns: it must be drafted again
        live.insert_one({"VoDmonitorId": 46, "lagRatioV2": 0.3})
        second = monitor.poll()
        assert second is not None
        assert second.new_wrapper_name != first.new_wrapper_name

    def test_deletes_are_not_screened(self):
        live, monitor = make_monitor(build_supersede())
        live.delete_many({"VoDmonitorId": 12})
        assert monitor.poll() is None  # delete images are not payloads

    def test_truncated_log_screens_full_collection(self):
        scenario = build_supersede()
        live, monitor = make_monitor(scenario)
        live._change_log_limit = 1
        live.insert_one({"VoDmonitorId": 44, "lagRatioV2": 0.1})
        live.insert_one({"VoDmonitorId": 45, "lagRatioV2": 0.2})
        draft = monitor.poll()  # cursor fell off → full screen
        assert draft is not None
        assert draft.report.has_drift

    def test_explicit_wrapper_name_wins(self):
        live, monitor = make_monitor(build_supersede(),
                                     new_wrapper_name="w9")
        live.insert_one({"VoDmonitorId": 44, "lagRatioV2": 0.1})
        assert monitor.poll().new_wrapper_name == "w9"


class TestServingIntegration:
    def test_attach_and_poll_accumulates_drafts(self):
        from repro.mdm import MDM
        scenario = build_supersede()
        live, monitor = make_monitor(scenario)
        service = MDM(scenario.ontology).serving()
        service.attach_drift_monitor(monitor)
        assert service.poll_drift() == []
        live.insert_one({"VoDmonitorId": 44, "lagRatioV2": 0.1})
        drafts = service.poll_drift()
        assert len(drafts) == 1
        assert service.drift_drafts == drafts
        # polling never applies anything: the ontology is untouched
        assert not scenario.ontology.has_physical_wrapper("w1_drift1")

    def test_auto_draft_lands_through_the_steward_path(self):
        from repro.core.release import new_release
        scenario = build_supersede()
        live, monitor = make_monitor(scenario)
        live.insert_one({"VoDmonitorId": 44, "lagRatioV2": 0.1})
        draft = monitor.poll()
        assert draft.auto_applicable
        new_release(scenario.ontology, draft.release)
        assert scenario.ontology.validate() == []
