"""Satellite: the import surface is frozen — a vanished name fails here.

The protocol types are the documented public API. This test pins the
names each package promises: removing (or renaming) one is a breaking
change that must be made deliberately, by editing this file in the same
commit.
"""

from __future__ import annotations

import importlib

import pytest

#: package → names that must exist in its ``__all__`` and resolve
PUBLIC_SURFACE: dict[str, list[str]] = {
    "repro": [
        "BDIOntology", "Release", "new_release",
        "MDM",
        "OMQ", "QueryEngine", "RewriteCache", "parse_omq", "rewrite",
        "EpochLock", "GovernedService", "ServedAnswer",
        "QueryRequest", "QueryResponse",
        "ReleaseRequest", "ReleaseResponse",
        "DescribeResponse", "ErrorInfo",
        "ProtocolEndpoint", "GovernedClient", "HttpGateway",
        "ChangeRecord", "Journal", "Snapshot", "Replica",
        "__version__",
    ],
    "repro.storage": [
        "ChangeRecord",
        "Journal", "apply_record", "execute_command", "execute_release",
        "read_records", "replay_into",
        "Snapshot", "restore_state", "take_snapshot",
        "Replica", "FileTailer", "HttpTailer", "TailBatch",
    ],
    "repro.api": [
        "PROTOCOL_VERSION",
        "QueryRequest", "QueryResponse",
        "ReleaseRequest", "ReleaseResponse",
        "DescribeResponse", "ErrorInfo",
        "error_code_of", "exception_for", "http_status_of",
        "ProtocolEndpoint",
        "GovernedClient", "InProcessTransport", "HttpTransport",
        "as_transport",
        "HttpGateway",
    ],
    "repro.service": [
        "EpochLock", "EpochLockStats",
        "GovernedService", "ServedAnswer", "ServiceStats",
        "build_industrial_service", "analyst_panel",
        "next_version_release",
    ],
    "repro.query": [
        "QueryEngine", "OMQ", "parse_omq", "RewriteCache",
        "canonical_omq_key", "RewritingResult", "rewrite",
        "PhysicalPlan", "plan_ucq", "UCQ",
    ],
    "repro.mdm": ["MDM"],
    "repro.core": ["BDIOntology", "Release", "new_release"],
    "repro.relational": ["Relation", "RelationSchema"],
}

#: error classes the protocol's taxonomy (and its users) dispatch on
PUBLIC_ERRORS = [
    "ReproError",
    "ServiceError", "EpochDrainTimeout", "AnswerFailed",
    "ProtocolError", "MalformedRequestError", "UnsupportedApiVersion",
    "EpochSuperseded", "InvalidCursorError", "GatewayError",
    "ReadOnlyReplicaError",
    "StorageError", "JournalError", "JournalCorruptedError",
    "SnapshotError",
    "QueryError", "MalformedQueryError", "UnanswerableQueryError",
    "OntologyError", "ReleaseError",
]


@pytest.mark.parametrize("module_name", sorted(PUBLIC_SURFACE))
def test_public_names_exist_and_are_exported(module_name):
    module = importlib.import_module(module_name)
    exported = set(getattr(module, "__all__", ()))
    for name in PUBLIC_SURFACE[module_name]:
        assert hasattr(module, name), \
            f"{module_name}.{name} disappeared from the public API"
        assert name in exported, \
            f"{module_name}.{name} is no longer in __all__"


@pytest.mark.parametrize("module_name", sorted(PUBLIC_SURFACE))
def test_all_entries_resolve(module_name):
    """No dead names: everything a package advertises must exist."""
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", ()):
        assert getattr(module, name, None) is not None, \
            f"{module_name}.__all__ advertises missing name {name!r}"


def test_error_taxonomy_surface():
    from repro import errors

    for name in PUBLIC_ERRORS:
        cls = getattr(errors, name, None)
        assert cls is not None, f"repro.errors.{name} disappeared"
        assert issubclass(cls, errors.ReproError) \
            or cls is errors.ReproError


def test_top_level_reexports_are_the_same_objects():
    """``repro.GovernedClient`` is ``repro.api.GovernedClient`` &c."""
    import repro
    import repro.api

    for name in ("GovernedClient", "HttpGateway", "QueryRequest",
                 "QueryResponse", "ReleaseRequest", "ReleaseResponse",
                 "ProtocolEndpoint", "ErrorInfo"):
        assert getattr(repro, name) is getattr(repro.api, name)
