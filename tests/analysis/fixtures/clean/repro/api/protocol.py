"""Clean fixture protocol surface (parsed, never imported)."""

from dataclasses import dataclass, field

from repro import errors

_ERROR_CODES = {
    errors.ReproError: ("repro_error", True),
    errors.QueryError: ("query_error", True),
    errors.StorageError: ("storage_error", True),
}

_HTTP_STATUS = {
    "repro_error": 500,
    "query_error": 400,
    "storage_error": 500,
    "not_found": 404,
}


@dataclass(frozen=True)
class TidyEnvelope:
    a: str
    b: int
    local: object = field(default=None, compare=False, repr=False)

    def to_dict(self) -> dict:
        return {"a": self.a, "b": self.b}

    @classmethod
    def from_dict(cls, raw: dict) -> "TidyEnvelope":
        return cls(a=raw["a"], b=raw["b"])
