"""Clean fixture wrapper honoring every advertised capability
(parsed, never run)."""


class WrapperCapabilities:
    def __init__(self, projection: bool = False,
                 id_filter: bool = False) -> None:
        self.projection = projection
        self.id_filter = id_filter


class HonestWrapper:
    def capabilities(self) -> WrapperCapabilities:
        return WrapperCapabilities(projection=True, id_filter=True)

    def fetch_rows(self, columns=None, id_filter=None) -> list:
        return []

    def supports_deltas(self) -> bool:
        return True

    def delta_cursor(self) -> int:
        return 0

    def fetch_deltas(self, since: int) -> list:
        return []
