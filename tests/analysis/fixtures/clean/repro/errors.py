"""Clean fixture taxonomy (parsed, never imported)."""


class ReproError(Exception):
    """Fixture taxonomy root."""


class QueryError(ReproError):
    """Registered family."""


class StorageError(ReproError):
    """Registered family."""
