"""Clean fixture journal: deterministic, lock-disciplined, with one
justified suppression exercising the policy (parsed, never run)."""

import threading

from repro import errors


class Journal:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: list = []  # guarded-by: _lock
        self._seq = 0  # guarded-by: _lock

    def apply_record(self, record) -> int:
        with self._lock:
            self._entries.append(record)
            self._seq += 1
            return self._seq

    def order(self, items) -> list:
        return sorted({item for item in items})

    # repro-lint: disable=guarded-by -- sole caller is apply_record,
    # which holds the lock for the whole append.
    def _tail(self):
        if not self._entries:
            raise errors.StorageError("empty journal")
        return self._entries[-1]
