"""Seeded protocol violations (fixture — parsed, never imported)."""

from dataclasses import dataclass, field

from repro import errors

_ERROR_CODES = {
    errors.ReproError: ("repro_error", True),
    errors.QueryError: ("query_error", True),
    # dangling registration: no such class in the fixture taxonomy
    errors.VanishedError: ("vanished", True),
    # duplicate wire code
    errors.OrphanError: ("query_error", True),
}

_HTTP_STATUS = {
    "repro_error": 500,
    "query_error": 400,
    # unknown code
    "mystery_code": 418,
    # invalid status value
    "vanished": 9000,
}


@dataclass
class LeakyEnvelope:
    """Violation: a protocol dataclass that is not frozen."""

    a: str

    def to_dict(self) -> dict:
        return {"a": self.a}

    @classmethod
    def from_dict(cls, raw: dict) -> "LeakyEnvelope":
        return cls(a=raw["a"])


@dataclass(frozen=True)
class SkewedEnvelope:
    """Violations: to_dict misses `b`; from_dict passes non-wire `local`."""

    a: str
    b: int
    local: object = field(default=None, compare=False, repr=False)

    def to_dict(self) -> dict:
        return {"a": self.a}

    @classmethod
    def from_dict(cls, raw: dict) -> "SkewedEnvelope":
        return cls(a=raw["a"], b=raw["b"], local=None)
