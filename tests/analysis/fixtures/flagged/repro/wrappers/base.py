"""Seeded capability-contract violations (fixture — parsed, never run)."""


class WrapperCapabilities:
    def __init__(self, projection: bool = False,
                 id_filter: bool = False) -> None:
        self.projection = projection
        self.id_filter = id_filter


class BrokenWrapper:
    """Advertises more than it implements."""

    def capabilities(self) -> WrapperCapabilities:
        return WrapperCapabilities(projection=True, id_filter=True)

    def fetch_rows(self, id_filter=None) -> list:
        # violation: projection=True but no `columns` parameter
        return []

    def supports_deltas(self) -> bool:
        return True

    # violations: no fetch_deltas, no delta_cursor


class StrayError(ValueError):
    """Violation: exception class defined outside repro.errors."""
