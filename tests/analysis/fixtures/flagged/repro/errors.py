"""Seeded taxonomy violations (fixture — parsed, never imported)."""


class ReproError(Exception):
    """Fixture taxonomy root."""


class QueryError(ReproError):
    """Registered family: clean."""


class OrphanError(Exception):
    """Violation: does not derive from ReproError (and resolves to no
    registered code)."""


class GhostError(ReproError):
    """Violation: direct ReproError family base without an exact
    _ERROR_CODES entry."""
