"""Seeded determinism + lock violations (fixture — parsed, never run)."""

import random
import threading
import time

from repro import errors


class Journal:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: list = []  # guarded-by: _lock

    def apply_record(self, record) -> tuple:
        stamp = time.time()
        pick = random.random()
        self._entries.append(record)
        return stamp, pick

    def checkpoint(self) -> float:
        # unjustified suppression: suppresses nothing, and is itself
        # reported under the reserved `suppression` check
        return time.time()  # repro-lint: disable=replay-determinism

    def order(self, items) -> list:
        return list({item for item in items})

    def lookup(self, seq: int):
        with self._lock:
            for entry in self._entries:
                if entry.seq == seq:
                    return entry
        raise errors.VanishedError(seq)
