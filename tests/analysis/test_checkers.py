"""Per-checker behavior over the fixture mini-trees.

``fixtures/flagged`` seeds at least one violation per checker;
``fixtures/clean`` mirrors it with every invariant honored (plus
justified suppressions exercising the policy). The fixtures are real
package trees, so the checkers see them exactly as they see ``src/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.model import load_project
from repro.analysis.registry import run_checks

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture(scope="module")
def flagged():
    return run_checks(load_project([FIXTURES / "flagged"]))


@pytest.fixture(scope="module")
def clean():
    return run_checks(load_project([FIXTURES / "clean"]))


def messages(result, check: str) -> list[str]:
    return [f.message for f in result.findings if f.check == check]


class TestFlaggedTree:
    def test_run_is_dirty(self, flagged):
        assert not flagged.ok

    def test_every_checker_fires(self, flagged):
        fired = {f.check for f in flagged.findings}
        assert {"replay-determinism", "guarded-by", "error-taxonomy",
                "frozen-protocol", "wrapper-capabilities",
                "suppression"} <= fired

    # -- replay-determinism ------------------------------------------------

    def test_clock_read_flagged(self, flagged):
        assert any("time.time" in m
                   for m in messages(flagged, "replay-determinism"))

    def test_rng_flagged(self, flagged):
        assert any("random.random" in m
                   for m in messages(flagged, "replay-determinism"))

    def test_set_iteration_flagged(self, flagged):
        assert any("unordered set" in m
                   for m in messages(flagged, "replay-determinism"))

    def test_finding_carries_import_chain(self, flagged):
        assert any("import chain" in m
                   for m in messages(flagged, "replay-determinism"))

    # -- guarded-by --------------------------------------------------------

    def test_unlocked_mutation_flagged(self, flagged):
        assert any("self._entries" in m and "_lock" in m
                   for m in messages(flagged, "guarded-by"))

    def test_locked_access_not_flagged(self, flagged):
        # Journal.lookup touches _entries under the lock — no finding.
        assert not any("lookup" in m
                       for m in messages(flagged, "guarded-by"))

    # -- error-taxonomy ----------------------------------------------------

    def test_orphan_hierarchy_flagged(self, flagged):
        assert any("OrphanError" in m and "derive" in m
                   for m in messages(flagged, "error-taxonomy"))

    def test_unregistered_family_flagged(self, flagged):
        assert any("GhostError" in m
                   for m in messages(flagged, "error-taxonomy"))

    def test_dangling_registration_flagged(self, flagged):
        assert any("VanishedError" in m and "_ERROR_CODES" in m
                   for m in messages(flagged, "error-taxonomy"))

    def test_duplicate_code_flagged(self, flagged):
        assert any("query_error" in m and "unique" in m
                   for m in messages(flagged, "error-taxonomy"))

    def test_unknown_status_code_flagged(self, flagged):
        assert any("mystery_code" in m
                   for m in messages(flagged, "error-taxonomy"))

    def test_invalid_status_value_flagged(self, flagged):
        assert any("9000" in m
                   for m in messages(flagged, "error-taxonomy"))

    def test_dangling_raise_site_flagged(self, flagged):
        assert any("raise site" in m and "VanishedError" in m
                   for m in messages(flagged, "error-taxonomy"))

    def test_stray_exception_class_flagged(self, flagged):
        assert any("StrayError" in m
                   for m in messages(flagged, "error-taxonomy"))

    # -- frozen-protocol ---------------------------------------------------

    def test_unfrozen_envelope_flagged(self, flagged):
        assert any("LeakyEnvelope" in m and "frozen" in m
                   for m in messages(flagged, "frozen-protocol"))

    def test_to_dict_parity_flagged(self, flagged):
        assert any("to_dict" in m and "'b'" in m
                   for m in messages(flagged, "frozen-protocol"))

    def test_from_dict_parity_flagged(self, flagged):
        assert any("from_dict" in m and "'local'" in m
                   for m in messages(flagged, "frozen-protocol"))

    # -- wrapper-capabilities ----------------------------------------------

    def test_missing_projection_param_flagged(self, flagged):
        assert any("columns" in m and "projection" in m
                   for m in messages(flagged, "wrapper-capabilities"))

    def test_missing_delta_surface_flagged(self, flagged):
        caps = messages(flagged, "wrapper-capabilities")
        assert any("fetch_deltas" in m for m in caps)
        assert any("delta_cursor" in m for m in caps)

    # -- suppression hygiene -----------------------------------------------

    def test_unjustified_suppression_reported_and_ineffective(self, flagged):
        assert any("justification" in m
                   for m in messages(flagged, "suppression"))
        # the unjustified suppression did NOT silence the finding it
        # sat on: checkpoint()'s time.time() is still reported
        lines = [f.line for f in flagged.findings
                 if f.check == "replay-determinism"
                 and "time.time" in f.message]
        assert len(lines) >= 2

    def test_nothing_suppressed_in_flagged_tree(self, flagged):
        assert flagged.suppressed == 0


class TestCleanTree:
    def test_run_is_clean(self, clean):
        assert clean.ok

    def test_justified_suppressions_counted(self, clean):
        # _tail touches _entries twice under a caller-holds-lock
        # suppression; both raw findings are counted, not reported
        assert clean.suppressed >= 2

    def test_sorted_set_not_flagged(self, clean):
        # order() folds a set through sorted(): deterministic, clean
        assert clean.ok
