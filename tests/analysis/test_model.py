"""Unit tests for the analyzer's data model: suppressions, markers,
module naming, and the import graph."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis.model import (
    Project, SourceFile, SUPPRESSION_CHECK, load_project, module_name_of,
)
from repro.analysis.registry import run_checks


def source(text: str, path: str = "mod.py",
           module: str | None = "mod") -> SourceFile:
    return SourceFile(Path(path), textwrap.dedent(text), module)


class TestSuppressionParsing:
    def test_justified_suppression_parses(self):
        src = source("x = 1  # repro-lint: disable=guarded-by -- why\n")
        supp = src.suppressions[1]
        assert supp.checks == frozenset({"guarded-by"})
        assert supp.justification == "why"
        assert supp.justified

    def test_multi_check_suppression(self):
        src = source(
            "x = 1  # repro-lint: disable=a,b -- covers both\n")
        assert src.suppressions[1].checks == frozenset({"a", "b"})

    def test_unjustified_suppression_never_covers(self):
        src = source("x = 1  # repro-lint: disable=guarded-by\n")
        assert not src.suppressions[1].justified
        assert src.suppression_for("guarded-by", 1) is None

    def test_suppression_covers_only_named_checks(self):
        src = source("x = 1  # repro-lint: disable=guarded-by -- why\n")
        assert src.suppression_for("guarded-by", 1) is not None
        assert src.suppression_for("replay-determinism", 1) is None

    def test_def_line_suppression_covers_function_body(self):
        src = source("""\
            def helper():  # repro-lint: disable=guarded-by -- caller locks
                a = 1
                return a
            """)
        assert src.suppression_for("guarded-by", 2) is not None
        assert src.suppression_for("guarded-by", 3) is not None

    def test_header_comment_suppression_covers_function_body(self):
        src = source("""\
            # repro-lint: disable=guarded-by -- caller holds the lock
            # across both statements.
            def helper():
                return 1
            """)
        assert src.suppression_for("guarded-by", 4) is not None

    def test_suppression_does_not_leak_past_function_end(self):
        src = source("""\
            def helper():  # repro-lint: disable=guarded-by -- why
                return 1

            x = 2
            """)
        assert src.suppression_for("guarded-by", 4) is None

    def test_markers_parse(self):
        src = source("# repro-lint: frozen-surface\nx = 1\n")
        assert "frozen-surface" in src.markers


class TestSuppressionHygiene:
    def test_unjustified_suppression_becomes_finding(self):
        src = source("x = 1  # repro-lint: disable=guarded-by\n")
        result = run_checks(Project([src]))
        assert any(f.check == SUPPRESSION_CHECK and "justification"
                   in f.message for f in result.findings)

    def test_unknown_check_name_becomes_finding(self):
        src = source("x = 1  # repro-lint: disable=no-such -- reason\n")
        result = run_checks(Project([src]))
        assert any(f.check == SUPPRESSION_CHECK and "no-such"
                   in f.message for f in result.findings)

    def test_clean_file_yields_no_findings(self):
        src = source("x = 1\n")
        assert run_checks(Project([src])).ok


class TestModuleNaming:
    def test_module_name_from_init_walk(self, tmp_path):
        pkg = tmp_path / "repro" / "storage"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        target = pkg / "journal.py"
        target.write_text("x = 1\n")
        assert module_name_of(target) == "repro.storage.journal"

    def test_script_outside_package_is_top_level(self, tmp_path):
        target = tmp_path / "script.py"
        target.write_text("x = 1\n")
        assert module_name_of(target) == "script"


class TestImportGraph:
    def _project(self, tmp_path, files: dict[str, str]) -> Project:
        for rel, text in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(text))
        return load_project([tmp_path])

    def test_reachability_with_witness_chain(self, tmp_path):
        project = self._project(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": "from pkg import b\n",
            "pkg/b.py": "import pkg.c\n",
            "pkg/c.py": "x = 1\n",
            "pkg/island.py": "y = 2\n",
        })
        chains = project.reachable_from(["pkg.a"])
        # `from pkg import b` resolves to the submodule pkg.b itself
        assert set(chains) == {"pkg.a", "pkg.b", "pkg.c"}
        assert chains["pkg.c"] == ("pkg.a", "pkg.b", "pkg.c")
        assert "pkg.island" not in chains

    def test_type_checking_imports_excluded(self, tmp_path):
        project = self._project(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": """\
                from typing import TYPE_CHECKING
                if TYPE_CHECKING:
                    from pkg import b
                """,
            "pkg/b.py": "x = 1\n",
        })
        chains = project.reachable_from(["pkg.a"])
        assert "pkg.b" not in chains

    def test_relative_imports_resolve(self, tmp_path):
        project = self._project(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": "from . import b\n",
            "pkg/b.py": "x = 1\n",
        })
        assert "pkg.b" in project.reachable_from(["pkg.a"])


class TestRegistry:
    def test_unknown_select_raises(self):
        with pytest.raises(ValueError, match="unknown checks"):
            run_checks(Project([]), select=["does-not-exist"])

    def test_reserved_and_duplicate_names_rejected(self):
        from repro.analysis.registry import Checker, register

        class Nameless(Checker):
            name = ""

        with pytest.raises(ValueError, match="no name"):
            register(Nameless)

        class Reserved(Checker):
            name = SUPPRESSION_CHECK

        with pytest.raises(ValueError, match="reserved"):
            register(Reserved)

        class Duplicate(Checker):
            name = "guarded-by"

        with pytest.raises(ValueError, match="duplicate"):
            register(Duplicate)
