"""CLI contract: exit codes, reporter formats, the JSON schema.

The subprocess tests run the module exactly as CI does
(``python -m repro.analysis``), so they prove the gate wiring, not
just the library behavior.
"""

from __future__ import annotations

import io
import json
import os
import subprocess
import sys
from pathlib import Path

from repro.analysis.cli import main

REPO = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"


def run_cli(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True, text=True, env=env, cwd=REPO, timeout=120)


class TestExitCodes:
    def test_seeded_violations_exit_nonzero(self):
        proc = run_cli(str(FIXTURES / "flagged"))
        assert proc.returncode == 1
        assert "replay-determinism" in proc.stdout

    def test_clean_tree_exits_zero(self):
        proc = run_cli(str(FIXTURES / "clean"))
        assert proc.returncode == 0
        assert "clean" in proc.stdout

    def test_src_is_self_clean(self):
        proc = run_cli("src")
        assert proc.returncode == 0, proc.stdout

    def test_missing_path_is_usage_error(self):
        proc = run_cli("no/such/dir")
        assert proc.returncode == 2

    def test_unknown_select_is_usage_error(self):
        proc = run_cli("src", "--select", "bogus")
        assert proc.returncode == 2
        assert "unknown checks" in proc.stderr


class TestJsonReporter:
    def test_schema(self):
        proc = run_cli(str(FIXTURES / "flagged"), "--format", "json")
        document = json.loads(proc.stdout)
        assert document["version"] == 1
        assert document["ok"] is False
        assert isinstance(document["files"], int)
        assert isinstance(document["suppressed"], int)
        assert set(document["checks"]) >= {
            "replay-determinism", "guarded-by", "error-taxonomy",
            "frozen-protocol", "wrapper-capabilities"}
        for finding in document["findings"]:
            assert set(finding) == {"path", "line", "check", "message"}
            assert isinstance(finding["line"], int)

    def test_findings_sorted_and_deterministic(self):
        first = run_cli(str(FIXTURES / "flagged"), "--format", "json")
        second = run_cli(str(FIXTURES / "flagged"), "--format", "json")
        assert first.stdout == second.stdout
        locs = [(f["path"], f["line"])
                for f in json.loads(first.stdout)["findings"]]
        assert locs == sorted(locs)


class TestGithubReporter:
    def test_error_annotations(self):
        proc = run_cli(str(FIXTURES / "flagged"), "--format", "github")
        lines = [l for l in proc.stdout.splitlines()
                 if l.startswith("::error ")]
        assert lines
        assert all("file=" in l and "line=" in l for l in lines)


class TestInProcess:
    def test_list_checks(self):
        out = io.StringIO()
        assert main(["--list-checks"], out=out) == 0
        listed = out.getvalue()
        for name in ("replay-determinism", "guarded-by", "error-taxonomy",
                     "frozen-protocol", "wrapper-capabilities"):
            assert name in listed

    def test_select_single_check(self):
        out = io.StringIO()
        code = main([str(FIXTURES / "flagged"),
                     "--select", "guarded-by"], out=out)
        assert code == 1
        body = out.getvalue()
        assert "[guarded-by]" in body
        assert "[frozen-protocol]" not in body
