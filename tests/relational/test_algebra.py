"""Unit tests for the restricted relational algebra."""

import pytest

from repro.errors import (
    InvalidJoinError, InvalidProjectionError, SchemaError,
)
from repro.relational.algebra import (
    FinalProject, Join, Project, Scan, Union, evaluate,
)
from repro.relational.rows import Relation
from repro.relational.schema import RelationSchema

W1 = RelationSchema.of("w1", ids=["D1/id"], non_ids=["D1/x", "D1/y"],
                       source="D1")
W3 = RelationSchema.of("w3", ids=["D3/app", "D3/mid"], non_ids=[],
                       source="D3")


@pytest.fixture()
def provider():
    return {
        "w1": Relation(W1, [
            {"D1/id": 1, "D1/x": "a", "D1/y": 10},
            {"D1/id": 2, "D1/x": "b", "D1/y": 20},
        ]),
        "w3": Relation(W3, [
            {"D3/app": 100, "D3/mid": 1},
            {"D3/app": 200, "D3/mid": 2},
            {"D3/app": 300, "D3/mid": 9},
        ]),
    }


class TestScan:
    def test_returns_rows(self, provider):
        assert len(Scan(W1).evaluate(provider)) == 2

    def test_missing_relation_errors(self, provider):
        with pytest.raises(SchemaError):
            Scan(RelationSchema.of("nope", ids=["i"])).evaluate(provider)

    def test_missing_attributes_detected(self, provider):
        fat = RelationSchema.of("w1", ids=["D1/id"],
                                non_ids=["D1/x", "D1/z"])
        with pytest.raises(SchemaError, match="missing"):
            Scan(fat).evaluate(provider)

    def test_notation(self):
        assert Scan(W1).notation() == "w1"


class TestProject:
    def test_keeps_all_ids(self, provider):
        out = Project(Scan(W1), ["D1/x"]).evaluate(provider)
        assert set(out.schema.attribute_names) == {"D1/id", "D1/x"}

    def test_empty_projection_keeps_only_ids(self, provider):
        out = Project(Scan(W1), []).evaluate(provider)
        assert set(out.schema.attribute_names) == {"D1/id"}

    def test_rejects_projecting_ids_explicitly(self):
        with pytest.raises(InvalidProjectionError):
            Project(Scan(W1), ["D1/id"])

    def test_rejects_unknown_attribute(self):
        with pytest.raises(SchemaError):
            Project(Scan(W1), ["D1/zzz"])

    def test_wrappers(self):
        assert Project(Scan(W1), []).wrappers() == {"w1"}


class TestJoin:
    def test_equi_join_on_ids(self, provider):
        expr = Join(Scan(W1), Scan(W3), [("D1/id", "D3/mid")])
        out = expr.evaluate(provider)
        assert len(out) == 2
        apps = sorted(r["D3/app"] for r in out)
        assert apps == [100, 200]

    def test_join_requires_conditions(self):
        with pytest.raises(InvalidJoinError):
            Join(Scan(W1), Scan(W3), [])

    def test_join_rejects_non_id_left(self):
        with pytest.raises(InvalidJoinError):
            Join(Scan(W1), Scan(W3), [("D1/x", "D3/mid")])

    def test_join_rejects_non_id_right(self):
        w = RelationSchema.of("w9", ids=["D9/i"], non_ids=["D9/v"],
                              source="D9")
        with pytest.raises(InvalidJoinError):
            Join(Scan(W1), Scan(w), [("D1/id", "D9/v")])

    def test_join_rejects_name_overlap(self):
        clone = RelationSchema.of("w1b", ids=["D1/id"], non_ids=[],
                                  source="D1b")
        with pytest.raises(SchemaError, match="share attribute names"):
            Join(Scan(W1), Scan(clone), [("D1/id", "D1/id")])

    def test_output_schema_concatenates(self):
        expr = Join(Scan(W1), Scan(W3), [("D1/id", "D3/mid")])
        assert set(expr.schema().attribute_names) == {
            "D1/id", "D1/x", "D1/y", "D3/app", "D3/mid"}

    def test_multi_condition_join(self, provider):
        left = RelationSchema.of("l", ids=["L/a", "L/b"], source="L")
        right = RelationSchema.of("r", ids=["R/a", "R/b"], source="R")
        data = {
            "l": Relation(left, [{"L/a": 1, "L/b": 1},
                                 {"L/a": 1, "L/b": 2}]),
            "r": Relation(right, [{"R/a": 1, "R/b": 1}]),
        }
        expr = Join(Scan(left), Scan(right),
                    [("L/a", "R/a"), ("L/b", "R/b")])
        assert len(expr.evaluate(data)) == 1


class TestFinalProject:
    def test_renames_and_drops_ids(self, provider):
        expr = FinalProject(Scan(W1), {"value": "D1/x"})
        out = expr.evaluate(provider)
        assert out.schema.attribute_names == ("value",)
        assert sorted(out.column("value")) == ["a", "b"]

    def test_validates_targets(self):
        with pytest.raises(SchemaError):
            FinalProject(Scan(W1), {"v": "D1/zzz"})


class TestUnion:
    def test_union_distinct(self, provider):
        branch = FinalProject(Scan(W1), {"v": "D1/x"})
        expr = Union([branch, branch])
        assert len(expr.evaluate(provider)) == 2  # deduplicated

    def test_union_bag(self, provider):
        branch = FinalProject(Scan(W1), {"v": "D1/x"})
        expr = Union([branch, branch], distinct=False)
        assert len(expr.evaluate(provider)) == 4

    def test_union_requires_compatible_schemas(self, provider):
        b1 = FinalProject(Scan(W1), {"v": "D1/x"})
        b2 = FinalProject(Scan(W1), {"w": "D1/x"})
        with pytest.raises(SchemaError):
            Union([b1, b2])

    def test_union_requires_branches(self):
        with pytest.raises(SchemaError):
            Union([])

    def test_wrappers_across_branches(self, provider):
        b1 = FinalProject(Scan(W1), {"v": "D1/x"})
        b2 = FinalProject(Scan(W3), {"v": "D3/app"})
        assert Union([b1, b2]).wrappers() == {"w1", "w3"}


class TestEvaluateHelper:
    def test_callable_provider(self, provider):
        out = evaluate(Scan(W1), lambda name: provider[name])
        assert len(out) == 2
