"""Unit tests for the physical execution substrate (scan cache,
providers, operators)."""

import threading

import pytest

from repro.errors import SchemaError
from repro.relational.physical import (
    CachingScanProvider, IdFilter, PhysicalHashJoin, PhysicalScan,
    PhysicalUnion, RelationScanProvider, ScanCache, ScanKey,
    WrapperScanProvider, as_scan_provider,
)
from repro.relational.rows import Relation
from repro.relational.schema import RelationSchema
from repro.wrappers.base import StaticWrapper


def rel(name, ids, non_ids, rows, source=None):
    return Relation(RelationSchema.of(name, ids=ids, non_ids=non_ids,
                                      source=source), rows)


@pytest.fixture()
def provider():
    return {
        "w1": rel("w1", ["D1/id"], ["D1/a", "D1/b"], [
            {"D1/id": 1, "D1/a": 10, "D1/b": 100},
            {"D1/id": 2, "D1/a": 20, "D1/b": 200},
            {"D1/id": 3, "D1/a": 30, "D1/b": 300},
        ], source="D1"),
        "w2": rel("w2", ["D2/id"], ["D2/c"], [
            {"D2/id": 2, "D2/c": "x"},
            {"D2/id": 3, "D2/c": "y"},
            {"D2/id": 9, "D2/c": "z"},
        ], source="D2"),
    }


class TestIdFilter:
    def test_coerces_values_to_frozenset(self):
        f = IdFilter("a", [1, 2, 2])
        assert f.values == frozenset({1, 2})
        assert len(f) == 2

    def test_matches(self):
        f = IdFilter("a", {1})
        assert f.matches({"a": 1})
        assert not f.matches({"a": 2})
        assert not f.matches({})

    def test_notation_counts_ids(self):
        assert "2 ids" in IdFilter("a", {1, 2}).notation()


class TestScanCache:
    def key(self, wrapper="w", version=0, columns=None, id_filter=None):
        return ScanKey(wrapper, version, columns, id_filter)

    def test_miss_then_hit(self):
        cache = ScanCache()
        calls = []

        def fetch():
            calls.append(1)
            return rel("w", ["a"], [], [{"a": 1}])

        first = cache.get_or_fetch(self.key(), fetch)
        second = cache.get_or_fetch(self.key(), fetch)
        assert first is second
        assert len(calls) == 1
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert len(cache) == 1

    def test_distinct_keys_fetch_separately(self):
        cache = ScanCache()
        cache.get_or_fetch(self.key(columns=frozenset({"a"})),
                           lambda: rel("w", ["a"], [], []))
        cache.get_or_fetch(self.key(columns=None),
                           lambda: rel("w", ["a"], [], []))
        assert cache.stats.misses == 2

    def test_failed_fetch_not_cached(self):
        cache = ScanCache()

        def boom():
            raise RuntimeError("source down")

        with pytest.raises(RuntimeError):
            cache.get_or_fetch(self.key(), boom)
        # next call retries (and can succeed)
        out = cache.get_or_fetch(self.key(),
                                 lambda: rel("w", ["a"], [], []))
        assert len(out) == 0
        assert cache.stats.misses == 2

    def test_clear(self):
        cache = ScanCache()
        cache.get_or_fetch(self.key(), lambda: rel("w", ["a"], [], []))
        assert cache.clear() == 1
        assert len(cache) == 0
        assert cache.stats.invalidations == 1

    def test_superseded_data_versions_evicted(self):
        cache = ScanCache()
        for version in range(5):
            cache.get_or_fetch(self.key(version=version),
                               lambda: rel("w", ["a"], [], []))
        # Only the newest generation survives; no per-write leak.
        assert len(cache) == 1
        assert cache.stats.evictions == 4
        # Other wrappers' entries are untouched by an eviction sweep.
        cache.get_or_fetch(self.key(wrapper="other"),
                           lambda: rel("o", ["a"], [], []))
        cache.get_or_fetch(self.key(version=6),
                           lambda: rel("w", ["a"], [], []))
        assert len(cache) == 2

    def test_validate_clears_on_fingerprint_change(self):
        from repro.core.ontology import OntologyFingerprint
        cache = ScanCache()
        cache.validate(OntologyFingerprint(epoch=1, structure=42))
        cache.get_or_fetch(self.key(), lambda: rel("w", ["a"], [], []))
        cache.validate(OntologyFingerprint(epoch=1, structure=42))
        assert len(cache) == 1  # unchanged fingerprint keeps entries
        cache.validate(OntologyFingerprint(epoch=2, structure=43))
        assert len(cache) == 0
        assert cache.stats.invalidations == 1

    def test_single_flight_under_threads(self):
        cache = ScanCache()
        fetches = []
        gate = threading.Event()

        def fetch():
            fetches.append(1)
            gate.wait(1.0)
            return rel("w", ["a"], [], [{"a": 1}])

        results = []

        def worker():
            results.append(cache.get_or_fetch(self.key(), fetch))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        gate.set()
        for t in threads:
            t.join()
        assert len(fetches) == 1
        assert all(r is results[0] for r in results)
        assert cache.stats.hits == 7


class TestRelationScanProvider:
    def test_full_scan_passthrough(self, provider):
        scans = RelationScanProvider(provider)
        assert scans.scan("w1") is provider["w1"]

    def test_column_subset(self, provider):
        scans = RelationScanProvider(provider)
        out = scans.scan("w1", columns=["D1/id", "D1/b"])
        assert set(out.schema.attribute_names) == {"D1/id", "D1/b"}
        assert out.rows[0] == {"D1/id": 1, "D1/b": 100}

    def test_id_filter(self, provider):
        scans = RelationScanProvider(provider)
        out = scans.scan("w1", id_filter=IdFilter("D1/id", {2, 3}))
        assert sorted(r["D1/id"] for r in out) == [2, 3]

    def test_missing_column_rejected(self, provider):
        scans = RelationScanProvider(provider)
        with pytest.raises(SchemaError, match="missing"):
            scans.scan("w1", columns=["D1/nope"])

    def test_unknown_relation_rejected(self, provider):
        with pytest.raises(SchemaError, match="no data"):
            RelationScanProvider(provider).scan("missing")

    def test_estimate_from_mapping(self, provider):
        scans = RelationScanProvider(provider)
        assert scans.estimate("w1") == 3
        assert scans.estimate("missing") is None
        assert RelationScanProvider(lambda n: provider[n]) \
            .estimate("w1") is None


class TestWrapperScanProvider:
    def wrapper(self):
        return StaticWrapper("w1", "D1", ["id"], ["a", "b"], [
            {"id": 1, "a": 10, "b": 100},
            {"id": 2, "a": 20, "b": 200},
        ])

    def test_scan_translates_qualified_names(self):
        scans = WrapperScanProvider({"w1": self.wrapper()}.__getitem__)
        out = scans.scan("w1", columns=["D1/id", "D1/a"],
                         id_filter=IdFilter("D1/id", {2}))
        assert out.rows == [{"D1/id": 2, "D1/a": 20}]

    def test_unknown_column_rejected(self):
        scans = WrapperScanProvider({"w1": self.wrapper()}.__getitem__)
        with pytest.raises(SchemaError, match="missing attribute"):
            scans.scan("w1", columns=["D1/ghost"])

    def test_estimate_and_data_version(self):
        wrapper = self.wrapper()
        scans = WrapperScanProvider({"w1": wrapper}.__getitem__)
        assert scans.estimate("w1") == 2
        before = scans.data_version("w1")
        wrapper.replace_rows([{"id": 5, "a": 1, "b": 2}])
        assert scans.data_version("w1") != before


class TestCachingScanProvider:
    def test_data_version_keys_out_stale_scans(self):
        wrapper = StaticWrapper("w1", "D1", ["id"], [], [{"id": 1}])
        inner = WrapperScanProvider({"w1": wrapper}.__getitem__)
        scans = CachingScanProvider(inner, ScanCache())
        assert scans.scan("w1").rows == [{"D1/id": 1}]
        wrapper.replace_rows([{"id": 7}])
        assert scans.scan("w1").rows == [{"D1/id": 7}]

    def test_shared_fetches(self):
        calls = []

        class Counting(StaticWrapper):
            def fetch_rows(self, columns=None, id_filter=None):
                calls.append(1)
                return super().fetch_rows(columns, id_filter)

        wrapper = Counting("w1", "D1", ["id"], [], [{"id": 1}])
        scans = CachingScanProvider(
            WrapperScanProvider({"w1": wrapper}.__getitem__), ScanCache())
        scans.scan("w1")
        scans.scan("w1")
        assert len(calls) == 1


class TestAsScanProvider:
    def test_passthrough_and_coercion(self, provider):
        scans = RelationScanProvider(provider)
        assert as_scan_provider(scans) is scans
        assert isinstance(as_scan_provider(provider),
                          RelationScanProvider)
        assert isinstance(
            as_scan_provider(None, lambda n: None), WrapperScanProvider)

    def test_none_without_resolver_rejected(self):
        with pytest.raises(SchemaError):
            as_scan_provider(None)


class TestPhysicalOperators:
    def scan(self, provider, name, columns=None):
        schema = provider[name].schema
        if columns is not None:
            schema = RelationSchema(
                schema.name,
                tuple(a for a in schema.attributes if a.name in columns),
                schema.source)
        return PhysicalScan(schema,
                            tuple(columns) if columns else None,
                            len(provider[name].schema.attributes))

    def test_hash_join_pushes_build_keys(self, provider):
        fetched = {}

        class Spy(RelationScanProvider):
            def scan(self, name, columns=None, id_filter=None):
                fetched[name] = id_filter
                return super().scan(name, columns, id_filter)

        scans = Spy(provider)
        join = PhysicalHashJoin(
            build=self.scan(provider, "w2"),
            probe=self.scan(provider, "w1"),
            conditions=(("D2/id", "D1/id"),))
        out = join.execute(scans)
        assert fetched["w1"] is not None  # semi-join filter arrived
        assert fetched["w1"].values == frozenset({2, 3, 9})
        assert sorted(r["D1/id"] for r in out) == [2, 3]

    def test_empty_build_skips_probe(self, provider):
        provider = dict(provider)
        provider["w2"] = rel("w2", ["D2/id"], ["D2/c"], [], source="D2")
        seen = []

        class Spy(RelationScanProvider):
            def scan(self, name, columns=None, id_filter=None):
                seen.append(name)
                return super().scan(name, columns, id_filter)

        join = PhysicalHashJoin(
            build=self.scan(provider, "w2"),
            probe=self.scan(provider, "w1"),
            conditions=(("D2/id", "D1/id"),))
        out = join.execute(Spy(provider))
        assert len(out) == 0
        assert seen == ["w2"]  # probe never fetched

    def test_unhashable_build_keys_disable_pushdown(self):
        provider = {
            "w1": rel("w1", ["D1/id"], [], [{"D1/id": [1]}],
                      source="D1"),
            "w2": rel("w2", ["D2/id"], [], [{"D2/id": [1]}],
                      source="D2"),
        }
        join = PhysicalHashJoin(
            build=self.scan(provider, "w1"),
            probe=self.scan(provider, "w2"),
            conditions=(("D1/id", "D2/id"),))
        with pytest.raises(TypeError):
            # the join itself still needs hashable keys; pushdown just
            # must not be the thing that raises first on the scan side
            join.execute(RelationScanProvider(provider))

    def test_union_distinct_single_pass(self, provider):
        branch = self.scan(provider, "w1", ["D1/id"])
        union = PhysicalUnion((branch, branch), distinct=True)
        out = union.execute(RelationScanProvider(provider))
        assert len(out) == 3  # duplicates collapsed
        union_all = PhysicalUnion((branch, branch), distinct=False)
        assert len(union_all.execute(RelationScanProvider(provider))) == 6

    def test_union_incompatible_schemas_rejected(self, provider):
        with pytest.raises(SchemaError, match="incompatible"):
            PhysicalUnion((self.scan(provider, "w1"),
                           self.scan(provider, "w2")))

    def test_explain_lines_mention_pushdown(self, provider):
        scan = self.scan(provider, "w1", ["D1/id"])
        text = "\n".join(scan.explain_lines())
        assert "cols=1/3" in text and "pushed" in text
