"""Unit tests for relation instances."""

import pytest

from repro.errors import SchemaError
from repro.relational.rows import Relation, render_table
from repro.relational.schema import RelationSchema

SCHEMA = RelationSchema.of("r", ids=["id"], non_ids=["v"])


class TestRelation:
    def test_append_and_len(self):
        rel = Relation(SCHEMA, [{"id": 1, "v": "a"}])
        rel.append({"id": 2, "v": "b"})
        assert len(rel) == 2

    def test_rejects_missing_attribute(self):
        rel = Relation(SCHEMA)
        with pytest.raises(SchemaError, match="missing"):
            rel.append({"id": 1})

    def test_rejects_extra_attribute(self):
        rel = Relation(SCHEMA)
        with pytest.raises(SchemaError, match="unexpected"):
            rel.append({"id": 1, "v": "a", "w": 2})

    def test_rows_returns_copies(self):
        rel = Relation(SCHEMA, [{"id": 1, "v": "a"}])
        rel.rows.clear()
        assert len(rel) == 1

    def test_column(self):
        rel = Relation(SCHEMA, [{"id": 1, "v": "a"}, {"id": 2, "v": "b"}])
        assert rel.column("v") == ["a", "b"]
        with pytest.raises(SchemaError):
            rel.column("nope")

    def test_distinct(self):
        rel = Relation(SCHEMA, [{"id": 1, "v": "a"},
                                {"id": 1, "v": "a"},
                                {"id": 2, "v": "b"}])
        assert len(rel.distinct()) == 2

    def test_sorted_by(self):
        rel = Relation(SCHEMA, [{"id": 2, "v": "b"}, {"id": 1, "v": "a"}])
        assert rel.sorted_by("id").column("id") == [1, 2]

    def test_where(self):
        rel = Relation(SCHEMA, [{"id": 1, "v": "a"}, {"id": 2, "v": "b"}])
        assert len(rel.where(lambda r: r["id"] > 1)) == 1

    def test_as_tuples(self):
        rel = Relation(SCHEMA, [{"id": 1, "v": "a"}])
        assert rel.as_tuples() == [(1, "a")]
        assert rel.as_tuples(["v"]) == [("a",)]

    def test_bag_equality_order_insensitive(self):
        r1 = Relation(SCHEMA, [{"id": 1, "v": "a"}, {"id": 2, "v": "b"}])
        r2 = Relation(SCHEMA, [{"id": 2, "v": "b"}, {"id": 1, "v": "a"}])
        assert r1 == r2

    def test_bag_equality_counts_duplicates(self):
        r1 = Relation(SCHEMA, [{"id": 1, "v": "a"}, {"id": 1, "v": "a"}])
        r2 = Relation(SCHEMA, [{"id": 1, "v": "a"}])
        assert r1 != r2

    def test_equality_requires_same_attributes(self):
        other_schema = RelationSchema.of("o", ids=["id"], non_ids=["w"])
        r1 = Relation(SCHEMA, [{"id": 1, "v": "a"}])
        r2 = Relation(other_schema, [{"id": 1, "w": "a"}])
        assert r1 != r2


class TestRenderTable:
    def test_contains_headers_and_rows(self):
        text = render_table(["a", "b"], [{"a": 1, "b": "xy"}])
        assert "| a " in text
        assert "| 1 " in text
        assert "xy" in text

    def test_max_rows_footer(self):
        rows = [{"a": i} for i in range(10)]
        text = render_table(["a"], rows, max_rows=3)
        assert "7 more rows" in text

    def test_title(self):
        text = render_table(["a"], [], title="w1")
        assert text.startswith("w1")

    def test_to_ascii_uses_schema_name(self):
        rel = Relation(SCHEMA, [{"id": 1, "v": "a"}])
        assert rel.to_ascii().startswith("r")
