"""ColumnBatch tests: constructors, selection vectors, vectorized
operations and the row↔batch boundary adapters — with the edge cases
the row engine never had to name (empty batches, all-rows-filtered
selections, missing values, mixed-type columns)."""

import pytest

from repro.errors import SchemaError
from repro.relational import ColumnBatch, Relation, concat_batches
from repro.relational.schema import RelationSchema


def schema_of(name="w", ids=("D/id",), non_ids=("D/a", "D/b"),
              source="D"):
    return RelationSchema.of(name, ids=list(ids), non_ids=list(non_ids),
                             source=source)


def batch_of(rows, **kwargs):
    return ColumnBatch.from_rows(schema_of(**kwargs), rows)


ROWS = [
    {"D/id": 1, "D/a": "x", "D/b": 10},
    {"D/id": 2, "D/a": "y", "D/b": 20},
    {"D/id": 3, "D/a": "x", "D/b": 30},
]


class TestConstruction:
    def test_from_rows_round_trips(self):
        batch = batch_of(ROWS)
        assert len(batch) == 3
        assert batch.to_rows() == ROWS

    def test_column_count_mismatch_raises(self):
        with pytest.raises(SchemaError, match="expects 3 columns"):
            ColumnBatch(schema_of(), [[1], [2]])

    def test_ragged_columns_raise(self):
        with pytest.raises(SchemaError, match="ragged"):
            ColumnBatch(schema_of(), [[1], [2, 3], [4]])

    def test_empty_batch(self):
        batch = ColumnBatch.empty(schema_of())
        assert len(batch) == 0
        assert batch.to_rows() == []
        assert batch.to_relation().rows == []

    def test_from_relation_memoizes_on_the_relation(self):
        relation = Relation(schema_of(), ROWS)
        first = ColumnBatch.from_relation(relation)
        assert ColumnBatch.from_relation(relation) is first
        # appending invalidates the memo
        relation.append({"D/id": 4, "D/a": "z", "D/b": 40})
        again = ColumnBatch.from_relation(relation)
        assert again is not first
        assert len(again) == 4


class TestSelection:
    def test_select_shares_columns(self):
        batch = batch_of(ROWS)
        picked = batch.select([0, 2])
        assert picked.columns[0] is batch.columns[0]  # no copy
        assert picked.column("D/id") == [1, 3]
        assert picked.to_rows() == [ROWS[0], ROWS[2]]

    def test_all_rows_filtered(self):
        batch = batch_of(ROWS)
        none = batch.filter_in("D/id", frozenset({99}))
        assert len(none) == 0
        assert none.to_rows() == []
        assert none.dense_columns() == ([], [], [])
        # operations on the empty selection stay well-formed
        assert len(none.distinct()) == 0
        assert len(none.rename({"k": "D/id"})) == 0

    def test_filter_keeping_everything_returns_self(self):
        batch = batch_of(ROWS)
        assert batch.filter_in("D/id", frozenset({1, 2, 3})) is batch

    def test_select_composes_through_existing_selection(self):
        batch = batch_of(ROWS).select([2, 1])  # rows 3, 2
        again = batch.select([1])  # live position 1 → row 2
        assert again.to_rows() == [ROWS[1]]

    def test_take_through_selection_is_dense(self):
        batch = batch_of(ROWS).select([2, 0])
        taken = batch.take([1, 0, 0])
        assert taken.selection is None
        assert taken.column("D/id") == [1, 3, 3]

    def test_compact_materializes_once(self):
        batch = batch_of(ROWS).select([0, 2])
        dense = batch.compact()
        assert dense.selection is None
        assert dense.to_rows() == batch.to_rows()
        assert dense.compact() is dense


class TestValues:
    def test_missing_values_flow_as_none(self):
        rows = [{"D/id": 1, "D/a": None, "D/b": None},
                {"D/id": 2, "D/a": "y", "D/b": None}]
        batch = batch_of(rows)
        assert batch.column("D/a") == [None, "y"]
        assert batch.to_rows() == rows
        assert len(batch.distinct()) == 2

    def test_mixed_type_columns(self):
        rows = [{"D/id": 1, "D/a": "x", "D/b": 1},
                {"D/id": "1", "D/a": 2.5, "D/b": (1, 2)},
                {"D/id": None, "D/a": True, "D/b": b"raw"}]
        batch = batch_of(rows)
        assert batch.to_rows() == rows
        assert len(batch.distinct()) == 3


class TestRename:
    def test_rename_aliases_columns(self):
        batch = batch_of(ROWS)
        out = batch.rename({"id": "D/id", "a": "D/a"})
        assert out.attribute_names == ("id", "a")
        assert out.columns[0] is batch.columns[0]  # zero-copy
        assert out.columns[1] is batch.columns[1]
        assert out.to_rows() == [{"id": 1, "a": "x"},
                                 {"id": 2, "a": "y"},
                                 {"id": 3, "a": "x"}]

    def test_rename_preserves_selection(self):
        batch = batch_of(ROWS).select([1])
        out = batch.rename({"a": "D/a"})
        assert out.to_rows() == [{"a": "y"}]

    def test_rename_unknown_attribute_raises(self):
        with pytest.raises(SchemaError, match="no attribute"):
            batch_of(ROWS).rename({"k": "D/missing"})

    def test_empty_mapping_keeps_length(self):
        out = batch_of(ROWS).rename({})
        assert len(out) == 3
        assert out.to_rows() == [{}, {}, {}]

    def test_reorder_is_identity_when_aligned(self):
        batch = batch_of(ROWS)
        assert batch.reorder(batch.attribute_names) is batch
        flipped = batch.reorder(("D/b", "D/a", "D/id"))
        assert flipped.attribute_names == ("D/b", "D/a", "D/id")
        assert flipped.to_rows() == ROWS  # dicts: order-insensitive


class TestDistinct:
    def test_multi_column_dedup_keeps_first(self):
        rows = [{"D/id": 1, "D/a": "x", "D/b": 1},
                {"D/id": 1, "D/a": "x", "D/b": 1},
                {"D/id": 1, "D/a": "y", "D/b": 1}]
        out = batch_of(rows).distinct()
        assert out.to_rows() == [rows[0], rows[2]]

    def test_single_column_dedup(self):
        schema = RelationSchema.of("w", ids=["D/id"], non_ids=[],
                                   source="D")
        batch = ColumnBatch.from_rows(
            schema, [{"D/id": v} for v in (1, 2, 1, 3, 2)])
        assert batch.distinct().column("D/id") == [1, 2, 3]

    def test_zero_column_batch_dedups_to_one_row(self):
        batch = batch_of(ROWS).rename({})
        assert len(batch.distinct()) == 1
        assert len(ColumnBatch.empty(
            RelationSchema("z", (), None)).distinct()) == 0

    def test_distinct_through_selection(self):
        rows = [{"D/id": 1, "D/a": "x", "D/b": 1},
                {"D/id": 2, "D/a": "x", "D/b": 1},
                {"D/id": 1, "D/a": "x", "D/b": 1}]
        batch = batch_of(rows).select([0, 2])  # two equal live rows
        assert len(batch.distinct()) == 1


class TestConcat:
    def test_aligns_columns_by_name(self):
        a = batch_of(ROWS[:1])
        flipped_schema = RelationSchema(
            "w2", tuple(reversed(schema_of().attributes)), "D")
        b = ColumnBatch.from_rows(flipped_schema, ROWS[1:])
        out = concat_batches(a.schema, [a, b])
        assert out.to_rows() == ROWS

    def test_incompatible_attribute_sets_raise(self):
        other = batch_of([], non_ids=("D/other",))
        with pytest.raises(SchemaError, match="cannot concatenate"):
            concat_batches(batch_of(ROWS).schema, [batch_of(ROWS), other])

    def test_single_branch_shares_data(self):
        batch = batch_of(ROWS)
        out = concat_batches(batch.schema, [batch])
        assert out is batch

    def test_empty_branches(self):
        schema = schema_of()
        out = concat_batches(schema, [ColumnBatch.empty(schema),
                                      ColumnBatch.empty(schema)])
        assert len(out) == 0
        assert out.to_rows() == []


class TestRelationBoundary:
    def test_to_relation_renames(self):
        rel = batch_of(ROWS).to_relation("result")
        assert rel.schema.name == "result"
        assert rel.rows == ROWS

    def test_relation_from_batch(self):
        batch = batch_of(ROWS)
        rel = Relation.from_batch(batch, name="out")
        assert rel.schema.name == "out"
        assert rel.rows == ROWS
