"""Encoded-tier tests: dictionary encoding, int-coded joins, fused
pipelines and the optional numpy kernels.

Every engine-level test runs twice — once with the numpy kernels live
and once with :mod:`repro.relational.accel` pinned off — so the pure
Python fallback and the accelerated path are both exercised against
the same expectations.
"""

import random

import pytest

from repro.relational import accel
from repro.relational.columnar import (
    ENCODE_MIN_ROWS, ColumnBatch, EncodedColumn, encode_values,
)
from repro.relational.physical import (
    PhysicalHashJoin, PhysicalScan, RelationScanProvider,
    _first_occurrences,
)
from repro.relational.rows import Relation
from repro.relational.schema import RelationSchema


def rel(name, ids, non_ids, rows, source=None):
    return Relation(RelationSchema.of(name, ids=ids, non_ids=non_ids,
                                      source=source), rows)


def scan_of(provider, name):
    schema = provider[name].schema
    return PhysicalScan(schema, None, len(schema.attributes))


@pytest.fixture(params=["accel", "pure"])
def accel_mode(request, monkeypatch):
    """Run the test body on both kernel paths."""
    if request.param == "pure":
        monkeypatch.setattr(accel, "numpy", None)
    elif not accel.available():  # pragma: no cover - numpy-less env
        pytest.skip("numpy unavailable")
    return request.param


# ---------------------------------------------------------------------------
# Dictionary encoding
# ---------------------------------------------------------------------------


class TestEncodeValues:
    def test_codes_dense_and_first_occurrence(self):
        enc = encode_values(["b", "a", "b", "c", "a"])
        assert enc.codes == [0, 1, 0, 2, 1]
        assert enc.values == ["b", "a", "c"]
        assert enc.index == {"b": 0, "a": 1, "c": 2}
        assert enc.cardinality == 3
        assert len(enc) == 5

    def test_equal_values_share_a_code(self):
        enc = encode_values([1, 1.0, 2])
        assert enc.codes == [0, 0, 1]

    def test_none_and_mixed_types_encode(self):
        enc = encode_values([None, "a", 7, None, "a"])
        assert enc.codes == [0, 1, 2, 0, 1]
        assert enc.values == [None, "a", 7]

    def test_unhashable_value_falls_back(self):
        assert encode_values([1, [2], 3]) is None

    def test_high_cardinality_aborts(self):
        # At ENCODE_MIN_ROWS rows a near-unique column must not encode…
        unique = [f"id-{i}" for i in range(ENCODE_MIN_ROWS)]
        assert encode_values(unique) is None
        # …while a short column always does, however unique.
        short = [f"id-{i}" for i in range(ENCODE_MIN_ROWS - 1)]
        assert encode_values(short) is not None
        # And a long duplicate-heavy column encodes.
        heavy = [f"v-{i % 4}" for i in range(ENCODE_MIN_ROWS * 2)]
        assert encode_values(heavy).cardinality == 4

    def test_remap_onto_bridges_dictionaries(self):
        left = encode_values(["a", "b", "c", "a"])
        right = encode_values(["c", "x", "a"])
        translate = left.remap_onto(right)
        # left codes: a=0 b=1 c=2 → right codes: a=2, b absent, c=0
        assert translate == [2, -1, 0]

    def test_select_applies_selection(self):
        enc = encode_values(["a", "b", "a", "c"])
        assert enc.select(None) is enc.codes
        assert enc.select([3, 0]) == [2, 0]


class TestEncodingMemo:
    def batch(self):
        schema = RelationSchema.of("w", ids=["a"], non_ids=["b"])
        return ColumnBatch(schema, [["x", "y", "x"], [1, 2, 1]])

    def test_encoded_at_memoizes(self):
        batch = self.batch()
        first = batch.encoded_at(0)
        assert first is batch.encoded_at(0)
        assert first is batch.encoded("a")

    def test_failures_are_memoized(self):
        schema = RelationSchema.of("w", ids=["a"], non_ids=[])
        batch = ColumnBatch(schema, [[["unhashable"]]])
        assert batch.encoded_at(0) is None
        key = id(batch.columns[0])
        assert key in batch._encodings  # not retried next call
        assert batch.encoded_at(0) is None

    def test_memo_shared_across_zero_copy_views(self):
        batch = self.batch()
        enc = batch.encoded_at(0)
        renamed = batch.rename({"out": "a"})
        assert renamed.encoded("out") is enc


class TestColumnAtDefensiveCopy:
    def test_mutating_the_copy_leaves_the_batch_intact(self):
        schema = RelationSchema.of("w", ids=["a"], non_ids=[])
        batch = ColumnBatch(schema, [[1, 2, 3]])
        taken = batch.column_at(0)
        taken.append(99)
        taken[0] = -1
        assert batch.column_at(0) == [1, 2, 3]
        assert batch.columns[0] == [1, 2, 3]

    def test_copy_with_selection(self):
        schema = RelationSchema.of("w", ids=["a"], non_ids=[])
        batch = ColumnBatch(schema, [[1, 2, 3]], selection=[2, 0])
        taken = batch.column_at(0)
        assert taken == [3, 1]
        taken[0] = -1
        assert batch.column_at(0) == [3, 1]


# ---------------------------------------------------------------------------
# Int-coded joins and fused pipelines (both kernel paths)
# ---------------------------------------------------------------------------


def join_provider(build_rows, probe_rows):
    provider = {
        "wb": rel("wb", ["B/id"], ["B/v"], build_rows, source="B"),
        "wp": rel("wp", ["P/id"], ["P/v"], probe_rows, source="P"),
    }
    join = PhysicalHashJoin(
        build=scan_of(provider, "wb"),
        probe=scan_of(provider, "wp"),
        conditions=(("B/id", "P/id"),))
    return provider, join


class TestCodedJoins:
    def assert_encoded_matches_rows(self, provider, join):
        scans = RelationScanProvider(provider)
        expected = join.execute(scans)
        got = join.execute_encoded(scans).to_relation(
            expected.schema.name)
        assert got == expected
        return expected

    def test_both_sides_encoded(self, accel_mode):
        rng = random.Random(7)
        build = [{"B/id": f"k{rng.randrange(10)}", "B/v": i}
                 for i in range(80)]
        probe = [{"P/id": f"k{rng.randrange(12)}", "P/v": i}
                 for i in range(120)]
        provider, join = join_provider(build, probe)
        # Both key columns are duplicate-heavy: both dictionaries build.
        assert encode_values([r["B/id"] for r in build]) is not None
        assert encode_values([r["P/id"] for r in probe]) is not None
        out = self.assert_encoded_matches_rows(provider, join)
        assert len(out) > 0

    def test_probe_side_only_encoded(self, accel_mode):
        # A unique-ID build column aborts encoding; the fanned-out
        # probe side encodes — the probe-code-space bucket path.
        build = [{"B/id": f"k{i}", "B/v": i} for i in range(80)]
        probe = [{"P/id": f"k{i % 40}", "P/v": j}
                 for j in range(4) for i in range(80)]
        provider, join = join_provider(build, probe)
        assert encode_values([r["B/id"] for r in build]) is None
        assert encode_values([r["P/id"] for r in probe]) is not None
        out = self.assert_encoded_matches_rows(provider, join)
        assert len(out) == 40 * 8

    def test_generic_fallback_when_nothing_encodes(self, accel_mode):
        build = [{"B/id": f"b{i}", "B/v": i} for i in range(80)]
        probe = [{"P/id": f"b{i * 2}", "P/v": i} for i in range(80)]
        provider, join = join_provider(build, probe)
        assert encode_values([r["B/id"] for r in build]) is None
        assert encode_values([r["P/id"] for r in probe]) is None
        out = self.assert_encoded_matches_rows(provider, join)
        assert len(out) == 40

    def test_no_matches_yields_empty(self, accel_mode):
        rng = random.Random(3)
        build = [{"B/id": f"a{rng.randrange(8)}", "B/v": i}
                 for i in range(80)]
        probe = [{"P/id": f"z{rng.randrange(8)}", "P/v": i}
                 for i in range(80)]
        provider, join = join_provider(build, probe)
        out = self.assert_encoded_matches_rows(provider, join)
        assert len(out) == 0

    def test_fusion_across_empty_intermediate(self, accel_mode):
        # hub ⋈ dead ⋈ tail: the first join produces zero rows; the
        # outer join must still compose the (empty) gather state and
        # resolve every attribute by name.
        rng = random.Random(11)
        provider = {
            "hub": rel("hub", ["H/id"], ["H/v"],
                       [{"H/id": f"k{rng.randrange(6)}", "H/v": i}
                        for i in range(80)], source="H"),
            "dead": rel("dead", ["D/id"], ["D/v"], [], source="D"),
            "tail": rel("tail", ["T/id"], ["T/v"],
                        [{"T/id": f"k{rng.randrange(6)}", "T/v": i}
                         for i in range(80)], source="T"),
        }
        inner = PhysicalHashJoin(
            build=scan_of(provider, "dead"),
            probe=scan_of(provider, "hub"),
            conditions=(("D/id", "H/id"),))
        outer = PhysicalHashJoin(
            build=inner,
            probe=scan_of(provider, "tail"),
            conditions=(("H/id", "T/id"),))
        scans = RelationScanProvider(provider)
        batch = outer.execute_encoded(scans)
        assert len(batch) == 0
        assert set(batch.schema.attribute_names) == {
            "D/id", "D/v", "H/id", "H/v", "T/id", "T/v"}
        assert outer.execute(scans) == batch.to_relation(
            outer.schema().name)


class TestEncodedDistinct:
    def encoded_batch(self, selection=None):
        schema = RelationSchema.of("w", ids=["a"], non_ids=["b"])
        batch = ColumnBatch(
            schema,
            [["x", "y", "x", "y", "x"], [1, 2, 1, 2, 2]],
            selection=selection)
        batch.encoded_at(0)
        batch.encoded_at(1)
        return batch

    def test_fully_encoded_dedup(self, accel_mode):
        out = self.encoded_batch().distinct()
        assert sorted(out.to_rows(), key=str) == sorted(
            [{"a": "x", "b": 1}, {"a": "y", "b": 2},
             {"a": "x", "b": 2}], key=str)

    def test_dedup_under_selection(self, accel_mode):
        out = self.encoded_batch(selection=[4, 2, 0]).distinct()
        assert out.to_rows() == [{"a": "x", "b": 2}, {"a": "x", "b": 1}]

    def test_all_unique_keeps_every_row(self, accel_mode):
        schema = RelationSchema.of("w", ids=["a"], non_ids=[])
        batch = ColumnBatch(schema, [["p", "q", "r"]])
        batch.encoded_at(0)
        out = batch.distinct()
        assert out.to_rows() == [{"a": "p"}, {"a": "q"}, {"a": "r"}]

    def test_mixed_encoded_and_raw_lanes(self, accel_mode):
        schema = RelationSchema.of("w", ids=["a"], non_ids=["b"])
        batch = ColumnBatch(schema,
                            [["x", "y", "x"], [1, 2, 1]])
        batch.encoded_at(0)  # only one lane coded: zip fallback
        out = batch.distinct()
        assert sorted(out.to_rows(), key=str) == sorted(
            [{"a": "x", "b": 1}, {"a": "y", "b": 2}], key=str)

    def test_zero_column_batch(self, accel_mode):
        schema = RelationSchema("empty", (), None)
        batch = ColumnBatch(schema, (), _length=5)
        assert len(batch.distinct()) == 1


# ---------------------------------------------------------------------------
# The numpy kernels themselves (parity against the pure loops)
# ---------------------------------------------------------------------------


needs_numpy = pytest.mark.skipif(not accel.available(),
                                 reason="numpy unavailable")


def reference_probe(build_codes, probe_codes, cardinality):
    """The pure-Python bucket loop csr_probe must reproduce exactly."""
    buckets = [None] * cardinality
    for i, code in enumerate(build_codes):
        if code < 0:
            continue
        if buckets[code] is None:
            buckets[code] = [i]
        else:
            buckets[code].append(i)
    build_sel, probe_sel = [], []
    for j, code in enumerate(probe_codes):
        if code < 0:
            continue
        bucket = buckets[code]
        if bucket is None:
            continue
        build_sel += bucket
        probe_sel += [j] * len(bucket)
    return build_sel, probe_sel


@needs_numpy
class TestCsrProbe:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_the_bucket_loop_exactly(self, seed):
        rng = random.Random(seed)
        cardinality = rng.randint(1, 12)
        build = [rng.randint(-1, cardinality - 1)
                 for _ in range(rng.randint(0, 60))]
        probe = [rng.randint(-1, cardinality - 1)
                 for _ in range(rng.randint(0, 60))]
        expected = reference_probe(build, probe, cardinality)
        got = accel.csr_probe(build, probe, cardinality)
        if not expected[0]:
            assert got is None
        else:
            assert got[0].tolist() == expected[0]
            assert got[1].tolist() == expected[1]

    def test_no_matches_returns_none(self):
        assert accel.csr_probe([0, 1], [2, 2], 3) is None
        assert accel.csr_probe([-1, -1], [0, 1], 2) is None
        assert accel.csr_probe([0], [-1], 1) is None

    def test_single_code_space(self):
        got = accel.csr_probe([0, 0], [0], 1)
        assert got[0].tolist() == [0, 1]
        assert got[1].tolist() == [0, 0]


@needs_numpy
class TestFirstOccurrenceKeep:
    def reference(self, lanes):
        seen, keep = set(), []
        for i, key in enumerate(zip(*lanes)):
            if key not in seen:
                seen.add(key)
                keep.append(i)
        return None if len(keep) == len(lanes[0]) else keep

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_zip_dedup(self, seed):
        rng = random.Random(100 + seed)
        rows = rng.randint(1, 50)
        lanes = [[rng.randint(0, 5) for _ in range(rows)]
                 for _ in range(rng.randint(1, 4))]
        assert accel.first_occurrence_keep(lanes) \
            == self.reference(lanes)

    def test_all_unique_returns_none(self):
        assert accel.first_occurrence_keep([[3, 1, 2]]) is None
        assert accel.first_occurrence_keep([[], []]) is None

    def test_radix_overflow_uses_rowwise_dedup(self):
        # Lane maxima so large the packed radix product would overflow
        # int64 — the kernel must switch to axis=0 dedup, same answer.
        big = 1 << 40
        lanes = [[big, 0, big, big], [big, big, 0, big]]
        assert accel.first_occurrence_keep(lanes) == [0, 1, 2]

    def test_engine_helper_dispatches_to_kernel(self):
        # _first_occurrences takes the kernel only when every lane is
        # already an int64 vector (i.e. came off the accelerated path).
        arrays = [accel.index_array([0, 1, 0, 1]),
                  accel.index_array([2, 3, 2, 3])]
        assert _first_occurrences(arrays) == [0, 1]
        # Mixed/plain lanes use the zip path with identical results.
        assert _first_occurrences([[0, 1, 0, 1], [2, 3, 2, 3]]) \
            == [0, 1]
