"""Unit tests for relation schemas."""

import pytest

from repro.errors import SchemaError
from repro.relational.schema import Attribute, RelationSchema


class TestAttribute:
    def test_defaults_to_non_id(self):
        assert Attribute("a").is_id is False

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            Attribute("")

    def test_str(self):
        assert str(Attribute("x", True)) == "x"

    def test_ordering(self):
        assert Attribute("a") < Attribute("b")


class TestRelationSchema:
    def test_of_constructor(self):
        s = RelationSchema.of("w1", ids=["id"], non_ids=["v"], source="D1")
        assert s.id_names == {"id"}
        assert s.non_id_names == {"v"}
        assert s.source == "D1"

    def test_paper_notation(self):
        s = RelationSchema.of("w1", ids=["VoDmonitorId"],
                              non_ids=["lagRatio"])
        assert s.notation() == "w1({VoDmonitorId}, {lagRatio})"

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("w", (Attribute("a"), Attribute("a", True)))

    def test_requires_name(self):
        with pytest.raises(SchemaError):
            RelationSchema("", (Attribute("a"),))

    def test_contains(self):
        s = RelationSchema.of("w", ids=["id"])
        assert "id" in s
        assert "other" not in s

    def test_attribute_lookup(self):
        s = RelationSchema.of("w", ids=["id"], non_ids=["v"])
        assert s.attribute("id").is_id
        assert not s.attribute("v").is_id
        with pytest.raises(SchemaError):
            s.attribute("missing")

    def test_is_id_attribute(self):
        s = RelationSchema.of("w", ids=["id"], non_ids=["v"])
        assert s.is_id_attribute("id")
        assert not s.is_id_attribute("v")

    def test_iteration_order(self):
        s = RelationSchema.of("w", ids=["a", "b"], non_ids=["c"])
        assert [x.name for x in s] == ["a", "b", "c"]

    def test_source_not_part_of_equality(self):
        s1 = RelationSchema.of("w", ids=["a"], source="D1")
        s2 = RelationSchema.of("w", ids=["a"], source="D2")
        assert s1 == s2
