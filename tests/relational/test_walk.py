"""Unit tests for walks."""

import pytest

from repro.errors import RewritingError, SameSourceJoinError, SchemaError
from repro.relational.schema import RelationSchema
from repro.relational.walk import JoinCondition, Walk

W1 = RelationSchema.of("w1", ids=["D1/id"], non_ids=["D1/v"], source="D1")
W3 = RelationSchema.of("w3", ids=["D3/app", "D3/mid"], source="D3")
W4 = RelationSchema.of("w4", ids=["D1/id"], non_ids=["D1/b"], source="D1")


class TestJoinCondition:
    def test_normalized_orders_sides(self):
        cond = JoinCondition("w3", "D3/mid", "w1", "D1/id")
        norm = cond.normalized()
        assert norm.left_wrapper == "w1"
        assert norm == JoinCondition("w1", "D1/id", "w3",
                                     "D3/mid").normalized()

    def test_touches(self):
        cond = JoinCondition("w1", "D1/id", "w3", "D3/mid")
        assert cond.touches("w1") and cond.touches("w3")
        assert not cond.touches("w4")


class TestWalkBuilding:
    def test_single(self):
        walk = Walk.single(W1, {"D1/v"})
        assert walk.wrapper_names == frozenset({"w1"})
        assert walk.projected_attributes() == {"D1/v"}

    def test_single_rejects_bad_projection(self):
        with pytest.raises(SchemaError):
            Walk.single(W1, {"D1/id"})  # IDs are implicit

    def test_output_attributes_include_ids(self):
        walk = Walk.single(W1, {"D1/v"})
        assert walk.output_attributes() == {"D1/id", "D1/v"}

    def test_add_wrapper_merges_projections(self):
        walk = Walk.single(W1, set())
        walk.add_wrapper(W1, {"D1/v"})
        assert walk.projections["w1"] == {"D1/v"}

    def test_same_source_rejected(self):
        walk = Walk.single(W1, set())
        with pytest.raises(SameSourceJoinError):
            walk.add_wrapper(W4, set())

    def test_merged_with(self):
        a = Walk.single(W1, {"D1/v"})
        b = Walk.single(W3, set())
        merged = a.merged_with(b)
        assert merged.wrapper_names == frozenset({"w1", "w3"})
        # inputs untouched
        assert a.wrapper_names == frozenset({"w1"})

    def test_merged_with_same_source_fails(self):
        a = Walk.single(W1, set())
        b = Walk.single(W4, set())
        with pytest.raises(SameSourceJoinError):
            a.merged_with(b)

    def test_add_join_validates_membership(self):
        walk = Walk.single(W1, set())
        with pytest.raises(RewritingError):
            walk.add_join(JoinCondition("w1", "D1/id", "w3", "D3/mid"))

    def test_add_join_validates_id(self):
        walk = Walk.single(W1, {"D1/v"})
        walk.add_wrapper(W3, set())
        with pytest.raises(RewritingError):
            walk.add_join(JoinCondition("w1", "D1/v", "w3", "D3/mid"))

    def test_equivalence_ignores_join_direction(self):
        a = Walk.single(W1, set())
        a.add_wrapper(W3, set())
        a.add_join(JoinCondition("w1", "D1/id", "w3", "D3/mid"))
        b = Walk.single(W3, set())
        b.add_wrapper(W1, set())
        b.add_join(JoinCondition("w3", "D3/mid", "w1", "D1/id"))
        assert a.equivalence_key() == b.equivalence_key()

    def test_equivalence_differs_on_wrappers(self):
        a = Walk.single(W1, set())
        b = Walk.single(W3, set())
        assert a.equivalence_key() != b.equivalence_key()


class TestConnectivityAndLowering:
    def test_single_wrapper_connected(self):
        assert Walk.single(W1, set()).is_connected()

    def test_disconnected_without_joins(self):
        walk = Walk.single(W1, set())
        walk.add_wrapper(W3, set())
        assert not walk.is_connected()
        with pytest.raises(RewritingError):
            walk.to_expression()

    def test_lowering_joined_walk(self):
        walk = Walk.single(W1, {"D1/v"})
        walk.add_wrapper(W3, set())
        walk.add_join(JoinCondition("w1", "D1/id", "w3", "D3/mid"))
        expr = walk.to_expression()
        assert expr.wrappers() == {"w1", "w3"}
        assert "⋈̃" in expr.notation()

    def test_empty_walk_rejected(self):
        with pytest.raises(RewritingError):
            Walk().to_expression()

    def test_three_way_chain(self):
        w5 = RelationSchema.of("w5", ids=["D5/mid"], non_ids=["D5/z"],
                               source="D5")
        walk = Walk.single(W1, {"D1/v"})
        walk.add_wrapper(W3, set())
        walk.add_wrapper(w5, {"D5/z"})
        walk.add_join(JoinCondition("w1", "D1/id", "w3", "D3/mid"))
        walk.add_join(JoinCondition("w3", "D3/mid", "w5", "D5/mid"))
        expr = walk.to_expression()
        assert expr.wrappers() == {"w1", "w3", "w5"}

    def test_notation_mentions_joins(self):
        walk = Walk.single(W1, {"D1/v"})
        walk.add_wrapper(W3, set())
        walk.add_join(JoinCondition("w1", "D1/id", "w3", "D3/mid"))
        text = walk.notation()
        assert "w1.D1/id=w3.D3/mid" in text
