"""Property-based tests for toposort, text utils, Algorithm 1, rewriting."""

from hypothesis import given, settings, strategies as st

from repro.evaluation.worst_case import build_worst_case
from repro.query.coverage import covering_and_minimal
from repro.query.rewriter import rewrite
from repro.util.text import levenshtein, name_similarity
from repro.util.toposort import CycleError, is_dag, topological_sort

_names = st.text(alphabet="abcdefg_123", min_size=0, max_size=12)


class TestToposortProperties:
    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)),
                    max_size=20))
    def test_order_respects_edges_or_cycle(self, edges):
        try:
            order = topological_sort([], edges)
        except CycleError:
            assert not is_dag([], edges)
            return
        position = {node: i for i, node in enumerate(order)}
        for a, b in edges:
            if a != b:
                assert position[a] < position[b]

    @given(st.lists(st.integers(0, 20), max_size=15))
    def test_edge_free_graphs_sorted(self, nodes):
        order = topological_sort(nodes, [])
        assert order == sorted(set(nodes), key=str)

    @given(st.integers(2, 8))
    def test_chain_order(self, n):
        edges = [(i, i + 1) for i in range(n - 1)]
        assert topological_sort([], edges) == list(range(n))


class TestTextProperties:
    @given(_names, _names)
    def test_levenshtein_symmetric(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(_names, _names)
    def test_levenshtein_bounds(self, a, b):
        d = levenshtein(a, b)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b), 0)

    @given(_names)
    def test_levenshtein_identity(self, a):
        assert levenshtein(a, a) == 0

    @given(_names, _names, _names)
    def test_levenshtein_triangle(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(_names, _names)
    def test_similarity_bounded_and_symmetric(self, a, b):
        s = name_similarity(a, b)
        assert 0.0 <= s <= 1.0
        assert abs(s - name_similarity(b, a)) < 1e-12

    @given(_names)
    def test_similarity_reflexive(self, a):
        assert name_similarity(a, a) == 1.0


class TestAlgorithm1Properties:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(1, 3), st.integers(1, 3))
    def test_release_monotone_and_idempotent(self, concepts, wrappers):
        """Re-running every release adds nothing (graphs are sets)."""
        from repro.core.release import Release, new_release
        setup = build_worst_case(concepts, wrappers)
        t = setup.ontology
        before = t.triple_counts()
        # Rebuild and re-apply the same releases: deltas must be zero.
        for wrapper in t.wrapper_names():
            schema = t.wrapper_relation_schema(wrapper)
            lav = t.lav_subgraph(
                __import__("repro.core.vocabulary",
                           fromlist=["wrapper_uri"]).wrapper_uri(wrapper))
            mapping = {}
            for attr in schema.attribute_names:
                from repro.core.vocabulary import attribute_uri, \
                    source_local_name
                source = source_local_name(schema.source)
                local = attr.split("/", 1)[1]
                feature = t.feature_of_attribute(
                    attribute_uri(source, local))
                mapping[local] = feature
            release = Release(
                wrapper_name=wrapper,
                source_name=source_local_name(schema.source),
                id_attributes=tuple(a.split("/", 1)[1]
                                    for a in schema.id_names),
                non_id_attributes=tuple(a.split("/", 1)[1]
                                        for a in schema.non_id_names),
                subgraph=lav, attribute_to_feature=mapping)
            delta = new_release(t, release)
            assert all(v == 0 for v in delta.values())
        assert t.triple_counts() == before


class TestRewritingInvariants:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(1, 4), st.integers(1, 3))
    def test_walks_always_covering_minimal_and_distinct(self, concepts,
                                                        wrappers):
        setup = build_worst_case(concepts, wrappers)
        result = rewrite(setup.ontology, setup.query)
        keys = [w.equivalence_key() for w in result.walks]
        assert len(keys) == len(set(keys))
        for walk in result.walks:
            assert covering_and_minimal(setup.ontology, walk,
                                        result.well_formed)
            assert walk.is_connected()
            sources = [setup.ontology.wrapper_relation_schema(n).source
                       for n in walk.wrapper_names]
            assert len(sources) == len(set(sources))
