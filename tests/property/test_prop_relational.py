"""Property-based tests for the relational substrate (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.relational.algebra import FinalProject, Join, Project, Scan
from repro.relational.rows import Relation
from repro.relational.schema import RelationSchema

LEFT = RelationSchema.of("l", ids=["L/id"], non_ids=["L/v"], source="L")
RIGHT = RelationSchema.of("r", ids=["R/id"], non_ids=["R/w"], source="R")

_values = st.integers(min_value=0, max_value=5)
_left_rows = st.lists(
    st.fixed_dictionaries({"L/id": _values, "L/v": _values}), max_size=12)
_right_rows = st.lists(
    st.fixed_dictionaries({"R/id": _values, "R/w": _values}), max_size=12)


def _provider(left_rows, right_rows):
    return {"l": Relation(LEFT, left_rows),
            "r": Relation(RIGHT, right_rows)}


class TestJoinLaws:
    @given(_left_rows, _right_rows)
    def test_join_symmetric_cardinality(self, ls, rs):
        p = _provider(ls, rs)
        forward = Join(Scan(LEFT), Scan(RIGHT), [("L/id", "R/id")])
        backward = Join(Scan(RIGHT), Scan(LEFT), [("R/id", "L/id")])
        assert len(forward.evaluate(p)) == len(backward.evaluate(p))

    @given(_left_rows, _right_rows)
    def test_join_matches_nested_loop(self, ls, rs):
        p = _provider(ls, rs)
        expr = Join(Scan(LEFT), Scan(RIGHT), [("L/id", "R/id")])
        expected = sorted(
            (l["L/id"], l["L/v"], r["R/id"], r["R/w"])
            for l in ls for r in rs if l["L/id"] == r["R/id"])
        got = sorted(expr.evaluate(p).as_tuples(
            ["L/id", "L/v", "R/id", "R/w"]))
        assert got == expected

    @given(_left_rows)
    def test_self_join_on_id_superset_of_rows(self, ls):
        clone = RelationSchema.of("l2", ids=["L2/id"], non_ids=["L2/v"],
                                  source="L2")
        p = {"l": Relation(LEFT, ls),
             "l2": Relation(clone, [{"L2/id": r["L/id"],
                                     "L2/v": r["L/v"]} for r in ls])}
        expr = Join(Scan(LEFT), Scan(clone), [("L/id", "L2/id")])
        assert len(expr.evaluate(p)) >= len(set(
            (r["L/id"], r["L/v"]) for r in ls)) if ls else True


class TestProjectionLaws:
    @given(_left_rows)
    def test_projection_preserves_cardinality(self, ls):
        p = _provider(ls, [])
        expr = Project(Scan(LEFT), ["L/v"])
        assert len(expr.evaluate(p)) == len(ls)

    @given(_left_rows)
    def test_projection_idempotent(self, ls):
        p = _provider(ls, [])
        once = Project(Scan(LEFT), ["L/v"]).evaluate(p)
        twice = Project(Project(Scan(LEFT), ["L/v"]),
                        ["L/v"]).evaluate(p)
        assert once == twice

    @given(_left_rows)
    def test_ids_always_survive(self, ls):
        p = _provider(ls, [])
        out = Project(Scan(LEFT), []).evaluate(p)
        assert "L/id" in out.schema.attribute_names

    @given(_left_rows)
    def test_final_project_column_values(self, ls):
        p = _provider(ls, [])
        out = FinalProject(Scan(LEFT), {"x": "L/v"}).evaluate(p)
        assert out.column("x") == [r["L/v"] for r in ls]


class TestDistinct:
    @given(_left_rows)
    def test_distinct_no_larger(self, ls):
        rel = Relation(LEFT, ls)
        assert len(rel.distinct()) <= len(rel)

    @given(_left_rows)
    def test_distinct_idempotent(self, ls):
        rel = Relation(LEFT, ls)
        assert rel.distinct() == rel.distinct().distinct()
