"""Property-based tests for the RDF substrate (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.rdf.graph import Graph
from repro.rdf.ntriples import (
    parse_nquads, parse_ntriples, serialize_nquads, serialize_ntriples,
)
from repro.rdf.dataset import Dataset
from repro.rdf.term import IRI, Literal
from repro.rdf.triple import Triple

_iris = st.sampled_from(
    [IRI(f"http://x/n{i}") for i in range(8)])
_predicates = st.sampled_from(
    [IRI(f"http://x/p{i}") for i in range(4)])
_literal_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=20)
_objects = st.one_of(
    _iris,
    _literal_text.map(Literal),
    st.integers(min_value=-10**6, max_value=10**6).map(Literal),
    st.booleans().map(Literal),
)
_triples = st.builds(Triple, _iris, _predicates, _objects)
_triple_lists = st.lists(_triples, max_size=40)


class TestStoreInvariants:
    @given(_triple_lists)
    def test_size_equals_distinct_triples(self, triples):
        g = Graph(triples=triples)
        assert len(g) == len(set(triples))

    @given(_triple_lists)
    def test_indexes_agree(self, triples):
        """Every access path returns the same triple set."""
        g = Graph(triples=triples)
        full = set(g.match())
        via_s = {t for s in {x.s for x in full}
                 for t in g.match(s, None, None)}
        via_p = {t for p in {x.p for x in full}
                 for t in g.match(None, p, None)}
        via_o = {t for o in {x.o for x in full}
                 for t in g.match(None, None, o)}
        assert full == via_s == via_p == via_o

    @given(_triple_lists, _triples)
    def test_add_remove_roundtrip(self, triples, extra):
        g = Graph(triples=triples)
        before = set(g.match())
        g.add(extra)
        g.remove(extra)
        assert set(g.match()) == before - {extra}

    @given(_triple_lists, _triple_lists)
    def test_union_commutes(self, a, b):
        ga, gb = Graph(triples=a), Graph(triples=b)
        assert ga.union(gb) == gb.union(ga)

    @given(_triple_lists, _triple_lists)
    def test_intersection_subset_of_both(self, a, b):
        ga, gb = Graph(triples=a), Graph(triples=b)
        common = ga.intersection(gb)
        assert common.issubset(ga)
        assert common.issubset(gb)

    @given(_triple_lists)
    def test_difference_disjoint(self, a):
        g = Graph(triples=a)
        assert len(g.difference(g)) == 0


class TestSerializationRoundTrips:
    @settings(max_examples=50)
    @given(_triple_lists)
    def test_ntriples_roundtrip(self, triples):
        g = Graph(triples=triples)
        assert parse_ntriples(serialize_ntriples(g)) == g

    @settings(max_examples=30)
    @given(st.lists(st.tuples(_triples,
                              st.sampled_from([None, "http://g/1",
                                               "http://g/2"])),
                    max_size=25))
    def test_nquads_roundtrip(self, quads):
        ds = Dataset()
        for triple, graph in quads:
            ds.graph(graph).add(triple)
        back = parse_nquads(serialize_nquads(ds))
        assert back.quad_count() == ds.quad_count()
        for name in ds.graph_names():
            assert back.graph(name) == ds.graph(name)

    @settings(max_examples=50)
    @given(_triple_lists)
    def test_turtle_roundtrip(self, triples):
        from repro.rdf.turtle import parse_turtle, serialize_turtle
        g = Graph(triples=triples)
        assert parse_turtle(serialize_turtle(g)) == g
