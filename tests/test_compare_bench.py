"""The benchmark-regression gate (benchmarks/compare_bench.py):
direction inference, tolerance bands, exit codes, summary table."""

import importlib.util
import json
import pathlib

import pytest

SCRIPT = (pathlib.Path(__file__).parent.parent / "benchmarks"
          / "compare_bench.py")
spec = importlib.util.spec_from_file_location("compare_bench", SCRIPT)
compare_bench = importlib.util.module_from_spec(spec)
spec.loader.exec_module(compare_bench)


class TestDirection:
    @pytest.mark.parametrize("name", [
        "join_speedup", "answer_cache_speedup", "speedup",
        "speedup_vs_sequential.16", "restore_speedup_x",
        "cache_stats.hit_rate", "hit_rate",
    ])
    def test_gated_up(self, name):
        assert compare_bench.direction_of(name) == "up"

    @pytest.mark.parametrize("name", [
        "rows", "cold_seconds", "qps", "leader_only.qps", "p99_ms",
        "append_overhead_pct", "client_overhead_vs_serve",
        "speedup_floor", "gates.restore_speedup_floor_x",
        "gates.append_overhead_limit_pct",
    ])
    def test_informational(self, name):
        assert compare_bench.direction_of(name) is None


class TestFlatten:
    def test_nested_numeric_leaves(self):
        flat = compare_bench.flatten(
            {"a": 1, "b": {"c": 2.5, "d": {"e": 3}}, "s": "text",
             "ok": True})
        assert flat == {"a": 1.0, "b.c": 2.5, "b.d.e": 3.0}


def run(tmp_path, baseline, fresh, tolerance=0.4):
    baselines = tmp_path / "baselines"
    results = tmp_path / "results"
    baselines.mkdir()
    results.mkdir()
    (baselines / "BENCH_x.json").write_text(json.dumps(baseline))
    if fresh is not None:
        (results / "BENCH_x.json").write_text(json.dumps(fresh))
    return compare_bench.main([
        "--baselines", str(baselines), "--results", str(results),
        "--tolerance", str(tolerance)])


class TestGate:
    def test_within_tolerance_passes(self, tmp_path, capsys):
        code = run(tmp_path, {"join_speedup": 2.0, "rows": 10},
                   {"join_speedup": 1.5, "rows": 99})
        assert code == 0
        assert "all gated metrics" in capsys.readouterr().out

    def test_regression_fails(self, tmp_path, capsys):
        code = run(tmp_path, {"join_speedup": 2.0},
                   {"join_speedup": 1.0})
        assert code == 1
        out = capsys.readouterr().out
        assert "::error::" in out
        assert "join_speedup" in out

    def test_informational_drop_never_fails(self, tmp_path):
        assert run(tmp_path, {"qps": 1000.0, "cold_seconds": 1.0},
                   {"qps": 10.0, "cold_seconds": 50.0}) == 0

    def test_missing_fresh_file_fails(self, tmp_path):
        assert run(tmp_path, {"join_speedup": 2.0}, None) == 1

    def test_missing_gated_metric_fails(self, tmp_path):
        assert run(tmp_path, {"join_speedup": 2.0}, {"rows": 5}) == 1

    def test_new_metric_is_reported_not_gated(self, tmp_path, capsys):
        code = run(tmp_path, {"join_speedup": 2.0},
                   {"join_speedup": 2.0, "fresh_speedup": 0.1})
        assert code == 0
        assert "new" in capsys.readouterr().out

    def test_no_baselines_errors(self, tmp_path, capsys):
        (tmp_path / "baselines").mkdir()
        (tmp_path / "results").mkdir()
        code = compare_bench.main([
            "--baselines", str(tmp_path / "baselines"),
            "--results", str(tmp_path / "results")])
        assert code == 2

    def test_step_summary_written(self, tmp_path, monkeypatch):
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        run(tmp_path, {"join_speedup": 2.0}, {"join_speedup": 2.1})
        text = summary.read_text()
        assert "Benchmark regression gate" in text
        assert "| BENCH_x | join_speedup |" in text
