"""Chaos: kill or hang replicas mid-query-stream; clients never notice.

The acceptance bar for this suite is robustness, not luck — the router
absorbs an uncleanly dead backend by retrying the in-flight request on
the next candidate, so *zero* client requests may fail, run after run.

Two distinct failure paths are covered:

* SIGKILL — the supervisor sees the death and withdraws the backend
  from the routing table (or respawns it when restart is on);
* SIGSTOP — the process is alive but unresponsive, invisible to the
  supervisor: only the router's probe loop can catch it, by crossing
  the consecutive-failure threshold and evicting the backend until a
  probe succeeds again (SIGCONT → rejoin).
"""

from __future__ import annotations

import json
import signal
import threading
import time
import urllib.request

from repro.fleet.__main__ import DEMO_QUERY


class LoadGenerator:
    """A few client sessions hammering the router until stopped."""

    def __init__(self, fleet, sessions: int = 3) -> None:
        self.fleet = fleet
        self.stop = threading.Event()
        self.successes = 0
        self.failures: list[str] = []
        self._lock = threading.Lock()
        self._threads = [threading.Thread(target=self._run)
                         for _ in range(sessions)]

    def _run(self) -> None:
        client = self.fleet.client()
        while not self.stop.is_set():
            try:
                assert len(client.rows(DEMO_QUERY)) == 4
            except Exception as exc:  # noqa: BLE001
                with self._lock:
                    self.failures.append(
                        f"{type(exc).__name__}: {exc}")
                return
            with self._lock:
                self.successes += 1

    def __enter__(self) -> "LoadGenerator":
        for thread in self._threads:
            thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop.set()
        for thread in self._threads:
            thread.join()


def fleet_state(fleet) -> dict:
    with urllib.request.urlopen(fleet.url + "/v1/fleet") as reply:
        return json.loads(reply.read())


class TestReplicaKill:
    def test_sigkill_mid_stream_zero_failed_requests(
            self, fleet_harness):
        # restart=False: the supervisor reports the death and the
        # router withdraws the backend instead of respawning it
        fleet = fleet_harness(replicas=2, restart=False)
        with LoadGenerator(fleet) as load:
            time.sleep(0.5)
            before = load.successes
            fleet.kill_replica("replica-0")
            deadline = time.monotonic() + 15
            while time.monotonic() < deadline:
                keys = {b["key"]
                        for b in fleet_state(fleet)["backends"]}
                if "replica-0" not in keys:
                    break
                time.sleep(0.1)
            assert "replica-0" not in keys, \
                "dead replica was never withdrawn from routing"
            time.sleep(1.0)  # keep serving well past the withdrawal
            after = load.successes
        assert load.failures == []
        assert after > before, "traffic stalled after the kill"
        survivors = fleet_state(fleet)["backends"]
        assert sorted(b["role"] for b in survivors) == \
            ["leader", "replica"]

    def test_killed_replica_is_respawned_and_rejoins(
            self, fleet_harness):
        fleet = fleet_harness(replicas=1)  # restart defaults on
        old_pid = fleet.supervisor.process("replica-0").pid
        with LoadGenerator(fleet, sessions=2) as load:
            time.sleep(0.3)
            fleet.kill_replica("replica-0")
            deadline = time.monotonic() + 30
            rejoined = None
            while time.monotonic() < deadline:
                backends = {b["key"]: b
                            for b in fleet_state(fleet)["backends"]}
                replica = backends.get("replica-0")
                if replica and replica["pid"] != old_pid \
                        and replica["healthy"] and replica["ready"]:
                    rejoined = replica
                    break
                time.sleep(0.1)
            assert rejoined is not None, \
                "replica never rejoined after SIGKILL"
            time.sleep(0.5)
        assert load.failures == []
        assert fleet.supervisor.respawns >= 1
        # the respawned process is a different pid, same key
        proc = fleet.supervisor.process("replica-0")
        assert proc.alive and proc.pid == rejoined["pid"] != old_pid


class TestReplicaHang:
    def test_sigstop_is_probe_evicted_and_sigcont_rejoins(
            self, fleet_harness):
        """A hung replica is invisible to the supervisor (the process
        is alive) — only the router's failure-threshold probes can
        take it out of rotation, and only a succeeding probe lets it
        back in."""
        fleet = fleet_harness(
            replicas=2, restart=False,
            # hung sockets must fail fast enough for the in-flight
            # retry to stay invisible to clients
            upstream_timeout=2.0, probe_timeout=1.0)
        with LoadGenerator(fleet) as load:
            time.sleep(0.3)
            fleet.kill_replica("replica-0", sig=signal.SIGSTOP)
            try:
                deadline = time.monotonic() + 30
                evicted = None
                while time.monotonic() < deadline:
                    replica = next(
                        b for b in fleet_state(fleet)["backends"]
                        if b["key"] == "replica-0")
                    if replica["evicted"]:
                        evicted = replica
                        break
                    time.sleep(0.1)
                assert evicted is not None, \
                    "hung replica was never evicted"
                time.sleep(0.5)  # traffic flows around the corpse
            finally:
                fleet.kill_replica("replica-0", sig=signal.SIGCONT)
            deadline = time.monotonic() + 30
            rejoined = False
            while time.monotonic() < deadline:
                replica = next(
                    b for b in fleet_state(fleet)["backends"]
                    if b["key"] == "replica-0")
                if replica["healthy"] and not replica["evicted"]:
                    rejoined = True
                    break
                time.sleep(0.1)
            assert rejoined, "revived replica never rejoined"
        assert load.failures == []
        state = fleet_state(fleet)
        assert state["counters"]["evictions"] >= 1
        assert state["counters"]["upstream_retries"] >= 1
