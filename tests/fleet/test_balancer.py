"""Routing-decision unit tests: no sockets, no processes."""

from __future__ import annotations

import json

from repro.fleet.balancer import Backend, EpochBalancer
from repro.fleet.router import _epoch_of, _pin_of


def backend(key, role="replica", *, epoch=5, healthy=True,
            ready=True) -> Backend:
    b = Backend(key, f"http://127.0.0.1:1/{key}", role)
    b.healthy = healthy
    b.ready = ready
    b.epoch = epoch
    return b


def balancer(*backends: Backend) -> EpochBalancer:
    lb = EpochBalancer()
    for b in backends:
        lb.add_backend(b)
    return lb


class TestCandidates:
    def test_stale_replicas_are_excluded_but_leader_never_is(self):
        lb = balancer(backend("leader", "leader", epoch=7),
                      backend("r0", epoch=7),
                      backend("r1", epoch=3))
        keys = [b.key for b in lb.candidates(floor=5)]
        assert "r1" not in keys  # would time-travel the session
        assert keys[-1] == "leader"  # always the fallback
        assert "r0" in keys

    def test_no_backend_fresh_enough_means_empty_without_leader(self):
        lb = balancer(backend("r0", epoch=3))
        assert lb.candidates(floor=5) == []

    def test_unhealthy_unready_and_evicted_are_excluded(self):
        sick = backend("sick", healthy=False)
        cold = backend("cold", ready=False)
        dead = backend("dead")
        for _ in range(dead.failure_threshold):
            dead.mark_failure()
        ok = backend("ok")
        lb = balancer(sick, cold, dead, ok)
        assert [b.key for b in lb.candidates(floor=0)] == ["ok"]

    def test_recovered_backend_rejoins_after_success(self):
        dead = backend("dead")
        for _ in range(dead.failure_threshold):
            assert dead.mark_failure() or \
                dead.consecutive_failures < dead.failure_threshold
        assert dead.evicted
        dead.mark_success()  # a probe reached it again
        lb = balancer(dead)
        assert [b.key for b in lb.candidates(floor=0)] == ["dead"]
        assert dead.evictions == 1  # the eviction stays counted

    def test_sticky_backend_is_preferred(self):
        lb = balancer(backend("r0"), backend("r1"), backend("r2"))
        for _ in range(8):
            assert lb.candidates(floor=0,
                                 sticky_key="r1")[0].key == "r1"

    def test_least_loaded_first_and_idle_rotation(self):
        r0, r1 = backend("r0"), backend("r1")
        r0.inflight = 4
        lb = balancer(r0, r1)
        assert lb.candidates(floor=0)[0].key == "r1"
        r0.inflight = 0
        seen = {lb.candidates(floor=0)[0].key for _ in range(10)}
        assert seen == {"r0", "r1"}  # equal load rotates


class TestSessions:
    def test_floor_is_monotonic_and_sticky_tracks_reads(self):
        lb = balancer(backend("r0"))
        b = lb.backend("r0")
        state = lb.session("s1")
        assert state.floor == -1
        lb.note_response("s1", b, 4)
        assert lb.session("s1").floor == 4
        lb.note_response("s1", b, 2)  # an older epoch never lowers it
        assert lb.session("s1").floor == 4
        assert lb.session("s1").backend_key == "r0"

    def test_non_sticky_note_raises_floor_only(self):
        lb = balancer(backend("r0"), backend("leader", "leader"))
        lb.session("s1")  # the router tracks a session before routing
        lb.note_response("s1", lb.backend("r0"), 1)
        lb.note_response("s1", lb.backend("leader"), 9, sticky=False)
        state = lb.session("s1")
        assert state.floor == 9
        assert state.backend_key == "r0"

    def test_session_table_is_lru_capped(self):
        lb = EpochBalancer(session_capacity=3)
        for i in range(5):
            lb.session(f"s{i}")
        assert lb.tracked_sessions == 3
        # the oldest were evicted; the newest survive
        lb.add_backend(backend("r0"))
        lb.note_response("s4", lb.backend("r0"), 7)
        assert lb.session("s4").floor == 7
        assert lb.session("s0").floor == -1  # forgotten, fresh state


class TestPayloadParsing:
    def test_epoch_of_reads_fingerprint_not_serving_epoch(self):
        # the serving epoch is process-local (a recovered leader
        # restarts it at 0) — routing must key on the fingerprint epoch
        body = json.dumps({"ok": True, "epoch": 0,
                           "fingerprint": [6, 123]}).encode()
        assert _epoch_of(body) == 6

    def test_epoch_of_handles_batches_and_garbage(self):
        batch = json.dumps({"responses": [
            {"ok": True, "fingerprint": [2, 1]},
            {"ok": True, "fingerprint": [5, 1]},
            {"ok": False, "error": {"code": "x"}},
        ]}).encode()
        assert _epoch_of(batch) == 5
        assert _epoch_of(b"not json") is None
        assert _epoch_of(json.dumps({"ok": True}).encode()) is None

    def test_pin_of_single_and_batch(self):
        assert _pin_of(json.dumps({"query": "q"}).encode()) == -1
        assert _pin_of(json.dumps({"query": "q",
                                   "epoch": 3}).encode()) == 3
        assert _pin_of(json.dumps({"batch": [
            {"query": "q", "epoch": 1},
            {"query": "q", "epoch": 4},
            {"query": "q"},
        ]}).encode()) == 4
        assert _pin_of(b"\xff") == -1


class TestObserveEpochAtomicity:
    def test_lower_epoch_never_overwrites_higher(self):
        b = backend("r0", epoch=0)
        b.observe_epoch(7)
        b.observe_epoch(3)
        assert b.epoch == 7
        b.observe_epoch(None)
        assert b.epoch == 7

    def test_concurrent_observers_converge_on_the_max(self):
        # Regression: observe_epoch used an unlocked check-then-act, so
        # two racing probe threads could let a lower epoch win and the
        # router would route floor-gated reads to a backend it believed
        # was elsewhere in time.
        import threading

        b = backend("r0", epoch=-1)
        barrier = threading.Barrier(8)
        epochs = list(range(1, 401))

        def observer(offset: int) -> None:
            barrier.wait()
            for epoch in epochs[offset::8]:
                b.observe_epoch(epoch)

        threads = [threading.Thread(target=observer, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert b.epoch == max(epochs)
