"""Fleet integration: routing, epoch consistency, rejection paths.

Every test boots real child processes (leader + replicas) behind the
in-process router via the ``fleet_harness`` fixture; clients speak the
ordinary v1 wire protocol against the router URL and should not be able
to tell it from a single gateway — except that reads scale out.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.parse
import urllib.request

import pytest

from repro.api.client import GovernedClient
from repro.errors import EpochSuperseded, GatewayError, \
    ReadOnlyReplicaError
from repro.fleet.__main__ import DEMO_QUERY


def fleet_state(fleet) -> dict:
    with urllib.request.urlopen(fleet.url + "/v1/fleet") as reply:
        return json.loads(reply.read())


def release_kwargs(version: int, rows: int = 3) -> dict:
    return dict(
        source="D1", wrapper=f"w_app_v{version}",
        id_attributes=["id"], non_id_attributes=["name"],
        feature_hints={"id": "urn:d:app/id", "name": "urn:d:app/name"},
        rows=[{"id": 100 * version + i, "name": f"v{version}-{i}"}
              for i in range(rows)],
        absorbed_concepts=["urn:d:App"])


class TestRouting:
    def test_reads_fan_out_and_writes_ride_the_leader(
            self, fleet_harness):
        fleet = fleet_harness(replicas=2)
        client = fleet.client()
        for _ in range(8):
            assert len(client.rows(DEMO_QUERY)) == 4
        state = fleet_state(fleet)
        assert state["counters"]["routed_to_replicas"] == 8
        assert state["counters"]["routed_to_leader"] == 0

        response = client.submit_release(**release_kwargs(2))
        assert response.ok and response.fingerprint is not None
        # the release landed on the leader — its journal advanced
        leader = next(b for b in fleet_state(fleet)["backends"]
                      if b["role"] == "leader")
        assert leader["epoch"] == response.fingerprint[0]

    def test_read_your_writes_after_a_routed_release(
            self, fleet_harness):
        fleet = fleet_harness(replicas=2)
        client = fleet.client()
        client.rows(DEMO_QUERY)  # session now sticky to a replica
        response = client.submit_release(**release_kwargs(3, rows=2))
        # the very next read must observe the release even though the
        # replicas may not have applied it yet (leader fallback)
        page = client.query(DEMO_QUERY)
        assert page.fingerprint[0] >= response.fingerprint[0]
        assert len(page.rows) == 6

    def test_sessions_are_sticky_across_requests(self, fleet_harness):
        fleet = fleet_harness(replicas=2)
        client = fleet.client()
        for _ in range(5):
            client.rows(DEMO_QUERY)
        routed = {b["key"]: b["routed"]
                  for b in fleet_state(fleet)["backends"]
                  if b["role"] == "replica"}
        assert sorted(routed.values()) == [0, 5]  # one replica took all

    def test_cursor_pages_resolve_on_the_sticky_backend(
            self, fleet_harness):
        fleet = fleet_harness(replicas=2)
        client = fleet.client()
        rows = list(client.stream(DEMO_QUERY, page_size=1))
        assert len(rows) == 4  # four pages, all resolved

    def test_get_query_routes_like_post(self, fleet_harness):
        fleet = fleet_harness(replicas=1)
        qs = urllib.parse.urlencode({"query": DEMO_QUERY,
                                     "page_size": 2})
        with urllib.request.urlopen(
                f"{fleet.url}/v1/query?{qs}") as reply:
            payload = json.loads(reply.read())
        assert payload["ok"] and len(payload["rows"]) == 2
        assert payload["cursor"]
        state = fleet_state(fleet)
        assert state["counters"]["routed_to_replicas"] == 1

    def test_fleet_route_reports_topology_and_health(
            self, fleet_harness):
        fleet = fleet_harness(replicas=2)
        state = fleet_state(fleet)
        assert state["ok"] and state["role"] == "fleet-router"
        roles = sorted(b["role"] for b in state["backends"])
        assert roles == ["leader", "replica", "replica"]
        for b in state["backends"]:
            assert b["healthy"] and b["ready"]
            assert b["pid"] is not None and b["lag"] == 0
        assert state["admission"]["queue_capacity"] > 0


class TestEpochConsistency:
    def test_no_session_observes_history_running_backwards(
            self, fleet_harness):
        """The property the fleet exists to preserve: under concurrent
        sessions and releases, each session's observed fingerprint
        epoch is monotonically non-decreasing, whichever backend
        served each read."""
        fleet = fleet_harness(replicas=2)
        stop = threading.Event()
        violations: list[tuple] = []
        failures: list[str] = []

        def reader(index: int) -> None:
            client = fleet.client()
            last = -1
            while not stop.is_set():
                try:
                    page = client.query(DEMO_QUERY)
                except Exception as exc:  # noqa: BLE001
                    failures.append(f"{type(exc).__name__}: {exc}")
                    return
                observed = page.fingerprint[0]
                if observed < last:
                    violations.append((index, last, observed))
                last = max(last, observed)

        threads = [threading.Thread(target=reader, args=(i,))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        writer = fleet.client()
        try:
            for version in range(4, 7):
                writer.submit_release(**release_kwargs(version, rows=1))
                time.sleep(0.3)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not failures
        assert not violations

    def test_pinned_session_never_served_below_its_pin(
            self, fleet_harness):
        fleet = fleet_harness(replicas=1)
        client = fleet.client()
        client.pin()
        pinned_fingerprint = client.describe().fingerprint[0]
        page = client.query(DEMO_QUERY)
        assert page.fingerprint[0] == pinned_fingerprint

        fleet.client().submit_release(**release_kwargs(8, rows=1))
        # the pin now names a superseded epoch: the session gets the
        # typed supersede signal, never an answer from the past
        with pytest.raises(EpochSuperseded):
            for _ in range(20):
                response = client.query(DEMO_QUERY)
                assert response.fingerprint[0] >= pinned_fingerprint
                time.sleep(0.05)
        client.refresh()
        assert client.query(DEMO_QUERY).fingerprint[0] > \
            pinned_fingerprint


class TestMutationSafety:
    def test_direct_replica_mutation_is_rejected(self, fleet_harness):
        fleet = fleet_harness(replicas=1)
        replica_url = fleet.supervisor.process("replica-0").url
        direct = GovernedClient(replica_url)
        with pytest.raises(ReadOnlyReplicaError):
            direct.submit_release(**release_kwargs(5, rows=1))

    def test_leaderless_fleet_rejects_mutations_but_serves_reads(
            self, fleet_harness):
        fleet = fleet_harness(replicas=2)
        client = fleet.client()
        client.rows(DEMO_QUERY)
        # the leader dies and is not respawned (only replicas restart)
        fleet.supervisor.kill("leader")
        deadline = time.monotonic() + 15
        while fleet.router.balancer.leader is not None:
            assert time.monotonic() < deadline, \
                "leader was never dropped from the routing table"
            time.sleep(0.05)
        # mutations cannot silently land on a read-only replica: the
        # router answers with a typed, retryable gateway error
        with pytest.raises(GatewayError):
            client.submit_release(**release_kwargs(6, rows=1))
        # ...while fan-out reads keep flowing from the replicas
        for _ in range(5):
            assert len(client.rows(DEMO_QUERY)) == 4

    def test_session_floor_above_every_backend_is_a_typed_503(
            self, fleet_harness):
        from repro.errors import NoFreshReplicaError

        fleet = fleet_harness(replicas=1)
        client = fleet.client()
        client.rows(DEMO_QUERY)
        fleet.supervisor.kill("leader")
        deadline = time.monotonic() + 15
        while fleet.router.balancer.leader is not None:
            time.sleep(0.05)
            assert time.monotonic() < deadline
        # forge a future floor for this session: nothing can serve it
        transport = client.transport
        session = fleet.router.balancer.session(transport.session_id)
        session.floor = 10_000
        with pytest.raises(NoFreshReplicaError):
            client.rows(DEMO_QUERY)
