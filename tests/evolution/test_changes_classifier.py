"""Unit tests for the change taxonomy and classifier (Tables 3-5)."""

import pytest

from repro.errors import UnknownChangeKindError
from repro.evolution.changes import (
    Change, ChangeKind, ChangeLevel, Handler, KIND_HANDLERS,
    kinds_at_level,
)
from repro.evolution.classifier import (
    Accommodation, AccommodationStats, accommodation_of, classify,
    classify_batch, handler_table,
)


class TestTaxonomy:
    def test_every_kind_has_handler(self):
        assert set(KIND_HANDLERS) == set(ChangeKind)

    def test_level_partition(self):
        api = kinds_at_level(ChangeLevel.API)
        method = kinds_at_level(ChangeLevel.METHOD)
        param = kinds_at_level(ChangeLevel.PARAMETER)
        assert len(api) == 7      # Table 3 has 7 rows
        assert len(method) == 8   # Table 4 has 8 rows
        assert len(param) == 6    # Table 5 has 6 rows
        assert set(api) | set(method) | set(param) == set(ChangeKind)

    def test_kind_levels(self):
        assert ChangeKind.API_CHANGE_RATE_LIMIT.level is ChangeLevel.API
        assert ChangeKind.METHOD_ADD_METHOD.level is ChangeLevel.METHOD
        assert ChangeKind.PARAM_ADD_PARAMETER.level is \
            ChangeLevel.PARAMETER

    def test_labels_match_paper_rows(self):
        assert ChangeKind.PARAM_RENAME_RESPONSE_PARAMETER.label == \
            "Rename response parameter"
        assert ChangeKind.API_DELETE_RESPONSE_FORMAT.label == \
            "Delete response format"

    def test_change_rejects_bad_kind(self):
        with pytest.raises(UnknownChangeKindError):
            Change("not-a-kind", "API")  # type: ignore[arg-type]


class TestTable3:
    """API-level rows of Table 3."""

    @pytest.mark.parametrize("kind", [
        ChangeKind.API_ADD_AUTHENTICATION_MODEL,
        ChangeKind.API_CHANGE_RESOURCE_URL,
        ChangeKind.API_CHANGE_AUTHENTICATION_MODEL,
        ChangeKind.API_CHANGE_RATE_LIMIT,
    ])
    def test_wrapper_side(self, kind):
        assert classify(kind) is Handler.WRAPPER

    @pytest.mark.parametrize("kind", [
        ChangeKind.API_DELETE_RESPONSE_FORMAT,
        ChangeKind.API_ADD_RESPONSE_FORMAT,
        ChangeKind.API_CHANGE_RESPONSE_FORMAT,
    ])
    def test_ontology_side(self, kind):
        assert classify(kind) is Handler.ONTOLOGY


class TestTable4:
    """Method-level rows of Table 4."""

    @pytest.mark.parametrize("kind", [
        ChangeKind.METHOD_ADD_ERROR_CODE,
        ChangeKind.METHOD_CHANGE_RATE_LIMIT,
        ChangeKind.METHOD_CHANGE_AUTHENTICATION_MODEL,
        ChangeKind.METHOD_CHANGE_DOMAIN_URL,
    ])
    def test_wrapper_side(self, kind):
        assert classify(kind) is Handler.WRAPPER

    @pytest.mark.parametrize("kind", [
        ChangeKind.METHOD_ADD_METHOD,
        ChangeKind.METHOD_DELETE_METHOD,
        ChangeKind.METHOD_CHANGE_METHOD_NAME,
    ])
    def test_both_sides(self, kind):
        assert classify(kind) is Handler.BOTH

    def test_response_format_ontology(self):
        assert classify(ChangeKind.METHOD_CHANGE_RESPONSE_FORMAT) is \
            Handler.ONTOLOGY


class TestTable5:
    """Parameter-level rows of Table 5."""

    @pytest.mark.parametrize("kind,expected", [
        (ChangeKind.PARAM_CHANGE_RATE_LIMIT, Handler.WRAPPER),
        (ChangeKind.PARAM_CHANGE_REQUIRE_TYPE, Handler.WRAPPER),
        (ChangeKind.PARAM_ADD_PARAMETER, Handler.BOTH),
        (ChangeKind.PARAM_DELETE_PARAMETER, Handler.BOTH),
        (ChangeKind.PARAM_RENAME_RESPONSE_PARAMETER, Handler.ONTOLOGY),
        (ChangeKind.PARAM_CHANGE_FORMAT_OR_TYPE, Handler.ONTOLOGY),
    ])
    def test_row(self, kind, expected):
        assert classify(kind) is expected


class TestAccommodation:
    def test_mapping(self):
        assert accommodation_of(
            ChangeKind.PARAM_RENAME_RESPONSE_PARAMETER) == \
            Accommodation.FULL
        assert accommodation_of(ChangeKind.PARAM_ADD_PARAMETER) == \
            Accommodation.PARTIAL
        assert accommodation_of(ChangeKind.API_CHANGE_RATE_LIMIT) == \
            Accommodation.NONE

    def test_stats_percentages(self):
        stats = AccommodationStats(wrapper_only=1, ontology_only=1,
                                   both=2)
        assert stats.total == 4
        assert stats.partially_pct == 50.0
        assert stats.fully_pct == 25.0
        assert stats.solved_pct == 75.0

    def test_stats_empty(self):
        stats = AccommodationStats()
        assert stats.solved_pct == 0.0

    def test_stats_addition(self):
        a = AccommodationStats(1, 2, 3)
        b = AccommodationStats(4, 5, 6)
        total = a + b
        assert (total.wrapper_only, total.ontology_only, total.both) == \
            (5, 7, 9)

    def test_classify_batch(self):
        changes = [
            Change(ChangeKind.API_CHANGE_RATE_LIMIT, "X"),
            Change(ChangeKind.PARAM_RENAME_RESPONSE_PARAMETER, "X"),
            Change(ChangeKind.PARAM_ADD_PARAMETER, "X"),
            Change(ChangeKind.PARAM_ADD_PARAMETER, "X"),
        ]
        stats = classify_batch(changes)
        assert (stats.wrapper_only, stats.ontology_only, stats.both) == \
            (1, 1, 2)


class TestHandlerTables:
    def test_table3_shape(self):
        rows = handler_table(ChangeLevel.API)
        assert len(rows) == 7
        by_label = {label: (w, o) for label, w, o in rows}
        assert by_label["Add authentication model"] == (True, False)
        assert by_label["Delete response format"] == (False, True)

    def test_table4_both_rows_check_both(self):
        rows = handler_table(ChangeLevel.METHOD)
        by_label = {label: (w, o) for label, w, o in rows}
        assert by_label["Add method"] == (True, True)
        assert by_label["Change response format"] == (False, True)

    def test_table5_shape(self):
        rows = handler_table(ChangeLevel.PARAMETER)
        assert len(rows) == 6
        by_label = {label: (w, o) for label, w, o in rows}
        assert by_label["Rename response parameter"] == (False, True)
        assert by_label["Add parameter"] == (True, True)
