"""Unit tests for the Wordpress growth study and the industrial study."""

from repro.evolution.growth import ascii_chart, replay_wordpress
from repro.evolution.industrial import (
    LI_ET_AL_COUNTS, industrial_study, materialize_changes, pooled_stats,
)
from repro.evolution.wordpress import (
    WORDPRESS_RELEASES, all_wordpress_fields, build_wordpress_endpoint,
)


class TestWordpressDataset:
    def test_release_count(self):
        # v1 + v2 + 13 minor releases, as in the paper.
        assert len(WORDPRESS_RELEASES) == 15

    def test_majors_flagged(self):
        majors = [r.version for r in WORDPRESS_RELEASES if r.major]
        assert majors == ["1", "2"]

    def test_v2_mostly_renames_v1(self):
        v1 = set(WORDPRESS_RELEASES[0].fields)
        v2 = set(WORDPRESS_RELEASES[1].fields)
        # "few elements can be reused" — the overlap is small relative
        # to the union.
        assert len(v1 & v2) < len(v1)

    def test_minor_deltas_small(self):
        for previous, current in zip(WORDPRESS_RELEASES[1:],
                                     WORDPRESS_RELEASES[2:]):
            delta = set(previous.fields) ^ set(current.fields)
            assert len(delta) <= 4

    def test_all_fields_superset(self):
        fields = set(all_wordpress_fields())
        for release in WORDPRESS_RELEASES:
            assert set(release.fields) <= fields

    def test_endpoint_serves_every_release(self):
        endpoint = build_wordpress_endpoint()
        assert set(endpoint.versions) == \
            {r.version for r in WORDPRESS_RELEASES}
        docs = endpoint.fetch("2.1", count=2)
        assert "template" in docs[0]


class TestGrowthReplay:
    def test_records_per_release(self):
        _, records = replay_wordpress()
        assert [r.version for r in records] == \
            [r.version for r in WORDPRESS_RELEASES]

    def test_v1_is_the_steepest(self):
        """Figure 11: the first release carries the big overhead."""
        _, records = replay_wordpress()
        assert records[0].added_s == max(r.added_s for r in records)

    def test_global_graph_does_not_grow(self):
        """Figure 11 discussion: 'Notice also that G does not grow'."""
        _, records = replay_wordpress()
        assert all(r.added_g == 0 for r in records)

    def test_minor_growth_dominated_by_has_attribute(self):
        _, records = replay_wordpress()
        for record in records[2:]:
            assert record.has_attribute_edges > record.new_attributes

    def test_cumulative_monotone(self):
        _, records = replay_wordpress()
        sizes = [r.cumulative_s for r in records]
        assert sizes == sorted(sizes)

    def test_minor_growth_roughly_linear(self):
        """Minor releases add a stable number of triples (linear trend)."""
        _, records = replay_wordpress()
        minor = [r.added_s for r in records[2:]]
        assert max(minor) - min(minor) <= 8

    def test_ontology_valid_after_replay(self):
        ontology, _ = replay_wordpress()
        assert ontology.validate() == []

    def test_attribute_reuse_across_versions(self):
        _, records = replay_wordpress()
        # From 2.7 to 2.8 the rename reverts to an existing attribute
        # name: no new S:Attribute nodes needed in between stable ones.
        stable = [r for r in records[2:] if r.new_attributes == 0]
        assert stable  # at least one purely-reusing release

    def test_ascii_chart_renders(self):
        _, records = replay_wordpress()
        chart = ascii_chart(records)
        assert "2.13" in chart
        assert "#" in chart


class TestIndustrialStudy:
    def test_per_api_counts_preserved(self):
        rows = industrial_study()
        for row, counts in zip(rows, LI_ET_AL_COUNTS):
            assert (row.wrapper_only, row.ontology_only, row.both) == \
                (counts.wrapper_only, counts.ontology_only, counts.both)

    def test_google_calendar_row(self):
        row = industrial_study()[0]
        assert row.api == "Google Calendar"
        assert round(row.partially_pct, 2) == 48.94
        assert round(row.fully_pct, 2) == 51.06

    def test_amazon_mws_row(self):
        row = next(r for r in industrial_study()
                   if r.api == "Amazon MWS")
        assert round(row.partially_pct, 2) == 19.44
        assert round(row.fully_pct, 2) == 50.0

    def test_twitter_zero_full(self):
        row = next(r for r in industrial_study()
                   if r.api == "Twitter API")
        assert row.fully_pct == 0.0

    def test_pooled_percentages_match_paper(self):
        """The headline numbers: 48.84% / 22.77% / 71.62%."""
        stats = pooled_stats(industrial_study())
        assert round(stats.partially_pct, 2) == 48.84
        assert round(stats.fully_pct, 2) == 22.77
        assert round(stats.solved_pct, 2) == 71.62

    def test_materialized_changes_have_right_handlers(self):
        from repro.evolution.classifier import classify_batch
        for counts in LI_ET_AL_COUNTS:
            stats = classify_batch(materialize_changes(counts))
            assert stats.wrapper_only == counts.wrapper_only
            assert stats.ontology_only == counts.ontology_only
            assert stats.both == counts.both

    def test_total_change_count(self):
        assert sum(c.total for c in LI_ET_AL_COUNTS) == 303
