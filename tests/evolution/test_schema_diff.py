"""Unit tests for version diffing and release building."""

import pytest

from repro.core.ontology import BDIOntology
from repro.errors import ReleaseError
from repro.evolution.changes import ChangeKind
from repro.evolution.release_builder import (
    build_release, subgraph_for_features, suggest_feature,
)
from repro.evolution.schema_diff import diff_versions
from repro.rdf.term import IRI
from repro.sources.rest_api import ApiVersion, FieldSpec


def version(version_id, names, types=None, fmt="json"):
    types = types or {}
    return ApiVersion(version_id,
                      [FieldSpec(n, types.get(n, "string"))
                       for n in names], response_format=fmt)


class TestDiffVersions:
    def test_no_changes(self):
        v1 = version("1", ["id", "title"])
        v2 = version("2", ["id", "title"])
        assert diff_versions("api", "ep", v1, v2) == []

    def test_addition(self):
        changes = diff_versions("api", "ep",
                                version("1", ["id"]),
                                version("2", ["id", "template"]))
        assert [c.kind for c in changes] == [ChangeKind.PARAM_ADD_PARAMETER]
        assert changes[0].details["parameter"] == "template"

    def test_deletion(self):
        changes = diff_versions("api", "ep",
                                version("1", ["id", "terms"]),
                                version("2", ["id"]))
        assert [c.kind for c in changes] == \
            [ChangeKind.PARAM_DELETE_PARAMETER]

    def test_rename_detected(self):
        changes = diff_versions(
            "api", "ep",
            version("1", ["id", "featured_image"]),
            version("2", ["id", "featured_media"]))
        assert [c.kind for c in changes] == \
            [ChangeKind.PARAM_RENAME_RESPONSE_PARAMETER]
        assert changes[0].details["new_name"] == "featured_media"

    def test_unrelated_add_delete_not_rename(self):
        changes = diff_versions(
            "api", "ep",
            version("1", ["id", "zzz_qqq"]),
            version("2", ["id", "author_email"]))
        kinds = sorted(c.kind.name for c in changes)
        assert kinds == ["PARAM_ADD_PARAMETER", "PARAM_DELETE_PARAMETER"]

    def test_type_change(self):
        changes = diff_versions(
            "api", "ep",
            version("1", ["id"], {"id": "string"}),
            version("2", ["id"], {"id": "int"}))
        assert [c.kind for c in changes] == \
            [ChangeKind.PARAM_CHANGE_FORMAT_OR_TYPE]

    def test_format_change(self):
        changes = diff_versions(
            "api", "ep",
            version("1", ["id"]),
            version("2", ["id"], fmt="xml"))
        assert [c.kind for c in changes] == \
            [ChangeKind.METHOD_CHANGE_RESPONSE_FORMAT]

    def test_each_field_renamed_once(self):
        changes = diff_versions(
            "api", "ep",
            version("1", ["meta", "meta_data"]),
            version("2", ["meta_fields"]))
        renames = [c for c in changes if c.kind is
                   ChangeKind.PARAM_RENAME_RESPONSE_PARAMETER]
        assert len(renames) == 1


@pytest.fixture()
def small_ontology():
    t = BDIOntology()
    post = IRI("http://x/Post")
    t.globals.add_concept(post)
    t.globals.add_feature(post, IRI("http://x/post/id"), is_id=True)
    t.globals.add_feature(post, IRI("http://x/post/title"))
    t.globals.add_feature(post, IRI("http://x/post/content"))
    return t


class TestSuggestFeature:
    def test_reuses_existing_source_mapping(self, small_ontology):
        release = build_release(
            small_ontology, "wp", "w_v1",
            id_attributes=["id"], non_id_attributes=["title"],
            feature_hints={"id": "http://x/post/id",
                           "title": "http://x/post/title"})
        from repro.core.release import new_release
        new_release(small_ontology, release)
        # Attribute "title" already mapped → suggestion must reuse it.
        assert suggest_feature(small_ontology, "wp", "title") == \
            IRI("http://x/post/title")

    def test_similarity_alignment(self, small_ontology):
        assert suggest_feature(small_ontology, "wp", "post_title") == \
            IRI("http://x/post/title")

    def test_below_threshold_none(self, small_ontology):
        assert suggest_feature(small_ontology, "wp",
                               "zzzz_qqqq_xxxx") is None


class TestSubgraphForFeatures:
    def test_contains_has_feature_edges(self, small_ontology):
        sub = subgraph_for_features(
            small_ontology, [IRI("http://x/post/title")])
        from repro.rdf.namespace import G as G_NS
        assert sub.contains(IRI("http://x/Post"), G_NS.hasFeature,
                            IRI("http://x/post/title"))

    def test_unowned_feature_rejected(self, small_ontology):
        with pytest.raises(ReleaseError):
            subgraph_for_features(small_ontology, [IRI("http://x/ghost")])

    def test_connecting_edges_included(self, ontology):
        from repro.rdf.namespace import SUP
        sub = subgraph_for_features(
            ontology, [SUP.monitorId, SUP.lagRatio])
        assert sub.contains(SUP.Monitor, SUP.generatesQoS,
                            SUP.InfoMonitor)


class TestBuildRelease:
    def test_unmappable_attribute_raises(self, small_ontology):
        with pytest.raises(ReleaseError, match="cannot align"):
            build_release(small_ontology, "wp", "w_v1",
                          id_attributes=["id"],
                          non_id_attributes=["zzzz_qqqq"])

    def test_hints_override_similarity(self, small_ontology):
        release = build_release(
            small_ontology, "wp", "w_v1",
            id_attributes=["id"],
            non_id_attributes=["body"],
            feature_hints={"body": "http://x/post/content",
                           "id": "http://x/post/id"})
        assert release.attribute_to_feature["body"] == \
            IRI("http://x/post/content")

    def test_registerable(self, small_ontology):
        from repro.core.release import new_release
        release = build_release(
            small_ontology, "wp", "w_v1",
            id_attributes=["id"], non_id_attributes=["title"],
            feature_hints={"id": "http://x/post/id"})
        delta = new_release(small_ontology, release)
        assert delta["S"] > 0
        assert small_ontology.validate() == []
