"""Unit tests for applying taxonomy changes to a governed API."""

import pytest

from repro.errors import ChangeApplicationError
from repro.evolution.apply import GovernedApi
from repro.evolution.changes import Change, ChangeKind, Handler
from repro.query.engine import QueryEngine
from repro.sources.rest_api import ApiVersion, Endpoint, FieldSpec, RestApi


@pytest.fixture()
def gov():
    api = RestApi("Svc")
    endpoint = Endpoint("GET /items")
    endpoint.add_version(ApiVersion("1", [
        FieldSpec("itemId", "int"),
        FieldSpec("name", "string"),
        FieldSpec("price", "float"),
    ]))
    api.add_endpoint(endpoint)
    governed = GovernedApi(api)
    governed.model_endpoint("GET /items", id_field="itemId")
    return governed


def items_query(feature="price") -> str:
    return f"""
    SELECT ?x ?y WHERE {{
        VALUES (?x ?y) {{ (<urn:api:Svc:GET_items/itemId>
                           <urn:api:Svc:GET_items/{feature}>) }}
        <urn:api:Svc:GET_items> G:hasFeature
            <urn:api:Svc:GET_items/itemId> .
        <urn:api:Svc:GET_items> G:hasFeature
            <urn:api:Svc:GET_items/{feature}>
    }}
    """


class TestModeling:
    def test_model_endpoint_registers_wrapper(self, gov):
        assert gov.state("GET /items").current_wrapper == \
            "Svc_GET_items_v1"
        assert gov.ontology.validate() == []

    def test_model_endpoint_requires_id_field(self):
        api = RestApi("S2")
        ep = Endpoint("GET /x")
        ep.add_version(ApiVersion("1", [FieldSpec("a")]))
        api.add_endpoint(ep)
        governed = GovernedApi(api)
        with pytest.raises(ChangeApplicationError):
            governed.model_endpoint("GET /x", id_field="missing")

    def test_unmodeled_endpoint_rejected(self, gov):
        with pytest.raises(ChangeApplicationError):
            gov.state("GET /nope")

    def test_queries_answer_initially(self, gov):
        engine = QueryEngine(gov.ontology)
        assert len(engine.answer(items_query())) > 0


class TestWrapperSideChanges:
    @pytest.mark.parametrize("kind,details", [
        (ChangeKind.API_ADD_AUTHENTICATION_MODEL, {"model": "oauth2"}),
        (ChangeKind.API_CHANGE_AUTHENTICATION_MODEL, {"model": "basic"}),
        (ChangeKind.API_CHANGE_RESOURCE_URL, {"url": "https://n"}),
        (ChangeKind.API_CHANGE_RATE_LIMIT, {"limit": 10}),
        (ChangeKind.METHOD_ADD_ERROR_CODE,
         {"endpoint": "GET /items", "code": 429}),
        (ChangeKind.METHOD_CHANGE_RATE_LIMIT,
         {"endpoint": "GET /items", "limit": 5}),
        (ChangeKind.METHOD_CHANGE_DOMAIN_URL,
         {"endpoint": "GET /items", "url": "https://d"}),
        (ChangeKind.PARAM_CHANGE_RATE_LIMIT,
         {"endpoint": "GET /items", "parameter": "name"}),
        (ChangeKind.PARAM_CHANGE_REQUIRE_TYPE,
         {"endpoint": "GET /items", "parameter": "name"}),
    ])
    def test_never_touch_ontology(self, gov, kind, details):
        report = gov.apply(Change(kind, "Svc", details))
        assert report.handler is Handler.WRAPPER
        assert not report.touched_ontology

    def test_auth_change_mutates_api(self, gov):
        gov.apply(Change(ChangeKind.API_ADD_AUTHENTICATION_MODEL, "Svc",
                         {"model": "apikey"}))
        assert gov.api.auth_model == "apikey"


class TestOntologySideChanges:
    def test_add_parameter_new_release(self, gov):
        report = gov.apply(Change(
            ChangeKind.PARAM_ADD_PARAMETER, "Svc",
            {"endpoint": "GET /items", "parameter": "stock",
             "type": "int"}))
        assert report.new_wrapper == "Svc_GET_items_v2"
        assert report.ontology_triples_added > 0
        engine = QueryEngine(gov.ontology)
        assert len(engine.answer(items_query("stock"))) > 0

    def test_add_existing_parameter_rejected(self, gov):
        with pytest.raises(ChangeApplicationError):
            gov.apply(Change(ChangeKind.PARAM_ADD_PARAMETER, "Svc",
                             {"endpoint": "GET /items",
                              "parameter": "price"}))

    def test_rename_keeps_history(self, gov):
        gov.apply(Change(
            ChangeKind.PARAM_RENAME_RESPONSE_PARAMETER, "Svc",
            {"endpoint": "GET /items", "parameter": "price",
             "new_name": "unitPrice"}))
        engine = QueryEngine(gov.ontology)
        result = engine.rewrite(items_query("price"))
        # Both the v1 (price) and v2 (unitPrice) wrappers answer.
        assert len(result.walks) == 2

    def test_rename_missing_parameter(self, gov):
        with pytest.raises(ChangeApplicationError):
            gov.apply(Change(
                ChangeKind.PARAM_RENAME_RESPONSE_PARAMETER, "Svc",
                {"endpoint": "GET /items", "parameter": "ghost",
                 "new_name": "x"}))

    def test_delete_parameter(self, gov):
        report = gov.apply(Change(
            ChangeKind.PARAM_DELETE_PARAMETER, "Svc",
            {"endpoint": "GET /items", "parameter": "name"}))
        assert report.new_wrapper is not None
        # Historical queries over "name" still answer through v1.
        engine = QueryEngine(gov.ontology)
        assert len(engine.rewrite(items_query("name")).walks) == 1

    def test_delete_id_parameter_rejected(self, gov):
        with pytest.raises(ChangeApplicationError):
            gov.apply(Change(
                ChangeKind.PARAM_DELETE_PARAMETER, "Svc",
                {"endpoint": "GET /items", "parameter": "itemId"}))

    def test_change_type_updates_datatype(self, gov):
        gov.apply(Change(
            ChangeKind.PARAM_CHANGE_FORMAT_OR_TYPE, "Svc",
            {"endpoint": "GET /items", "parameter": "price",
             "new_type": "int"}))
        from repro.rdf.term import IRI
        datatype = gov.ontology.globals.datatype_of(
            IRI("urn:api:Svc:GET_items/price"))
        assert str(datatype).endswith("integer")

    def test_add_method_models_new_source(self, gov):
        report = gov.apply(Change(
            ChangeKind.METHOD_ADD_METHOD, "Svc",
            {"endpoint": "GET /reviews",
             "fields": [("reviewId", "int"), ("stars", "int")],
             "id_field": "reviewId"}))
        assert report.new_wrapper == "Svc_GET_reviews_v1"
        assert gov.ontology.sources.has_data_source("Svc_GET_reviews")

    def test_delete_method_preserves_ontology(self, gov):
        before = gov.ontology.triple_counts()["total"]
        gov.apply(Change(ChangeKind.METHOD_DELETE_METHOD, "Svc",
                         {"endpoint": "GET /items"}))
        assert gov.ontology.triple_counts()["total"] == before
        assert "GET /items" not in gov.api.endpoints

    def test_rename_method_keeps_identity(self, gov):
        gov.apply(Change(ChangeKind.METHOD_CHANGE_METHOD_NAME, "Svc",
                         {"endpoint": "GET /items",
                          "new_name": "GET /products"}))
        state = gov.state("GET /products")
        assert state.source_name == "Svc_GET_items"
        engine = QueryEngine(gov.ontology)
        assert len(engine.rewrite(items_query()).walks) == 2

    def test_change_response_format_method(self, gov):
        report = gov.apply(Change(
            ChangeKind.METHOD_CHANGE_RESPONSE_FORMAT, "Svc",
            {"endpoint": "GET /items", "format": "json-v2"}))
        assert report.new_wrapper is not None

    def test_add_response_format_releases_all_endpoints(self, gov):
        gov.apply(Change(ChangeKind.METHOD_ADD_METHOD, "Svc",
                         {"endpoint": "GET /r",
                          "fields": [("rid", "int")], "id_field": "rid"}))
        report = gov.apply(Change(
            ChangeKind.API_ADD_RESPONSE_FORMAT, "Svc",
            {"format": "xml"}))
        assert "xml" in gov.api.response_formats
        assert report.ontology_triples_added > 0

    def test_delete_response_format_no_ontology_action(self, gov):
        before = gov.ontology.triple_counts()["total"]
        gov.apply(Change(ChangeKind.API_DELETE_RESPONSE_FORMAT, "Svc",
                         {"format": "json"}))
        assert gov.ontology.triple_counts()["total"] == before


class TestInvariants:
    def test_ontology_valid_after_every_kind(self, gov):
        sequence = [
            Change(ChangeKind.PARAM_ADD_PARAMETER, "Svc",
                   {"endpoint": "GET /items", "parameter": "stock"}),
            Change(ChangeKind.PARAM_RENAME_RESPONSE_PARAMETER, "Svc",
                   {"endpoint": "GET /items", "parameter": "stock",
                    "new_name": "inventory"}),
            Change(ChangeKind.PARAM_DELETE_PARAMETER, "Svc",
                   {"endpoint": "GET /items", "parameter": "name"}),
            Change(ChangeKind.METHOD_CHANGE_RESPONSE_FORMAT, "Svc",
                   {"endpoint": "GET /items"}),
        ]
        for change in sequence:
            gov.apply(change)
            assert gov.ontology.validate() == []

    def test_reports_accumulate(self, gov):
        gov.apply(Change(ChangeKind.API_CHANGE_RATE_LIMIT, "Svc",
                         {"limit": 1}))
        gov.apply(Change(ChangeKind.PARAM_ADD_PARAMETER, "Svc",
                         {"endpoint": "GET /items", "parameter": "x"}))
        assert len(gov.reports) == 2

    def test_historical_query_spans_all_versions(self, gov):
        for parameter in ("a1", "a2"):
            gov.apply(Change(ChangeKind.PARAM_ADD_PARAMETER, "Svc",
                             {"endpoint": "GET /items",
                              "parameter": parameter}))
        engine = QueryEngine(gov.ontology)
        assert len(engine.rewrite(items_query()).walks) == 3
