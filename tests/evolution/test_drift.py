"""Unit tests for unanticipated schema-change (drift) handling.

This module covers the paper's future-work extension implemented in
:mod:`repro.evolution.drift`.
"""

import pytest

from repro.core.release import new_release
from repro.errors import EvolutionError
from repro.evolution.changes import ChangeKind
from repro.evolution.drift import (
    DriftReport, detect_drift, propose_release,
)
from repro.query.engine import QueryEngine


DECLARED = ["monitorId", "lagRatio", "bitrate"]


class TestDetectDrift:
    def test_no_drift(self):
        docs = [{"monitorId": 1, "lagRatio": 0.5, "bitrate": 4}]
        report = detect_drift("D1", "w1", DECLARED, docs)
        assert not report.has_drift
        assert sorted(report.unchanged) == sorted(DECLARED)

    def test_added_field(self):
        docs = [{"monitorId": 1, "lagRatio": 0.5, "bitrate": 4,
                 "region": "eu"}]
        report = detect_drift("D1", "w1", DECLARED, docs)
        assert report.added == ["region"]
        assert report.removed == []
        assert report.renames == []

    def test_removed_field(self):
        docs = [{"monitorId": 1, "lagRatio": 0.5}]
        report = detect_drift("D1", "w1", DECLARED, docs)
        assert report.removed == ["bitrate"]

    def test_rename_detected_with_confidence(self):
        docs = [{"monitorId": 1, "bufferingRatio": 0.5, "bitrate": 4}]
        report = detect_drift("D1", "w1", DECLARED, docs)
        assert len(report.renames) == 1
        rename = report.renames[0]
        assert (rename.old_field, rename.new_field) == \
            ("lagRatio", "bufferingRatio")
        assert 0.0 < rename.confidence < 1.0

    def test_nested_documents_flattened(self):
        docs = [{"monitorId": 1,
                 "qos": {"lagRatio": 0.5, "bitrate": 4}}]
        report = detect_drift("D1", "w1", DECLARED, docs)
        assert "qos.lagRatio" in report.observed_fields

    def test_field_observed_in_any_document_counts(self):
        docs = [{"monitorId": 1, "lagRatio": 0.5, "bitrate": 4},
                {"monitorId": 2, "lagRatio": 0.1, "bitrate": 2,
                 "extra": True}]
        report = detect_drift("D1", "w1", DECLARED, docs)
        assert report.added == ["extra"]

    def test_requires_documents(self):
        with pytest.raises(EvolutionError):
            detect_drift("D1", "w1", DECLARED, [])

    def test_to_changes_taxonomy(self):
        docs = [{"monitorId": 1, "bufferingRatio": 0.5, "region": "eu"}]
        report = detect_drift("D1", "w1", DECLARED, docs)
        kinds = sorted(c.kind.name for c in report.to_changes())
        assert kinds == ["PARAM_ADD_PARAMETER",
                         "PARAM_DELETE_PARAMETER",
                         "PARAM_RENAME_RESPONSE_PARAMETER"]

    def test_summary_mentions_confirmations(self):
        docs = [{"monitorId": 1, "bufferingRatio": 0.5, "bitrate": 4}]
        report = detect_drift("D1", "w1", DECLARED, docs)
        text = report.summary()
        assert "rename lagRatio" in text

    def test_each_field_paired_once(self):
        docs = [{"monitorId": 1, "lag_ratio_v2": 0.5,
                 "lagRatioPct": 50, "bitrate": 4}]
        report = detect_drift("D1", "w1", DECLARED, docs)
        old_fields = [r.old_field for r in report.renames]
        assert old_fields.count("lagRatio") == 1


class TestProposeRelease:
    def _drifted_scenario(self, scenario):
        """Documents from the silently-evolved D1 API."""
        return [{"VoDmonitorId": 12, "bufferingRatio": 0.25},
                {"VoDmonitorId": 18, "bufferingRatio": 0.4}]

    def test_auto_release_for_confident_rename(self, scenario):
        t = scenario.ontology
        docs = self._drifted_scenario(scenario)
        report = detect_drift("D1", "w1",
                              ["VoDmonitorId", "lagRatio"], docs)
        if report.pending_confirmations:
            confirmed = {r.new_field: r.old_field
                         for r in report.pending_confirmations}
        else:
            confirmed = None
        release = propose_release(t, report, "w_drift",
                                  id_fields=["VoDmonitorId"],
                                  confirmed_renames=confirmed)
        from repro.rdf.namespace import SUP
        assert release.attribute_to_feature["bufferingRatio"] == \
            SUP.lagRatio
        new_release(t, release)
        assert t.validate() == []

    def test_unconfirmed_low_confidence_raises(self, scenario):
        t = scenario.ontology
        # "qualityOfService" vs "lagRatio": weak similarity → needs veto
        docs = [{"VoDmonitorId": 12, "ratioLag": 0.3}]
        report = detect_drift("D1", "w1",
                              ["VoDmonitorId", "lagRatio"], docs)
        if report.pending_confirmations:
            with pytest.raises(EvolutionError, match="confirmation"):
                propose_release(t, report, "w_drift",
                                id_fields=["VoDmonitorId"])

    def test_confirmed_rename_inherits_feature(self, scenario):
        t = scenario.ontology
        docs = [{"VoDmonitorId": 12, "qos": 0.3}]
        report = detect_drift("D1", "w1",
                              ["VoDmonitorId", "lagRatio"], docs,
                              pairing_threshold=0.0)
        release = propose_release(
            t, report, "w_drift", id_fields=["VoDmonitorId"],
            confirmed_renames={"qos": "lagRatio"})
        from repro.rdf.namespace import SUP
        assert release.attribute_to_feature["qos"] == SUP.lagRatio

    def test_missing_id_rejected(self, scenario):
        t = scenario.ontology
        docs = [{"bufferingRatio": 0.5}]
        report = detect_drift("D1", "w1",
                              ["VoDmonitorId", "lagRatio"], docs)
        with pytest.raises(EvolutionError, match="no ID field"):
            propose_release(t, report, "w_drift",
                            id_fields=["VoDmonitorId"],
                            confirmed_renames={
                                "bufferingRatio": "lagRatio"})

    def test_end_to_end_queries_survive_drift(self, scenario):
        """The full loop: drift → release → historical query unions."""
        from repro.datasets import EXEMPLARY_QUERY
        from repro.wrappers.base import StaticWrapper
        t = scenario.ontology
        docs = self._drifted_scenario(scenario)
        report = detect_drift("D1", "w1",
                              ["VoDmonitorId", "lagRatio"], docs)
        confirmed = {r.new_field: r.old_field for r in report.renames}
        release = propose_release(t, report, "w_drift",
                                  id_fields=["VoDmonitorId"],
                                  confirmed_renames=confirmed)
        release.wrapper = StaticWrapper(
            "w_drift", "D1", ["VoDmonitorId"], ["bufferingRatio"], docs)
        new_release(t, release)
        engine = QueryEngine(t)
        result = engine.rewrite(EXEMPLARY_QUERY)
        assert {w.wrapper_names for w in result.walks} == {
            frozenset({"w1", "w3"}), frozenset({"w3", "w_drift"})}
        table = engine.answer(EXEMPLARY_QUERY)
        assert (1, 0.25) in table.as_tuples(["applicationId",
                                             "lagRatio"])
