"""Data steward aids (paper §2, §4.1).

The data steward maintains the BDI ontology. Two semi-automatic aids are
described in the paper; both are implemented here:

* **Subgraph suggestion** — "to define the graph G [of a release], the
  user can be presented with subgraphs of G that cover all features":
  :func:`suggest_subgraphs` computes minimal connected subgraphs of the
  Global graph covering a feature set (a Steiner-tree-style search over
  the concept graph).
* **Attribute alignment** — "probabilistic methods to align and match RDF
  ontologies, such as PARIS, can be used" for the function ``F``:
  :func:`align_attributes` ranks candidate features per attribute by name
  similarity and reports a confidence.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.core.ontology import BDIOntology
from repro.errors import OntologyError
from repro.rdf.graph import Graph
from repro.rdf.namespace import G as G_NS
from repro.rdf.term import IRI
from repro.util.text import name_similarity

__all__ = ["AlignmentSuggestion", "align_attributes", "suggest_subgraphs"]


@dataclass
class AlignmentSuggestion:
    """Ranked feature candidates for one source attribute."""

    attribute: str
    candidates: list[tuple[IRI, float]]  # (feature, confidence), sorted

    @property
    def best(self) -> IRI | None:
        return self.candidates[0][0] if self.candidates else None

    @property
    def confidence(self) -> float:
        return self.candidates[0][1] if self.candidates else 0.0


def align_attributes(ontology: BDIOntology, attributes: list[str],
                     candidate_features: list[IRI] | None = None,
                     top_k: int = 3) -> list[AlignmentSuggestion]:
    """Rank feature candidates for each attribute (mini-PARIS).

    Deterministic: candidates sorted by decreasing similarity, then IRI.
    """
    features = (candidate_features if candidate_features is not None
                else ontology.globals.features())
    out: list[AlignmentSuggestion] = []
    for attribute in attributes:
        scored = sorted(
            ((feature, name_similarity(attribute, feature.local_name))
             for feature in features),
            key=lambda pair: (-pair[1], pair[0]))
        out.append(AlignmentSuggestion(attribute, scored[:top_k]))
    return out


def _concept_adjacency(ontology: BDIOntology) -> dict[IRI, set[IRI]]:
    adjacency: dict[IRI, set[IRI]] = {
        c: set() for c in ontology.globals.concepts()}
    for edge in ontology.globals.object_properties():
        adjacency[edge.s].add(edge.o)
        adjacency[edge.o].add(edge.s)
    return adjacency


def _connects(concepts: set[IRI],
              adjacency: dict[IRI, set[IRI]]) -> bool:
    if len(concepts) <= 1:
        return True
    start = next(iter(concepts))
    reached = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for neighbour in adjacency.get(node, ()):
            if neighbour in concepts and neighbour not in reached:
                reached.add(neighbour)
                frontier.append(neighbour)
    return reached == concepts


def suggest_subgraphs(ontology: BDIOntology, features: list[IRI | str],
                      max_extra_concepts: int = 2,
                      limit: int = 5) -> list[Graph]:
    """Minimal connected subgraphs of G covering *features*.

    Each suggested graph contains the ``hasFeature`` edge of every
    requested feature plus the object-property edges connecting the
    involved concepts; when the owning concepts are not directly
    connected, up to *max_extra_concepts* intermediate concepts are
    considered (smallest augmentations first). Returns up to *limit*
    suggestions ordered by size.
    """
    feature_iris = [IRI(str(f)) for f in features]
    owners: set[IRI] = set()
    for feature in feature_iris:
        concept = ontology.globals.concept_of_feature(feature)
        if concept is None:
            raise OntologyError(
                f"feature {feature} belongs to no concept of G")
        owners.add(concept)

    adjacency = _concept_adjacency(ontology)
    other_concepts = sorted(set(adjacency) - owners)

    viable_concept_sets: list[set[IRI]] = []
    for extra_count in range(0, max_extra_concepts + 1):
        for extra in combinations(other_concepts, extra_count):
            concept_set = owners | set(extra)
            if _connects(concept_set, adjacency):
                viable_concept_sets.append(concept_set)
        if viable_concept_sets:
            break  # smallest augmentation level wins

    suggestions: list[Graph] = []
    for concept_set in viable_concept_sets[:limit]:
        subgraph = Graph()
        for feature in feature_iris:
            owner = ontology.globals.concept_of_feature(feature)
            subgraph.add((owner, G_NS.hasFeature, feature))
        for concept in concept_set:
            for fid in ontology.globals.id_features_of(concept):
                subgraph.add((concept, G_NS.hasFeature, fid))
        for edge in ontology.globals.object_properties():
            if edge.s in concept_set and edge.o in concept_set:
                subgraph.add(edge)
        suggestions.append(subgraph)
    suggestions.sort(key=len)
    return suggestions
