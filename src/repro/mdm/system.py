"""The Metadata Management System facade (paper §6.1, Figures 9-10).

:class:`MDM` bundles the full lifecycle behind one object:

* the **steward** registers sources and releases (Algorithm 1), aided by
  subgraph suggestion and attribute alignment;
* the **analyst** poses OMQs (SPARQL text or :class:`OMQBuilder`) and
  receives relational results, with `explain` exposing the rewriting;
* the ontology can be exported (N-Quads for the whole dataset, Turtle per
  graph) and inspected (triple counts, validation).
"""

from __future__ import annotations

from repro.core.ontology import BDIOntology
from repro.core.release import Release, new_release
from repro.errors import ReleaseError
from repro.evolution.release_builder import build_release
from repro.mdm.analyst import OMQBuilder, describe_cache, \
    describe_global_graph
from repro.mdm.steward import align_attributes, suggest_subgraphs
from repro.query.cache import RewriteCache
from repro.query.engine import QueryEngine
from repro.query.omq import OMQ
from repro.query.rewriter import RewritingResult
from repro.rdf.ntriples import serialize_nquads
from repro.rdf.term import IRI
from repro.rdf.turtle import serialize_turtle
from repro.relational.rows import Relation
from repro.wrappers.base import Wrapper

__all__ = ["MDM"]


class MDM:
    """One-stop facade over ontology, rewriting and execution."""

    def __init__(self, ontology: BDIOntology | None = None,
                 cache: RewriteCache | None = None,
                 use_cache: bool = True) -> None:
        self.ontology = ontology or BDIOntology()
        self.engine = QueryEngine(self.ontology, cache=cache,
                                  use_cache=use_cache)
        self.release_log: list[Release] = []
        self._serving = None

    @property
    def cache(self) -> RewriteCache | None:
        """The engine's release-aware rewriting cache (None when off).

        Releases registered through the steward interface invalidate
        exactly the affected concepts' entries.
        """
        return self.engine.cache

    # -- steward interface ---------------------------------------------------

    def register_release(self, release: Release,
                         absorbed_concepts: frozenset[IRI] | set[IRI]
                         | None = None) -> dict[str, int]:
        """Apply Algorithm 1; returns triples added per graph.

        When the steward extended G in preparation of this release (e.g.
        added the features a new wrapper maps to — mandatory for genuinely
        new features), pass the touched concepts as *absorbed_concepts*
        so the release's evolution event stays concept-attributed;
        otherwise those pending edits degrade it to an ungoverned
        (cache-flushing) event.
        """
        delta = new_release(self.ontology, release,
                            absorbed_concepts=absorbed_concepts)
        self.release_log.append(release)
        return delta

    def build_wrapper_release(self, wrapper: Wrapper,
                              attribute_to_feature: dict[str, IRI | str]
                              | None = None,
                              subgraph=None) -> Release:
        """Assemble the release registering *wrapper*, without applying.

        With no explicit ``F``, attribute→feature alignment is attempted
        (existing source mappings first, then name similarity); with no
        explicit subgraph, the minimal subgraph induced by the mapped
        features is used. The one materialization path shared by
        :meth:`register_wrapper` and the governed writers
        (:meth:`GovernedService.register_wrapper
        <repro.service.serving.GovernedService.register_wrapper>`).
        """
        if attribute_to_feature is None or subgraph is None:
            release = build_release(
                self.ontology, wrapper.source_name, wrapper.name,
                id_attributes=list(wrapper.id_attributes),
                non_id_attributes=list(wrapper.non_id_attributes),
                feature_hints=attribute_to_feature)
            release.wrapper = wrapper
            return release
        return Release.for_wrapper(wrapper, subgraph,
                                   attribute_to_feature)

    def register_wrapper(self, wrapper: Wrapper,
                         attribute_to_feature: dict[str, IRI | str]
                         | None = None,
                         subgraph=None,
                         absorbed_concepts: frozenset[IRI] | set[IRI]
                         | None = None) -> dict[str, int]:
        """Register a physical wrapper, semi-automatically when possible.

        See :meth:`build_wrapper_release` for the assembly rules;
        *absorbed_concepts* is forwarded to :meth:`register_release`.
        """
        release = self.build_wrapper_release(
            wrapper, attribute_to_feature=attribute_to_feature,
            subgraph=subgraph)
        return self.register_release(release,
                                     absorbed_concepts=absorbed_concepts)

    def suggest_release_subgraphs(self, features: list[IRI | str],
                                  limit: int = 5):
        return suggest_subgraphs(self.ontology, features, limit=limit)

    def handle_drift(self, wrapper_name: str, documents: list[dict],
                     new_wrapper_name: str,
                     confirmed_renames: dict[str, str] | None = None,
                     feature_hints: dict[str, IRI | str] | None = None,
                     physical_wrapper: Wrapper | None = None):
        """Adapt to an *unanticipated* schema change (future-work ext.).

        Detects drift between *documents* (as served by the evolved
        source) and the declared schema of *wrapper_name*, proposes a
        release for *new_wrapper_name* and registers it. Returns the
        ``(DriftReport, delta)`` pair; raises
        :class:`~repro.errors.EvolutionError` when uncertain renames
        need steward confirmation.
        """
        from repro.core.vocabulary import attribute_local_name, \
            source_local_name, wrapper_uri
        from repro.evolution.drift import detect_drift, propose_release

        wrapper_iri = wrapper_uri(wrapper_name)
        source = source_local_name(
            self.ontology.sources.source_of_wrapper(wrapper_iri))
        declared = [
            attribute_local_name(a) for a in
            self.ontology.sources.attributes_of_wrapper(wrapper_iri)]
        schema = self.ontology.wrapper_relation_schema(wrapper_iri)
        id_fields = [name.split("/", 1)[1] for name in schema.id_names]

        report = detect_drift(source, wrapper_name, declared, documents)
        if not report.has_drift:
            return report, {}
        release = propose_release(
            self.ontology, report, new_wrapper_name,
            id_fields=id_fields, confirmed_renames=confirmed_renames,
            feature_hints=feature_hints)
        release.wrapper = physical_wrapper
        delta = self.register_release(release)
        return report, delta

    def suggest_alignments(self, attributes: list[str], top_k: int = 3):
        return align_attributes(self.ontology, attributes, top_k=top_k)

    # -- analyst interface ----------------------------------------------------------

    def query_builder(self) -> OMQBuilder:
        return OMQBuilder(self.ontology)

    def client(self, *, pin: bool = False,
               timeout: float | None = None,
               max_workers: int | None = None,
               drain_timeout: float | None = None):
        """A :class:`~repro.api.client.GovernedClient` session over this
        MDM's governed service (the documented consumption path).

        The session speaks the same v1 protocol the HTTP gateway
        serves: epoch-pinned repeatable reads, cursor-paginated
        streaming, idempotent release submission. With no explicit
        *max_workers* / *drain_timeout*, an already-running memoized
        service is reused as-is — a convenience accessor never closes
        and replaces a configured live service (which would orphan its
        open cursors); pass the parameters to reconfigure deliberately
        through :meth:`serving`.
        """
        if max_workers is None and drain_timeout is None \
                and self._serving is not None:
            service = self._serving
        else:
            service = self.serving(
                max_workers=4 if max_workers is None else max_workers,
                drain_timeout=drain_timeout)
        return service.client(pin=pin, timeout=timeout)

    def query(self, omq: str | OMQ, distinct: bool = True) -> Relation:
        """Pose an OMQ; returns the result relation (Figure 9 pipeline).

        Legacy single-caller shape: it talks straight to the engine,
        with no epoch evidence and no serialization against releases.
        Anything concurrent or remote should use :meth:`client`.
        """
        return self.engine.answer(omq, distinct=distinct)

    def answer_many(self, omqs, distinct: bool = True,
                    workers: int | None = None,
                    return_exceptions: bool = False,
                    ) -> list[Relation | Exception]:
        """Answer a batch of OMQs (deduplicated by canonical key).

        Delegates to :meth:`QueryEngine.answer_many
        <repro.query.engine.QueryEngine.answer_many>`: each unique OMQ
        is rewritten and evaluated once, duplicates share the result,
        and ``workers > 1`` fans wrapper evaluation out across threads.
        For batches racing releases, front the MDM with
        :meth:`serving` so answers stay release-consistent.
        """
        return self.engine.answer_many(
            omqs, distinct=distinct, workers=workers,
            return_exceptions=return_exceptions)

    def serving(self, max_workers: int = 4,
                drain_timeout: float | None = None):
        """The :class:`~repro.service.GovernedService` over this MDM.

        The service serializes releases against in-flight queries
        (epoch readers-writer lock); route *all* traffic — steward and
        analyst — through it once concurrent use starts. One MDM backs
        one service: repeated calls return the same instance (each
        service registers an evolution listener on the ontology, so
        minting one per call would leak listeners and make stale
        services misreport bypassed writes). Calling again with
        different parameters closes and replaces the current service.
        """
        from repro.service.serving import GovernedService
        service = self._serving
        if service is not None:
            if (service.max_workers, service.drain_timeout) == \
                    (max_workers, drain_timeout):
                return service
            service.close()
        self._serving = GovernedService(self, max_workers=max_workers,
                                        drain_timeout=drain_timeout)
        return self._serving

    def rewrite(self, omq: str | OMQ) -> RewritingResult:
        return self.engine.rewrite(omq)

    def explain(self, omq: str | OMQ) -> str:
        return self.engine.explain(omq)

    def describe(self) -> str:
        return describe_global_graph(self.ontology)

    # -- administration ---------------------------------------------------------------

    def validate(self) -> list[str]:
        return self.ontology.validate()

    def statistics(self) -> dict[str, int]:
        counts = self.ontology.triple_counts()
        counts["releases"] = len(self.release_log)
        counts["concepts"] = len(self.ontology.globals.concepts())
        counts["features"] = len(self.ontology.globals.features())
        counts["wrappers"] = len(self.ontology.sources.wrappers())
        counts["data_sources"] = len(self.ontology.sources.data_sources())
        counts["evolution_epoch"] = self.ontology.epoch
        if self.cache is not None:
            counts["cached_rewritings"] = len(self.cache)
            counts["cache_hits"] = self.cache.stats.hits
            counts["cache_misses"] = self.cache.stats.misses
        return counts

    def describe_cache(self) -> str:
        """Human-readable state of the rewriting cache (debugging aid)."""
        return describe_cache(self.cache)

    def export_nquads(self) -> str:
        """The whole ontology dataset (all named graphs) as N-Quads."""
        return serialize_nquads(self.ontology.dataset)

    def export_turtle(self, graph: str = "G") -> str:
        """One primary graph as Turtle (``G``, ``S`` or ``M``)."""
        graphs = {"G": self.ontology.g, "S": self.ontology.s,
                  "M": self.ontology.m}
        try:
            return serialize_turtle(graphs[graph])
        except KeyError:
            raise ReleaseError(
                f"unknown graph {graph!r}; expected G, S or M") from None
