"""The Metadata Management System facade (paper §6.1, Figures 9-10).

:class:`MDM` bundles the full lifecycle behind one object:

* the **steward** registers sources and releases (Algorithm 1), aided by
  subgraph suggestion and attribute alignment;
* the **analyst** poses OMQs (SPARQL text or :class:`OMQBuilder`) and
  receives relational results, with `explain` exposing the rewriting;
* the ontology can be exported (N-Quads for the whole dataset, Turtle per
  graph) and inspected (triple counts, validation).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.core.ontology import BDIOntology
from repro.core.release import Release
from repro.errors import ReleaseError, SnapshotError
from repro.evolution.release_builder import build_release
from repro.mdm.analyst import OMQBuilder, describe_cache, \
    describe_global_graph
from repro.mdm.steward import align_attributes, suggest_subgraphs
from repro.query.cache import RewriteCache
from repro.query.engine import QueryEngine
from repro.query.omq import OMQ
from repro.query.rewriter import RewritingResult
from repro.rdf.ntriples import serialize_nquads
from repro.rdf.term import IRI
from repro.rdf.turtle import serialize_turtle
from repro.relational.rows import Relation
from repro.storage.journal import (
    Journal, execute_command, execute_release, replay_into,
)
from repro.storage.snapshot import Snapshot, restore_state, take_snapshot
from repro.wrappers.base import Wrapper

__all__ = ["MDM"]

#: on-disk layout of one ``state_dir``
JOURNAL_FILE = "journal.jsonl"
SNAPSHOT_FILE = "snapshot.json"

#: journaled idempotency outcomes retained for replay across restarts
#: (matches the endpoint-side replay store's order of magnitude)
IDEMPOTENCY_OUTCOMES_KEPT = 512


class MDM:
    """One-stop facade over ontology, rewriting and execution."""

    def __init__(self, ontology: BDIOntology | None = None,
                 cache: RewriteCache | None = None,
                 use_cache: bool = True) -> None:
        self.ontology = ontology or BDIOntology()
        self.engine = QueryEngine(self.ontology, cache=cache,
                                  use_cache=use_cache)
        self.release_log: list[Release] = []
        self._serving = None
        #: the durable command journal (attached by :meth:`open`);
        #: when set, every release is journaled before it is applied
        self.journal: Journal | None = None
        self._snapshot_path: Path | None = None
        self._snapshot_seq = 0
        #: idempotency outcomes recovered from the journal at
        #: :meth:`open` time (key -> {"seq", "epoch", "triples_added"});
        #: the protocol endpoint seeds its replay store from this
        self.recovered_idempotency: dict[str, dict[str, Any]] = {}

    # -- durable lifecycle ---------------------------------------------------

    @classmethod
    def open(cls, state_dir: str | Path, *,
             cache: RewriteCache | None = None,
             use_cache: bool = True, fsync: bool = True) -> "MDM":
        """Open (or create) a durable MDM rooted at *state_dir*.

        Recovery runs snapshot-then-journal: if ``snapshot.json``
        exists its state is restored first (fingerprint-exact), then
        every journal record past the snapshot's sequence number is
        replayed through the deterministic command executor. A fresh
        directory yields an empty governed MDM whose first mutation
        starts the journal. A ``boot`` record is appended on every
        open, scoping volatile serving state (cursors, idempotency
        replays) to this process lifetime.
        """
        state = Path(state_dir)
        state.mkdir(parents=True, exist_ok=True)
        snapshot_path = state / SNAPSHOT_FILE
        snapshot_seq = 0
        recovered: dict[str, dict[str, Any]] = {}
        if snapshot_path.exists():
            snapshot = Snapshot.read(snapshot_path)
            ontology, release_log = restore_state(snapshot)
            mdm = cls(ontology, cache=cache, use_cache=use_cache)
            mdm.release_log = release_log
            snapshot_seq = snapshot.seq
            recovered.update(snapshot.idempotency)
        else:
            mdm = cls(cache=cache, use_cache=use_cache)
        journal = Journal.open(state / JOURNAL_FILE, fsync=fsync)
        # Journal-suffix outcomes override snapshotted ones (same key,
        # later release wins — replay recomputes the exact epochs).
        recovered.update(replay_into(
            mdm, journal.records(after=snapshot_seq), journal=journal))
        while len(recovered) > IDEMPOTENCY_OUTCOMES_KEPT:
            recovered.pop(next(iter(recovered)))
        mdm.recovered_idempotency = recovered
        journal.append_boot()
        mdm.journal = journal
        mdm._snapshot_path = snapshot_path
        mdm._snapshot_seq = snapshot_seq
        return mdm

    def snapshot(self, path: str | Path | None = None) -> Snapshot:
        """Checkpoint the current state (see :mod:`repro.storage.snapshot`).

        Must not race mutations: call it from the steward thread, or
        inside the service's write lock. With no explicit *path* the
        snapshot lands at the state dir's ``snapshot.json`` and future
        :meth:`open` calls restore from it instead of replaying the
        full journal.
        """
        if path is None:
            if self._snapshot_path is None:
                raise SnapshotError(
                    "this MDM has no state dir; open it with "
                    "MDM.open(state_dir) or pass an explicit path")
            path = self._snapshot_path
        seq = self.journal.last_seq if self.journal is not None else 0
        snapshot = take_snapshot(self, seq=seq)
        snapshot.write(path)
        if Path(path) == self._snapshot_path:
            self._snapshot_seq = snapshot.seq
        return snapshot

    def journal_info(self) -> dict[str, Any] | None:
        """Durability state for ``describe`` (None = in-memory MDM)."""
        if self.journal is None:
            return None
        return {
            "seq": self.journal.last_seq,
            "boot_id": self.journal.boot_id,
            "snapshot_seq": self._snapshot_seq,
            "replica_lag": 0,
            "role": "leader",
            "ready": True,
        }

    def close(self) -> None:
        """Release the journal file handle (idempotent)."""
        if self.journal is not None:
            self.journal.close()

    @property
    def cache(self) -> RewriteCache | None:
        """The engine's release-aware rewriting cache (None when off).

        Releases registered through the steward interface invalidate
        exactly the affected concepts' entries.
        """
        return self.engine.cache

    @property
    def answer_cache(self):
        """The engine's full answer cache (None when off).

        Above the rewrite cache: a valid entry skips execution
        entirely. Validity is evidenced per entry (ontology fingerprint
        plus every scanned wrapper's data_version), so direct MDM use
        is exactly as safe as governed serving — a release or an
        in-place data write keys stale answers out at lookup time.
        """
        return self.engine.answer_cache

    # -- steward interface ---------------------------------------------------

    def add_concept(self, concept: IRI | str) -> IRI:
        """Journaled steward command: register a Global-graph concept.

        On a durable MDM the command is appended to the journal before
        it applies (like every mutation); on an in-memory MDM it is
        equivalent to ``ontology.globals.add_concept``. Always prefer
        these steward commands over editing ``ontology.globals``
        directly — direct edits are bypassed writes: they survive in a
        snapshot but not in a journal replay, and releases over
        features that only ever existed as bypassed writes cannot be
        recovered.
        """
        iri = IRI(str(concept))
        execute_command(self, "add_concept", {"concept": str(iri)},
                        journal=self.journal)
        return iri

    def add_feature(self, concept: IRI | str, feature: IRI | str,
                    datatype: IRI | str | None = None,
                    is_id: bool = False) -> IRI:
        """Journaled steward command: attach a feature to a concept."""
        iri = IRI(str(feature))
        payload: dict[str, Any] = {"concept": str(concept),
                                   "feature": str(iri), "is_id": is_id}
        if datatype is not None:
            payload["datatype"] = str(datatype)
        execute_command(self, "add_feature", payload,
                        journal=self.journal)
        return iri

    def add_property(self, subject: IRI | str, predicate: IRI | str,
                     obj: IRI | str) -> None:
        """Journaled steward command: a concept→concept edge in G."""
        execute_command(self, "add_property",
                        {"subject": str(subject),
                         "predicate": str(predicate),
                         "object": str(obj)},
                        journal=self.journal)

    def set_datatype(self, feature: IRI | str,
                     datatype: IRI | str) -> None:
        """Journaled steward command: set a feature's xsd datatype."""
        execute_command(self, "set_datatype",
                        {"feature": str(feature),
                         "datatype": str(datatype)},
                        journal=self.journal)

    def register_release(self, release: Release,
                         absorbed_concepts: frozenset[IRI] | set[IRI]
                         | None = None,
                         idempotency_key: str | None = None,
                         ) -> dict[str, int]:
        """Apply Algorithm 1; returns triples added per graph.

        When the steward extended G in preparation of this release (e.g.
        added the features a new wrapper maps to — mandatory for genuinely
        new features), pass the touched concepts as *absorbed_concepts*
        so the release's evolution event stays concept-attributed;
        otherwise those pending edits degrade it to an ungoverned
        (cache-flushing) event.

        On a durable MDM (:meth:`open`) the release is prevalidated,
        serialized as a change record, fsync'd to the journal and only
        then applied — crash-atomic by construction. *idempotency_key*
        rides along in the record so the protocol endpoint's replay
        store survives restarts with recomputed (never stale) epochs.
        """
        delta = execute_release(self, release,
                                absorbed_concepts=absorbed_concepts,
                                journal=self.journal,
                                idempotency_key=idempotency_key)
        if self.journal is not None and idempotency_key is not None:
            # Mirror the journaled outcome so snapshots can persist it:
            # a snapshot folds the release record in, so recovery
            # replay alone would never see this key again.
            self.recovered_idempotency[idempotency_key] = {
                "seq": self.journal.last_seq,
                "epoch": self.ontology.epoch,
                "triples_added": delta,
            }
            while len(self.recovered_idempotency) > \
                    IDEMPOTENCY_OUTCOMES_KEPT:
                self.recovered_idempotency.pop(
                    next(iter(self.recovered_idempotency)))
        return delta

    def build_wrapper_release(self, wrapper: Wrapper,
                              attribute_to_feature: dict[str, IRI | str]
                              | None = None,
                              subgraph=None) -> Release:
        """Assemble the release registering *wrapper*, without applying.

        With no explicit ``F``, attribute→feature alignment is attempted
        (existing source mappings first, then name similarity); with no
        explicit subgraph, the minimal subgraph induced by the mapped
        features is used. The one materialization path shared by
        :meth:`register_wrapper` and the governed writers
        (:meth:`GovernedService.register_wrapper
        <repro.service.serving.GovernedService.register_wrapper>`).
        """
        if attribute_to_feature is None or subgraph is None:
            release = build_release(
                self.ontology, wrapper.source_name, wrapper.name,
                id_attributes=list(wrapper.id_attributes),
                non_id_attributes=list(wrapper.non_id_attributes),
                feature_hints=attribute_to_feature)
            release.wrapper = wrapper
            return release
        return Release.for_wrapper(wrapper, subgraph,
                                   attribute_to_feature)

    def register_wrapper(self, wrapper: Wrapper,
                         attribute_to_feature: dict[str, IRI | str]
                         | None = None,
                         subgraph=None,
                         absorbed_concepts: frozenset[IRI] | set[IRI]
                         | None = None) -> dict[str, int]:
        """Register a physical wrapper, semi-automatically when possible.

        See :meth:`build_wrapper_release` for the assembly rules;
        *absorbed_concepts* is forwarded to :meth:`register_release`.
        """
        release = self.build_wrapper_release(
            wrapper, attribute_to_feature=attribute_to_feature,
            subgraph=subgraph)
        return self.register_release(release,
                                     absorbed_concepts=absorbed_concepts)

    def suggest_release_subgraphs(self, features: list[IRI | str],
                                  limit: int = 5):
        return suggest_subgraphs(self.ontology, features, limit=limit)

    def handle_drift(self, wrapper_name: str, documents: list[dict],
                     new_wrapper_name: str,
                     confirmed_renames: dict[str, str] | None = None,
                     feature_hints: dict[str, IRI | str] | None = None,
                     physical_wrapper: Wrapper | None = None):
        """Adapt to an *unanticipated* schema change (future-work ext.).

        Detects drift between *documents* (as served by the evolved
        source) and the declared schema of *wrapper_name*, proposes a
        release for *new_wrapper_name* and registers it. Returns the
        ``(DriftReport, delta)`` pair; raises
        :class:`~repro.errors.EvolutionError` when uncertain renames
        need steward confirmation.
        """
        from repro.core.vocabulary import attribute_local_name, \
            source_local_name, wrapper_uri
        from repro.evolution.drift import detect_drift, propose_release

        wrapper_iri = wrapper_uri(wrapper_name)
        source = source_local_name(
            self.ontology.sources.source_of_wrapper(wrapper_iri))
        declared = [
            attribute_local_name(a) for a in
            self.ontology.sources.attributes_of_wrapper(wrapper_iri)]
        schema = self.ontology.wrapper_relation_schema(wrapper_iri)
        id_fields = [name.split("/", 1)[1] for name in schema.id_names]

        report = detect_drift(source, wrapper_name, declared, documents)
        if not report.has_drift:
            return report, {}
        release = propose_release(
            self.ontology, report, new_wrapper_name,
            id_fields=id_fields, confirmed_renames=confirmed_renames,
            feature_hints=feature_hints)
        release.wrapper = physical_wrapper
        delta = self.register_release(release)
        return report, delta

    def suggest_alignments(self, attributes: list[str], top_k: int = 3):
        return align_attributes(self.ontology, attributes, top_k=top_k)

    # -- analyst interface ----------------------------------------------------------

    def query_builder(self) -> OMQBuilder:
        return OMQBuilder(self.ontology)

    def client(self, *, pin: bool = False,
               timeout: float | None = None,
               max_workers: int | None = None,
               drain_timeout: float | None = None):
        """A :class:`~repro.api.client.GovernedClient` session over this
        MDM's governed service (the documented consumption path).

        The session speaks the same v1 protocol the HTTP gateway
        serves: epoch-pinned repeatable reads, cursor-paginated
        streaming, idempotent release submission. With no explicit
        *max_workers* / *drain_timeout*, an already-running memoized
        service is reused as-is — a convenience accessor never closes
        and replaces a configured live service (which would orphan its
        open cursors); pass the parameters to reconfigure deliberately
        through :meth:`serving`.
        """
        if max_workers is None and drain_timeout is None \
                and self._serving is not None:
            service = self._serving
        else:
            service = self.serving(
                max_workers=4 if max_workers is None else max_workers,
                drain_timeout=drain_timeout)
        return service.client(pin=pin, timeout=timeout)

    def query(self, omq: str | OMQ, distinct: bool = True) -> Relation:
        """Pose an OMQ; returns the result relation (Figure 9 pipeline).

        Legacy single-caller shape: it talks straight to the engine,
        with no epoch evidence and no serialization against releases.
        Anything concurrent or remote should use :meth:`client`.
        """
        return self.engine.answer(omq, distinct=distinct)

    def answer_many(self, omqs, distinct: bool = True,
                    workers: int | None = None,
                    return_exceptions: bool = False,
                    ) -> list[Relation | Exception]:
        """Answer a batch of OMQs (deduplicated by canonical key).

        Delegates to :meth:`QueryEngine.answer_many
        <repro.query.engine.QueryEngine.answer_many>`: each unique OMQ
        is rewritten and evaluated once, duplicates share the result,
        and ``workers > 1`` fans wrapper evaluation out across threads.
        For batches racing releases, front the MDM with
        :meth:`serving` so answers stay release-consistent.
        """
        return self.engine.answer_many(
            omqs, distinct=distinct, workers=workers,
            return_exceptions=return_exceptions)

    def serving(self, max_workers: int = 4,
                drain_timeout: float | None = None):
        """The :class:`~repro.service.GovernedService` over this MDM.

        The service serializes releases against in-flight queries
        (epoch readers-writer lock); route *all* traffic — steward and
        analyst — through it once concurrent use starts. One MDM backs
        one service: repeated calls return the same instance (each
        service registers an evolution listener on the ontology, so
        minting one per call would leak listeners and make stale
        services misreport bypassed writes). Calling again with
        different parameters closes and replaces the current service.
        """
        from repro.service.serving import GovernedService
        service = self._serving
        if service is not None:
            if (service.max_workers, service.drain_timeout) == \
                    (max_workers, drain_timeout):
                return service
            service.close()
        self._serving = GovernedService(self, max_workers=max_workers,
                                        drain_timeout=drain_timeout)
        return self._serving

    def rewrite(self, omq: str | OMQ) -> RewritingResult:
        return self.engine.rewrite(omq)

    def explain(self, omq: str | OMQ, analyze: bool = False) -> str:
        return self.engine.explain(omq, analyze=analyze)

    def describe(self) -> str:
        return describe_global_graph(self.ontology)

    # -- administration ---------------------------------------------------------------

    def validate(self) -> list[str]:
        return self.ontology.validate()

    def statistics(self) -> dict[str, int]:
        counts = self.ontology.triple_counts()
        counts["releases"] = len(self.release_log)
        counts["concepts"] = len(self.ontology.globals.concepts())
        counts["features"] = len(self.ontology.globals.features())
        counts["wrappers"] = len(self.ontology.sources.wrappers())
        counts["data_sources"] = len(self.ontology.sources.data_sources())
        counts["evolution_epoch"] = self.ontology.epoch
        if self.journal is not None:
            counts["journal_seq"] = self.journal.last_seq
            counts["snapshot_seq"] = self._snapshot_seq
        if self.cache is not None:
            counts["cached_rewritings"] = len(self.cache)
            counts["cache_hits"] = self.cache.stats.hits
            counts["cache_misses"] = self.cache.stats.misses
        answer_cache = self.engine.answer_cache
        if answer_cache is not None:
            counts["cached_answers"] = len(answer_cache)
            counts["answer_cache_hits"] = answer_cache.stats.hits
            counts["answer_cache_misses"] = answer_cache.stats.misses
        return counts

    def describe_cache(self) -> str:
        """Human-readable state of the rewriting cache (debugging aid)."""
        return describe_cache(self.cache)

    def export_nquads(self) -> str:
        """The whole ontology dataset (all named graphs) as N-Quads."""
        return serialize_nquads(self.ontology.dataset)

    def export_turtle(self, graph: str = "G") -> str:
        """One primary graph as Turtle (``G``, ``S`` or ``M``)."""
        graphs = {"G": self.ontology.g, "S": self.ontology.s,
                  "M": self.ontology.m}
        try:
            return serialize_turtle(graphs[graph])
        except KeyError:
            raise ReleaseError(
                f"unknown graph {graph!r}; expected G, S or M") from None
