"""Metadata Management System: steward + analyst facades (paper §6.1)."""

from repro.mdm.analyst import OMQBuilder, describe_cache, \
    describe_global_graph
from repro.mdm.steward import (
    AlignmentSuggestion, align_attributes, suggest_subgraphs,
)
from repro.mdm.system import MDM

__all__ = [
    "OMQBuilder", "describe_cache", "describe_global_graph",
    "AlignmentSuggestion", "align_attributes", "suggest_subgraphs",
    "MDM",
]
