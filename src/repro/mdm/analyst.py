"""Analyst-facing helpers: graph exploration and OMQ construction.

The MDM frontend (paper Figure 10) lets analysts *draw* queries over a
graph rendering of G; the drawing is converted to the SPARQL template of
Code 3. :class:`OMQBuilder` is the programmatic equivalent: navigate
concepts/edges, project features, get the SPARQL (or the parsed OMQ).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.ontology import BDIOntology
from repro.core.vocabulary import GLOBAL_GRAPH
from repro.errors import MalformedQueryError, UnknownConceptError, \
    UnknownFeatureError
from repro.query.omq import OMQ, parse_omq
from repro.rdf.namespace import G as G_NS
from repro.rdf.term import IRI

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.query.cache import RewriteCache
    from repro.service.serving import GovernedService

__all__ = ["OMQBuilder", "describe_cache", "describe_global_graph",
           "describe_service"]


class OMQBuilder:
    """Fluent construction of template-conforming OMQs.

    >>> builder = (OMQBuilder(ontology)
    ...     .project("sup:applicationId full IRI", "…lagRatio IRI")
    ...     .edge(app, "sup:hasMonitor IRI", monitor)
    ...     .edge(monitor, "sup:generatesQoS IRI", info))
    >>> sparql = builder.to_sparql()
    """

    def __init__(self, ontology: BDIOntology) -> None:
        self.ontology = ontology
        self._projected: list[IRI] = []
        self._edges: list[tuple[IRI, IRI, IRI]] = []

    # -- building --------------------------------------------------------------

    def project(self, *features: IRI | str) -> "OMQBuilder":
        """Project features (or concepts — Algorithm 2 will substitute
        their IDs)."""
        for feature in features:
            iri = IRI(str(feature))
            if not (self.ontology.globals.is_feature(iri)
                    or self.ontology.globals.is_concept(iri)):
                raise UnknownFeatureError(
                    f"{iri} is neither a feature nor a concept of G")
            if iri not in self._projected:
                self._projected.append(iri)
        return self

    def edge(self, subject: IRI | str, predicate: IRI | str,
             obj: IRI | str) -> "OMQBuilder":
        """Navigate a domain object property between two concepts."""
        s, p, o = IRI(str(subject)), IRI(str(predicate)), IRI(str(obj))
        for concept in (s, o):
            if not self.ontology.globals.is_concept(concept):
                raise UnknownConceptError(
                    f"{concept} is not a concept of G")
        self._edges.append((s, p, o))
        return self

    # -- output -----------------------------------------------------------------

    def _pattern_triples(self) -> list[tuple[IRI, IRI, IRI]]:
        triples = list(self._edges)
        for feature in self._projected:
            if self.ontology.globals.is_feature(feature):
                owner = self.ontology.globals.concept_of_feature(feature)
                triples.append((owner, IRI(str(G_NS.hasFeature)), feature))
        if not triples:
            raise MalformedQueryError(
                "cannot build an OMQ without any edge or projection")
        return triples

    def to_sparql(self) -> str:
        if not self._projected:
            raise MalformedQueryError("no projected element")
        variables = [f"?v{i}" for i in range(1, len(self._projected) + 1)]
        values = " ".join(f"<{p}>" for p in self._projected)
        lines = [
            f"SELECT {' '.join(variables)}",
            f"FROM <{GLOBAL_GRAPH}>",
            "WHERE {",
            f"    VALUES ({' '.join(variables)}) {{ ({values}) }}",
        ]
        triples = self._pattern_triples()
        for index, (s, p, o) in enumerate(triples):
            terminator = " ." if index < len(triples) - 1 else ""
            lines.append(f"    <{s}> <{p}> <{o}>{terminator}")
        lines.append("}")
        return "\n".join(lines)

    def to_omq(self) -> OMQ:
        return parse_omq(self.to_sparql())

    def cache_key(self) -> str:
        """The canonical rewriting-cache key this query will hit.

        Lets analysts confirm that two differently phrased queries are
        the same cached unit of work.
        """
        from repro.query.cache import canonical_omq_key
        return canonical_omq_key(self.to_omq())


def describe_cache(cache: "RewriteCache | None") -> str:
    """Readable inventory of a rewriting cache: stats + per-entry state.

    Together with the per-entry concepts and the rejected-walk section
    of :meth:`~repro.query.rewriter.RewritingResult.report`, this makes
    cache behaviour debuggable without a debugger: what is cached, under
    which key, over which concepts, and how often it was served.
    """
    if cache is None:
        return "rewriting cache: disabled"
    stats = cache.stats
    lines = [
        f"rewriting cache: {len(cache)}/{cache.max_entries} entries",
        f"  lookups = {stats.lookups} (hits = {stats.hits}, "
        f"misses = {stats.misses}, hit rate = {stats.hit_rate:.1%})",
        f"  invalidated by releases = {stats.invalidated}, "
        f"survived releases = {stats.survived_releases}, "
        f"structure evictions = {stats.structure_evictions}, "
        f"lineage evictions = {stats.lineage_evictions}, "
        f"LRU evictions = {stats.lru_evictions}",
    ]
    for entry in cache.entries():
        concepts = ", ".join(sorted(
            c.local_name for c in entry.concepts)) or "∅"
        lines.append(
            f"  [{entry.key[:12]}…] epoch {entry.epoch}, "
            f"{len(entry.result.walks)} walk(s), "
            f"{entry.hit_count} hit(s), concepts: {concepts}")
    return "\n".join(lines)


def describe_service(service: "GovernedService") -> str:
    """Readable state of a governed serving layer.

    Lock epoch and drain behaviour, query/batch/release counters, the
    bypassed-write count (mutations that skipped the service's write
    path) and the underlying rewrite cache — the operator's one-stop
    view of the concurrency contract in action.
    """
    stats = service.stats
    lock_stats = service.lock.stats
    lines = [
        f"governed service: epoch {service.lock.epoch} "
        f"({stats.releases} release(s) served)",
        f"  queries answered = {stats.queries} "
        f"({stats.batches} batch(es) covering "
        f"{stats.batched_queries} of them, "
        f"pool width = {service.max_workers})",
        f"  lock: reads = {lock_stats.reads}, "
        f"blocked reads = {lock_stats.reads_blocked}, "
        f"writes = {lock_stats.writes}, "
        f"drained writes = {lock_stats.writes_drained} "
        f"(max {lock_stats.max_drained_readers} reader(s), "
        f"{lock_stats.drain_seconds * 1e3:.2f} ms total)",
        f"  bypassed writes (outside the service) = "
        f"{stats.bypassed_writes}",
    ]
    scan_stats = service.scan_cache.stats
    lines.append(
        f"  scan cache: {len(service.scan_cache)} cached scan(s), "
        f"hits = {scan_stats.hits}, misses = {scan_stats.misses}, "
        f"hit rate = {scan_stats.hit_rate:.1%}, "
        f"invalidations = {scan_stats.invalidations}")
    answer_stats = service.answer_cache.stats
    lines.append(
        f"  answer cache: {len(service.answer_cache)} cached "
        f"answer(s), hits = {answer_stats.hits}, "
        f"misses = {answer_stats.misses}, "
        f"hit rate = {answer_stats.hit_rate:.1%}, "
        f"evictions = {answer_stats.evictions}, "
        f"invalidations = {answer_stats.invalidations}")
    lines.append(
        f"  incremental maintenance: patches = {answer_stats.patches}, "
        f"seeds = {answer_stats.seeds}, "
        f"fallbacks = {answer_stats.fallbacks}")
    panels = getattr(service, "panels", None)
    if panels:
        lines.append(
            f"  standing panels: {len(panels)} "
            f"({sum(len(qs) for qs in panels.values())} quer"
            f"{'y' if sum(len(qs) for qs in panels.values()) == 1 else 'ies'})")
    journal = service.journal_info() \
        if hasattr(service, "journal_info") else None
    if journal is None:
        lines.append("  journal: none (in-memory state — a restart "
                     "loses the governed history)")
    else:
        lag = journal.get("replica_lag")
        lines.append(
            f"  journal: {journal.get('role', 'leader')} at seq "
            f"{journal.get('seq')} (boot {journal.get('boot_id')}, "
            f"snapshot seq {journal.get('snapshot_seq')}, "
            f"replica lag {lag})")
    engine = service.mdm.engine
    memo = engine.adaptive_memo
    if memo is None:
        lines.append("  adaptive planner: disabled")
    else:
        snap = memo.snapshot()
        lines.append(
            f"  adaptive planner: {snap['scan_observations']} scan / "
            f"{snap['join_observations']} join observation(s), "
            f"memo version {snap['version']}")
    timings = engine.wrapper_timings()
    if timings:
        lines.append("  observed scan timings (recent runs):")
        for wrapper in sorted(timings):
            entry = timings[wrapper]
            filtered = (f", {entry['filtered']} semi-join filtered"
                        if entry["filtered"] else "")
            lines.append(
                f"    {wrapper}: {entry['scans']} scan(s), "
                f"{entry['rows']} row(s), "
                f"{float(entry['seconds']) * 1e3:.2f} ms{filtered}")
    return "\n".join(lines) + "\n" + describe_cache(service.mdm.cache)


def describe_global_graph(ontology: BDIOntology) -> str:
    """Readable inventory of G: concepts, features (IDs marked), edges."""
    lines: list[str] = ["Global graph:"]
    for concept in ontology.globals.concepts():
        lines.append(f"  {concept.local_name} <{concept}>")
        for feature in ontology.globals.features_of(concept):
            marker = " [ID]" if ontology.globals.is_id_feature(feature) \
                else ""
            datatype = ontology.globals.datatype_of(feature)
            dt_text = f" : {datatype.local_name}" if datatype else ""
            lines.append(f"    - {feature.local_name}{marker}{dt_text}")
    edges = ontology.globals.object_properties()
    if edges:
        lines.append("  edges:")
        for edge in edges:
            lines.append(
                f"    {edge.s.local_name} —{edge.p.local_name}→ "
                f"{edge.o.local_name}")
    return "\n".join(lines)
