"""Epoch-based readers-writer lock for governed serving.

The serving layer's concurrency contract (see ``docs/architecture.md``):
queries are *readers*, releases are *writers*. Many readers answer in
parallel against one immutable snapshot of ``T``; a writer first blocks
new readers (writer preference — a steady query stream cannot starve a
release), then drains the in-flight ones, and only then mutates. Every
completed write advances the lock *epoch*, so each answer can be tagged
with the exact number of releases it observed — the serving-layer
analogue of the ontology's evolution epoch, and the handle the
benchmarks use to prove answers are never torn across a release.

The lock is not reentrant (a reader acquiring again while a writer
waits would deadlock) and never spins: all waiting parks on one
condition variable.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.errors import EpochDrainTimeout

__all__ = ["EpochLock", "EpochLockStats"]


@dataclass
class EpochLockStats:
    """Observability counters for one :class:`EpochLock`."""

    #: read sections entered / completed
    reads: int = 0
    #: write sections completed (== the lock epoch)
    writes: int = 0
    #: read acquisitions that had to park behind a writer
    reads_blocked: int = 0
    #: write acquisitions that had to drain in-flight readers
    writes_drained: int = 0
    #: cumulative seconds writers spent draining readers
    drain_seconds: float = 0.0
    #: most readers ever drained by one writer
    max_drained_readers: int = 0

    def snapshot(self) -> dict[str, int | float]:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "reads_blocked": self.reads_blocked,
            "writes_drained": self.writes_drained,
            "drain_seconds": round(self.drain_seconds, 6),
            "max_drained_readers": self.max_drained_readers,
        }


class EpochLock:
    """Readers-writer lock with writer preference and an epoch counter."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0
        self._writer_thread: int | None = None
        self._epoch = 0
        self.stats = EpochLockStats()

    # -- state ---------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Number of completed write sections (releases served)."""
        with self._cond:
            return self._epoch

    @property
    def active_readers(self) -> int:
        with self._cond:
            return self._active_readers

    def held_for_write(self) -> bool:
        """True iff the *calling thread* currently holds the write side."""
        with self._cond:
            return (self._writer_active
                    and self._writer_thread == threading.get_ident())

    # -- read side -----------------------------------------------------------

    def acquire_read(self, timeout: float | None = None) -> int:
        """Enter a read section; returns the epoch being read.

        Blocks while a writer is active *or waiting* (writer
        preference). Raises :class:`EpochDrainTimeout` when *timeout*
        seconds pass without the writer clearing.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            if self._writer_active or self._writers_waiting:
                self.stats.reads_blocked += 1
            while self._writer_active or self._writers_waiting:
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise EpochDrainTimeout(
                        "reader timed out waiting for a release to "
                        "finish mutating the ontology")
                self._cond.wait(remaining)
            self._active_readers += 1
            self.stats.reads += 1
            return self._epoch

    def release_read(self) -> None:
        with self._cond:
            if self._active_readers <= 0:
                raise RuntimeError("release_read without acquire_read")
            self._active_readers -= 1
            if self._active_readers == 0:
                self._cond.notify_all()

    @contextmanager
    def read(self, timeout: float | None = None) -> Iterator[int]:
        """``with lock.read() as epoch: ...`` — a query-side section."""
        epoch = self.acquire_read(timeout)
        try:
            yield epoch
        finally:
            self.release_read()

    # -- write side ----------------------------------------------------------

    def acquire_write(self, timeout: float | None = None) -> int:
        """Drain readers and enter the exclusive section; returns the
        epoch the write will produce (current + 1).

        Raises :class:`EpochDrainTimeout` when in-flight readers do not
        drain within *timeout* seconds (the lock is left clean — the
        writer's intent is withdrawn and parked readers are released).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            self._writers_waiting += 1
            drained = self._active_readers
            started = time.monotonic()
            try:
                while self._writer_active or self._active_readers:
                    remaining = None if deadline is None \
                        else deadline - time.monotonic()
                    if remaining is not None and remaining <= 0:
                        raise EpochDrainTimeout(
                            f"writer could not drain "
                            f"{self._active_readers} in-flight "
                            f"reader(s) in {timeout} s")
                    self._cond.wait(remaining)
            except BaseException:
                self._writers_waiting -= 1
                self._cond.notify_all()
                raise
            self._writers_waiting -= 1
            self._writer_active = True
            self._writer_thread = threading.get_ident()
            if drained:
                self.stats.writes_drained += 1
                self.stats.drain_seconds += time.monotonic() - started
                self.stats.max_drained_readers = max(
                    self.stats.max_drained_readers, drained)
            return self._epoch + 1

    def release_write(self) -> None:
        with self._cond:
            if not self._writer_active:
                raise RuntimeError("release_write without acquire_write")
            if self._writer_thread != threading.get_ident():
                raise RuntimeError(
                    "release_write from a thread that does not hold "
                    "the write side")
            self._writer_active = False
            self._writer_thread = None
            self._epoch += 1
            self.stats.writes += 1
            self._cond.notify_all()

    @contextmanager
    def write(self, timeout: float | None = None) -> Iterator[int]:
        """``with lock.write() as epoch: ...`` — a release-side section."""
        epoch = self.acquire_write(timeout)
        try:
            yield epoch
        finally:
            self.release_write()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._cond:
            state = "WRITE" if self._writer_active else (
                f"{self._active_readers}R" if self._active_readers
                else "idle")
            return (f"<EpochLock epoch={self._epoch} {state} "
                    f"({self._writers_waiting} writer(s) waiting)>")
