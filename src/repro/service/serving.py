"""The governed serving layer: concurrent analysts, serialized releases.

:class:`GovernedService` fronts an :class:`~repro.mdm.system.MDM` with
the concurrency contract the paper's MDM needs once many analysts query
one *evolving* BDI ontology (§6.1 under load):

* **queries are readers** — they enter an :class:`~repro.service.
  epoch_lock.EpochLock` read section, snapshot the ontology fingerprint
  and run lock-free on the warm rewrite cache; arbitrarily many run in
  parallel;
* **releases are writers** — they block new queries, drain the in-flight
  ones, mutate ``T`` through Algorithm 1 and only then readmit readers;
* every answer is tagged with the *serving epoch* it observed, so an
  answer is always consistent with exactly one release — never torn
  across a mutation, never stale after one (the rewrite cache
  invalidates by concept as before).

The service also registers an ontology evolution listener: a mutation of
``T`` that lands *outside* a service write section (someone calling
Algorithm 1 behind the service's back) is counted as a bypassed write —
the cache still protects correctness via fingerprints, but the operator
can see that the single-writer discipline was violated.

Since the protocol redesign, the service's request handling lives in
its :class:`~repro.api.endpoint.ProtocolEndpoint` (one implementation
for in-process calls and the HTTP gateway); :meth:`GovernedService.
serve`, :meth:`serve_many` and :meth:`apply_release` remain as thin
shims over protocol envelopes so existing call sites keep working.
New code should talk to :class:`~repro.api.client.GovernedClient`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, TYPE_CHECKING, Iterable

from repro.core.ontology import EvolutionEvent, OntologyFingerprint
from repro.core.release import Release
from repro.errors import AnswerFailed
from repro.mdm.system import MDM
from repro.query.omq import OMQ
from repro.relational.physical import ScanCache
from repro.relational.rows import Relation
from repro.service.epoch_lock import EpochLock
from repro.rdf.term import IRI

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.client import GovernedClient
    from repro.api.endpoint import ProtocolEndpoint
    from repro.wrappers.base import Wrapper

__all__ = ["GovernedService", "ServedAnswer", "ServiceStats"]


@dataclass(frozen=True)
class ServedAnswer:
    """One answered query plus the consistency evidence it was served
    under: the serving epoch (completed releases observed) and the
    ontology fingerprint snapshotted inside the read section.

    A failed query in a ``return_exceptions=True`` batch yields a slot
    with :attr:`relation` ``None`` and the exception in :attr:`error`.
    """

    relation: Relation | None
    #: serving epoch (EpochLock write count) the answer observed
    epoch: int
    #: ontology fingerprint at answering time
    fingerprint: OntologyFingerprint
    #: the query's failure, when the batch was asked not to raise
    error: Exception | None = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.relation is not None

    def require(self) -> Relation:
        """The relation, or the typed failure of this slot.

        Re-raises the stored :attr:`error`; a slot that somehow carries
        neither relation nor error raises
        :class:`~repro.errors.AnswerFailed` instead of a bare
        ``AttributeError`` downstream.
        """
        if self.error is not None:
            raise self.error
        if self.relation is None:
            raise AnswerFailed(
                "answer slot holds no relation and recorded no error "
                f"(epoch {self.epoch})")
        return self.relation

    @property
    def rows(self) -> list[dict[str, object]]:
        """The answer rows; raises the slot's typed failure instead."""
        return self.require().rows


@dataclass
class ServiceStats:
    """Observability counters for one :class:`GovernedService`.

    Increments come from concurrently running reader threads, so they
    go through :meth:`bump`, which serializes on an internal lock —
    ``+=`` on a bare attribute can lose updates under contention.
    """

    queries: int = 0
    batches: int = 0
    batched_queries: int = 0
    releases: int = 0
    #: evolution events observed outside a service write section
    bypassed_writes: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def bump(self, **deltas: int) -> None:
        with self._lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {
                "queries": self.queries,
                "batches": self.batches,
                "batched_queries": self.batched_queries,
                "releases": self.releases,
                "bypassed_writes": self.bypassed_writes,
            }


class GovernedService:
    """Thread-safe query serving over one MDM.

    *max_workers* bounds the thread pool :meth:`serve_many` fans wrapper
    evaluation out on; ``drain_timeout`` (seconds, ``None`` = wait
    forever) bounds how long a release may wait for in-flight queries.
    """

    def __init__(self, mdm: MDM | None = None, *,
                 max_workers: int = 4,
                 drain_timeout: float | None = None,
                 state_dir: "str | None" = None,
                 read_only: bool = False) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if mdm is None:
            # A state_dir makes the service durable: every release is
            # journaled before it applies, and reopening the same
            # directory recovers the governed history.
            mdm = MDM.open(state_dir) if state_dir is not None else MDM()
        elif state_dir is not None:
            raise ValueError(
                "pass either a ready MDM or a state_dir, not both")
        self.mdm = mdm
        self.max_workers = max_workers
        self.drain_timeout = drain_timeout
        #: True for journal-tailing replicas: the endpoint rejects
        #: release submissions with ``read_only_replica``
        self.read_only = read_only
        #: replica-installed override for :meth:`journal_info`
        self._journal_info_override = None
        self.lock = EpochLock()
        self.stats = ServiceStats()
        #: shared physical-scan cache: every (wrapper, columns, filter)
        #: combination is fetched once per epoch across all queries and
        #: batches; any evolution event — a release landing through the
        #: write section or a bypassed write — clears it, and wrappers'
        #: data_version tokens key out in-place data mutations.
        self.scan_cache = ScanCache()
        #: the engine's full answer cache (repeated analyst panels skip
        #: execution entirely); cleared at every epoch boundary through
        #: the evolution listener, exactly like the scan cache. If the
        #: engine was built with ``use_answer_cache=False`` the service
        #: installs its own so governed serving always has one.
        #: ``REPRO_ANSWER_CACHE=0`` in the environment opts a deployment
        #: out (memory-constrained replicas, benchmarks that must stress
        #: execution); the service then keeps a detached, always-empty
        #: cache so its observability surfaces stay valid.
        from repro.query.answer_cache import (
            AnswerCache, answer_cache_env_enabled,
        )
        if self.mdm.engine.answer_cache is None and \
                answer_cache_env_enabled():
            self.mdm.engine.answer_cache = AnswerCache()
        self.answer_cache = (self.mdm.engine.answer_cache
                             if self.mdm.engine.answer_cache is not None
                             else AnswerCache())
        #: registered standing panels: name → the OMQs the panel
        #: serves. Panel answers are maintained incrementally (when the
        #: engine's patch path is on) — a :meth:`refresh_panels` tick,
        #: or any ordinary read of the same query, brings them current
        #: for O(Δ) against the CDC change streams.
        self.panels: dict[str, tuple[OMQ | str, ...]] = {}
        #: attached change-stream drift monitors (see
        #: :meth:`attach_drift_monitor`) and the drafts they produced
        #: awaiting steward review
        self.drift_monitors: list = []
        self.drift_drafts: list = []
        #: lazily built protocol handler (see :attr:`endpoint`)
        self._endpoint: "ProtocolEndpoint | None" = None
        self.mdm.ontology.add_evolution_listener(self._on_evolution)

    @property
    def endpoint(self) -> "ProtocolEndpoint":
        """The v1 protocol handler over this service (memoized).

        One endpoint per service: the in-process transport, the HTTP
        gateway and the legacy ``serve*`` shims all share its cursor
        store and idempotency log, so a cursor opened in-process can be
        continued over the wire and vice versa.
        """
        if self._endpoint is None:
            from repro.api.endpoint import ProtocolEndpoint
            self._endpoint = ProtocolEndpoint(self)
        return self._endpoint

    def client(self, *, pin: bool = False,
               timeout: float | None = None) -> "GovernedClient":
        """A :class:`~repro.api.client.GovernedClient` session over
        this service (the documented way to consume it)."""
        from repro.api.client import GovernedClient
        return GovernedClient(self, pin=pin, timeout=timeout)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Detach from the ontology's evolution feed (idempotent).

        A closed service stops observing bypassed writes; if it was the
        MDM's memoized service (:meth:`MDM.serving
        <repro.mdm.system.MDM.serving>`), the MDM forgets it so the
        next ``serving()`` call mints a fresh one.
        """
        self.mdm.ontology.remove_evolution_listener(self._on_evolution)
        if getattr(self.mdm, "_serving", None) is self:
            self.mdm._serving = None

    def _on_evolution(self, event: EvolutionEvent) -> None:
        # Epoch boundary: cached scans and materialized answers may
        # describe the pre-release state; drop both (the answer cache's
        # per-entry fingerprint evidence would key them out anyway —
        # clearing eagerly frees the memory at the boundary), and
        # supersede every open pagination cursor (a page stream never
        # switches epochs).
        self.scan_cache.clear()
        self.answer_cache.clear()
        if self._endpoint is not None:
            self._endpoint.on_evolution(event)
        if not self.lock.held_for_write():
            self.stats.bump(bypassed_writes=1)

    # -- analyst side (readers) ----------------------------------------------

    def serve(self, query: OMQ | str, distinct: bool = True,
              timeout: float | None = None) -> ServedAnswer:
        """Answer one OMQ under the read lock, with epoch evidence.

        Legacy shim: builds a :class:`~repro.api.protocol.QueryRequest`
        and routes through :attr:`endpoint`, re-raising failures as
        their original exceptions. Prefer :meth:`client`.
        """
        from repro.api.protocol import QueryRequest
        response = self.endpoint.handle_query(QueryRequest(
            query=query, distinct=distinct,
            timeout=timeout)).raise_for_error()
        return ServedAnswer(
            relation=response.relation, epoch=response.epoch,
            fingerprint=OntologyFingerprint(*response.fingerprint))

    def answer(self, query: OMQ | str, distinct: bool = True,
               timeout: float | None = None) -> Relation:
        """Answer one OMQ; the epoch-less convenience form of
        :meth:`serve`."""
        return self.serve(query, distinct=distinct,
                          timeout=timeout).relation

    def serve_many(self, queries: Iterable[OMQ | str],
                   distinct: bool = True,
                   workers: int | None = None,
                   return_exceptions: bool = False,
                   timeout: float | None = None) -> list[ServedAnswer]:
        """Answer a batch under *one* read section.

        The whole batch observes a single serving epoch — a release
        either precedes every answer in the batch or follows all of
        them. Legacy shim over :meth:`ProtocolEndpoint.
        handle_query_batch <repro.api.endpoint.ProtocolEndpoint.
        handle_query_batch>`; deduplication and the evaluation fan-out
        are :meth:`QueryEngine.answer_many
        <repro.query.engine.QueryEngine.answer_many>`'s, duplicates in
        the batch share one relation object. With
        ``return_exceptions=True`` a failed query yields a
        :class:`ServedAnswer`-shaped slot holding the exception in
        ``relation``'s place.
        """
        from repro.api.protocol import QueryRequest
        responses = self.endpoint.handle_query_batch(
            [QueryRequest(query=query, distinct=distinct,
                          timeout=timeout) for query in queries],
            workers=workers)
        answers: list[ServedAnswer] = []
        for response in responses:
            if response.error is not None and not return_exceptions:
                response.raise_for_error()
            fingerprint = (
                OntologyFingerprint(*response.fingerprint)
                if response.fingerprint is not None
                else self.mdm.ontology.fingerprint())
            answers.append(ServedAnswer(
                relation=response.relation,
                epoch=response.epoch if response.epoch is not None
                else self.lock.epoch,
                fingerprint=fingerprint, error=response.exception))
        return answers

    def answer_many(self, queries: Iterable[OMQ | str],
                    distinct: bool = True,
                    workers: int | None = None,
                    return_exceptions: bool = False,
                    timeout: float | None = None,
                    ) -> list[Relation | Exception]:
        """Batch answering without the epoch evidence."""
        return [served.relation if served.ok else served.error
                for served in self.serve_many(
                    queries, distinct=distinct, workers=workers,
                    return_exceptions=return_exceptions,
                    timeout=timeout)]

    # -- standing panels (incremental maintenance) ---------------------------

    def register_panel(self, name: str,
                       queries: Iterable[OMQ | str],
                       distinct: bool = True,
                       warm: bool = True) -> None:
        """Declare a served panel: a named set of OMQs kept warm.

        ``warm=True`` answers the panel immediately, so its entries
        (and, once the sources churn, their standing queries) live in
        the answer cache from the start. Re-registering a name replaces
        its query set.
        """
        self.panels[name] = tuple(queries)
        if warm:
            self.serve_many(self.panels[name], distinct=distinct,
                            return_exceptions=True)

    def refresh_panels(self, workers: int | None = None,
                       distinct: bool = True) -> dict[str, dict]:
        """One maintenance tick: re-answer every registered panel.

        Each panel batch runs under one read section; stale cached
        answers are *patched* through their standing queries (O(Δ)
        against the sources' change logs) rather than recomputed, and
        the per-panel report says which it was: ``{queries, failures,
        patches, seeds, fallbacks, hits}`` — the deltas of the answer
        cache's counters across the tick.
        """
        report: dict[str, dict] = {}
        for name, queries in self.panels.items():
            stats = self.answer_cache.stats
            before = (stats.patches, stats.seeds, stats.fallbacks,
                      stats.hits)
            served = self.serve_many(queries, distinct=distinct,
                                     workers=workers,
                                     return_exceptions=True)
            report[name] = {
                "queries": len(served),
                "failures": sum(1 for s in served if not s.ok),
                "patches": stats.patches - before[0],
                "seeds": stats.seeds - before[1],
                "fallbacks": stats.fallbacks - before[2],
                "hits": stats.hits - before[3],
            }
        return report

    def attach_drift_monitor(self, monitor: Any) -> None:
        """Attach a change-stream drift monitor (e.g. a
        :class:`~repro.streaming.drift_feed.CollectionDriftMonitor`):
        :meth:`poll_drift` will tail it for in-flight schema drift."""
        self.drift_monitors.append(monitor)

    def poll_drift(self) -> list:
        """Screen every attached monitor's change stream once.

        New drafts (auto-drafted releases, or pending-confirmation
        reports for low-confidence renames) are returned *and*
        accumulated on :attr:`drift_drafts` for the steward — this
        deliberately never applies a release by itself: adaptation
        stays semi-automatic, the steward lands drafts through
        :meth:`apply_release`.
        """
        drafts = []
        for monitor in self.drift_monitors:
            draft = monitor.poll()
            if draft is not None:
                drafts.append(draft)
        self.drift_drafts.extend(drafts)
        return drafts

    # -- steward side (writers) ----------------------------------------------

    def apply_release(self, release: Release,
                      absorbed_concepts: "frozenset[IRI] | set[IRI] | "
                      "None" = None) -> dict[str, int]:
        """Land a release: drain readers, run Algorithm 1, readmit.

        Legacy shim over :meth:`ProtocolEndpoint.handle_release
        <repro.api.endpoint.ProtocolEndpoint.handle_release>` (a typed
        :class:`~repro.api.protocol.ReleaseRequest`). Returns Algorithm
        1's triples-added delta. Queries issued after this returns
        observe a strictly larger serving epoch.
        """
        from repro.api.protocol import ReleaseRequest
        response = self.endpoint.handle_release(ReleaseRequest(
            release=release,
            absorbed_concepts=tuple(
                str(c) for c in (absorbed_concepts or ())),
            timeout=self.drain_timeout)).raise_for_error()
        return response.triples_added

    def register_wrapper(self, wrapper: "Wrapper", **kwargs: Any,
                         ) -> dict[str, int]:
        """Writer-side :meth:`MDM.register_wrapper` (same keywords).

        Runs entirely inside the write section: release *assembly*
        (:meth:`MDM.build_wrapper_release
        <repro.mdm.system.MDM.build_wrapper_release>` reads the
        ontology for alignment and subgraph induction) must observe a
        settled epoch, exactly like the declarative release path in
        :meth:`ProtocolEndpoint.handle_release
        <repro.api.endpoint.ProtocolEndpoint.handle_release>`.
        """
        if self.read_only:
            from repro.errors import ReadOnlyReplicaError
            raise ReadOnlyReplicaError(
                "this service is a read replica; submit releases to "
                "the journal's leader")
        with self.lock.write(self.drain_timeout):
            self.stats.bump(releases=1)
            return self.mdm.register_wrapper(wrapper, **kwargs)

    # -- introspection -------------------------------------------------------

    def journal_info(self) -> "dict | None":
        """Durability & replication state for ``describe``.

        ``{seq, boot_id, snapshot_seq, replica_lag, role}`` — from the
        MDM's journal on a leader, from the replica's tail position on
        a follower, ``None`` for a purely in-memory service.
        """
        if self._journal_info_override is not None:
            return self._journal_info_override()
        return self.mdm.journal_info()

    @property
    def epoch(self) -> int:
        """Completed releases served by this service."""
        return self.lock.epoch

    def describe(self) -> str:
        """Human-readable serving-layer state (lock, batches, cache)."""
        from repro.mdm.analyst import describe_service
        return describe_service(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<GovernedService epoch={self.lock.epoch} "
                f"queries={self.stats.queries} "
                f"releases={self.stats.releases}>")
