"""The industrial serving workload (§6.3's APIs turned into traffic).

The §6.3 study (Table 6) grounds the reproduction in five widely used
APIs. This module turns those same APIs into a *query-serving* workload
for the concurrency layer: each API becomes one data source with one
concept, a handful of features and a wrapper whose fetch carries a small
simulated network latency (`time.sleep` — which releases the GIL, so
the workload behaves like real wrapper I/O under a thread pool). An
analyst panel re-poses the per-API queries with heavy duplication —
the dominant production pattern the batch API exploits: dedupe by
canonical OMQ key, evaluate each unique query once, overlap the wrapper
fetches.

Used by ``benchmarks/bench_concurrent_service.py``, the CI thread-stress
smoke step and the service tests; everything is deterministic (seeded
rows, fixed panel order).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.relational.physical import IdFilter

from repro.core.ontology import BDIOntology
from repro.core.release import Release, new_release
from repro.evolution.industrial import LI_ET_AL_COUNTS
from repro.evolution.release_builder import build_release
from repro.mdm.system import MDM
from repro.rdf.namespace import Namespace
from repro.wrappers.base import StaticWrapper

__all__ = ["IND", "LatencyWrapper", "IndustrialServingScenario",
           "build_industrial_service", "analyst_panel",
           "next_version_release"]

IND = Namespace("urn:industrial:")

#: per-API response fields served by the v1 wrappers (id is the ID)
_API_FIELDS: dict[str, list[str]] = {
    "google_calendar": ["summary", "start", "attendees"],
    "google_gadgets": ["title", "height"],
    "amazon_mws": ["sku", "price", "quantity"],
    "twitter_api": ["text", "retweets"],
    "sina_weibo": ["body", "reposts"],
}


def _slug(api_name: str) -> str:
    return api_name.lower().replace(" ", "_")


class LatencyWrapper(StaticWrapper):
    """A static wrapper whose fetch simulates remote-source latency.

    ``time.sleep`` drops the GIL, so concurrent fetches overlap exactly
    like real network I/O — the property the serving layer's thread
    pool exploits.
    """

    def __init__(self, *args: Any, latency: float = 0.0,
                 **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.latency = latency

    def fetch_rows(self, columns: "Sequence[str] | None" = None,
                   id_filter: "IdFilter | None" = None) -> list[dict]:
        if self.latency > 0:
            time.sleep(self.latency)
        return super().fetch_rows(columns=columns, id_filter=id_filter)


@dataclass
class IndustrialServingScenario:
    """Ontology + wrappers + per-API queries for the serving workload."""

    mdm: MDM
    #: source slug → the SPARQL OMQ analysts pose against that API
    queries: dict[str, str] = field(default_factory=dict)

    @property
    def ontology(self) -> BDIOntology:
        return self.mdm.ontology

    def query_texts(self) -> list[str]:
        """The unique per-API queries, in stable (insertion) order."""
        return list(self.queries.values())


def _api_query(slug: str, fields: list[str]) -> str:
    """The Code-3 template OMQ projecting the API's id + fields."""
    features = [IND[f"{slug}/id"]] + [IND[f"{slug}/{f}"] for f in fields]
    variables = " ".join(f"?v{i}" for i in range(1, len(features) + 1))
    values = " ".join(f"<{f}>" for f in features)
    triples = " .\n    ".join(
        f"<{IND[slug.title().replace('_', '')]}> G:hasFeature <{f}>"
        for f in features)
    return (f"SELECT {variables} WHERE {{\n"
            f"    VALUES ({variables}) {{ ({values}) }}\n"
            f"    {triples}\n}}")


def build_industrial_service(rows_per_wrapper: int = 24,
                             latency: float = 0.0,
                             ) -> IndustrialServingScenario:
    """Model the five §6.3 APIs as governed, queryable sources.

    *latency* is the simulated per-fetch wrapper delay in seconds (0 for
    pure-CPU tests; a few milliseconds to emulate remote sources in the
    throughput benchmark).
    """
    mdm = MDM()
    ontology = mdm.ontology
    scenario = IndustrialServingScenario(mdm=mdm)
    for counts in LI_ET_AL_COUNTS:
        slug = _slug(counts.api)
        fields = _API_FIELDS[slug]
        concept = ontology.globals.add_concept(
            IND[slug.title().replace("_", "")])
        ontology.globals.add_feature(concept, IND[f"{slug}/id"],
                                     is_id=True)
        for name in fields:
            ontology.globals.add_feature(concept, IND[f"{slug}/{name}"])

        rows = [{"id": i,
                 **{name: f"{slug}/{name}/{i}" for name in fields}}
                for i in range(rows_per_wrapper)]
        wrapper = LatencyWrapper(f"{slug}_v1", slug,
                                 id_attributes=["id"],
                                 non_id_attributes=fields,
                                 rows=rows, latency=latency)
        hints = {"id": IND[f"{slug}/id"],
                 **{name: IND[f"{slug}/{name}"] for name in fields}}
        release = build_release(ontology, slug, wrapper.name,
                                id_attributes=["id"],
                                non_id_attributes=fields,
                                feature_hints=hints)
        release.wrapper = wrapper
        new_release(ontology, release)
        scenario.queries[slug] = _api_query(slug, fields)
    return scenario


def next_version_release(scenario: IndustrialServingScenario,
                         slug: str = "twitter_api",
                         rows_per_wrapper: int = 24,
                         latency: float = 0.0,
                         version: int = 2) -> Release:
    """A ready-to-apply v*version* release for one of the scenario's APIs.

    The new wrapper maps the same features (same attribute names keep
    their §3.2 semantics) but serves a fresh, disjoint row set, so the
    API's query answer visibly changes when the release lands — the
    signal the release-under-load benchmark uses to detect stale or
    torn answers.
    """
    fields = _API_FIELDS[slug]
    rows = [{"id": rows_per_wrapper * (version - 1) + i,
             **{name: f"{slug}/v{version}/{name}/{i}"
                for name in fields}}
            for i in range(rows_per_wrapper)]
    wrapper = LatencyWrapper(f"{slug}_v{version}", slug,
                             id_attributes=["id"],
                             non_id_attributes=fields,
                             rows=rows, latency=latency)
    hints = {"id": IND[f"{slug}/id"],
             **{name: IND[f"{slug}/{name}"] for name in fields}}
    release = build_release(scenario.ontology, slug, wrapper.name,
                            id_attributes=["id"],
                            non_id_attributes=fields,
                            feature_hints=hints)
    release.wrapper = wrapper
    return release


def analyst_panel(scenario: IndustrialServingScenario,
                  analysts: int = 8) -> list[str]:
    """*analysts* concurrent analysts each posing every API's query.

    The panel interleaves analysts (a1's five queries, a2's five, ...),
    so duplicates are spread across the batch the way independent users
    produce them. ``len(panel) == analysts * 5`` with exactly five
    unique canonical keys.
    """
    queries = scenario.query_texts()
    return [query for _ in range(analysts) for query in queries]
