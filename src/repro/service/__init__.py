"""Governed concurrent query serving (the multi-analyst MDM deployment).

Layers the paper's governance story for concurrency: releases are
writers, queries are readers, and an epoch-based readers-writer lock
guarantees every answer is consistent with exactly one release. See
``docs/architecture.md`` ("The governed serving layer").
"""

from repro.service.epoch_lock import EpochLock, EpochLockStats
from repro.service.serving import GovernedService, ServedAnswer, \
    ServiceStats
from repro.service.workload import (
    IndustrialServingScenario, LatencyWrapper, analyst_panel,
    build_industrial_service, next_version_release,
)

__all__ = [
    "EpochLock", "EpochLockStats",
    "GovernedService", "ServedAnswer", "ServiceStats",
    "IndustrialServingScenario", "LatencyWrapper", "analyst_panel",
    "build_industrial_service", "next_version_release",
]
