"""Topological sorting of directed graphs given as edge lists.

Algorithm 2 of the paper rejects cyclic query patterns ("QG.φ has at least
one cycle") by attempting a topological sort; Algorithm 3 visits query
concepts in topological order. Kahn's algorithm gives both: a sort when the
graph is a DAG, a :class:`CycleError` otherwise.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Sequence, TypeVar

__all__ = ["CycleError", "topological_sort", "is_dag"]

N = TypeVar("N", bound=Hashable)


class CycleError(ValueError):  # repro-lint: disable=error-taxonomy -- algorithmic precondition failure in a pure utility; call sites catch it and re-raise the taxonomy error appropriate to their layer
    """Raised when a graph handed to :func:`topological_sort` has a cycle.

    The offending nodes (those left with unresolved predecessors) are
    available as :attr:`nodes`.
    """

    def __init__(self, nodes: Sequence[Hashable]) -> None:
        super().__init__(f"graph has at least one cycle involving: "
                         f"{sorted(map(str, nodes))}")
        self.nodes = list(nodes)


def topological_sort(nodes: Iterable[N],
                     edges: Iterable[tuple[N, N]]) -> list[N]:
    """Kahn's algorithm; deterministic (ties broken by string order).

    *nodes* may list nodes without edges; nodes mentioned only in *edges*
    are included automatically.
    """
    all_nodes: set[N] = set(nodes)
    successors: dict[N, list[N]] = {}
    in_degree: dict[N, int] = {}
    for a, b in edges:
        all_nodes.add(a)
        all_nodes.add(b)
        successors.setdefault(a, []).append(b)
        in_degree[b] = in_degree.get(b, 0) + 1

    ready = deque(sorted((n for n in all_nodes if in_degree.get(n, 0) == 0),
                         key=str))
    order: list[N] = []
    while ready:
        node = ready.popleft()
        order.append(node)
        pending: list[N] = []
        for succ in successors.get(node, ()):  # consume edges
            in_degree[succ] -= 1
            if in_degree[succ] == 0:
                pending.append(succ)
        for succ in sorted(pending, key=str):
            ready.append(succ)

    if len(order) != len(all_nodes):
        leftover = [n for n in all_nodes if n not in set(order)]
        raise CycleError(leftover)
    return order


def is_dag(nodes: Iterable[N], edges: Iterable[tuple[N, N]]) -> bool:
    """True when the graph admits a topological ordering."""
    try:
        topological_sort(nodes, edges)
        return True
    except CycleError:
        return False
