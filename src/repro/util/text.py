"""String similarity used by the steward's semi-automatic alignment aids.

The paper (§4.1) points to probabilistic ontology alignment (PARIS) for
suggesting the attribute→feature function ``F`` of a release. We implement
a lightweight deterministic analogue: normalized Levenshtein similarity
blended with token-set Jaccard over camelCase/snake_case token splits.
"""

from __future__ import annotations

import re

__all__ = ["levenshtein", "jaccard", "tokenize_identifier",
           "name_similarity"]

_CAMEL_RE = re.compile(r"""
    [A-Z]+(?=[A-Z][a-z])   # acronym followed by a capitalized word
  | [A-Z]?[a-z]+           # capitalized or lowercase word
  | [A-Z]+                 # trailing acronym
  | \d+                    # digit runs
""", re.VERBOSE)


def levenshtein(a: str, b: str) -> int:
    """Classic edit distance, O(len(a)·len(b)) with two rows."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current.append(min(previous[j] + 1,        # deletion
                               current[j - 1] + 1,     # insertion
                               previous[j - 1] + cost  # substitution
                               ))
        previous = current
    return previous[-1]


def tokenize_identifier(name: str) -> list[str]:
    """Split an identifier into lowercase word tokens.

    >>> tokenize_identifier("VoDmonitorId")
    ['vo', 'dmonitor', 'id']
    >>> tokenize_identifier("buffering_ratio")
    ['buffering', 'ratio']
    """
    pieces: list[str] = []
    for chunk in re.split(r"[_\-./\s]+", name):
        pieces.extend(m.group(0) for m in _CAMEL_RE.finditer(chunk))
    return [p.lower() for p in pieces if p]


def jaccard(a: set, b: set) -> float:
    """Jaccard similarity of two sets, 1.0 for two empty sets."""
    if not a and not b:
        return 1.0
    union = a | b
    return len(a & b) / len(union)


def name_similarity(a: str, b: str) -> float:
    """Blend of normalized edit similarity and token Jaccard in [0, 1].

    Case-insensitive; tuned for schema attribute names where either whole
    strings are near-identical (renames such as ``lagRatio`` →
    ``bufferingRatio`` share the ``ratio`` token) or token sets overlap.
    """
    la, lb = a.lower(), b.lower()
    if la == lb:
        return 1.0
    longest = max(len(la), len(lb))
    edit_sim = 1.0 - levenshtein(la, lb) / longest if longest else 1.0
    token_sim = jaccard(set(tokenize_identifier(a)),
                        set(tokenize_identifier(b)))
    return 0.5 * edit_sim + 0.5 * token_sim
