"""Small shared utilities (graph algorithms, text similarity)."""

from repro.util.toposort import CycleError, is_dag, topological_sort
from repro.util.text import jaccard, levenshtein, name_similarity

__all__ = [
    "CycleError", "is_dag", "topological_sort",
    "jaccard", "levenshtein", "name_similarity",
]
