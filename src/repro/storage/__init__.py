"""Durable governance storage: journal, snapshots, read replicas.

The persistence layer of the governed system (``docs/architecture.md``,
"Durability & replication"):

* :mod:`repro.storage.codec` — versioned, CRC-framed
  :class:`~repro.storage.codec.ChangeRecord` JSON codecs for releases,
  wrappers and evolution events;
* :mod:`repro.storage.journal` — the fsync'd write-ahead command
  journal every mutation passes through, plus the deterministic replay
  executor;
* :mod:`repro.storage.snapshot` — fingerprint-exact checkpoints that
  make restart cost independent of history length;
* :mod:`repro.storage.replica` — journal-tailing read replicas (file
  or HTTP tail) serving the full read protocol at their applied epoch.

Entry points: :meth:`MDM.open <repro.mdm.system.MDM.open>` /
``GovernedService(state_dir=...)`` for a durable writer,
:class:`Replica` for a follower, ``python -m repro.api --state-dir`` /
``--follow`` for the gateway CLI.
"""

from repro.storage.codec import ChangeRecord
from repro.storage.journal import (
    Journal, apply_record, execute_command, execute_release,
    read_records, replay_into,
)
from repro.storage.snapshot import Snapshot, restore_state, take_snapshot

__all__ = [
    "ChangeRecord",
    "Journal", "apply_record", "execute_command", "execute_release",
    "read_records", "replay_into",
    "Snapshot", "restore_state", "take_snapshot",
    "Replica", "FileTailer", "HttpTailer", "TailBatch",
]


def __getattr__(name: str) -> object:
    # Replica pulls in the MDM/service stack; import it lazily so the
    # storage primitives stay importable from inside that stack.
    if name in ("Replica", "FileTailer", "HttpTailer", "TailBatch"):
        from repro.storage import replica

        return getattr(replica, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
