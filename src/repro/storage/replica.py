"""Journal-tailing read replicas: horizontal read scale-out.

A :class:`Replica` rebuilds the governed state by replaying the
leader's journal — from a local file (same host) or over the wire via
the gateway's ``GET /v1/journal?after=<seq>`` route — and serves reads
through its own :class:`~repro.service.serving.GovernedService` with
the full protocol semantics: epoch pinning, cursor pagination,
fingerprint evidence. Each catch-up batch applies under the follower's
write lock, so a release arriving mid-stream drains the follower's
readers and supersedes its open cursors exactly like a local release
would on the leader.

Replicas are strictly read-only: their protocol endpoint rejects
release submissions with ``read_only_replica`` (accepting one would
fork the governed history). Lag is observable — ``describe`` reports
``journal.replica_lag`` (leader records not yet applied).

Equivalence guarantee: because replay runs the same deterministic
command executor as crash recovery, a caught-up follower exhibits the
leader's exact ontology fingerprint *epoch* and answers every OMQ with
the same rows the leader serves at that epoch (structure hashes are
process-local by design — Python string hashing is per-process — so
cross-process equality is asserted on epochs, triples and answers).
"""

from __future__ import annotations

import json
import os
import threading
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, TYPE_CHECKING

from repro.errors import GatewayError, JournalCorruptedError
from repro.storage.codec import ChangeRecord, decode_record_line
from repro.storage.journal import (
    INDEX_EVERY, _SEQ_TAIL, apply_record, live_mutations,
    start_offset_for,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.client import GovernedClient

__all__ = ["Replica", "FileTailer", "HttpTailer", "TailBatch"]


@dataclass
class TailBatch:
    """One poll of the leader's journal."""

    records: list[ChangeRecord] = field(default_factory=list)
    #: highest record seq the leader has durably written
    leader_seq: int = 0
    leader_boot_id: str | None = None
    leader_snapshot_seq: int = 0


class FileTailer:
    """Tail a journal file directly (follower on the leader's host).

    Keeps a sparse seq→byte-offset index across polls, so steady-state
    polls read only the bytes appended since the resume position — not
    the whole history — while still supporting re-delivery: a
    ``poll(after)`` with an older *after* seeks back through the index
    and serves the records again (a replica holding position in front
    of a record awaiting its revoke relies on this).
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        #: sparse (seq, byte offset of record start) checkpoints
        self._index: list[tuple[int, int]] = []
        self._max_offset_seen = 0

    def _start_offset_for(self, after: int) -> int:
        return start_offset_for(self._index, after)

    def poll(self, after: int) -> TailBatch:
        if not self.path.exists():
            return TailBatch(leader_seq=after)
        with open(self.path, "rb") as handle:
            size = os.fstat(handle.fileno()).st_size
            if size < self._max_offset_seen:
                # the file shrank (the leader truncated a torn tail on
                # reopen): checkpoints past the end may dangle
                self._index = []
                self._max_offset_seen = 0
            start = self._start_offset_for(after)
            handle.seek(start)
            data = handle.read()
        offset = start
        leader_seq = after
        boot_id = None
        records: list[ChangeRecord] = []
        lines = data.splitlines(keepends=True)
        for index, raw in enumerate(lines):
            line_start = offset
            offset += len(raw)
            complete = raw.endswith(b"\n")
            stripped = raw.strip()
            if not stripped:
                continue
            quick = _SEQ_TAIL.search(stripped) if complete else None
            if quick is not None:
                seq = int(quick.group(1))
                if seq % INDEX_EVERY == 0 and (
                        not self._index or seq > self._index[-1][0]):
                    self._index.append((seq, line_start))
                leader_seq = max(leader_seq, seq)
                if seq <= after:
                    continue  # already delivered: skip the decode
            try:
                record = decode_record_line(
                    stripped.decode("utf-8", errors="replace"))
            except JournalCorruptedError:
                if any(rest.strip() for rest in lines[index + 1:]):
                    raise
                break  # the writer is mid-append; next poll retries
            leader_seq = max(leader_seq, record.seq)
            if record.kind == "boot":
                boot_id = record.payload.get("boot_id")
            if record.seq > after:
                records.append(record)
        self._max_offset_seen = max(self._max_offset_seen, offset)
        return TailBatch(records=records, leader_seq=leader_seq,
                         leader_boot_id=boot_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FileTailer {self.path}>"


class HttpTailer:
    """Tail a leader gateway's ``GET /v1/journal`` route."""

    def __init__(self, base_url: str, *, timeout: float = 10.0,
                 page_size: int | None = None) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.page_size = page_size

    def poll(self, after: int) -> TailBatch:
        url = f"{self.base_url}/v1/journal?after={after}"
        if self.page_size is not None:
            url += f"&limit={self.page_size}"
        try:
            with urllib.request.urlopen(url,
                                        timeout=self.timeout) as reply:
                payload = json.loads(reply.read().decode("utf-8"))
        except (urllib.error.URLError, OSError, ValueError) as exc:
            raise GatewayError(
                f"cannot tail journal at {url}: {exc}") from exc
        if not isinstance(payload, dict) or not payload.get("ok"):
            raise GatewayError(
                f"leader rejected the journal tail: {payload!r}")
        return TailBatch(
            records=[ChangeRecord.from_dict(r)
                     for r in payload.get("records") or ()],
            leader_seq=int(payload.get("seq") or 0),
            leader_boot_id=payload.get("boot_id"),
            leader_snapshot_seq=int(payload.get("snapshot_seq") or 0),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<HttpTailer {self.base_url}>"


class Replica:
    """A read-only follower of one governance journal.

    *tailer* is a :class:`FileTailer`, an :class:`HttpTailer`, or
    anything with the same ``poll(after) -> TailBatch`` shape. The
    replica owns a fresh MDM + governed service; route all reads
    through :meth:`client` / :attr:`service` (or a gateway over
    :attr:`service`).
    """

    def __init__(self, tailer: Any, *, max_workers: int = 4,
                 drain_timeout: float | None = None) -> None:
        from repro.mdm.system import MDM
        from repro.service.serving import GovernedService

        self.tailer = tailer
        self.mdm = MDM()
        self.service = GovernedService(
            self.mdm, max_workers=max_workers,
            drain_timeout=drain_timeout, read_only=True)
        self.service._journal_info_override = self._journal_info
        self.applied_seq = 0
        self.leader_seq = 0
        self.leader_boot_id: str | None = None
        #: False until the first catch-up poll *completes successfully*.
        #: A router must never route to a cold replica: before the
        #: first poll the follower reports epoch 0 / lag 0 — which is
        #: indistinguishable from a caught-up follower of an empty
        #: leader — so lag alone cannot gate routing.
        self.ready = False
        #: background-follow health: consecutive failed polls and the
        #: last failure, surfaced through ``describe`` so a silently
        #: broken follower is observable, not just increasingly stale
        self.failed_polls = 0
        self.last_poll_error: str | None = None
        self._poll_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @classmethod
    def follow_file(cls, path: str | Path, **kwargs: Any) -> "Replica":
        return cls(FileTailer(path), **kwargs)

    @classmethod
    def follow_url(cls, base_url: str, **kwargs: Any) -> "Replica":
        return cls(HttpTailer(base_url), **kwargs)

    # -- catch-up ------------------------------------------------------------

    def catch_up(self) -> int:
        """Poll once and apply everything new; returns records applied.

        Mutations apply inside one follower write section per poll —
        readers drain first, open cursors are superseded by the
        evolution listener, and queries issued afterwards observe the
        advanced epoch. Control records advance the applied position
        without a write section.
        """
        with self._poll_lock:
            batch = self.tailer.poll(self.applied_seq)
            self.failed_polls = 0
            self.last_poll_error = None
            self.leader_seq = max(self.leader_seq, batch.leader_seq)
            if batch.leader_boot_id is not None:
                self.leader_boot_id = batch.leader_boot_id
            records = [r for r in batch.records
                       if r.seq > self.applied_seq]
            if not records:
                self.ready = True  # a successful, empty catch-up poll
                return 0
            pending = live_mutations(records)
            applied = 0
            if pending:
                with self.service.lock.write():
                    for index, record in enumerate(pending):
                        try:
                            apply_record(self.mdm, record)
                        except Exception as exc:
                            # The position was already advanced past
                            # every mutation this batch applied — a
                            # retrying follow loop must never re-apply
                            # that prefix (it would silently diverge
                            # the follower from the leader).
                            if index == len(pending) - 1:
                                # The leader may still be about to
                                # revoke this record; hold position
                                # just before it and retry next poll.
                                return applied
                            raise JournalCorruptedError(
                                f"replica cannot apply record seq="
                                f"{record.seq} ({record.kind}) with "
                                f"records after it: {exc}") from exc
                        applied += 1
                        self.applied_seq = record.seq
            self.applied_seq = max(self.applied_seq, records[-1].seq)
            self.ready = True
            return applied

    @property
    def lag(self) -> int:
        """Leader records not yet applied here (0 = caught up)."""
        return max(0, self.leader_seq - self.applied_seq)

    def _journal_info(self) -> dict[str, Any]:
        return {
            "seq": self.applied_seq,
            "boot_id": self.leader_boot_id,
            "snapshot_seq": 0,
            "replica_lag": self.lag,
            "role": "replica",
            "ready": self.ready,
            "failed_polls": self.failed_polls,
            "last_poll_error": self.last_poll_error,
        }

    # -- background following ------------------------------------------------

    def start(self, poll_interval: float = 0.5) -> None:
        """Tail continuously on a daemon thread until :meth:`stop`."""
        if self._thread is not None:
            return
        self._stop.clear()

        def _loop() -> None:
            while not self._stop.is_set():
                try:
                    self.catch_up()
                except Exception as exc:
                    # Transient leader outages must not kill the
                    # follower — but the failure is recorded, so
                    # describe() shows a broken follow loop instead of
                    # a silently staler and staler epoch.
                    self.failed_polls += 1
                    self.last_poll_error = \
                        f"{type(exc).__name__}: {exc}"
                self._stop.wait(poll_interval)

        self._thread = threading.Thread(
            target=_loop, name="repro-replica-tail", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self.service.close()

    def client(self, *, pin: bool = False,
               timeout: float | None = None) -> "GovernedClient":
        """A protocol client session over this replica's service."""
        return self.service.client(pin=pin, timeout=timeout)

    def __enter__(self) -> "Replica":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Replica applied={self.applied_seq} "
                f"leader={self.leader_seq} lag={self.lag}>")
