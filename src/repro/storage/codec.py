"""Loss-free JSON codecs for the governance journal (change records).

Every state-mutating command of the governed system crosses the
durability boundary as a versioned :class:`ChangeRecord` — the same
codec discipline the v1 protocol envelopes follow
(:mod:`repro.api.protocol`): plain dataclasses, explicit ``to_dict`` /
``from_dict`` pairs, no pickling. A record line is self-checking (CRC32
over its canonical JSON), so crash-torn tails are detected instead of
replayed.

What round-trips loss-free:

* releases ``R = ⟨w, G, F⟩`` — the subgraph travels as canonical
  N-Triples lines, ``F`` as an attribute→IRI map;
* :class:`~repro.wrappers.base.StaticWrapper` physical bindings
  (rows, projection — everything);
* evolution events (epoch, concepts, description, structure flags).

Wrappers backed by live systems (REST, Mongo) cannot cross a restart as
objects; :func:`encode_wrapper` *materializes* them — their rows at
journal time become a static binding on replay, so a recovered or
replicated node answers queries with the data the release shipped.
Wrappers whose rows are not JSON-safe degrade to an ``opaque`` payload:
the governed metadata still replays exactly (the ontology fingerprint
never depends on the physical binding), only the physical binding must
be re-attached by the operator.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, TYPE_CHECKING

from repro.core.ontology import EvolutionEvent
from repro.core.release import Release
from repro.errors import JournalCorruptedError
from repro.rdf.graph import Graph
from repro.rdf.ntriples import parse_ntriples
from repro.rdf.term import IRI

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.wrappers.base import Wrapper

__all__ = [
    "CODEC_VERSION", "ChangeRecord",
    "encode_record_line", "decode_record_line",
    "encode_release", "decode_release",
    "encode_wrapper", "decode_wrapper",
    "encode_event", "decode_event",
    "encode_graph", "decode_graph",
]

#: record-format generation; bump on incompatible payload changes
CODEC_VERSION = 1


@dataclass(frozen=True)
class ChangeRecord:
    """One serialized mutation command of the governed system.

    ``seq`` is the record's position in the journal (contiguous from 1,
    control records included); ``kind`` selects the replay applicator
    (:func:`repro.storage.journal.apply_record`); ``payload`` is the
    kind-specific JSON-safe body.
    """

    seq: int
    kind: str
    payload: dict[str, Any] = field(default_factory=dict)
    version: int = CODEC_VERSION

    def to_dict(self) -> dict[str, Any]:
        return {"v": self.version, "seq": self.seq, "kind": self.kind,
                "payload": self.payload}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ChangeRecord":
        return cls(seq=int(payload["seq"]), kind=str(payload["kind"]),
                   payload=dict(payload.get("payload") or {}),
                   version=int(payload.get("v", CODEC_VERSION)))


def _canonical(payload: dict[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def encode_record_line(record: ChangeRecord) -> str:
    """One journal line: the record dict plus its own CRC32.

    The CRC covers the canonical JSON of the crc-less record; since
    canonical encoding sorts keys and ``"crc"`` sorts first, the full
    line is assembled by splicing the checksum in front of the already
    serialized body — one ``json.dumps`` per append, not two.
    """
    inner = _canonical(record.to_dict())
    crc = zlib.crc32(inner.encode("utf-8"))
    return f'{{"crc":{crc},{inner[1:]}'


def decode_record_line(line: str) -> ChangeRecord:
    """Parse one journal line; raises on torn or corrupted lines.

    Raises :class:`~repro.errors.JournalCorruptedError` on any decoding
    failure — the *caller* decides whether the line was a crash-torn
    tail (truncate) or interior damage (refuse to replay).
    """
    try:
        body = json.loads(line)
    except ValueError:
        raise JournalCorruptedError(
            "journal line is not valid JSON") from None
    if not isinstance(body, dict):
        raise JournalCorruptedError("journal line is not a JSON object")
    crc = body.pop("crc", None)
    try:
        record = ChangeRecord.from_dict(body)
    except (KeyError, TypeError, ValueError):
        raise JournalCorruptedError(
            "journal line misses required record fields") from None
    expected = zlib.crc32(_canonical(record.to_dict()).encode("utf-8"))
    if crc != expected:
        raise JournalCorruptedError(
            f"journal record seq={record.seq} fails its checksum")
    return record


# ---------------------------------------------------------------------------
# Graph / release codecs
# ---------------------------------------------------------------------------


def encode_graph(graph: Graph) -> list[str]:
    """A graph as sorted canonical N-Triples lines (JSON-safe)."""
    return sorted(t.n3() for t in graph)


def decode_graph(lines: list[str]) -> Graph:
    return parse_ntriples("\n".join(lines))


def encode_release(release: Release,
                   absorbed_concepts: "Iterable[Any] | None" = None,
                   ) -> dict[str, Any]:
    """A release (plus its absorbed concepts) as a JSON-safe payload."""
    return {
        "wrapper_name": release.wrapper_name,
        "source_name": release.source_name,
        "id_attributes": list(release.id_attributes),
        "non_id_attributes": list(release.non_id_attributes),
        "subgraph": encode_graph(release.subgraph),
        "attribute_to_feature": {
            a: str(f) for a, f
            in sorted(release.attribute_to_feature.items())},
        "wrapper": encode_wrapper(release.wrapper),
        "absorbed_concepts": sorted(
            str(c) for c in (absorbed_concepts or ())),
    }


def decode_release(payload: Mapping[str, Any],
                   ) -> tuple[Release, frozenset[IRI] | None]:
    """Rebuild the ``(release, absorbed_concepts)`` pair of a payload."""
    release = Release(
        wrapper_name=str(payload["wrapper_name"]),
        source_name=str(payload["source_name"]),
        id_attributes=tuple(payload.get("id_attributes") or ()),
        non_id_attributes=tuple(payload.get("non_id_attributes") or ()),
        subgraph=decode_graph(list(payload.get("subgraph") or ())),
        attribute_to_feature={
            a: IRI(str(f)) for a, f
            in (payload.get("attribute_to_feature") or {}).items()},
        wrapper=decode_wrapper(payload.get("wrapper")),
    )
    absorbed = payload.get("absorbed_concepts") or ()
    return release, (frozenset(IRI(c) for c in absorbed)
                     if absorbed else None)


# ---------------------------------------------------------------------------
# Wrapper codec
# ---------------------------------------------------------------------------


def encode_wrapper(wrapper: "Wrapper | None") -> dict[str, Any] | None:
    """A physical wrapper as a durable payload (see module docstring).

    ``static`` round-trips loss-free; anything else is materialized —
    its rows at encode time become the replayed binding. Rows that are
    not JSON-serializable degrade the payload to ``opaque`` (metadata
    only, no physical binding on replay).
    """
    if wrapper is None:
        return None
    from repro.wrappers.base import StaticWrapper
    base = {
        "name": wrapper.name,
        "source": wrapper.source_name,
        "id_attributes": list(wrapper.id_attributes),
        "non_id_attributes": list(wrapper.non_id_attributes),
    }
    if type(wrapper) is StaticWrapper:
        payload = dict(base, type="static", rows=wrapper._rows,
                       projection=wrapper._projection or None)
    else:
        try:
            rows = wrapper.fetch()
        except Exception:
            return dict(base, type="opaque")
        payload = dict(base, type="materialized", rows=rows)
    try:
        json.dumps(payload["rows"])
    except (TypeError, ValueError):
        return dict(base, type="opaque")
    return payload


def decode_wrapper(payload: Mapping[str, Any] | None) -> "Wrapper | None":
    """Rebuild the journaled physical binding (None for opaque)."""
    if payload is None or payload.get("type") == "opaque":
        return None
    from repro.wrappers.base import StaticWrapper
    projection = payload.get("projection") \
        if payload.get("type") == "static" else None
    return StaticWrapper(
        str(payload["name"]), str(payload["source"]),
        id_attributes=list(payload.get("id_attributes") or ()),
        non_id_attributes=list(payload.get("non_id_attributes") or ()),
        rows=list(payload.get("rows") or ()),
        projection=projection)


# ---------------------------------------------------------------------------
# Evolution-event codec (snapshots)
# ---------------------------------------------------------------------------


def encode_event(event: EvolutionEvent) -> dict[str, Any]:
    return {
        "epoch": event.epoch,
        "concepts": sorted(str(c) for c in event.concepts),
        "description": event.description,
        "structure": event.structure,
        "ungoverned": event.ungoverned,
    }


def decode_event(payload: Mapping[str, Any]) -> EvolutionEvent:
    return EvolutionEvent(
        epoch=int(payload["epoch"]),
        concepts=frozenset(IRI(c) for c in payload.get("concepts") or ()),
        description=str(payload.get("description", "")),
        structure=int(payload.get("structure", 0)),
        ungoverned=bool(payload.get("ungoverned", False)))
