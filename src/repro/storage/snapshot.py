"""Point-in-time snapshots of the governed state (fast restarts).

A snapshot is the journal's checkpoint: the full BDI ontology dataset
as canonical N-Quads, the evolution bookkeeping (epoch, event log,
pending-gap flag, per-graph mutation counts), the release history and
the journaled physical bindings — everything replay would reconstruct,
captured at one journal sequence number. Recovery then restores the
snapshot and replays only the journal suffix ``seq > snapshot.seq``,
which is what makes restart cost independent of history length.

Restores are fingerprint-exact: mutation counts are reinstated (the
structural fingerprint hashes them), and the pending-gap flag keeps
:meth:`~repro.core.ontology.BDIOntology.has_ungoverned_gap` truthful
across the restore. Snapshots are written atomically (temp file +
fsync + rename), so a crash mid-snapshot leaves the previous snapshot
intact.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.ontology import BDIOntology
from repro.core.release import Release
from repro.errors import SnapshotError
from repro.rdf.ntriples import parse_nquads, serialize_nquads
from repro.storage.codec import (
    CODEC_VERSION, decode_event, decode_release, decode_wrapper,
    encode_event, encode_release, encode_wrapper,
)

__all__ = ["Snapshot", "take_snapshot", "restore_state"]


@dataclass
class Snapshot:
    """One durable checkpoint of the governed state."""

    #: journal sequence number this snapshot covers (records with
    #: ``seq <= seq`` are folded in; replay resumes after it)
    seq: int
    #: the whole ontology dataset, named graphs included
    nquads: str
    epoch: int
    #: encoded evolution events (chronological)
    events: list[dict[str, Any]] = field(default_factory=list)
    #: True when unattributed edits were pending at snapshot time
    pending_gap: bool = False
    #: per-graph mutation counts (fingerprint component)
    mutation_counts: dict[str, int] = field(default_factory=dict)
    #: encoded release history (chronological)
    releases: list[dict[str, Any]] = field(default_factory=list)
    #: encoded physical bindings, keyed by wrapper name
    wrappers: dict[str, Any] = field(default_factory=dict)
    #: journaled idempotency outcomes (key -> {seq, epoch,
    #: triples_added}) — snapshots fold the release records in, so the
    #: recovery replay alone could never rebuild these
    idempotency: dict[str, Any] = field(default_factory=dict)
    version: int = CODEC_VERSION

    def to_dict(self) -> dict[str, Any]:
        return {
            "v": self.version,
            "seq": self.seq,
            "nquads": self.nquads,
            "epoch": self.epoch,
            "events": self.events,
            "pending_gap": self.pending_gap,
            "mutation_counts": self.mutation_counts,
            "releases": self.releases,
            "wrappers": self.wrappers,
            "idempotency": self.idempotency,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Snapshot":
        try:
            return cls(
                seq=int(payload["seq"]),
                nquads=str(payload["nquads"]),
                epoch=int(payload["epoch"]),
                events=list(payload.get("events") or ()),
                pending_gap=bool(payload.get("pending_gap", False)),
                mutation_counts={
                    str(k): int(v) for k, v
                    in (payload.get("mutation_counts") or {}).items()},
                releases=list(payload.get("releases") or ()),
                wrappers=dict(payload.get("wrappers") or {}),
                idempotency=dict(payload.get("idempotency") or {}),
                version=int(payload.get("v", CODEC_VERSION)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(
                f"snapshot payload is malformed: {exc}") from exc

    # -- persistence ---------------------------------------------------------

    def write(self, path: str | Path) -> None:
        """Atomically persist (temp file + fsync + rename)."""
        path = Path(path)
        tmp = path.with_name(path.name + ".tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(self.to_dict(), handle, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError as exc:
            raise SnapshotError(
                f"cannot write snapshot {path}: {exc}") from exc

    @classmethod
    def read(cls, path: str | Path) -> "Snapshot":
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as exc:
            raise SnapshotError(
                f"cannot read snapshot {path}: {exc}") from exc
        except ValueError as exc:
            raise SnapshotError(
                f"snapshot {path} is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)


def take_snapshot(target: Any, seq: int) -> Snapshot:
    """Capture *target* (an MDM-shaped object) at journal seq *seq*.

    Must run with no concurrent mutation (the caller holds the service
    write lock, or owns the only reference) — a snapshot of a moving
    state would pin a fingerprint nothing ever exhibited.
    """
    ontology: BDIOntology = target.ontology
    releases = [encode_release(r)
                for r in getattr(target, "release_log", ())]
    wrappers = {}
    for name in sorted(ontology._physical):
        encoded = encode_wrapper(ontology._physical[name])
        if encoded is not None:
            wrappers[name] = encoded
    return Snapshot(
        seq=seq,
        nquads=serialize_nquads(ontology.dataset),
        epoch=ontology.epoch,
        events=[encode_event(e) for e in ontology.evolution_since(0)],
        pending_gap=ontology.has_ungoverned_gap(),
        mutation_counts=ontology.dataset.mutation_counts(),
        releases=releases,
        wrappers=wrappers,
        idempotency=dict(getattr(target, "recovered_idempotency",
                                 None) or {}),
    )


def restore_state(snapshot: Snapshot,
                  ) -> tuple[BDIOntology, list[Release]]:
    """Rebuild ``(ontology, release_log)`` from a snapshot.

    The restored ontology is fingerprint-identical to the snapshotted
    one: every quad, every mutation count, the epoch, the event log and
    the pending-gap flag come back exactly.
    """
    ontology = BDIOntology(include_metamodel=False)
    for quad in parse_nquads(snapshot.nquads).quads():
        ontology.dataset.add_quad(quad)
    ontology.dataset.restore_mutation_counts(snapshot.mutation_counts)
    ontology.restore_evolution_state(
        snapshot.epoch,
        (decode_event(e) for e in snapshot.events),
        pending_gap=snapshot.pending_gap)
    for payload in snapshot.wrappers.values():
        wrapper = decode_wrapper(payload)
        if wrapper is not None:
            ontology.bind_wrapper(wrapper)
    release_log = [decode_release(r)[0] for r in snapshot.releases]
    return ontology, release_log
