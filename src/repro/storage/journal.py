"""The durable governance journal: command-sourced mutation log.

Every mutation of the governed state — a release landing through
Algorithm 1, a steward extending G (concepts, features, datatypes) —
is first serialized as a :class:`~repro.storage.codec.ChangeRecord`,
appended to this fsync'd journal, and only then applied in memory (a
classic write-ahead discipline). Replaying the journal from an empty
ontology (or from a :mod:`~repro.storage.snapshot`) deterministically
reconstructs the identical governed state: same ontology fingerprint,
same epoch, same release history, same registered wrappers.

Crash atomicity follows from the record framing: a record is one
CRC-checked JSON line, so a crash mid-append leaves a torn tail that
recovery truncates (the half-applied release is *fully absent*), while
a crash after the fsync but before the in-memory apply loses nothing —
replay applies the record (the release is *fully applied*). There is no
third state.

Record kinds:

``boot``
    control — a writer (re)opened the journal; carries the ``boot_id``
    that scopes volatile serving state (cursors, idempotency replays).
``revoke``
    control — a previously appended record failed its in-memory apply
    (only possible when a pre-append validation was bypassed); replay
    skips the revoked seq.
``release``
    apply Algorithm 1 for the encoded release.
``add_concept`` / ``add_feature`` / ``set_datatype``
    steward extensions of the Global graph.
"""

from __future__ import annotations

import itertools
import os
import re
import secrets
import threading
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.core.release import new_release, prevalidate_release
from repro.errors import JournalCorruptedError, JournalError
from repro.rdf.term import IRI
from repro.storage.codec import (
    ChangeRecord, decode_record_line, encode_record_line,
    decode_release, encode_release,
)

__all__ = ["Journal", "apply_record", "replay_into", "read_records",
           "execute_release", "execute_command", "CONTROL_KINDS"]

#: record kinds that carry no state mutation
CONTROL_KINDS = frozenset({"boot", "revoke"})

#: sparse-offset checkpoint cadence (records between index entries)
INDEX_EVERY = 256


def start_offset_for(index: "list[tuple[int, int]]", after: int) -> int:
    """Byte offset at (or safely before) the first record > *after*,
    given sparse ``(seq, offset)`` checkpoints sorted by seq — shared
    by the journal's own reads and the file tailer."""
    best = 0
    for seq, offset in index:
        if seq > after:
            break
        best = offset
    return best


def live_mutations(records: "list[ChangeRecord]",
                   ) -> "list[ChangeRecord]":
    """The records replay must apply: control records dropped, revoked
    targets skipped — the one filtering rule recovery and replicas
    share."""
    revoked = {r.payload.get("target") for r in records
               if r.kind == "revoke"}
    return [r for r in records
            if r.kind not in CONTROL_KINDS and r.seq not in revoked]


class Journal:
    """Append-only, fsync'd, CRC-framed record log (one JSON line each).

    Thread-safe: appends serialize on an internal lock (callers
    normally already hold the service write lock — the journal lock
    only protects direct, unserved writers). Reading back records opens
    an independent handle, so tailers never race the writer.
    """

    def __init__(self, path: str | Path, *, fsync: bool = True) -> None:
        self.path = Path(path)
        self._fsync = fsync
        self._lock = threading.Lock()
        self._last_seq = 0  # guarded-by: _lock
        self._boot_id: str | None = None  # guarded-by: _lock
        #: set after a failed append: the on-disk tail may hold partial
        #: bytes, so further appends would merge into a garbage line —
        #: the handle fail-stops and a reopen recovers (truncates)
        self._poisoned: str | None = None  # guarded-by: _lock
        #: sparse (seq, byte offset) checkpoints so :meth:`records`
        #: seeks near *after* instead of rescanning the whole file
        self._index: list[tuple[int, int]] = []  # guarded-by: _lock
        self._end_offset = 0  # guarded-by: _lock
        self._recover_tail()
        self._file = open(self.path, "a",
                          encoding="utf-8")  # guarded-by: _lock

    @classmethod
    def open(cls, path: str | Path, *, fsync: bool = True) -> "Journal":
        return cls(path, fsync=fsync)

    # -- state ---------------------------------------------------------------

    @property
    def last_seq(self) -> int:
        with self._lock:
            return self._last_seq

    @property
    def boot_id(self) -> str | None:
        """The current boot's identity (last ``boot`` record seen)."""
        with self._lock:
            return self._boot_id

    # -- recovery ------------------------------------------------------------

    # repro-lint: disable=guarded-by -- runs inside __init__ before the
    # journal is published; the constructor owns the only reference.
    def _recover_tail(self) -> None:
        """Scan existing records; truncate a crash-torn final line.

        Interior lines take a fast path (sequence-number regex on the
        canonical tail, full decode only for ``boot`` records) so that
        opening a long journal costs O(bytes), not O(records × JSON
        decode); the final line — the only place a crash can tear — is
        always checksum-verified in full. Suffix records that recovery
        goes on to *replay* are fully verified by ``read_records``.
        """
        if not self.path.exists():
            return
        with open(self.path, "rb") as handle:
            data = handle.read()
        consumed = 0  # bytes covered by intact records
        offset = 0
        torn = False
        lines = data.splitlines(keepends=True)
        for index, raw in enumerate(lines):
            end = offset + len(raw)
            line = raw.decode("utf-8", errors="replace").strip()
            if line:
                quick = None if index == len(lines) - 1 \
                    else _SEQ_TAIL.search(raw.strip())
                if quick is not None and b'"kind":"boot"' not in raw:
                    seq = int(quick.group(1))
                else:
                    try:
                        record = decode_record_line(line)
                    except JournalCorruptedError:
                        # Only the *final* bytes may be torn: anything
                        # after a bad line means interior damage.
                        if data[end:].strip():
                            raise JournalCorruptedError(
                                f"{self.path}: damaged record inside "
                                "the journal (not a crash-torn tail)"
                            ) from None
                        torn = True
                        break
                    seq = record.seq
                    if record.kind == "boot":
                        self._boot_id = record.payload.get("boot_id")
                if seq != self._last_seq + 1:
                    raise JournalCorruptedError(
                        f"{self.path}: record seq {seq} breaks "
                        f"the contiguous sequence at {self._last_seq}")
                self._last_seq = seq
                self._note_offset(seq, offset)
            consumed = end
            offset = end
        if torn:
            with open(self.path, "r+b") as handle:
                handle.truncate(consumed)
            self._end_offset = consumed
        elif data and not data.endswith(b"\n"):
            # Complete final record whose newline was lost in the
            # crash: restore the framing before appending resumes.
            with open(self.path, "ab") as handle:
                handle.write(b"\n")
            self._end_offset = len(data) + 1
        else:
            self._end_offset = len(data)

    # repro-lint: disable=guarded-by -- callers hold the lock (append)
    # or own the only reference (__init__ via _recover_tail).
    def _note_offset(self, seq: int, offset: int) -> None:
        """Checkpoint every Nth record's byte offset."""
        if seq % INDEX_EVERY == 0:
            self._index.append((seq, offset))

    # repro-lint: disable=guarded-by -- callers hold the lock (records).
    def _start_offset_for(self, after: int) -> int:
        return start_offset_for(self._index, after)

    # -- writing -------------------------------------------------------------

    def append(self, kind: str, payload: dict[str, Any] | None = None,
               ) -> ChangeRecord:
        """Serialize one command and force it to disk; returns the record.

        The record is on stable storage when this returns (write + flush
        + fsync under the journal lock) — the caller may then apply the
        mutation in memory knowing a crash cannot lose the command.

        Appends are fail-stop: a failed write may leave partial bytes
        on disk, so the handle is poisoned — retrying on it would merge
        the next record into the partial line, corrupting the journal.
        Reopening the journal recovers (the partial tail is truncated
        like any crash-torn tail).
        """
        with self._lock:
            if self._poisoned is not None:
                raise JournalError(
                    f"journal {self.path} is poisoned after a failed "
                    f"append ({self._poisoned}); reopen it to recover "
                    "the torn tail")
            record = ChangeRecord(seq=self._last_seq + 1, kind=kind,
                                  payload=dict(payload or {}))
            line = encode_record_line(record)
            try:
                self._write_line(line)
                self._file.flush()
                if self._fsync:
                    os.fsync(self._file.fileno())
            except OSError as exc:
                self._poisoned = f"{type(exc).__name__}: {exc}"
                raise JournalError(
                    f"cannot append to {self.path}: {exc}") from exc
            self._last_seq = record.seq
            self._note_offset(record.seq, self._end_offset)
            self._end_offset += len(line.encode("utf-8")) + 1
            return record

    # repro-lint: disable=guarded-by -- sole caller is append, which
    # holds the lock around the whole write/flush/fsync sequence.
    def _write_line(self, line: str) -> None:
        """The byte-level append seam (fault-injection point in tests)."""
        self._file.write(line + "\n")

    # repro-lint: disable=replay-determinism -- boot ids label writer
    # lifetimes on control records that replay skips; fresh randomness
    # per boot is the point and never feeds governed state.
    def append_boot(self) -> str:
        """Record a writer (re)opening; returns the fresh boot id."""
        boot_id = secrets.token_hex(8)
        self.append("boot", {"boot_id": boot_id})
        with self._lock:
            self._boot_id = boot_id
        return boot_id

    def append_revoke(self, seq: int, reason: str) -> ChangeRecord:
        """Mark a journaled record as failed-to-apply (replay skips it)."""
        return self.append("revoke", {"target": seq, "reason": reason})

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()

    # -- reading -------------------------------------------------------------

    def records(self, after: int = 0,
                limit: int | None = None) -> list[ChangeRecord]:
        """Intact records with ``seq > after`` (fresh read handle),
        at most *limit* of them.

        Seeks to the sparse offset checkpoint nearest *after* and stops
        decoding once *limit* records are collected, so steady-state
        tail feeds (the gateway's ``/v1/journal`` route, replica polls)
        cost O(bytes served), not O(journal size).
        """
        with self._lock:
            start = self._start_offset_for(after)
        stream = read_records(self.path, after=after, start_offset=start)
        if limit is None:
            return list(stream)
        return list(itertools.islice(stream, max(0, limit)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return (f"<Journal {self.path} seq={self._last_seq} "
                    f"boot={self._boot_id}>")


#: canonical key order puts ``"seq"`` second-to-last on every line
_SEQ_TAIL = re.compile(rb'"seq":(\d+),"v":\d+\}\s*$')


def read_records(path: str | Path, after: int = 0,
                 start_offset: int = 0) -> Iterator[ChangeRecord]:
    """Stream intact records from a journal file (tailer side).

    Stops silently at a torn final line (the writer may be mid-append);
    raises :class:`~repro.errors.JournalCorruptedError` only for damage
    *followed by* further records. Lines at or before *after* are
    skipped on a cheap sequence-number fast path (no JSON decode, no
    checksum), and *start_offset* — a byte offset known to sit on a
    record boundary at or before the first wanted record — skips the
    bytes entirely: snapshot-assisted restarts and steady-state tail
    polls must not pay for history they already hold.
    """
    path = Path(path)
    if not path.exists():
        return
    with open(path, "rb") as handle:
        if start_offset:
            handle.seek(start_offset)
        data = handle.read()
    lines = data.splitlines()
    for index, raw in enumerate(lines):
        if after:
            skip = _SEQ_TAIL.search(raw)
            if skip is not None and int(skip.group(1)) <= after:
                continue
        line = raw.decode("utf-8", errors="replace").strip()
        if not line:
            continue
        try:
            record = decode_record_line(line)
        except JournalCorruptedError:
            if any(rest.strip() for rest in lines[index + 1:]):
                raise
            return
        if record.seq > after:
            yield record


# ---------------------------------------------------------------------------
# Live write path (journal-first mutation)
# ---------------------------------------------------------------------------


def execute_release(target: Any, release: Any,
                    absorbed_concepts: Iterable[Any] | None = None, *,
                    journal: "Journal | None" = None,
                    idempotency_key: str | None = None) -> dict[str, int]:
    """The one release applicator: journal first, then Algorithm 1.

    Every state-mutating release path — :meth:`MDM.register_release
    <repro.mdm.system.MDM.register_release>`, the protocol endpoint's
    ``handle_release``, :class:`~repro.evolution.apply.GovernedApi`
    version registration — lands here. With a journal, the release is
    prevalidated (so the journal never records a doomed command),
    serialized as a ``release`` change record, fsync'd, and only then
    applied; without one, it applies directly (the in-memory demo
    mode). *target* needs ``.ontology`` and may have ``.release_log``.

    The in-memory apply uses the *original* release object (live
    physical wrapper included) — the journaled twin decodes to the same
    governed mutations, so replay is deterministic while live serving
    keeps its richer bindings.
    """
    ontology = target.ontology
    if journal is None:
        delta = new_release(ontology, release,
                            absorbed_concepts=absorbed_concepts)
    else:
        prevalidate_release(ontology, release)
        payload = encode_release(release, absorbed_concepts)
        if idempotency_key is not None:
            payload["idempotency_key"] = idempotency_key
        record = journal.append("release", payload)
        try:
            delta = new_release(ontology, release,
                                absorbed_concepts=absorbed_concepts,
                                prevalidated=True)
        except BaseException as exc:
            # Prevalidation makes this unreachable for deterministic
            # failures; anything that still slips through (listener
            # bugs, OOM) is revoked so replay skips it.
            journal.append_revoke(record.seq,
                                  f"{type(exc).__name__}: {exc}")
            raise
    log = getattr(target, "release_log", None)
    if log is not None:
        log.append(release)
    return delta


def execute_command(target: Any, kind: str, payload: dict[str, Any], *,
                    journal: "Journal | None" = None) -> None:
    """Journal one steward command, then apply it via the replay
    executor — the live path literally runs :func:`apply_record`, so
    live state and replayed state cannot diverge."""
    if journal is None:
        apply_record(target,
                     ChangeRecord(seq=0, kind=kind, payload=dict(payload)))
        return
    record = journal.append(kind, payload)
    try:
        apply_record(target, record)
    except BaseException as exc:
        journal.append_revoke(record.seq, f"{type(exc).__name__}: {exc}")
        raise


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------


def apply_record(target: Any,
                 record: ChangeRecord) -> dict[str, int] | None:
    """Apply one change record to *target* (an MDM-shaped object).

    *target* needs ``.ontology`` (a :class:`~repro.core.ontology.
    BDIOntology`) and may have ``.release_log`` (release records are
    appended to it). This is the one executor both the cold replay and
    the journal-tailing replica run — and it performs the *same*
    mutations the live writer performed after journaling, which is what
    makes recovery deterministic.

    Returns Algorithm 1's triples-added delta for ``release`` records,
    ``None`` otherwise.
    """
    ontology = target.ontology
    kind, payload = record.kind, record.payload
    if kind in CONTROL_KINDS:
        return None
    if kind == "release":
        release, absorbed = decode_release(payload)
        delta = new_release(ontology, release,
                            absorbed_concepts=absorbed)
        log = getattr(target, "release_log", None)
        if log is not None:
            log.append(release)
        return delta
    if kind == "add_concept":
        ontology.globals.add_concept(IRI(payload["concept"]))
        return None
    if kind == "add_feature":
        datatype = payload.get("datatype")
        ontology.globals.add_feature(
            IRI(payload["concept"]), IRI(payload["feature"]),
            datatype=IRI(datatype) if datatype is not None else None,
            is_id=bool(payload.get("is_id", False)))
        return None
    if kind == "add_property":
        ontology.globals.add_property(
            IRI(payload["subject"]), IRI(payload["predicate"]),
            IRI(payload["object"]))
        return None
    if kind == "set_datatype":
        ontology.globals.set_datatype(IRI(payload["feature"]),
                                      IRI(payload["datatype"]))
        return None
    raise JournalCorruptedError(
        f"journal record seq={record.seq} has unknown kind "
        f"{kind!r} (codec version skew?)")


def replay_into(target: Any, records: Iterable[ChangeRecord],
                journal: "Journal | None" = None,
                ) -> dict[str, dict[str, Any]]:
    """Replay *records* into *target*; returns recovered release outcomes.

    The returned map is ``idempotency_key -> {"seq", "epoch",
    "triples_added"}`` for every journaled release that carried an
    idempotency key — with the epoch *recomputed during replay*, never
    the epoch recorded by a previous boot. This is what a protocol
    endpoint seeds its replay store from after a restart, so a
    re-submitted release replays its recorded outcome instead of
    re-running Algorithm 1 (and never reports a stale pre-restart
    epoch).

    Records named by a later ``revoke`` are skipped. A record that
    fails to apply is tolerated only as the journal's final mutation
    (the writer crashed between validation and apply — impossible under
    the standard prevalidate-then-append discipline, but cheap to stay
    safe against); when *journal* is passed (the recovery path), the
    tolerated record is revoked on the spot, so later mutations cannot
    turn it into unrecoverable interior damage on the next restart. An
    interior failure raises.
    """
    mutations = live_mutations(list(records))
    recovered: dict[str, dict[str, Any]] = {}
    for index, record in enumerate(mutations):
        try:
            delta = apply_record(target, record)
        except Exception as exc:
            if index == len(mutations) - 1:
                if journal is not None:
                    journal.append_revoke(
                        record.seq,
                        f"failed recovery replay: "
                        f"{type(exc).__name__}: {exc}")
                break
            raise JournalCorruptedError(
                f"record seq={record.seq} ({record.kind}) failed to "
                f"replay with records after it: {exc}") from exc
        key = record.payload.get("idempotency_key") \
            if record.kind == "release" else None
        if key is not None:
            recovered[str(key)] = {
                "seq": record.seq,
                "epoch": target.ontology.epoch,
                "triples_added": delta,
            }
    return recovered
