"""Incremental answer maintenance over CDC change streams.

Sources emit per-row change logs (:mod:`repro.sources`), wrappers
expose them as signed relational deltas
(:meth:`~repro.wrappers.base.Wrapper.fetch_deltas`), and this package
turns those deltas into O(Δ) refresh of materialized answers:
:class:`~repro.streaming.deltas.DeltaBatch` is the exchange format,
:mod:`~repro.streaming.operators` maintains each physical operator
incrementally, :class:`~repro.streaming.standing.StandingQuery` owns
one maintained result, and
:class:`~repro.streaming.drift_feed.CollectionDriftMonitor` feeds the
same change streams into drift detection so in-flight schema drift
auto-drafts releases for the steward.
"""

from repro.streaming.deltas import (
    DeltaBatch, RowTuple, incremental_env_enabled,
)
from repro.streaming.drift_feed import CollectionDriftMonitor, DriftDraft
from repro.streaming.operators import (
    DeltaNode, JoinState, ProjectState, ScanState, UnionState,
    build_states,
)
from repro.streaming.standing import (
    FALLBACK_DELTA_FRACTION, FALLBACK_MIN_DELTA_ROWS, RefreshOutcome,
    StandingQuery,
)

__all__ = [
    "DeltaBatch", "RowTuple", "incremental_env_enabled",
    "CollectionDriftMonitor", "DriftDraft",
    "DeltaNode", "JoinState", "ProjectState", "ScanState", "UnionState",
    "build_states",
    "FALLBACK_DELTA_FRACTION", "FALLBACK_MIN_DELTA_ROWS",
    "RefreshOutcome", "StandingQuery",
]
