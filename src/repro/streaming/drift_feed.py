"""Change streams feeding drift detection: governance goes continuous.

Drift detection (:mod:`repro.evolution.drift`) compares *observed*
documents against a wrapper's declared field set — but someone has to
observe them. Before CDC, that meant periodically refetching whole
sources. A :class:`CollectionDriftMonitor` instead tails a
collection's change log: every polled batch of in-flight documents
(inserts and update images since the cursor) is screened, and the
moment drifted payloads appear the monitor auto-drafts a
:class:`~repro.core.release.Release` adapting the ontology — ready for
steward approval, exactly the semi-automatic loop the paper's future
work calls for. Low-confidence renames stay pending (the draft then
carries the steward's to-confirm list instead of a release).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.ontology import BDIOntology
from repro.core.release import Release
from repro.errors import EvolutionError
from repro.evolution.drift import (
    DriftReport, FieldDrift, detect_drift, propose_release,
)
from repro.sources.document_store import DocumentStore

__all__ = ["DriftDraft", "CollectionDriftMonitor"]


@dataclass(frozen=True)
class DriftDraft:
    """One auto-drafted adaptation, awaiting the steward.

    ``release`` is ready to hand to Algorithm 1 when every rename was
    confident; otherwise it is None and ``pending`` lists the
    confirmations the steward owes (``error`` says why drafting
    stopped).
    """

    source_name: str
    wrapper_name: str
    new_wrapper_name: str
    report: DriftReport
    release: Release | None
    pending: tuple[FieldDrift, ...]
    error: str | None = None

    @property
    def auto_applicable(self) -> bool:
        return self.release is not None

    def summary(self) -> str:
        status = ("release drafted" if self.release is not None
                  else f"steward input needed ({self.error})")
        return (f"{self.report.summary()}\n  → {status}")


class CollectionDriftMonitor:
    """Tails one collection's CDC log and drafts releases on drift.

    *declared_fields* are the **raw document fields** the wrapper's
    pipeline consumes (drift happens under the pipeline, in the source
    payloads); *id_fields* mark which observed fields can serve as
    identifiers in the drafted release. A truncated change log (cursor
    fell off the bounded window) degrades to screening the full
    collection — same answer, more documents read.
    """

    def __init__(self, ontology: BDIOntology, store: DocumentStore,
                 collection: str, source_name: str, wrapper_name: str,
                 declared_fields: Iterable[str],
                 id_fields: Iterable[str],
                 new_wrapper_name: str | None = None) -> None:
        self.ontology = ontology
        self.store = store
        self.collection = collection
        self.source_name = source_name
        self.wrapper_name = wrapper_name
        self.declared_fields = tuple(declared_fields)
        self.id_fields = tuple(id_fields)
        self._new_wrapper_name = new_wrapper_name
        self._serial = 0
        self._cursor = (store.get_collection(collection).data_version
                        if collection in store else 0)
        self._last_signature: object = None

    def _next_wrapper_name(self) -> str:
        if self._new_wrapper_name is not None:
            return self._new_wrapper_name
        self._serial += 1
        return f"{self.wrapper_name}_drift{self._serial}"

    def poll(self) -> DriftDraft | None:
        """Screen documents that changed since the last poll; returns a
        draft the first time a new drift signature shows up, None when
        the stream is quiet or the drift was already drafted."""
        if self.collection not in self.store:
            return None
        collection = self.store.get_collection(self.collection)
        records = collection.changes_since(self._cursor)
        documents: Sequence[dict]
        if records is None:
            # cursor truncated out of the log: screen everything
            documents = collection.find()
        elif not records:
            return None
        else:
            documents = [r.document for r in records
                         if r.op != "delete"]
        # the store's synthetic _id is bookkeeping, not payload schema
        documents = [{k: v for k, v in doc.items() if k != "_id"}
                     for doc in documents]
        self._cursor = collection.data_version
        if not documents:
            return None
        report = detect_drift(self.source_name, self.wrapper_name,
                              self.declared_fields, documents)
        if not report.has_drift:
            # payloads conform again; future drift should re-draft
            self._last_signature = None
            return None
        signature = (tuple(report.added), tuple(report.removed),
                     tuple((r.old_field, r.new_field)
                           for r in report.renames))
        if signature == self._last_signature:
            return None  # identical drift already drafted
        self._last_signature = signature
        new_name = self._next_wrapper_name()
        release: Release | None
        error: str | None
        try:
            release = propose_release(self.ontology, report, new_name,
                                      self.id_fields)
            error = None
        except EvolutionError as exc:
            release = None
            error = str(exc)
        return DriftDraft(
            source_name=self.source_name,
            wrapper_name=self.wrapper_name,
            new_wrapper_name=new_name,
            report=report,
            release=release,
            pending=tuple(report.pending_confirmations),
            error=error)
