"""Signed columnar deltas: the exchange format of incremental maintenance.

A full recompute answers "what is the result now?"; incremental
maintenance answers "how did the result change?". The unit of that
answer is a :class:`DeltaBatch` — a :class:`~repro.relational.columnar.
ColumnBatch` paired with a signed *op column*: row *i* of the batch
changes the multiplicity of that row by ``ops[i]`` (positive = insert,
negative = retract; an update travels as a retraction/assertion pair).
Standing-query operators (:mod:`repro.streaming.operators`) consume and
produce these batches, so O(Δ) refresh rides the same columnar layout
as the vectorized engine.

The package-wide kill switch mirrors the answer cache's: setting
``REPRO_INCREMENTAL=0`` makes the engine skip the patch path entirely
and fall back to evict-and-recompute (see
:func:`incremental_env_enabled`).
"""

from __future__ import annotations

import os
from typing import Iterator, Mapping, Sequence

from repro.errors import SchemaError
from repro.relational.columnar import ColumnBatch
from repro.relational.schema import RelationSchema

__all__ = ["DeltaBatch", "RowTuple", "incremental_env_enabled"]

#: One row as a value tuple aligned with a schema's attribute order —
#: the hashable currency of multiplicity counters and join indexes.
RowTuple = tuple[object, ...]


# repro-lint: disable=replay-determinism -- deployment kill switch read
# once at engine construction; it selects *whether* maintenance runs,
# never what a maintained result contains (patch == recompute either way).
def incremental_env_enabled() -> bool:
    """False when ``REPRO_INCREMENTAL=0`` — the operational kill switch
    for incremental answer maintenance (the engine then evicts and
    recomputes exactly as before the streaming layer existed)."""
    return os.environ.get("REPRO_INCREMENTAL", "1") != "0"


class DeltaBatch:
    """A columnar batch of signed multiplicity changes.

    ``ops`` aligns position-for-position with the batch's live rows:
    ``ops[i]`` is the (non-zero) change to the multiplicity of row *i*.
    Batches are immutable by the same convention as
    :class:`~repro.relational.columnar.ColumnBatch` — columns and the
    op list may be shared, never mutated.
    """

    __slots__ = ("batch", "ops")

    def __init__(self, batch: ColumnBatch, ops: Sequence[int]) -> None:
        if len(ops) != len(batch):
            raise SchemaError(
                f"delta for {batch.schema.name}: {len(batch)} rows but "
                f"{len(ops)} ops")
        self.batch = batch
        self.ops: tuple[int, ...] = tuple(ops)

    # -- constructors --------------------------------------------------------

    @classmethod
    def empty(cls, schema: RelationSchema) -> "DeltaBatch":
        return cls(ColumnBatch.empty(schema), ())

    @classmethod
    def from_tuples(cls, schema: RelationSchema,
                    rows: Sequence[RowTuple],
                    ops: Sequence[int]) -> "DeltaBatch":
        """Pivot row tuples (aligned with *schema*) into a delta."""
        width = len(schema.attributes)
        columns: list[list[object]] = [
            [row[i] for row in rows] for i in range(width)]
        return cls(ColumnBatch(schema, columns, _length=len(rows)), ops)

    @classmethod
    def from_counts(cls, schema: RelationSchema,
                    counts: Mapping[RowTuple, int]) -> "DeltaBatch":
        """Build a delta from a multiplicity-change counter; zero
        entries (changes that cancelled out) are dropped."""
        live = [(row, count) for row, count in counts.items() if count]
        return cls.from_tuples(schema, [row for row, _ in live],
                               [count for _, count in live])

    # -- shape ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.ops)

    @property
    def schema(self) -> RelationSchema:
        return self.batch.schema

    def change_count(self) -> int:
        """Total changed multiplicity ``Σ|op|`` — the delta volume the
        fallback valve weighs against a full recompute."""
        return sum(abs(op) for op in self.ops)

    def tuples(self) -> Iterator[tuple[RowTuple, int]]:
        """``(row tuple, signed count)`` pairs in batch order."""
        if not self.ops:
            return iter(())
        dense = self.batch.dense_columns()
        if not dense:  # zero-column schema: every row is ()
            return iter(((), op) for op in self.ops)
        return zip(zip(*dense), self.ops)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<DeltaBatch {self.schema.name}: {len(self)} changes, "
                f"|Δ|={self.change_count()}>")
