"""Standing queries: materialized answers maintained by O(Δ) refresh.

A :class:`StandingQuery` owns everything needed to keep one rewritten
query's answer current without re-running it: the incremental state
tree (:mod:`repro.streaming.operators`), a per-wrapper CDC cursor, the
maintained result bag, and the materialized
:class:`~repro.relational.rows.Relation` consumers read.

Refresh protocol, per wrapper feeding the plan:

1. if the wrapper's ``data_version`` token still matches the one the
   state reflects, the feed contributes nothing (common case: most
   ticks touch few sources);
2. otherwise ask for **exact deltas** since the stored cursor
   (:meth:`~repro.wrappers.base.Wrapper.fetch_deltas`);
3. a ``None`` answer (capability missing, cursor truncated out of the
   change log, payload regenerated wholesale) degrades to a
   **snapshot diff**: rescan the projected wrapper bag through the
   shared scan cache and bag-diff it against the leaf state — still a
   correct delta, just O(relation) to compute;
4. the **fallback valve**: when total delta volume exceeds
   ``max(min_delta_rows, max_delta_fraction × leaf rows)`` the query
   reseeds from scratch instead — at that churn rate propagating
   deltas costs more than recomputing, and reseeding also self-heals
   any state drift.

Version tokens are read *before* the data they describe (same
read-then-use discipline as the answer cache's evidence): if a source
mutates mid-read the state may be newer than its token, which only
makes the next refresh re-diff against an identical snapshot — never
serve stale rows.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.errors import SchemaError
from repro.relational.physical import ScanProvider
from repro.relational.rows import Relation
from repro.relational.schema import RelationSchema
from repro.streaming.deltas import DeltaBatch, RowTuple
from repro.streaming.operators import DeltaNode, ScanState, build_states
from repro.wrappers.base import Wrapper

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.query.planner import PhysicalPlan

__all__ = ["StandingQuery", "RefreshOutcome",
           "FALLBACK_MIN_DELTA_ROWS", "FALLBACK_DELTA_FRACTION"]

#: Below this absolute delta volume the valve never triggers — tiny
#: states would otherwise reseed on every refresh.
FALLBACK_MIN_DELTA_ROWS = 256

#: Reseed when the delta volume exceeds this fraction of the leaf rows.
FALLBACK_DELTA_FRACTION = 0.5

#: How a standing query resolves wrapper names to live wrappers —
#: usually ``ontology.physical_wrapper``.
WrapperResolver = Callable[[str], Wrapper]


@dataclass(frozen=True)
class RefreshOutcome:
    """What one seed/refresh did, for cache accounting and telemetry."""

    relation: Relation
    #: evidence in the answer cache's format: sorted (wrapper, token)
    data_versions: tuple[tuple[str, object], ...]
    #: True when O(Δ) maintenance served this refresh (incl. no-ops)
    patched: bool
    #: True when the state was rebuilt from full scans
    reseeded: bool
    delta_rows: int
    reason: str


class _ScanFeed:
    """One wrapper's CDC bookkeeping: cursor, version token, and the
    scan states (plan leaves) it feeds."""

    __slots__ = ("name", "states", "cursor", "version")

    def __init__(self, name: str) -> None:
        self.name = name
        self.states: list[ScanState] = []
        self.cursor: object = None
        self.version: object = None


class StandingQuery:
    """A maintained query result: seed once, then patch per refresh.

    Thread-safe: seed/refresh run under an internal lock; the
    materialized :attr:`relation` is replaced (never mutated), so
    readers holding an old snapshot — e.g. a paginating client — are
    unaffected by later refreshes.
    """

    def __init__(self, plan: "PhysicalPlan", resolve: WrapperResolver,
                 *, min_delta_rows: int = FALLBACK_MIN_DELTA_ROWS,
                 max_delta_fraction: float = FALLBACK_DELTA_FRACTION,
                 ) -> None:
        self.plan = plan
        self.resolve = resolve
        self.min_delta_rows = min_delta_rows
        self.max_delta_fraction = max_delta_fraction
        self.lock = threading.RLock()
        self.refreshes = 0  # guarded-by: lock
        self.patches = 0  # guarded-by: lock
        self.reseeds = 0  # guarded-by: lock
        self.root: DeltaNode
        self.scan_states: list[ScanState]
        self._feeds: dict[str, _ScanFeed]  # guarded-by: lock
        self.result: Counter[RowTuple]  # guarded-by: lock
        self.relation: Relation
        self.seeded = False  # guarded-by: lock
        self._build()

    # -- construction --------------------------------------------------------

    # repro-lint: disable=guarded-by -- called from __init__ (sole
    # reference) and from _reseed, whose callers hold the lock.
    def _build(self) -> None:
        """(Re)create the state tree empty; feeds group leaves by
        wrapper so each source's delta is fetched once per refresh."""
        self.root, self.scan_states = build_states(self.plan.root)
        feeds: dict[str, _ScanFeed] = {}
        for state in self.scan_states:
            feed = feeds.get(state.wrapper_name)
            if feed is None:
                feed = _ScanFeed(state.wrapper_name)
                feeds[state.wrapper_name] = feed
            feed.states.append(state)
        self._feeds = feeds
        self.result = Counter()
        self.relation = self._materialize()

    # -- views ---------------------------------------------------------------

    def data_versions(self) -> tuple[tuple[str, object], ...]:
        """The evidence tuple the answer cache stores: which data state
        the maintained result reflects."""
        with self.lock:
            return tuple(sorted((feed.name, feed.version)
                                for feed in self._feeds.values()))

    def state_rows(self) -> int:
        return self.root.state_rows()

    def snapshot(self) -> dict[str, int]:
        """Maintenance counters (standing-query observability).

        Takes the lock: a refresh bumps several counters and swaps the
        relation as one logical step, and a monitor must never see a
        half-applied mix (e.g. the new relation with the old counters).
        """
        with self.lock:
            return {"refreshes": self.refreshes,
                    "patches": self.patches,
                    "reseeds": self.reseeds,
                    "result_rows": len(self.relation),
                    "state_rows": self.root.state_rows()}

    # -- maintenance ---------------------------------------------------------

    def seed(self, provider: ScanProvider) -> RefreshOutcome:
        """Full scans through the (shared) provider → initial state."""
        with self.lock:
            self.refreshes += 1
            return self._reseed(provider, reason="initial seed")

    def refresh(self, provider: ScanProvider) -> RefreshOutcome:
        """Bring the maintained result up to date: O(Δ) when the
        wrappers can serve deltas, valve-guarded otherwise."""
        with self.lock:
            self.refreshes += 1
            if not self.seeded:
                return self._reseed(provider, reason="initial seed")

            pending: dict[ScanState, Counter[RowTuple]] = {}
            updates: dict[str, tuple[object, object]] = {}
            delta_rows = 0
            for feed in self._feeds.values():
                token = provider.data_version(feed.name)
                if token == feed.version:
                    continue
                wrapper = self.resolve(feed.name)
                deltas = (wrapper.fetch_deltas(feed.cursor)
                          if wrapper.supports_deltas() else None)
                if deltas is not None:
                    local_of = {f"{wrapper.source_name}/{a}": a
                                for a in wrapper.attributes}
                    for state in feed.states:
                        gather = self._local_names(state, local_of)
                        counts = pending.setdefault(state, Counter())
                        for sign, row in deltas.changes:
                            counts[tuple(row[name] for name in gather)
                                   ] += sign
                        delta_rows += len(deltas.changes)
                    updates[feed.name] = (deltas.cursor,
                                          deltas.data_version)
                else:
                    cursor, version, fresh = self._stable_rescan(
                        provider, wrapper, feed)
                    for state, new_rows in zip(feed.states, fresh):
                        diff = self._bag_diff(state.rows, new_rows)
                        delta_rows += sum(abs(c) for c in diff.values())
                        pending.setdefault(state, Counter()).update(diff)
                    updates[feed.name] = (cursor, version)

            if not updates:
                self.patches += 1
                return RefreshOutcome(
                    self.relation, self.data_versions(), patched=True,
                    reseeded=False, delta_rows=0, reason="no changes")

            threshold = max(self.min_delta_rows, int(
                self.max_delta_fraction * self.root.state_rows()))
            if delta_rows > threshold:
                return self._reseed(
                    provider,
                    reason=f"delta volume {delta_rows} exceeds "
                           f"threshold {threshold}")

            scan_deltas = {
                state: DeltaBatch.from_counts(state.schema, counts)
                for state, counts in pending.items()}
            out = self.root.apply(scan_deltas)
            changed = self._fold_result(out)
            for name, (cursor, version) in updates.items():
                feed = self._feeds[name]
                feed.cursor = cursor
                feed.version = version
            if changed:
                self.relation = self._materialize()
            self.patches += 1
            return RefreshOutcome(
                self.relation, self.data_versions(), patched=True,
                reseeded=False, delta_rows=delta_rows,
                reason="patched" if changed else "no-op delta")

    # -- internals -----------------------------------------------------------

    # repro-lint: disable=guarded-by -- sole callers are seed/refresh,
    # which hold the lock for the whole maintenance step.
    def _reseed(self, provider: ScanProvider,
                reason: str) -> RefreshOutcome:
        self._build()
        scan_deltas: dict[ScanState, DeltaBatch] = {}
        delta_rows = 0
        for feed in self._feeds.values():
            wrapper = self.resolve(feed.name)
            batches: list[DeltaBatch] = []
            # Stable-read loop: retry while the version token moves
            # under the scan, so cursor/token and rows agree.
            for _attempt in range(3):
                feed.cursor = wrapper.delta_cursor()
                feed.version = provider.data_version(feed.name)
                batches = [self._full_scan(provider, state)
                           for state in feed.states]
                if provider.data_version(feed.name) == feed.version:
                    break
            for state, batch in zip(feed.states, batches):
                scan_deltas[state] = batch
                delta_rows += len(batch)
        out = self.root.apply(scan_deltas)
        self._fold_result(out)
        self.relation = self._materialize()
        self.seeded = True
        self.reseeds += 1
        return RefreshOutcome(
            self.relation, self.data_versions(), patched=False,
            reseeded=True, delta_rows=delta_rows, reason=reason)

    def _full_scan(self, provider: ScanProvider,
                   state: ScanState) -> DeltaBatch:
        """A leaf's whole bag as an all-inserts delta (shares the scan
        cache with cold executions of the same plan)."""
        relation = provider.scan(state.wrapper_name, state.columns, None)
        batch = relation.columnar().reorder(state.schema.attribute_names)
        return DeltaBatch(batch, [1] * len(batch))

    def _stable_rescan(self, provider: ScanProvider, wrapper: Wrapper,
                       feed: _ScanFeed,
                       ) -> tuple[object, object,
                                  list[Counter[RowTuple]]]:
        """Snapshot-diff fallback input: fresh bags for every leaf of
        one wrapper, with cursor/token read under a stable-read loop."""
        cursor: object = None
        version: object = None
        fresh: list[Counter[RowTuple]] = []
        for _attempt in range(3):
            cursor = wrapper.delta_cursor()
            version = provider.data_version(feed.name)
            fresh = []
            for state in feed.states:
                relation = provider.scan(feed.name, state.columns, None)
                batch = relation.columnar().reorder(
                    state.schema.attribute_names)
                dense = batch.dense_columns()
                bag: Counter[RowTuple] = Counter()
                if dense:
                    for row in zip(*dense):
                        bag[row] += 1
                else:
                    bag[()] = len(batch)
                fresh.append(bag)
            if provider.data_version(feed.name) == version:
                break
        return cursor, version, fresh

    @staticmethod
    def _bag_diff(old: Counter[RowTuple],
                  new: Counter[RowTuple]) -> Counter[RowTuple]:
        diff: Counter[RowTuple] = Counter()
        for row, count in new.items():
            delta = count - old.get(row, 0)
            if delta:
                diff[row] = delta
        for row, count in old.items():
            if row not in new and count:
                diff[row] = -count
        return diff

    @staticmethod
    def _local_names(state: ScanState,
                     local_of: dict[str, str]) -> tuple[str, ...]:
        """Wrapper-local name of each tuple position of *state*."""
        try:
            return tuple(local_of[q]
                         for q in state.schema.attribute_names)
        except KeyError as exc:
            raise SchemaError(
                f"wrapper {state.wrapper_name} is missing attribute "
                f"{exc.args[0]!r}; the source likely evolved under the "
                "wrapper") from None

    # repro-lint: disable=guarded-by -- callers (refresh/_reseed) hold
    # the lock around the fold and the relation swap.
    def _fold_result(self, out: DeltaBatch) -> bool:
        changed = False
        for row, count in out.tuples():
            changed = True
            updated = self.result[row] + count
            if updated:
                self.result[row] = updated
            else:
                del self.result[row]
        return changed

    # repro-lint: disable=guarded-by -- called from __init__ via _build
    # (sole reference) and from maintenance steps that hold the lock.
    def _materialize(self) -> Relation:
        """The maintained bag as a Relation (same ``result`` schema as
        :meth:`~repro.query.planner.PhysicalPlan.execute`, so bag
        equality against a cold recompute holds structurally)."""
        schema = RelationSchema("result", self.root.schema.attributes)
        names = self.root.schema.attribute_names
        rows: list[dict[str, object]] = []
        for values, count in self.result.items():
            if count <= 0:  # retraction overshoot: never emit phantoms
                continue
            row = dict(zip(names, values))
            if count == 1:
                rows.append(row)
            else:
                # duplicates share the dict — results are immutable by
                # convention, same as union-all branch adoption
                rows.extend([row] * count)
        return Relation.from_trusted(schema, rows)
