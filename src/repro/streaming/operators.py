"""Incremental operator states mirroring a physical plan.

For every physical operator the planner emits
(:class:`~repro.relational.physical.PhysicalScan` /
:class:`~repro.relational.physical.PhysicalHashJoin` /
:class:`~repro.relational.physical.PhysicalProject` /
:class:`~repro.relational.physical.PhysicalUnion`) there is a *state*
node here that answers the incremental question: given a
:class:`~repro.streaming.deltas.DeltaBatch` of changes at the leaves,
what is the delta of this operator's output? The classic bilinear join
rule does the heavy lifting::

    Δ(B ⋈ P) = ΔB ⋈ P_old  ∪  B_new ⋈ ΔP

processed sequentially (apply ΔB to the build index between the two
half-joins) so the cross term ``ΔB ⋈ ΔP`` is counted exactly once.
Join index maps — the same ``key → rows`` tables the vectorized engine
builds per execution — are *kept alive* across refreshes, which is
precisely what makes a refresh O(Δ) instead of O(data).

All state lives in row-tuple space aligned with each node's plan
schema; multiplicities are :class:`collections.Counter` bags, so the
maintained result is bag-equal to a cold recompute by construction
(distinct is support counting: a row enters the output when its
support rises from 0 and leaves when it falls back to 0).

Semi-join pushdown is deliberately *not* mirrored: scan states hold the
full (projected) wrapper bag, because a row filtered out by today's
build keys may be joinable tomorrow — runtime ID filters are a fetch
optimization, never a semantic one, so dropping them keeps deltas exact.
"""

from __future__ import annotations

from collections import Counter
from typing import Mapping

from repro.errors import SchemaError
from repro.relational.physical import (
    PhysicalHashJoin, PhysicalOperator, PhysicalProject, PhysicalScan,
    PhysicalUnion,
)
from repro.relational.schema import RelationSchema
from repro.streaming.deltas import DeltaBatch, RowTuple

__all__ = [
    "DeltaNode", "ScanState", "JoinState", "ProjectState", "UnionState",
    "build_states",
]

#: Per-refresh leaf input: scan state → the delta of its wrapper bag.
#: Keyed by state identity (each plan leaf owns exactly one state).
ScanDeltas = Mapping["ScanState", DeltaBatch]


class DeltaNode:
    """Base class of incremental operator states."""

    schema: RelationSchema

    def apply(self, scan_deltas: ScanDeltas) -> DeltaBatch:
        """Pull child deltas, fold them into this node's state, and
        return the delta of this node's output."""
        raise NotImplementedError

    def state_rows(self) -> int:
        """Total multiplicity held at this subtree's leaves — the
        "size of the data" the fallback valve compares deltas against."""
        raise NotImplementedError


class ScanState(DeltaNode):
    """Leaf: the maintained bag of one wrapper scan.

    Tuples follow the plan's qualified attribute order
    (``schema.attribute_names``); ``columns`` is the pushed-down
    projection the standing query re-requests when it must rescan.
    """

    def __init__(self, scan: PhysicalScan) -> None:
        self.schema = scan.schema()
        self.wrapper_name = scan.wrapper_name
        self.columns = scan.columns
        self.rows: Counter[RowTuple] = Counter()
        self._size = 0  # running Σ|count|: the valve reads it per tick

    def apply(self, scan_deltas: ScanDeltas) -> DeltaBatch:
        delta = scan_deltas.get(self)
        if delta is None or not len(delta):
            return DeltaBatch.empty(self.schema)
        for row, count in delta.tuples():
            old = self.rows[row]
            updated = old + count
            self._size += abs(updated) - abs(old)
            if updated:
                self.rows[row] = updated
            else:
                del self.rows[row]
        return delta

    def state_rows(self) -> int:
        return self._size


class JoinState(DeltaNode):
    """Incremental hash equi-join with both index maps kept alive.

    ``build_index`` / ``probe_index`` map a join key to the bag of that
    side's rows carrying the key — the standing-query analogue of the
    table the vectorized join rebuilds from scratch every execution.
    Output tuples are ``build_tuple + probe_tuple``, matching
    :meth:`PhysicalHashJoin.schema`.
    """

    def __init__(self, op: PhysicalHashJoin, build: DeltaNode,
                 probe: DeltaNode) -> None:
        self.build = build
        self.probe = probe
        self.schema = op.schema()
        build_names = build.schema.attribute_names
        probe_names = probe.schema.attribute_names
        self._build_key = tuple(build_names.index(b)
                                for b, _ in op.conditions)
        self._probe_key = tuple(probe_names.index(p)
                                for _, p in op.conditions)
        self.build_index: dict[object, Counter[RowTuple]] = {}
        self.probe_index: dict[object, Counter[RowTuple]] = {}

    @staticmethod
    def _key(row: RowTuple, positions: tuple[int, ...]) -> object:
        if len(positions) == 1:
            return row[positions[0]]
        return tuple(row[i] for i in positions)

    @staticmethod
    def _fold(index: dict[object, Counter[RowTuple]], key: object,
              row: RowTuple, count: int) -> None:
        bucket = index.get(key)
        if bucket is None:
            bucket = Counter()
            index[key] = bucket
        updated = bucket[row] + count
        if updated:
            bucket[row] = updated
        else:
            del bucket[row]
            if not bucket:
                del index[key]

    def apply(self, scan_deltas: ScanDeltas) -> DeltaBatch:
        d_build = self.build.apply(scan_deltas)
        d_probe = self.probe.apply(scan_deltas)
        if not len(d_build) and not len(d_probe):
            return DeltaBatch.empty(self.schema)
        out: Counter[RowTuple] = Counter()
        # ΔB ⋈ P_old, then fold ΔB into the build index...
        for row, count in d_build.tuples():
            bucket = self.probe_index.get(self._key(row, self._build_key))
            if bucket:
                for other, multiplicity in bucket.items():
                    out[row + other] += count * multiplicity
        for row, count in d_build.tuples():
            self._fold(self.build_index,
                       self._key(row, self._build_key), row, count)
        # ...so B_new ⋈ ΔP picks up the ΔB⋈ΔP cross term exactly once.
        for row, count in d_probe.tuples():
            bucket = self.build_index.get(self._key(row, self._probe_key))
            if bucket:
                for other, multiplicity in bucket.items():
                    out[other + row] += count * multiplicity
        for row, count in d_probe.tuples():
            self._fold(self.probe_index,
                       self._key(row, self._probe_key), row, count)
        return DeltaBatch.from_counts(self.schema, out)

    def state_rows(self) -> int:
        return self.build.state_rows() + self.probe.state_rows()


class ProjectState(DeltaNode):
    """Incremental projection: a position gather per changed row;
    multiplicities of rows that collapse together simply add."""

    def __init__(self, op: PhysicalProject, child: DeltaNode) -> None:
        self.child = child
        self.schema = op.schema()
        child_names = child.schema.attribute_names
        self._positions = tuple(child_names.index(src)
                                for src in op.mapping.values())

    def apply(self, scan_deltas: ScanDeltas) -> DeltaBatch:
        delta = self.child.apply(scan_deltas)
        if not len(delta):
            return DeltaBatch.empty(self.schema)
        counts: Counter[RowTuple] = Counter()
        for row, count in delta.tuples():
            counts[tuple(row[i] for i in self._positions)] += count
        return DeltaBatch.from_counts(self.schema, counts)

    def state_rows(self) -> int:
        return self.child.state_rows()


class UnionState(DeltaNode):
    """Incremental union; ``distinct`` maintains a support counter and
    emits only the 0→positive (+1) and positive→0 (−1) transitions."""

    def __init__(self, op: PhysicalUnion,
                 branches: list[DeltaNode]) -> None:
        self.branches = branches
        self.schema = op.schema()
        self.distinct = op.distinct
        names = self.schema.attribute_names
        # Branch schemas are name-compatible but may order attributes
        # differently; align each branch's tuples to the union order.
        self._aligns: list[tuple[int, ...] | None] = []
        for branch in branches:
            branch_names = branch.schema.attribute_names
            self._aligns.append(
                None if branch_names == names
                else tuple(branch_names.index(n) for n in names))
        self.support: Counter[RowTuple] = Counter()

    def apply(self, scan_deltas: ScanDeltas) -> DeltaBatch:
        merged: Counter[RowTuple] = Counter()
        for branch, align in zip(self.branches, self._aligns):
            delta = branch.apply(scan_deltas)
            for row, count in delta.tuples():
                if align is not None:
                    row = tuple(row[i] for i in align)
                merged[row] += count
        if not self.distinct:
            return DeltaBatch.from_counts(self.schema, merged)
        out: Counter[RowTuple] = Counter()
        for row, count in merged.items():
            if not count:
                continue
            old = self.support[row]
            new = old + count
            if new:
                self.support[row] = new
            else:
                del self.support[row]
            if new > 0 and old <= 0:
                out[row] = 1
            elif new <= 0 and old > 0:
                out[row] = -1
        return DeltaBatch.from_counts(self.schema, out)

    def state_rows(self) -> int:
        return sum(branch.state_rows() for branch in self.branches)


def build_states(root: PhysicalOperator
                 ) -> tuple[DeltaNode, list[ScanState]]:
    """Lower a physical plan into its incremental state tree.

    Returns the root state plus every leaf :class:`ScanState` (the
    standing query groups leaves by wrapper to feed deltas in). Raises
    :class:`~repro.errors.SchemaError` for operators with no
    incremental form — the engine then falls back to recompute.
    """
    scans: list[ScanState] = []

    def lower(node: PhysicalOperator) -> DeltaNode:
        if isinstance(node, PhysicalScan):
            state = ScanState(node)
            scans.append(state)
            return state
        if isinstance(node, PhysicalHashJoin):
            return JoinState(node, lower(node.build), lower(node.probe))
        if isinstance(node, PhysicalProject):
            return ProjectState(node, lower(node.child))
        if isinstance(node, PhysicalUnion):
            return UnionState(node, [lower(b) for b in node.branches])
        raise SchemaError(
            f"operator {type(node).__name__} has no incremental form")

    return lower(root), scans
