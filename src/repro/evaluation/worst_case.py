"""Worst-case rewriting complexity study (paper §5.3, Figure 8).

The worst case for query answering arises when, for a query navigating
``C`` concepts, every concept is served by ``W`` wrappers that are
pairwise disjoint (each from its own source): phase 3 then generates all
``W^C`` combinations. This module builds exactly that artificial
ontology, the query navigating the concept chain, and the timing sweep:

* concepts ``c1 → c2 → ... → cC`` (one object property each);
* per concept: an ID feature and one value feature;
* per concept, ``W`` wrappers from ``W`` distinct sources, each
  providing the concept's features *plus* the outgoing edge and the next
  concept's ID (the foreign-key shape of event sources).

:func:`run_sweep` measures rewriting time per ``W`` and fits the
theoretical ``t ≈ k·W^C`` curve (the thin line of Figure 8).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.ontology import BDIOntology
from repro.core.release import Release, new_release
from repro.query.rewriter import RewritingResult, rewrite
from repro.rdf.graph import Graph
from repro.rdf.namespace import Namespace, G as G_NS
from repro.rdf.term import IRI
from repro.query.omq import OMQ
from repro.wrappers.base import StaticWrapper

__all__ = ["WorstCaseSetup", "build_worst_case", "worst_case_query",
           "SweepPoint", "run_sweep", "fit_constant", "ascii_plot"]

WC = Namespace("urn:worstcase:")


@dataclass
class WorstCaseSetup:
    """The artificial ontology plus its parameters."""

    ontology: BDIOntology
    concepts: int
    wrappers_per_concept: int
    query: OMQ


def build_worst_case(concepts: int = 5,
                     wrappers_per_concept: int = 2,
                     rows_per_wrapper: int = 0) -> WorstCaseSetup:
    """Build the §5.3 experiment ontology.

    *rows_per_wrapper* > 0 additionally binds physical wrappers with that
    many rows each, so execution (not only rewriting) can be measured.
    """
    ontology = BDIOntology()

    concept_iris = [WC[f"c{i}"] for i in range(1, concepts + 1)]
    for index, concept in enumerate(concept_iris, start=1):
        ontology.globals.add_concept(concept)
        ontology.globals.add_feature(concept, WC[f"c{index}/id"],
                                     is_id=True)
        ontology.globals.add_feature(concept, WC[f"c{index}/val"])
    for index in range(1, concepts):
        ontology.globals.add_property(
            concept_iris[index - 1], WC[f"next{index}"],
            concept_iris[index])

    for index in range(1, concepts + 1):
        concept = concept_iris[index - 1]
        has_next = index < concepts
        for jndex in range(1, wrappers_per_concept + 1):
            source = f"S{index}_{jndex}"
            wrapper_name = f"w{index}_{jndex}"
            subgraph = Graph()
            subgraph.add((concept, G_NS.hasFeature, WC[f"c{index}/id"]))
            subgraph.add((concept, G_NS.hasFeature, WC[f"c{index}/val"]))
            ids = ["id"]
            non_ids = ["val"]
            mapping: dict[str, IRI] = {
                "id": WC[f"c{index}/id"],
                "val": WC[f"c{index}/val"],
            }
            if has_next:
                next_concept = concept_iris[index]
                subgraph.add((concept, WC[f"next{index}"], next_concept))
                subgraph.add((next_concept, G_NS.hasFeature,
                              WC[f"c{index + 1}/id"]))
                ids.append("next_id")
                mapping["next_id"] = WC[f"c{index + 1}/id"]
            release = Release(
                wrapper_name=wrapper_name,
                source_name=source,
                id_attributes=tuple(ids),
                non_id_attributes=tuple(non_ids),
                subgraph=subgraph,
                attribute_to_feature=mapping,
            )
            if rows_per_wrapper > 0:
                rows = []
                for r in range(rows_per_wrapper):
                    row: dict[str, object] = {
                        "id": r, "val": f"v{index}.{jndex}.{r}"}
                    if has_next:
                        row["next_id"] = r
                    rows.append(row)
                release.wrapper = StaticWrapper(
                    wrapper_name, source, ids, non_ids, rows)
            new_release(ontology, release)

    return WorstCaseSetup(
        ontology=ontology,
        concepts=concepts,
        wrappers_per_concept=wrappers_per_concept,
        query=worst_case_query(concepts),
    )


def worst_case_query(concepts: int) -> OMQ:
    """The query navigating the whole chain, projecting every value."""
    phi = Graph()
    pi = []
    for index in range(1, concepts + 1):
        phi.add((WC[f"c{index}"], G_NS.hasFeature, WC[f"c{index}/val"]))
        pi.append(WC[f"c{index}/val"])
    for index in range(1, concepts):
        phi.add((WC[f"c{index}"], WC[f"next{index}"], WC[f"c{index + 1}"]))
    return OMQ(pi=pi, phi=phi)


@dataclass
class SweepPoint:
    """One measurement of the Figure 8 sweep."""

    wrappers_per_concept: int
    concepts: int
    seconds: float
    walks: int

    @property
    def expected_walks(self) -> int:
        return self.wrappers_per_concept ** self.concepts


def run_sweep(concepts: int = 5, max_wrappers: int = 8,
              repeat: int = 1) -> list[SweepPoint]:
    """Measure rewriting time for W = 1..max_wrappers (Figure 8's x-axis).

    The paper sweeps to 25 on a JVM; pure Python pays a constant factor,
    so the default stops at 8 (8^5 ≈ 33k walks). Benchmarks can extend
    the sweep through an environment variable.
    """
    points: list[SweepPoint] = []
    for wrappers in range(1, max_wrappers + 1):
        setup = build_worst_case(concepts, wrappers)
        best = float("inf")
        walks = 0
        for _ in range(max(1, repeat)):
            start = time.perf_counter()
            result: RewritingResult = rewrite(setup.ontology, setup.query)
            elapsed = time.perf_counter() - start
            best = min(best, elapsed)
            walks = len(result.walks)
        points.append(SweepPoint(wrappers, concepts, best, walks))
    return points


def fit_constant(points: list[SweepPoint]) -> float:
    """Least-squares fit of ``k`` in ``t ≈ k·W^C`` (the thin line)."""
    numerator = 0.0
    denominator = 0.0
    for point in points:
        x = float(point.expected_walks)
        numerator += x * point.seconds
        denominator += x * x
    return numerator / denominator if denominator else 0.0


def ascii_plot(points: list[SweepPoint], width: int = 48) -> str:
    """Observed (thick, ``#``) vs theoretical (thin, ``·``) bars."""
    if not points:
        return "(no points)"
    k = fit_constant(points)
    peak = max(max(p.seconds for p in points),
               max(k * p.expected_walks for p in points)) or 1.0
    lines = [
        f"{'W':>3} | observed vs theoretical (k·W^C, k={k:.3e})",
        "-" * (width + 30),
    ]
    for point in points:
        obs = max(1, round(width * point.seconds / peak))
        theo = max(1, round(width * k * point.expected_walks / peak))
        lines.append(f"{point.wrappers_per_concept:>3} | "
                     f"{'#' * obs:<{width}} {point.seconds * 1e3:9.2f} ms"
                     f"  ({point.walks} walks)")
        lines.append(f"{'':>3} | {'·' * theo:<{width}} "
                     f"{k * point.expected_walks * 1e3:9.2f} ms")
    return "\n".join(lines)
