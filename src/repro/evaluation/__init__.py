"""Evaluation harness pieces shared by the benchmarks (paper §5.3, §6)."""

from repro.evaluation.worst_case import (
    SweepPoint, WorstCaseSetup, ascii_plot, build_worst_case,
    fit_constant, run_sweep, worst_case_query,
)

__all__ = [
    "SweepPoint", "WorstCaseSetup", "ascii_plot", "build_worst_case",
    "fit_constant", "run_sweep", "worst_case_query",
]
