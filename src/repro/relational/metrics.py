"""Runtime plan metrics: per-operator rows and wall-time.

Every physical operator (:mod:`repro.relational.physical`) wraps its
execution in the thread's active :class:`MetricsCollector`, producing a
:class:`PlanMetrics` tree that mirrors the plan shape — one node per
operator with rows-in (sum of the children's outputs), rows-out, and
elapsed seconds. The tree feeds three consumers:

* ``PhysicalPlan.explain(analyze=True)`` renders it inline with the
  plan notation;
* :func:`repro.mdm.analyst.describe_service` / ``GET /v1/describe``
  surface the last run's scan timings so a fleet operator can spot a
  slow wrapper without a profiler;
* the adaptive planner (:mod:`repro.query.planner`) feeds observed
  scan/join cardinalities back into its estimates.

Determinism note: this module is import-reachable from the streaming
replay path, so it never reads a clock itself — the party that starts a
collection (the planner, which is *not* replay-reachable) injects one.
Replayed streaming work simply runs with no active collector, making
metrics a strict no-op there.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

__all__ = ["PlanMetrics", "MetricsCollector", "active_collector",
           "collecting", "scan_timings"]


@dataclass
class PlanMetrics:
    """One operator's observed behaviour in one plan execution.

    ``children`` mirror the plan tree (build before probe, branches in
    order), so the tree can be rendered alongside ``explain`` output or
    walked for per-wrapper aggregates.
    """

    kind: str
    label: str
    rows_out: int = 0
    seconds: float = 0.0
    detail: dict[str, object] = field(default_factory=dict)
    children: list["PlanMetrics"] = field(default_factory=list)
    failed: bool = False

    @property
    def rows_in(self) -> int:
        """Input cardinality: the children's combined output (a leaf
        consumes what it produces)."""
        if not self.children:
            return self.rows_out
        return sum(child.rows_out for child in self.children)

    def walk(self) -> Iterator["PlanMetrics"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def snapshot(self) -> dict[str, object]:
        """JSON-ready nested dict (the gateway/describe payload)."""
        node: dict[str, object] = {
            "operator": self.label,
            "kind": self.kind,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "seconds": round(self.seconds, 6),
        }
        if self.detail:
            node["detail"] = dict(self.detail)
        if self.failed:
            node["failed"] = True
        if self.children:
            node["children"] = [c.snapshot() for c in self.children]
        return node

    def lines(self, indent: int = 0) -> list[str]:
        """Indented text rendering for ``explain(analyze=True)``."""
        pad = "  " * indent
        ms = self.seconds * 1000.0
        status = " FAILED" if self.failed else ""
        out = [f"{pad}{self.label}  rows={self.rows_out} "
               f"(in {self.rows_in})  {ms:.2f} ms{status}"]
        for child in self.children:
            out.extend(child.lines(indent + 1))
        return out

    def notation(self) -> str:
        return "\n".join(self.lines())


class MetricsCollector:
    """Builds one :class:`PlanMetrics` tree while a plan executes.

    A collector belongs to one plan execution on one thread (operators
    find it through the thread-local :func:`active_collector`). The
    *clock* is injected — ``time.perf_counter`` where timing matters,
    a constant where determinism does (see the module docstring).

    Operators may re-enter their own frame (the encoded tier defaults
    chain ``execute_encoded → execute_batch`` on the same node); the
    collector collapses such re-entrant calls into the outer frame so
    the tree stays one-node-per-operator.
    """

    def __init__(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        self._stack: list[PlanMetrics] = []
        self._starts: list[float] = []
        self._operators: list[object] = []
        #: completed root of the collection (None until the outermost
        #: frame exits)
        self.root: PlanMetrics | None = None

    def enter(self, operator: object, kind: str, label: str,
              detail: dict[str, object] | None = None
              ) -> PlanMetrics | None:
        """Open a frame for *operator*; ``None`` when re-entrant."""
        if self._operators and self._operators[-1] is operator:
            return None
        node = PlanMetrics(kind=kind, label=label,
                           detail=detail if detail is not None else {})
        if self._stack:
            self._stack[-1].children.append(node)
        self._stack.append(node)
        self._operators.append(operator)
        self._starts.append(self._clock())
        return node

    def exit(self, frame: PlanMetrics | None, rows_out: int) -> None:
        if frame is None:
            return
        self._stack.pop()
        self._operators.pop()
        frame.seconds = self._clock() - self._starts.pop()
        frame.rows_out = rows_out
        if not self._stack:
            self.root = frame

    def abort(self, frame: PlanMetrics | None) -> None:
        """Close a frame whose execution raised; the partial node stays
        in the tree, flagged, so a failed run still explains itself."""
        if frame is None:
            return
        self._stack.pop()
        self._operators.pop()
        frame.seconds = self._clock() - self._starts.pop()
        frame.failed = True
        if not self._stack:
            self.root = frame


_ACTIVE = threading.local()


def active_collector() -> MetricsCollector | None:
    """The collector of the current thread's in-flight plan, if any."""
    return getattr(_ACTIVE, "collector", None)


@contextmanager
def collecting(collector: MetricsCollector | None,
               ) -> Iterator[MetricsCollector | None]:
    """Install *collector* as the thread's active one for the block.

    ``None`` disables collection for the block (used to shield nested
    executions from an outer collection). The previous collector is
    restored on exit, so collections nest correctly.
    """
    previous = active_collector()
    _ACTIVE.collector = collector
    try:
        yield collector
    finally:
        _ACTIVE.collector = previous


def scan_timings(root: PlanMetrics | None
                 ) -> dict[str, dict[str, float]]:
    """Per-wrapper scan aggregates of one metrics tree.

    The describe surface: ``{wrapper: {scans, rows, seconds,
    filtered}}`` — enough to rank wrappers by observed scan cost.
    The counter slots hold ints at runtime; ``float`` is the
    common static type.
    """
    out: dict[str, dict[str, float]] = {}
    if root is None:
        return out
    for node in root.walk():
        if node.kind != "scan":
            continue
        wrapper = str(node.detail.get("wrapper", node.label))
        entry = out.setdefault(wrapper, {
            "scans": 0, "rows": 0, "seconds": 0.0, "filtered": 0})
        entry["scans"] = int(entry["scans"]) + 1
        entry["rows"] = int(entry["rows"]) + node.rows_out
        entry["seconds"] = round(
            float(entry["seconds"]) + node.seconds, 6)
        if node.detail.get("filtered"):
            entry["filtered"] = int(entry["filtered"]) + 1
    return out
