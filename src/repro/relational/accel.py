"""Optional numpy kernels for the encoded execution tier.

The encoded tier (``physical.FusedBatch`` and the int-coded hash join)
runs on plain Python lists by design — the reproduction carries no
hard third-party dependency. When numpy happens to be importable,
though, its int64 vector ops implement the exact same kernels one to
two orders of magnitude faster: gather (``np.take``), code
translation (fancy indexing), CSR-shaped join probes
(``bincount``/``argsort``/``repeat``) and first-occurrence dedup over
packed code lanes (``np.unique``).

This module is that seam. It exposes the *accelerated* kernels plus
:func:`available`; every call site keeps its pure-Python fallback and
consults ``available()`` first, so the engine is byte-for-byte
deterministic with and without numpy — the kernels were written to
preserve the fallback's output ordering exactly (probe-major match
order, ascending build rows within a bucket, first-occurrence keep
lists in row order). Tests pin both paths by monkeypatching
:data:`numpy` to ``None``.

The import is resolved dynamically (``importlib``) so type checking
of this repository never depends on numpy being installed.
"""

from __future__ import annotations

import importlib
from typing import Any, Sequence

__all__ = ["available", "csr_probe", "first_occurrence_keep",
           "index_array", "is_array", "numpy", "take",
           "translate_codes", "unique_codes"]

try:  # pragma: no cover - exercised implicitly by every accel test
    numpy: Any = importlib.import_module("numpy")
except ImportError:  # pragma: no cover - numpy-less environments
    numpy = None

#: dtype for every index/code vector; cardinalities are bounded by
#: relation sizes, so packed multi-lane keys stay far below 2**63
#: (the packer still guards the radix product).
_PACK_LIMIT = 1 << 62


def available() -> bool:
    """True when the numpy kernels can be used (patchable in tests)."""
    return numpy is not None


def is_array(value: object) -> bool:
    """True when *value* is a numpy array (an accelerated lane)."""
    return numpy is not None and isinstance(value, numpy.ndarray)


def index_array(values: Sequence[int]) -> Any:
    """*values* as an int64 vector (no copy when already one)."""
    return numpy.asarray(values, dtype=numpy.int64)


def take(source: Any, picks: Any) -> Any:
    """``[source[i] for i in picks]`` as an int64 vector."""
    return numpy.take(index_array(source), index_array(picks))


def translate_codes(table: Sequence[int], codes: Any) -> Any:
    """Map *codes* through a dense translation *table* (``-1`` rows
    pass through as ``-1`` misses)."""
    return index_array(table)[index_array(codes)]


def unique_codes(codes: Any) -> list[int]:
    """Sorted distinct codes of a lane, as Python ints."""
    return numpy.unique(index_array(codes)).tolist()


def csr_probe(build_codes: Any, probe_codes: Any,
              cardinality: int) -> "tuple[Any, Any] | None":
    """Vectorized hash-join probe over a shared code space.

    *build_codes* and *probe_codes* are int64 lanes in the same code
    space (``-1`` = no match possible for that row). Returns
    ``(build_sel, probe_sel)`` match vectors ordered exactly like the
    pure-Python bucket loop: probe-major, build rows ascending within
    each bucket. ``None`` when there are no matches.
    """
    np = numpy
    build = index_array(build_codes)
    probe = index_array(probe_codes)
    valid = build >= 0
    if not valid.all():
        build = np.where(valid, build, cardinality)
        counts = np.bincount(build, minlength=cardinality + 1)
        counts = counts[:cardinality]
    else:
        counts = np.bincount(build, minlength=cardinality)
    # Stable grouping of build rows by code: rows ascending within
    # each code's segment, misses (mapped to `cardinality`) at the
    # tail, past every real segment.
    order = np.argsort(build, kind="stable")
    offsets = np.zeros(cardinality, dtype=np.int64)
    if cardinality > 1:
        offsets[1:] = np.cumsum(counts[:-1])
    probe_ok = probe >= 0
    safe_probe = np.where(probe_ok, probe, 0)
    lengths = np.where(probe_ok, counts[safe_probe], 0)
    total = int(lengths.sum())
    if total == 0:
        return None
    probe_sel = np.repeat(np.arange(len(probe), dtype=np.int64),
                          lengths)
    starts = offsets[safe_probe]
    ends = np.cumsum(lengths)
    within = np.arange(total, dtype=np.int64) \
        - np.repeat(ends - lengths, lengths)
    build_sel = order[np.repeat(starts, lengths) + within]
    return build_sel, probe_sel


def first_occurrence_keep(lanes: Sequence[Any]) -> "list[int] | None":
    """First-occurrence keep list over parallel int64 code lanes.

    Lanes pack into one int64 key per row (radix = each lane's code
    range); ``np.unique(..., return_index=True)`` yields each key's
    first row. Returns the keep list in row order, ``None`` when every
    row is already unique — mirroring the pure-Python zip dedup.
    Lanes must be non-negative int codes. When the radix product would
    overflow int64, the lanes dedup row-wise instead
    (``np.unique(..., axis=0)``) — same result, lexsort instead of a
    scalar sort.
    """
    np = numpy
    arrays = [index_array(lane) for lane in lanes]
    rows = int(arrays[0].shape[0])
    if rows == 0:
        return None
    packed = arrays[0]
    span = int(packed.max()) + 1 if rows else 1
    for lane in arrays[1:]:
        radix = int(lane.max()) + 1
        if span * radix > _PACK_LIMIT:
            stacked = np.stack(arrays, axis=1)
            _, first = np.unique(stacked, axis=0, return_index=True)
            break
        packed = packed * radix + lane
        span *= radix
    else:
        _, first = np.unique(packed, return_index=True)
    if first.shape[0] == rows:
        return None
    first.sort()
    return first.tolist()
