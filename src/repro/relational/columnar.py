"""Columnar batches: the vectorized exchange format of the physical layer.

The row engine (PR 3) moves data as per-row dicts — every join match
copies a dict, every projection rebuilds one, every dedup key runs an
itemgetter per row. A :class:`ColumnBatch` turns that inside out: one
Python list per column, plus an optional **selection vector** of live
row indices, so operators work on whole columns at a time:

* a hash join zips the key columns once, joins index lists, and gathers
  each output column in a single ``map(column.__getitem__, indices)``
  pass — no per-match dict merging;
* a projection is a column *rename*: the underlying lists are shared,
  nothing is copied;
* dedup zips the value columns into tuples and keeps first occurrences
  with one set — no per-row itemgetter calls.

Batches cross back into row land exactly once, at the plan boundary
(:meth:`to_relation`), so :class:`~repro.relational.rows.Relation`,
the wrappers and the protocol envelopes are untouched on the outside.

Batches are **immutable by convention**: columns may be shared between
batches (projections alias their child's lists) and with the
:class:`~repro.relational.rows.Relation` they were converted from via
:meth:`Relation.columnar <repro.relational.rows.Relation.columnar>`'s
memo — never mutate a column list you did not build yourself. The
row-value accessors (:meth:`ColumnBatch.column` /
:meth:`ColumnBatch.column_at`) return defensive copies for exactly that
reason; operators on the hot path use the explicitly shared
:meth:`ColumnBatch.raw_column_at` / :meth:`ColumnBatch.dense_columns`
views instead.

The **encoded tier** (PR 10) lives here too: an :class:`EncodedColumn`
is a column's dictionary encoding — one small-int code per stored row
plus the code → value dictionary — built lazily per column and memoized
on the batch (the memo travels with zero-copy renames, so a scan shared
through the scan cache encodes each column at most once per fetch).
Join keys, ID filters and DISTINCT then operate on dense ints instead
of tuples of arbitrary objects; columns that would not pay for
themselves (near-unique values) or cannot encode (unhashable values)
fall back to the raw lists, signalled by ``None``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

from repro.errors import SchemaError
from repro.relational import accel
from repro.relational.schema import Attribute, RelationSchema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.relational.rows import Relation

__all__ = ["ColumnBatch", "EncodedColumn", "concat_batches",
           "encode_values"]

#: columns at least this long are subject to the high-cardinality
#: fallback check; shorter ones always encode (the dictionary is tiny)
ENCODE_MIN_ROWS = 64

#: fallback threshold: encoding aborts once the dictionary exceeds this
#: fraction of the stored rows — a near-unique column gains nothing
#: from int codes and would pay dictionary upkeep on every operation
ENCODE_MAX_DISTINCT_FRACTION = 0.5


class EncodedColumn:
    """The dictionary encoding of one stored column.

    ``codes[i]`` is the small-int code of stored row *i*'s value;
    ``values[code]`` decodes it; ``index`` is the reverse mapping used
    to translate foreign values (or a foreign dictionary) into this
    code space. Codes are dense (``0 .. len(values) - 1``), assigned by
    first occurrence, and two values that compare equal (``1`` and
    ``1.0``) share one code — exactly the equality joins and DISTINCT
    use, so operating on codes is operating on values.

    Instances are immutable by convention and shared between every
    consumer of the memoizing batch — never mutate them.
    """

    __slots__ = ("codes", "values", "index", "_vector")

    def __init__(self, codes: "list[int] | Any", values: list[object],
                 index: dict[object, int]) -> None:
        self.codes = codes
        self.values = values
        self.index = index
        self._vector: Any = None

    def __len__(self) -> int:
        return len(self.codes)

    def codes_vector(self) -> Any:
        """The stored codes as an int64 numpy vector, memoized.

        Only meaningful when :func:`repro.relational.accel.available`
        — callers on the accelerated path gather and dedup on this
        vector instead of the Python list."""
        if self._vector is None:
            self._vector = accel.index_array(self.codes)
        return self._vector

    @property
    def cardinality(self) -> int:
        return len(self.values)

    def remap_onto(self, other: "EncodedColumn") -> list[int]:
        """Translate *this* code space onto *other*'s.

        Returns ``translate`` with ``translate[code] =`` the matching
        code in *other*, or ``-1`` when the value does not occur there —
        the cross-dictionary bridge an int-coded join uses when its two
        sides were encoded independently. Costs one hash lookup per
        *distinct* value instead of one per row.
        """
        get = other.index.get
        return [get(value, -1) for value in self.values]

    def select(self, selection: "list[int] | None") -> "list[int] | Any":
        """The live codes under *selection* (the shared list — or, for
        an installed accelerated lane, vector — when ``None``; treat it
        as read-only)."""
        if selection is None:
            return self.codes
        return list(map(self.codes.__getitem__, selection))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<EncodedColumn {len(self.codes)} rows, "
                f"{len(self.values)} distinct>")


def encode_values(column: Sequence[object]) -> EncodedColumn | None:
    """Dictionary-encode *column*, or ``None`` when encoding won't pay.

    Fallback cases: a value is unhashable (codes require a dict), or
    the column is long (``>= ENCODE_MIN_ROWS``) and near-unique — the
    dictionary would grow past ``ENCODE_MAX_DISTINCT_FRACTION`` of the
    rows, checked *during* the build so a doomed encode aborts early.
    """
    stored = len(column)
    limit = (int(stored * ENCODE_MAX_DISTINCT_FRACTION)
             if stored >= ENCODE_MIN_ROWS else stored)
    index: dict[object, int] = {}
    values: list[object] = []
    codes: list[int] = []
    append_code = codes.append
    append_value = values.append
    setdefault = index.setdefault
    try:
        for value in column:
            code = setdefault(value, len(values))
            if code == len(values):
                if code > limit:
                    return None  # high cardinality: not worth encoding
                append_value(value)
            append_code(code)
    except TypeError:
        return None  # unhashable value (dict/list cell): raw fallback
    return EncodedColumn(codes, values, index)


class ColumnBatch:
    """A batch of rows stored column-wise.

    ``columns`` aligns position-for-position with
    ``schema.attributes``. ``selection`` is either ``None`` (every
    stored row is live) or a list of indices into the columns — the
    standard vectorized-execution trick for filters: dropping rows
    costs one index list, not one copy per surviving column.
    """

    __slots__ = ("schema", "columns", "selection", "_length",
                 "_encodings")

    def __init__(self, schema: RelationSchema,
                 columns: Sequence[list[object]],
                 selection: list[int] | None = None,
                 _length: int | None = None,
                 _encodings: "dict[int, EncodedColumn | None] | None"
                 = None) -> None:
        if len(columns) != len(schema.attributes):
            raise SchemaError(
                f"batch for {schema.name} expects "
                f"{len(schema.attributes)} columns, got {len(columns)}")
        self.schema = schema
        self.columns = tuple(columns)
        self.selection = selection
        #: lazily built dictionary encodings, keyed by ``id(column)``.
        #: The dict object is *shared* with every batch derived through
        #: a zero-copy aliasing op (rename/reorder/select), so an
        #: encoding built once — e.g. on the scan batch memoized on its
        #: Relation — serves every later view of the same column list.
        #: Safe because aliasing ops never allocate column lists: every
        #: id in the dict belongs to a list kept alive by a sharing
        #: batch. ``None`` records a deliberate fallback (unhashable or
        #: high-cardinality column) so it is not retried.
        self._encodings: "dict[int, EncodedColumn | None]" = \
            _encodings if _encodings is not None else {}
        if _length is not None:
            stored = _length
        else:
            stored = len(columns[0]) if columns else 0
        for column in self.columns:
            if len(column) != stored:
                raise SchemaError(
                    f"ragged batch for {schema.name}: column lengths "
                    f"{[len(c) for c in self.columns]}")
        self._length = (len(selection) if selection is not None
                        else stored)

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_rows(cls, schema: RelationSchema,
                  rows: Sequence[Mapping[str, object]]) -> "ColumnBatch":
        """Pivot row dicts into columns (the row→batch adapter)."""
        names = schema.attribute_names
        return cls(schema,
                   [[row[name] for row in rows] for name in names],
                   _length=len(rows))

    @classmethod
    def from_relation(cls, relation: "Relation") -> "ColumnBatch":
        """The batch view of a relation, memoized on the relation.

        Shared scans hitting one cached
        :class:`~repro.relational.rows.Relation` pivot to columns once;
        every later consumer reuses the same (immutable) column lists.
        """
        return relation.columnar()

    @classmethod
    def empty(cls, schema: RelationSchema) -> "ColumnBatch":
        return cls(schema, [[] for _ in schema.attributes], _length=0)

    # -- shape ---------------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return self.schema.attribute_names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sel = (f" selection={len(self.selection)}"
               if self.selection is not None else "")
        return (f"<ColumnBatch {self.schema.name}: {len(self)} rows × "
                f"{len(self.columns)} cols{sel}>")

    # -- column access -------------------------------------------------------

    def _index_of(self, name: str) -> int:
        try:
            return self.schema.attribute_names.index(name)
        except ValueError:
            raise SchemaError(
                f"{self.schema.name} has no attribute {name!r}") from None

    def column(self, name: str) -> list[object]:
        """The live values of one column (selection applied).

        Always a fresh list the caller owns — mutating it can never
        corrupt a batch (or the memoized relation pivot) sharing the
        underlying column.
        """
        return self.column_at(self._index_of(name))

    def column_at(self, index: int) -> list[object]:
        """Defensive copy of the live values at column *index*.

        Returning the underlying list when ``selection is None`` let
        callers corrupt columns shared with memoized relations; use
        :meth:`raw_column_at` where the (documented read-only) shared
        view is wanted on a hot path.
        """
        column = self.columns[index]
        if self.selection is None:
            return list(column)
        return list(map(column.__getitem__, self.selection))

    def raw_column(self, name: str) -> list[object]:
        """The live values of one column — **shared, read-only**."""
        return self.raw_column_at(self._index_of(name))

    def raw_column_at(self, index: int) -> list[object]:
        """Live values at column *index* without a defensive copy.

        When the batch is dense this is the *underlying* column list —
        shared with every aliasing batch and possibly a memoized
        relation pivot. Callers must treat it as immutable; operators
        use it to avoid a copy per join key / gather source.
        """
        column = self.columns[index]
        if self.selection is None:
            return column
        return list(map(column.__getitem__, self.selection))

    def dense_columns(self) -> tuple[list[object], ...]:
        """Every column with the selection applied (compacted).

        Like :meth:`raw_column_at`, dense results share the underlying
        column lists — treat them as read-only.
        """
        if self.selection is None:
            return self.columns
        getters = self.selection
        return tuple(list(map(column.__getitem__, getters))
                     for column in self.columns)

    # -- dictionary encoding -------------------------------------------------

    def encoded(self, name: str) -> EncodedColumn | None:
        """The dictionary encoding of column *name*, or ``None``.

        Codes cover the **stored** rows — apply
        :attr:`selection` (``EncodedColumn.select(batch.selection)``)
        to read live rows. Built lazily and memoized in a dict shared
        across zero-copy views of the same columns, so the scan batch
        cached on a Relation encodes each column at most once no matter
        how many queries join through it. ``None`` means the column
        fell back (unhashable values or high cardinality) — callers
        use the raw lists instead.
        """
        return self.encoded_at(self._index_of(name))

    def encoded_at(self, index: int) -> EncodedColumn | None:
        column = self.columns[index]
        # Identity keys the process-local memo only; codes/values never
        # depend on it, so replayed state stays byte-deterministic.
        key = id(column)  # repro-lint: disable=replay-determinism -- process-local memo key, never serialized
        memo = self._encodings
        if key in memo:
            return memo[key]
        encoded = encode_values(column)
        memo[key] = encoded
        return encoded

    def install_encoding(self, index: int,
                         encoded: EncodedColumn | None) -> None:
        """Pre-seed the encoding memo for column *index*.

        Producers that already hold codes for a freshly gathered column
        (the fused projection gathers codes and decodes them) install
        the result so DISTINCT and downstream joins reuse it instead of
        re-deriving the dictionary.
        """
        key = id(self.columns[index])  # repro-lint: disable=replay-determinism -- process-local memo key, never serialized
        self._encodings[key] = encoded

    def compact(self) -> "ColumnBatch":
        """A selection-free copy (no-op when already dense)."""
        if self.selection is None:
            return self
        return ColumnBatch(self.schema, self.dense_columns(),
                           _length=len(self))

    # -- vectorized operations ----------------------------------------------

    def take(self, indices: Sequence[int]) -> "ColumnBatch":
        """Gather rows by *live-row* position (dense output)."""
        if self.selection is not None:
            base = self.selection
            indices = [base[i] for i in indices]
        columns = tuple(list(map(column.__getitem__, indices))
                        for column in self.columns)
        return ColumnBatch(self.schema, columns, _length=len(indices))

    def select(self, indices: list[int]) -> "ColumnBatch":
        """Restrict to *live-row* positions via a selection vector.

        Columns are shared, only the index list is new — the cheap form
        of :meth:`take` for operators that filter without reordering.
        """
        if self.selection is not None:
            base = self.selection
            indices = [base[i] for i in indices]
        return ColumnBatch(self.schema, self.columns, indices,
                           _encodings=self._encodings)

    def filter_in(self, attribute: str,
                  values: frozenset | set) -> "ColumnBatch":
        """Vectorized membership filter → selection vector.

        When the column is dictionary-encoded the membership test runs
        on codes: the value set is translated into an allowed-code set
        once (one hash per *distinct* value), then every row is a
        small-int set probe.
        """
        index = self._index_of(attribute)
        encoded = self.encoded_at(index)
        if encoded is not None:
            allowed = {code for value, code in encoded.index.items()
                       if value in values}
            codes = encoded.select(self.selection)
            keep = [i for i, code in enumerate(codes)
                    if code in allowed]
        else:
            column = self.raw_column_at(index)
            keep = [i for i, value in enumerate(column)
                    if value in values]
        if len(keep) == len(self):
            return self
        return self.select(keep)

    def rename(self, mapping: Mapping[str, str],
               name: str | None = None) -> "ColumnBatch":
        """Project onto ``output → input`` *mapping*, sharing columns.

        The vectorized final projection: output attribute order follows
        the mapping, each output column aliases the input column it
        renames — zero data movement.
        """
        if not mapping:
            schema = RelationSchema(name or f"π({self.schema.name})",
                                    (), None)
            return ColumnBatch(schema, (), _length=len(self))
        names = self.schema.attribute_names
        attrs: list[Attribute] = []
        columns: list[list[object]] = []
        for out_name, in_name in mapping.items():
            try:
                index = names.index(in_name)
            except ValueError:
                raise SchemaError(
                    f"{self.schema.name} has no attribute "
                    f"{in_name!r}") from None
            attrs.append(Attribute(out_name,
                                   self.schema.attributes[index].is_id))
            columns.append(self.columns[index])
        schema = RelationSchema(name or f"π({self.schema.name})",
                                tuple(attrs), None)
        stored = len(self.columns[0]) if self.columns else len(self)
        # Output columns alias input lists, so the encoding memo (keyed
        # by column identity) stays valid — share it.
        return ColumnBatch(schema, columns, self.selection,
                           _length=stored, _encodings=self._encodings)

    def reorder(self, names: Sequence[str]) -> "ColumnBatch":
        """The same batch with columns in *names* order (shared data)."""
        if tuple(names) == self.schema.attribute_names:
            return self
        return self.rename({n: n for n in names},
                           name=self.schema.name)

    def distinct(self) -> "ColumnBatch":
        """First-occurrence dedup over all columns (one zip pass).

        Columns whose dictionary encoding is already built (scan
        columns shared through the memo, or codes installed by the
        fused projection) dedup on their int codes, so the zip keys
        hash small ints instead of arbitrary objects. Codes share the
        dictionary's equality (``1`` and ``1.0`` take one code), so
        the result is identical to value dedup.
        """
        if not self.columns:
            # Zero-column batches deduplicate to at most one row.
            return ColumnBatch(self.schema, (),
                               _length=min(len(self), 1))
        memo = self._encodings
        encodings = [memo.get(id(column))  # repro-lint: disable=replay-determinism -- process-local memo key, never serialized
                     for column in self.columns]
        if accel.available() and all(
                enc is not None for enc in encodings):
            # Fully encoded batch: dedup on int64 code vectors before
            # any value (or even the dense gather) is materialized.
            arrays = [enc.codes_vector() if self.selection is None  # type: ignore[union-attr]
                      else accel.take(enc.codes_vector(),  # type: ignore[union-attr]
                                      self.selection)
                      for enc in encodings]
            first = accel.first_occurrence_keep(arrays)
            if first is None:
                return self.compact()
            sel = self.selection
            stored = (first if sel is None
                      else [sel[k] for k in first])
            return ColumnBatch(
                self.schema,
                tuple(list(map(column.__getitem__, stored))
                      for column in self.columns),
                _length=len(first))
        dense = self.dense_columns()
        # Any-typed lanes: a lane is either int codes or raw values,
        # and list invariance would otherwise reject the mix.
        lanes: list[list[Any]] = [
            enc.select(self.selection) if enc is not None else live
            for enc, live in zip(encodings, dense)]
        keys: Iterable[object]
        if len(lanes) == 1:
            keys = lanes[0]  # scalar fast path (codes when encoded)
        else:
            keys = zip(*lanes)
        seen: set = set()
        keep: list[int] = []
        add = seen.add
        for i, key in enumerate(keys):
            if key not in seen:
                add(key)
                keep.append(i)
        if len(keep) == len(self):
            return self.compact()
        columns = tuple(list(map(column.__getitem__, keep))
                        for column in dense)
        return ColumnBatch(self.schema, columns, _length=len(keep))

    # -- boundary adapters ---------------------------------------------------

    def iter_rows(self) -> Iterable[dict[str, object]]:
        names = self.schema.attribute_names
        for values in zip(*self.dense_columns()):
            yield dict(zip(names, values))

    def to_rows(self) -> list[dict[str, object]]:
        """Pivot back to row dicts (the batch→row adapter)."""
        names = self.schema.attribute_names
        if not names:
            return [{} for _ in range(len(self))]
        return [dict(zip(names, values))
                for values in zip(*self.dense_columns())]

    def to_relation(self, name: str | None = None) -> "Relation":
        from repro.relational.rows import Relation
        schema = self.schema
        if name is not None and name != schema.name:
            schema = RelationSchema(name, schema.attributes,
                                    schema.source)
        return Relation.from_trusted(schema, self.to_rows())


def concat_batches(schema: RelationSchema,
                   batches: Sequence[ColumnBatch]) -> ColumnBatch:
    """Column-wise concatenation under *schema*'s attribute order.

    Batches may order their columns differently (union branches are
    compatible as attribute *sets*); each is aligned by name before its
    columns are extended onto the output.
    """
    names = schema.attribute_names
    for batch in batches:
        if set(batch.schema.attribute_names) != set(names):
            raise SchemaError(
                "cannot concatenate batch over "
                f"{sorted(batch.schema.attribute_names)} under schema "
                f"{sorted(names)}")
    if len(batches) == 1:
        return batches[0].reorder(names)
    out: tuple[list[object], ...] = tuple([] for _ in names)
    total = 0
    for batch in batches:
        aligned = batch.reorder(names)
        dense = aligned.dense_columns()
        for target, column in zip(out, dense):
            target.extend(column)
        total += len(aligned)
    return ColumnBatch(schema, out, _length=total)
