"""Columnar batches: the vectorized exchange format of the physical layer.

The row engine (PR 3) moves data as per-row dicts — every join match
copies a dict, every projection rebuilds one, every dedup key runs an
itemgetter per row. A :class:`ColumnBatch` turns that inside out: one
Python list per column, plus an optional **selection vector** of live
row indices, so operators work on whole columns at a time:

* a hash join zips the key columns once, joins index lists, and gathers
  each output column in a single ``map(column.__getitem__, indices)``
  pass — no per-match dict merging;
* a projection is a column *rename*: the underlying lists are shared,
  nothing is copied;
* dedup zips the value columns into tuples and keeps first occurrences
  with one set — no per-row itemgetter calls.

Batches cross back into row land exactly once, at the plan boundary
(:meth:`to_relation`), so :class:`~repro.relational.rows.Relation`,
the wrappers and the protocol envelopes are untouched on the outside.

Batches are **immutable by convention**: columns may be shared between
batches (projections alias their child's lists) and with the
:class:`~repro.relational.rows.Relation` they were converted from via
:meth:`Relation.columnar <repro.relational.rows.Relation.columnar>`'s
memo — never mutate a column list you did not build yourself.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from repro.errors import SchemaError
from repro.relational.schema import Attribute, RelationSchema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.relational.rows import Relation

__all__ = ["ColumnBatch", "concat_batches"]


class ColumnBatch:
    """A batch of rows stored column-wise.

    ``columns`` aligns position-for-position with
    ``schema.attributes``. ``selection`` is either ``None`` (every
    stored row is live) or a list of indices into the columns — the
    standard vectorized-execution trick for filters: dropping rows
    costs one index list, not one copy per surviving column.
    """

    __slots__ = ("schema", "columns", "selection", "_length")

    def __init__(self, schema: RelationSchema,
                 columns: Sequence[list[object]],
                 selection: list[int] | None = None,
                 _length: int | None = None) -> None:
        if len(columns) != len(schema.attributes):
            raise SchemaError(
                f"batch for {schema.name} expects "
                f"{len(schema.attributes)} columns, got {len(columns)}")
        self.schema = schema
        self.columns = tuple(columns)
        self.selection = selection
        if _length is not None:
            stored = _length
        else:
            stored = len(columns[0]) if columns else 0
        for column in self.columns:
            if len(column) != stored:
                raise SchemaError(
                    f"ragged batch for {schema.name}: column lengths "
                    f"{[len(c) for c in self.columns]}")
        self._length = (len(selection) if selection is not None
                        else stored)

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_rows(cls, schema: RelationSchema,
                  rows: Sequence[Mapping[str, object]]) -> "ColumnBatch":
        """Pivot row dicts into columns (the row→batch adapter)."""
        names = schema.attribute_names
        return cls(schema,
                   [[row[name] for row in rows] for name in names],
                   _length=len(rows))

    @classmethod
    def from_relation(cls, relation: "Relation") -> "ColumnBatch":
        """The batch view of a relation, memoized on the relation.

        Shared scans hitting one cached
        :class:`~repro.relational.rows.Relation` pivot to columns once;
        every later consumer reuses the same (immutable) column lists.
        """
        return relation.columnar()

    @classmethod
    def empty(cls, schema: RelationSchema) -> "ColumnBatch":
        return cls(schema, [[] for _ in schema.attributes], _length=0)

    # -- shape ---------------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return self.schema.attribute_names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sel = (f" selection={len(self.selection)}"
               if self.selection is not None else "")
        return (f"<ColumnBatch {self.schema.name}: {len(self)} rows × "
                f"{len(self.columns)} cols{sel}>")

    # -- column access -------------------------------------------------------

    def column(self, name: str) -> list[object]:
        """The live values of one column (selection applied)."""
        try:
            index = self.schema.attribute_names.index(name)
        except ValueError:
            raise SchemaError(
                f"{self.schema.name} has no attribute {name!r}") from None
        return self.column_at(index)

    def column_at(self, index: int) -> list[object]:
        column = self.columns[index]
        if self.selection is None:
            return list(column) if not isinstance(column, list) \
                else column
        return list(map(column.__getitem__, self.selection))

    def dense_columns(self) -> tuple[list[object], ...]:
        """Every column with the selection applied (compacted)."""
        if self.selection is None:
            return self.columns
        getters = self.selection
        return tuple(list(map(column.__getitem__, getters))
                     for column in self.columns)

    def compact(self) -> "ColumnBatch":
        """A selection-free copy (no-op when already dense)."""
        if self.selection is None:
            return self
        return ColumnBatch(self.schema, self.dense_columns(),
                           _length=len(self))

    # -- vectorized operations ----------------------------------------------

    def take(self, indices: Sequence[int]) -> "ColumnBatch":
        """Gather rows by *live-row* position (dense output)."""
        if self.selection is not None:
            base = self.selection
            indices = [base[i] for i in indices]
        columns = tuple(list(map(column.__getitem__, indices))
                        for column in self.columns)
        return ColumnBatch(self.schema, columns, _length=len(indices))

    def select(self, indices: list[int]) -> "ColumnBatch":
        """Restrict to *live-row* positions via a selection vector.

        Columns are shared, only the index list is new — the cheap form
        of :meth:`take` for operators that filter without reordering.
        """
        if self.selection is not None:
            base = self.selection
            indices = [base[i] for i in indices]
        return ColumnBatch(self.schema, self.columns, indices)

    def filter_in(self, attribute: str,
                  values: frozenset | set) -> "ColumnBatch":
        """Vectorized membership filter → selection vector."""
        column = self.column(attribute)
        keep = [i for i, value in enumerate(column) if value in values]
        if len(keep) == len(self):
            return self
        return self.select(keep)

    def rename(self, mapping: Mapping[str, str],
               name: str | None = None) -> "ColumnBatch":
        """Project onto ``output → input`` *mapping*, sharing columns.

        The vectorized final projection: output attribute order follows
        the mapping, each output column aliases the input column it
        renames — zero data movement.
        """
        if not mapping:
            schema = RelationSchema(name or f"π({self.schema.name})",
                                    (), None)
            return ColumnBatch(schema, (), _length=len(self))
        names = self.schema.attribute_names
        attrs: list[Attribute] = []
        columns: list[list[object]] = []
        for out_name, in_name in mapping.items():
            try:
                index = names.index(in_name)
            except ValueError:
                raise SchemaError(
                    f"{self.schema.name} has no attribute "
                    f"{in_name!r}") from None
            attrs.append(Attribute(out_name,
                                   self.schema.attributes[index].is_id))
            columns.append(self.columns[index])
        schema = RelationSchema(name or f"π({self.schema.name})",
                                tuple(attrs), None)
        stored = len(self.columns[0]) if self.columns else len(self)
        return ColumnBatch(schema, columns, self.selection,
                           _length=stored)

    def reorder(self, names: Sequence[str]) -> "ColumnBatch":
        """The same batch with columns in *names* order (shared data)."""
        if tuple(names) == self.schema.attribute_names:
            return self
        return self.rename({n: n for n in names},
                           name=self.schema.name)

    def distinct(self) -> "ColumnBatch":
        """First-occurrence dedup over all columns (one zip pass)."""
        dense = self.dense_columns()
        if not dense:
            # Zero-column batches deduplicate to at most one row.
            return ColumnBatch(self.schema, (),
                               _length=min(len(self), 1))
        seen: set = set()
        keep: list[int] = []
        add = seen.add
        if len(dense) == 1:
            for i, key in enumerate(dense[0]):
                if key not in seen:
                    add(key)
                    keep.append(i)
        else:
            for i, key in enumerate(zip(*dense)):
                if key not in seen:
                    add(key)
                    keep.append(i)
        if len(keep) == len(self):
            return self.compact()
        columns = tuple(list(map(column.__getitem__, keep))
                        for column in dense)
        return ColumnBatch(self.schema, columns, _length=len(keep))

    # -- boundary adapters ---------------------------------------------------

    def iter_rows(self) -> Iterable[dict[str, object]]:
        names = self.schema.attribute_names
        for values in zip(*self.dense_columns()):
            yield dict(zip(names, values))

    def to_rows(self) -> list[dict[str, object]]:
        """Pivot back to row dicts (the batch→row adapter)."""
        names = self.schema.attribute_names
        if not names:
            return [{} for _ in range(len(self))]
        return [dict(zip(names, values))
                for values in zip(*self.dense_columns())]

    def to_relation(self, name: str | None = None) -> "Relation":
        from repro.relational.rows import Relation
        schema = self.schema
        if name is not None and name != schema.name:
            schema = RelationSchema(name, schema.attributes,
                                    schema.source)
        return Relation.from_trusted(schema, self.to_rows())


def concat_batches(schema: RelationSchema,
                   batches: Sequence[ColumnBatch]) -> ColumnBatch:
    """Column-wise concatenation under *schema*'s attribute order.

    Batches may order their columns differently (union branches are
    compatible as attribute *sets*); each is aligned by name before its
    columns are extended onto the output.
    """
    names = schema.attribute_names
    for batch in batches:
        if set(batch.schema.attribute_names) != set(names):
            raise SchemaError(
                "cannot concatenate batch over "
                f"{sorted(batch.schema.attribute_names)} under schema "
                f"{sorted(names)}")
    if len(batches) == 1:
        return batches[0].reorder(names)
    out: tuple[list[object], ...] = tuple([] for _ in names)
    total = 0
    for batch in batches:
        aligned = batch.reorder(names)
        dense = aligned.dense_columns()
        for target, column in zip(out, dense):
            target.extend(column)
        total += len(aligned)
    return ColumnBatch(schema, out, _length=total)
