"""Relation instances: a schema plus a bag of rows.

Rows are plain dictionaries keyed by attribute name. The class validates
rows against the schema (catching wrapper/schema drift early — the very
failure mode the BDI ontology governs) and renders the ASCII tables used
to reproduce Tables 1 and 2 of the paper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Iterator, \
    Mapping, Sequence

from repro.errors import SchemaError
from repro.relational.schema import RelationSchema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.relational.columnar import ColumnBatch

__all__ = ["Relation", "render_table"]

Row = Mapping[str, object]


class Relation:
    """A materialized relation (bag semantics, stable order)."""

    __slots__ = ("schema", "_rows", "_columnar")

    def __init__(self, schema: RelationSchema,
                 rows: Iterable[Row] = ()) -> None:
        self.schema = schema
        self._rows: list[dict[str, object]] = []
        self._columnar: "ColumnBatch | None" = None
        for row in rows:
            self.append(row)

    @classmethod
    def from_trusted(cls, schema: RelationSchema,
                     rows: list[dict[str, object]]) -> "Relation":
        """Adopt *rows* without per-row schema validation.

        For internal producers (wrappers after their own validation,
        algebra operators whose output fits the schema by construction).
        The caller hands over ownership of *rows* and of every dict in
        it — they must not be mutated afterwards.
        """
        relation = cls(schema)
        relation._rows = rows
        return relation

    @classmethod
    def from_batch(cls, batch: "ColumnBatch",
                   name: str | None = None) -> "Relation":
        """Materialize a columnar batch as a relation (batch→row
        adapter); the batch stays attached as the columnar view."""
        relation = batch.to_relation(name)
        if name is None or name == batch.schema.name:
            relation._columnar = batch.compact()
        return relation

    # -- mutation -----------------------------------------------------------

    def append(self, row: Row) -> None:
        expected = set(self.schema.attribute_names)
        got = set(row)
        if got != expected:
            missing = expected - got
            extra = got - expected
            parts = []
            if missing:
                parts.append(f"missing {sorted(missing)}")
            if extra:
                parts.append(f"unexpected {sorted(extra)}")
            raise SchemaError(
                f"row does not fit schema {self.schema.name}: "
                + ", ".join(parts))
        self._columnar = None  # the memoized batch no longer matches
        self._rows.append(dict(row))

    def extend(self, rows: Iterable[Row]) -> None:
        for row in rows:
            self.append(row)

    # -- access ---------------------------------------------------------------

    @property
    def rows(self) -> list[dict[str, object]]:
        return list(self._rows)

    def columnar(self) -> "ColumnBatch":
        """The columnar view of this relation, memoized.

        Consumers treat produced relations as immutable (shared-scan
        results explicitly so), which makes the pivot safe to share:
        a wrapper scan cached across a whole batch of queries is
        pivoted to columns once, then every vectorized plan reuses the
        same column lists. The memo drops on :meth:`append`. The
        returned batch's columns are shared — never mutate them.
        """
        batch = self._columnar
        if batch is None:
            from repro.relational.columnar import ColumnBatch
            batch = ColumnBatch.from_rows(self.schema, self._rows)
            self._columnar = batch
        return batch

    def column(self, name: str) -> list[object]:
        self.schema.attribute(name)  # validate
        return [row[name] for row in self._rows]

    def distinct(self) -> "Relation":
        """Set-semantics copy (first occurrence order preserved)."""
        seen: set[tuple] = set()
        out = Relation(self.schema)
        names = self.schema.attribute_names
        for row in self._rows:
            key = tuple(row[n] for n in names)
            if key not in seen:
                seen.add(key)
                out._rows.append(dict(row))
        return out

    def sorted_by(self, *names: str) -> "Relation":
        for name in names:
            self.schema.attribute(name)
        out = Relation(self.schema)
        out._rows = sorted(
            (dict(r) for r in self._rows),
            key=lambda r: tuple(str(r[n]) for n in names))
        return out

    def where(self, predicate: Callable[[Row], bool]) -> "Relation":
        out = Relation(self.schema)
        out._rows = [dict(r) for r in self._rows if predicate(r)]
        return out

    def page(self, offset: int, size: int) -> list[dict[str, object]]:
        """One page of rows: copies of rows ``[offset, offset+size)``.

        The protocol layer's pagination primitive: the relation stays
        materialized server-side and only the requested window is
        copied out, so a page response never re-serializes the answer.
        """
        if offset < 0 or size < 1:
            raise SchemaError("page requires offset >= 0 and size >= 1")
        return [dict(r) for r in self._rows[offset:offset + size]]

    def as_tuples(self, names: Sequence[str] | None = None) -> list[tuple]:
        names = list(names or self.schema.attribute_names)
        return [tuple(row[n] for n in names) for row in self._rows]

    # -- protocols ---------------------------------------------------------------

    def __iter__(self) -> Iterator[dict[str, object]]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __eq__(self, other: object) -> bool:
        """Bag equality over the same attribute set (order-insensitive)."""
        if not isinstance(other, Relation):
            return NotImplemented
        if set(self.schema.attribute_names) != set(
                other.schema.attribute_names):
            return False
        names = sorted(self.schema.attribute_names)
        mine = sorted(tuple(str(r[n]) for n in names) for r in self._rows)
        theirs = sorted(tuple(str(r[n]) for n in names) for r in other._rows)
        return mine == theirs

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Relation {self.schema.name}: {len(self._rows)} rows>"

    # -- display -----------------------------------------------------------------

    def to_ascii(self, max_rows: int | None = None) -> str:
        return render_table(self.schema.attribute_names, self._rows,
                            title=self.schema.name, max_rows=max_rows)


def render_table(columns: Sequence[str], rows: Iterable[Row],
                 title: str | None = None,
                 max_rows: int | None = None) -> str:
    """Render rows as a boxed ASCII table (used by benches and examples)."""
    material = [dict(r) for r in rows]
    if max_rows is not None and len(material) > max_rows:
        shown = material[:max_rows]
        footer = f"... ({len(material) - max_rows} more rows)"
    else:
        shown = material
        footer = None

    widths = {c: len(str(c)) for c in columns}
    for row in shown:
        for c in columns:
            widths[c] = max(widths[c], len(str(row.get(c, ""))))

    def line(char: str = "-") -> str:
        return "+" + "+".join(char * (widths[c] + 2) for c in columns) + "+"

    out: list[str] = []
    if title:
        out.append(title)
    out.append(line())
    out.append("| " + " | ".join(
        str(c).ljust(widths[c]) for c in columns) + " |")
    out.append(line("="))
    for row in shown:
        out.append("| " + " | ".join(
            str(row.get(c, "")).ljust(widths[c]) for c in columns) + " |")
    out.append(line())
    if footer:
        out.append(footer)
    return "\n".join(out)
