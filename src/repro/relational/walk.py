"""Walks over wrappers (§2.2): ``W = Π̃(w1) ⋈̃ ... ⋈̃ Π̃(wk)``.

A walk is a conjunctive query over wrappers: every wrapper contributes a
restricted projection of its attributes, and wrappers are pairwise
connected through restricted equi-joins on ID attributes. Two walks are
equivalent when they join the same wrappers with the same conditions,
regardless of join order — :meth:`Walk.equivalence_key` captures that.

The rewriting algorithm (Algorithms 4 and 5) manipulates walks abstractly
and only at the very end lowers them onto the relational algebra tree via
:meth:`Walk.to_expression`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RewritingError, SameSourceJoinError, SchemaError
from repro.relational.algebra import Expression, Join, Project, Scan
from repro.relational.schema import RelationSchema

__all__ = ["JoinCondition", "Walk"]


@dataclass(frozen=True, order=True)
class JoinCondition:
    """An equi-join condition between ID attributes of two wrappers."""

    left_wrapper: str
    left_attribute: str
    right_wrapper: str
    right_attribute: str

    def normalized(self) -> "JoinCondition":
        """Direction-insensitive canonical form (left ≤ right)."""
        if (self.left_wrapper, self.left_attribute) <= (
                self.right_wrapper, self.right_attribute):
            return self
        return JoinCondition(self.right_wrapper, self.right_attribute,
                             self.left_wrapper, self.left_attribute)

    def touches(self, wrapper: str) -> bool:
        return wrapper in (self.left_wrapper, self.right_wrapper)

    def __str__(self) -> str:
        return (f"{self.left_wrapper}.{self.left_attribute}="
                f"{self.right_wrapper}.{self.right_attribute}")


@dataclass
class Walk:
    """A (possibly partial) walk: wrapper schemas, projections, joins.

    ``projections[w]`` lists the *non-ID* attributes of ``w`` that the walk
    projects; ID attributes are always retained per the Π̃ semantics.
    """

    schemas: dict[str, RelationSchema] = field(default_factory=dict)
    projections: dict[str, set[str]] = field(default_factory=dict)
    joins: set[JoinCondition] = field(default_factory=set)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def single(cls, schema: RelationSchema,
               non_id_attributes: set[str] | None = None) -> "Walk":
        walk = cls()
        walk.schemas[schema.name] = schema
        selected = set(non_id_attributes or ())
        unknown = selected - set(schema.non_id_names)
        if unknown:
            raise SchemaError(
                f"projection of unknown/non-projectable attributes "
                f"{sorted(unknown)} on {schema.name}")
        walk.projections[schema.name] = selected
        return walk

    # -- inspection -------------------------------------------------------------

    @property
    def wrapper_names(self) -> frozenset[str]:
        """``wrappers(W)`` of the paper."""
        return frozenset(self.schemas)

    def sources(self) -> set[str]:
        return {s.source for s in self.schemas.values()
                if s.source is not None}

    def projected_attributes(self) -> set[str]:
        """All projected non-ID attributes across wrappers."""
        out: set[str] = set()
        for attrs in self.projections.values():
            out |= attrs
        return out

    def output_attributes(self) -> set[str]:
        """Attributes in the walk's output: projections plus all IDs."""
        out = self.projected_attributes()
        for schema in self.schemas.values():
            out |= set(schema.id_names)
        return out

    def equivalence_key(self) -> tuple:
        """Walks joining the same wrappers the same way are equivalent."""
        return (
            self.wrapper_names,
            frozenset(j.normalized() for j in self.joins),
        )

    def __len__(self) -> int:
        return len(self.schemas)

    # -- building ------------------------------------------------------------------

    def _check_same_source(self, incoming: RelationSchema) -> None:
        if incoming.source is None:
            return
        for schema in self.schemas.values():
            if (schema.name != incoming.name
                    and schema.source == incoming.source):
                raise SameSourceJoinError(
                    f"wrappers {schema.name} and {incoming.name} belong to "
                    f"the same source {incoming.source}; schema versions of "
                    "one source must not be joined (paper §2.2)")

    def add_wrapper(self, schema: RelationSchema,
                    non_id_attributes: set[str] | None = None) -> None:
        """Add (or extend the projections of) one wrapper."""
        self._check_same_source(schema)
        selected = set(non_id_attributes or ())
        unknown = selected - set(schema.non_id_names)
        if unknown:
            raise SchemaError(
                f"projection of unknown/non-projectable attributes "
                f"{sorted(unknown)} on {schema.name}")
        if schema.name in self.schemas:
            self.projections[schema.name] |= selected
        else:
            self.schemas[schema.name] = schema
            self.projections[schema.name] = selected

    def add_join(self, condition: JoinCondition) -> None:
        """Register a join; both wrappers must already be in the walk."""
        for wrapper, attribute in (
                (condition.left_wrapper, condition.left_attribute),
                (condition.right_wrapper, condition.right_attribute)):
            schema = self.schemas.get(wrapper)
            if schema is None:
                raise RewritingError(
                    f"join references wrapper {wrapper} absent from walk")
            if not schema.attribute(attribute).is_id:
                raise RewritingError(
                    f"join on non-ID attribute {wrapper}.{attribute}")
        self.joins.add(condition.normalized())

    def merged_with(self, other: "Walk") -> "Walk":
        """MergeWalks of the paper: union of wrappers/projections/joins.

        Raises :class:`SameSourceJoinError` when the union would mix two
        schema versions of one source.
        """
        result = Walk()
        for schema in self.schemas.values():
            result.add_wrapper(schema, self.projections[schema.name])
        for schema in other.schemas.values():
            result.add_wrapper(schema, other.projections[schema.name])
        result.joins = {j.normalized() for j in self.joins | other.joins}
        return result

    def shares_wrapper_with(self, other: "Walk") -> bool:
        return bool(self.wrapper_names & other.wrapper_names)

    # -- connectivity & lowering -----------------------------------------------------

    def is_connected(self) -> bool:
        """True when the join graph spans all wrappers (or single wrapper)."""
        if len(self.schemas) <= 1:
            return True
        remaining = set(self.schemas)
        start = sorted(remaining)[0]
        reached = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for join in self.joins:
                if join.touches(node):
                    other = (join.right_wrapper
                             if join.left_wrapper == node
                             else join.left_wrapper)
                    if other not in reached:
                        reached.add(other)
                        frontier.append(other)
        return reached == remaining

    def to_expression(self) -> Expression:
        """Lower the walk onto a left-deep Π̃/⋈̃ expression tree."""
        if not self.schemas:
            raise RewritingError("cannot lower an empty walk")
        if not self.is_connected():
            raise RewritingError(
                f"walk over {sorted(self.schemas)} is not connected by "
                "its join conditions")

        def leaf(name: str) -> Expression:
            return Project(Scan(self.schemas[name]),
                           sorted(self.projections[name]))

        order = sorted(self.schemas)
        included = {order[0]}
        expression = leaf(order[0])
        pending = set(self.joins)

        while len(included) < len(self.schemas):
            # Find a wrapper connected to the current tree.
            progress = False
            for join in sorted(pending):
                inside_left = join.left_wrapper in included
                inside_right = join.right_wrapper in included
                if inside_left == inside_right:
                    continue  # either both inside (later) or both outside
                newcomer = (join.right_wrapper if inside_left
                            else join.left_wrapper)
                # Collect every pending condition between the tree and the
                # newcomer so multi-attribute joins apply at once.
                conditions: list[tuple[str, str]] = []
                used: list[JoinCondition] = []
                for candidate in sorted(pending):
                    if (candidate.left_wrapper in included
                            and candidate.right_wrapper == newcomer):
                        conditions.append((candidate.left_attribute,
                                           candidate.right_attribute))
                        used.append(candidate)
                    elif (candidate.right_wrapper in included
                            and candidate.left_wrapper == newcomer):
                        conditions.append((candidate.right_attribute,
                                           candidate.left_attribute))
                        used.append(candidate)
                expression = Join(expression, leaf(newcomer), conditions)
                included.add(newcomer)
                pending.difference_update(used)
                progress = True
                break
            if not progress:  # pragma: no cover - guarded by is_connected
                raise RewritingError("join graph became disconnected")

        # Conditions between wrappers already joined (cycles) are not
        # expected from the rewriting algorithm; encode them as errors so
        # silent cartesian blowups cannot pass unnoticed.
        if pending:
            raise RewritingError(
                f"redundant join conditions remain: "
                f"{[str(j) for j in sorted(pending)]}")
        return expression

    # -- display -------------------------------------------------------------------------

    def notation(self) -> str:
        parts = []
        for name in sorted(self.schemas):
            attrs = ",".join(sorted(self.projections[name])) or "∅"
            parts.append(f"Π̃{{{attrs}}}({name})")
        joins = ", ".join(str(j) for j in sorted(self.joins))
        text = " ⋈̃ ".join(parts)
        return f"{text} [{joins}]" if joins else text

    def __str__(self) -> str:
        return self.notation()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Walk {self.notation()}>"
