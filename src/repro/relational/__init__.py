"""Relational substrate: schemas, rows, restricted algebra and walks.

Implements the formal machinery of paper §2.2: wrappers as relations with
ID / non-ID attributes, the restricted projection ``Π̃`` and equi-join
``⋈̃`` operators, walks as conjunctive queries, and unions of conjunctive
queries (the output of LAV rewriting).
"""

from repro.relational.algebra import (
    DataProvider, Expression, FinalProject, Join, Project, Scan, Union,
    evaluate,
)
from repro.relational.columnar import ColumnBatch, concat_batches
from repro.relational.physical import (
    CachingScanProvider, IdFilter, PhysicalHashJoin, PhysicalOperator,
    PhysicalProject, PhysicalScan, PhysicalUnion, RelationScanProvider,
    ScanCache, ScanKey, ScanProvider, ScanStats, WrapperScanProvider,
    as_scan_provider,
)
from repro.relational.rows import Relation, render_table
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.walk import JoinCondition, Walk

__all__ = [
    "Attribute", "RelationSchema",
    "Relation", "render_table",
    "ColumnBatch", "concat_batches",
    "DataProvider", "Expression", "FinalProject", "Join", "Project",
    "Scan", "Union", "evaluate",
    "CachingScanProvider", "IdFilter", "PhysicalHashJoin",
    "PhysicalOperator", "PhysicalProject", "PhysicalScan",
    "PhysicalUnion", "RelationScanProvider", "ScanCache", "ScanKey",
    "ScanProvider", "ScanStats", "WrapperScanProvider",
    "as_scan_provider",
    "JoinCondition", "Walk",
]
