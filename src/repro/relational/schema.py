"""Relation schemas with the paper's ID / non-ID attribute distinction.

A wrapper is formalized as ``w(aID, anID)`` (§2.2): a relation whose
attributes split into identifier attributes (joinable) and non-identifier
attributes (projectable). Attribute names are globally qualified with the
source prefix (e.g. ``D1/lagRatio``) exactly as the Source graph does, so
equality of names means equality of attributes everywhere in the library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import SchemaError

__all__ = ["Attribute", "RelationSchema"]


@dataclass(frozen=True, order=True)
class Attribute:
    """A named attribute; ``is_id`` marks identifier attributes."""

    name: str
    is_id: bool = False

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"invalid attribute name: {self.name!r}")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class RelationSchema:
    """An ordered relation schema: name plus attributes.

    >>> w1 = RelationSchema.of("w1", ids=["VoDmonitorId"], non_ids=["lagRatio"])
    >>> sorted(a.name for a in w1.id_attributes)
    ['VoDmonitorId']
    """

    name: str
    attributes: tuple[Attribute, ...]
    #: Identifier of the data source this relation belongs to, used to
    #: enforce the paper's "no joins between versions of the same source"
    #: rule. Optional for plain relations.
    source: str | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("relation schema requires a name")
        seen: set[str] = set()
        for attr in self.attributes:
            if attr.name in seen:
                raise SchemaError(
                    f"duplicate attribute {attr.name!r} in {self.name}")
            seen.add(attr.name)

    # -- constructors --------------------------------------------------------

    @classmethod
    def of(cls, name: str, ids: Iterable[str] = (),
           non_ids: Iterable[str] = (),
           source: str | None = None) -> "RelationSchema":
        attrs = tuple(Attribute(a, True) for a in ids) + tuple(
            Attribute(a, False) for a in non_ids)
        return cls(name, attrs, source)

    # -- views -----------------------------------------------------------------

    @property
    def id_attributes(self) -> tuple[Attribute, ...]:
        """The set ``aID`` of the paper."""
        return tuple(a for a in self.attributes if a.is_id)

    @property
    def non_id_attributes(self) -> tuple[Attribute, ...]:
        """The set ``anID`` of the paper."""
        return tuple(a for a in self.attributes if not a.is_id)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    @property
    def id_names(self) -> frozenset[str]:
        return frozenset(a.name for a in self.id_attributes)

    @property
    def non_id_names(self) -> frozenset[str]:
        return frozenset(a.name for a in self.non_id_attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __contains__(self, name: object) -> bool:
        return any(a.name == name for a in self.attributes)

    def attribute(self, name: str) -> Attribute:
        for a in self.attributes:
            if a.name == name:
                return a
        raise SchemaError(f"{self.name} has no attribute {name!r}")

    def is_id_attribute(self, name: str) -> bool:
        return self.attribute(name).is_id

    # -- notation ---------------------------------------------------------------

    def notation(self) -> str:
        """The paper's ``w({ids}, {non_ids})`` notation."""
        ids = ", ".join(a.name for a in self.id_attributes)
        non_ids = ", ".join(a.name for a in self.non_id_attributes)
        return f"{self.name}({{{ids}}}, {{{non_ids}}})"

    def __str__(self) -> str:
        return self.notation()
