"""Relational algebra over wrappers, with the paper's restricted operators.

§2.2 of the paper defines:

* ``Π̃`` (:class:`Project`) — projection that *keeps all ID attributes*;
  only non-ID attributes may be selected or dropped.
* ``⋈̃`` (:class:`Join`) — equi-join valid *only between ID attributes* of
  the two inputs.
* walks — select-project-join expressions built from those two operators
  (see :mod:`repro.relational.walk`), unioned into UCQs.

Additionally :class:`FinalProject` implements the paper's closing step
("[IDs] can be easily projected out at the final step, when generating the
union of conjunctive queries"): an ordinary projection with optional
renaming, used to align walk outputs onto global feature names so that
:class:`Union` branches are schema-compatible.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Union as TUnion

from repro.errors import (
    InvalidJoinError, InvalidProjectionError, SchemaError,
)
from repro.relational.rows import Relation
from repro.relational.schema import Attribute, RelationSchema

__all__ = [
    "Expression", "Scan", "Project", "Join", "FinalProject", "Union",
    "DataProvider", "evaluate",
]

#: Resolves a relation name (wrapper name) to its materialized rows.
DataProvider = TUnion[Callable[[str], Relation], Mapping[str, Relation]]


def _resolve(provider: DataProvider, name: str) -> Relation:
    if callable(provider):
        return provider(name)
    try:
        return provider[name]
    except KeyError:
        raise SchemaError(f"no data for relation {name!r}") from None


class Expression:
    """Base class of the algebra expression tree."""

    def schema(self) -> RelationSchema:
        """The output schema of this expression."""
        raise NotImplementedError

    def wrappers(self) -> set[str]:
        """Names of the leaf relations (wrappers) used by the expression."""
        raise NotImplementedError

    def evaluate(self, provider: DataProvider) -> Relation:
        """Materialize this expression using *provider* for leaf data."""
        raise NotImplementedError

    def notation(self) -> str:
        """Paper-style notation, e.g. ``Π̃{a}(w1 ⋈̃[x=y] w3)``."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.notation()


class Scan(Expression):
    """A leaf: scan one wrapper relation."""

    __slots__ = ("relation_schema",)

    def __init__(self, relation_schema: RelationSchema) -> None:
        self.relation_schema = relation_schema

    def schema(self) -> RelationSchema:
        return self.relation_schema

    def wrappers(self) -> set[str]:
        return {self.relation_schema.name}

    def evaluate(self, provider: DataProvider) -> Relation:
        relation = _resolve(provider, self.relation_schema.name)
        expected = set(self.relation_schema.attribute_names)
        got = set(relation.schema.attribute_names)
        if expected - got:
            raise SchemaError(
                f"wrapper {self.relation_schema.name} is missing attributes "
                f"{sorted(expected - got)}")
        return relation

    def notation(self) -> str:
        return self.relation_schema.name


class Project(Expression):
    """Restricted projection ``Π̃``: selected non-IDs plus *all* IDs."""

    __slots__ = ("child", "non_ids")

    def __init__(self, child: Expression,
                 non_ids: Iterable[str] = ()) -> None:
        self.child = child
        self.non_ids = tuple(dict.fromkeys(non_ids))  # stable unique order
        child_schema = child.schema()
        for name in self.non_ids:
            attr = child_schema.attribute(name)
            if attr.is_id:
                raise InvalidProjectionError(
                    f"Π̃ lists {name!r}, which is an ID attribute; IDs are "
                    "always retained and may not be listed explicitly")

    def schema(self) -> RelationSchema:
        child_schema = self.child.schema()
        attrs = tuple(child_schema.id_attributes) + tuple(
            Attribute(n, False) for n in self.non_ids)
        return RelationSchema(
            f"Π̃({child_schema.name})", attrs, child_schema.source)

    def wrappers(self) -> set[str]:
        return self.child.wrappers()

    def evaluate(self, provider: DataProvider) -> Relation:
        child_rows = self.child.evaluate(provider)
        out_schema = self.schema()
        names = out_schema.attribute_names
        rows = [{n: row[n] for n in names} for row in child_rows]
        return Relation.from_trusted(out_schema, rows)

    def notation(self) -> str:
        attrs = ",".join(self.non_ids)
        return f"Π̃{{{attrs}}}({self.child.notation()})"


class Join(Expression):
    """Restricted equi-join ``⋈̃`` on ID attributes.

    *conditions* is a list of ``(left_attr, right_attr)`` pairs; every
    attribute must be an ID attribute of its side, per the paper's ``⋈̃``
    definition.
    """

    __slots__ = ("left", "right", "conditions")

    def __init__(self, left: Expression, right: Expression,
                 conditions: Iterable[tuple[str, str]]) -> None:
        self.left = left
        self.right = right
        self.conditions = tuple(conditions)
        if not self.conditions:
            raise InvalidJoinError("⋈̃ requires at least one join condition")
        left_schema = left.schema()
        right_schema = right.schema()
        for l_attr, r_attr in self.conditions:
            if not left_schema.attribute(l_attr).is_id:
                raise InvalidJoinError(
                    f"⋈̃ condition uses non-ID attribute {l_attr!r} "
                    f"on the left side")
            if not right_schema.attribute(r_attr).is_id:
                raise InvalidJoinError(
                    f"⋈̃ condition uses non-ID attribute {r_attr!r} "
                    f"on the right side")
        overlap = (set(left_schema.attribute_names)
                   & set(right_schema.attribute_names))
        if overlap:
            raise SchemaError(
                f"join sides share attribute names {sorted(overlap)}; "
                "attributes must be source-qualified")

    def schema(self) -> RelationSchema:
        left_schema = self.left.schema()
        right_schema = self.right.schema()
        return RelationSchema(
            f"({left_schema.name}⋈̃{right_schema.name})",
            tuple(left_schema.attributes) + tuple(right_schema.attributes),
            None)

    def wrappers(self) -> set[str]:
        return self.left.wrappers() | self.right.wrappers()

    def evaluate(self, provider: DataProvider) -> Relation:
        left_rows = self.left.evaluate(provider)
        right_rows = self.right.evaluate(provider)
        l_keys = [c[0] for c in self.conditions]
        r_keys = [c[1] for c in self.conditions]

        # Hash join: build on the smaller side.
        if len(left_rows) <= len(right_rows):
            build, probe = left_rows, right_rows
            build_keys, probe_keys = l_keys, r_keys
            build_is_left = True
        else:
            build, probe = right_rows, left_rows
            build_keys, probe_keys = r_keys, l_keys
            build_is_left = False

        table: dict[tuple, list[dict[str, object]]] = {}
        for row in build:
            table.setdefault(
                tuple(row[k] for k in build_keys), []).append(row)

        rows: list[dict[str, object]] = []
        for row in probe:
            matches = table.get(tuple(row[k] for k in probe_keys), ())
            for match in matches:
                left_row, right_row = (
                    (match, row) if build_is_left else (row, match))
                merged = dict(left_row)
                merged.update(right_row)
                rows.append(merged)
        return Relation.from_trusted(self.schema(), rows)

    def notation(self) -> str:
        conds = ",".join(f"{l}={r}" for l, r in self.conditions)
        return f"({self.left.notation()} ⋈̃[{conds}] {self.right.notation()})"


class FinalProject(Expression):
    """Ordinary projection with renaming, applied once per UCQ branch.

    *mapping* maps output column names to input attribute names. Unlike
    ``Π̃`` it may drop ID attributes — this is the paper's final step that
    removes the IDs added during query expansion.
    """

    __slots__ = ("child", "mapping")

    def __init__(self, child: Expression,
                 mapping: Mapping[str, str]) -> None:
        self.child = child
        self.mapping = dict(mapping)
        child_schema = child.schema()
        for target in self.mapping.values():
            child_schema.attribute(target)  # validate

    def schema(self) -> RelationSchema:
        child_schema = self.child.schema()
        attrs = tuple(
            Attribute(out_name,
                      child_schema.attribute(in_name).is_id)
            for out_name, in_name in self.mapping.items())
        return RelationSchema(f"π({child_schema.name})", attrs, None)

    def wrappers(self) -> set[str]:
        return self.child.wrappers()

    def evaluate(self, provider: DataProvider) -> Relation:
        child_rows = self.child.evaluate(provider)
        items = tuple(self.mapping.items())
        rows = [{out_name: row[in_name] for out_name, in_name in items}
                for row in child_rows]
        return Relation.from_trusted(self.schema(), rows)

    def notation(self) -> str:
        cols = ",".join(f"{src}→{dst}" if src != dst else dst
                        for dst, src in self.mapping.items())
        return f"π{{{cols}}}({self.child.notation()})"


class Union(Expression):
    """Union of schema-compatible branches (set semantics by default).

    The result of LAV rewriting is a union of conjunctive queries; every
    branch is a walk wrapped in a :class:`FinalProject` that aligns its
    columns.
    """

    __slots__ = ("branches", "distinct")

    def __init__(self, branches: Iterable[Expression],
                 distinct: bool = True) -> None:
        self.branches = tuple(branches)
        self.distinct = distinct
        if not self.branches:
            raise SchemaError("union requires at least one branch")
        first = set(self.branches[0].schema().attribute_names)
        for branch in self.branches[1:]:
            other = set(branch.schema().attribute_names)
            if other != first:
                raise SchemaError(
                    "union branches have incompatible schemas: "
                    f"{sorted(first)} vs {sorted(other)}")

    def schema(self) -> RelationSchema:
        return self.branches[0].schema()

    def wrappers(self) -> set[str]:
        result: set[str] = set()
        for branch in self.branches:
            result |= branch.wrappers()
        return result

    def evaluate(self, provider: DataProvider) -> Relation:
        names = self.schema().attribute_names
        rows: list[dict[str, object]] = []
        # With distinct=True, deduplicate during the single append pass
        # instead of materializing everything and copying through
        # Relation.distinct().
        seen: set[tuple] | None = set() if self.distinct else None
        for branch in self.branches:
            for row in branch.evaluate(provider):
                if seen is not None:
                    key = tuple(row[n] for n in names)
                    if key in seen:
                        continue
                    seen.add(key)
                rows.append({n: row[n] for n in names})
        return Relation.from_trusted(self.schema(), rows)

    def notation(self) -> str:
        return " ∪ ".join(b.notation() for b in self.branches)


def evaluate(expression: Expression, provider: DataProvider) -> Relation:
    """Convenience top-level evaluation call."""
    return expression.evaluate(provider)
