"""Physical execution layer: scans, shared-scan cache, pushdown-aware
operators.

The logical algebra (:mod:`repro.relational.algebra`) describes *what*
a UCQ computes — Π̃/⋈̃ trees whose :class:`~repro.relational.algebra.
Scan` leaves materialize whole wrapper relations. This module is the
*how*: operators an execution planner (:mod:`repro.query.planner`)
assembles into a plan that

* fetches only the columns a walk actually outputs (**projection
  pushdown** — the request travels through :class:`ScanProvider` down
  to the wrapper's capability protocol);
* filters a hash join's probe side by the build side's key set
  (**semi-join / ID-filter pushdown** — an :class:`IdFilter` handed to
  the probe scan at run time);
* fetches every ``(wrapper, columns, filter)`` combination **once** per
  batch/union via a :class:`ScanCache` (single-flight, thread-safe,
  invalidated at evolution-epoch boundaries).

Physical operators exchange :class:`~repro.relational.rows.Relation`
objects under source-qualified attribute names, exactly like the
logical algebra — the equivalence suite holds both against each other.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from operator import itemgetter
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, \
    Sequence, TypeVar

from repro.errors import SchemaError
from repro.relational import accel
from repro.relational.algebra import DataProvider
from repro.relational.columnar import ColumnBatch, EncodedColumn, \
    concat_batches
from repro.relational.metrics import active_collector
from repro.relational.rows import Relation
from repro.relational.schema import Attribute, RelationSchema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.ontology import OntologyFingerprint

__all__ = [
    "IdFilter", "ScanKey", "ScanStats", "ScanCache",
    "ScanProvider", "WrapperScanProvider", "RelationScanProvider",
    "CachingScanProvider", "as_scan_provider",
    "FusedBatch",
    "PhysicalOperator", "PhysicalScan", "PhysicalHashJoin",
    "PhysicalProject", "PhysicalUnion",
]


@dataclass(frozen=True)
class IdFilter:
    """A pushed-down semi-join filter: keep rows where *attribute* takes
    one of *values*.

    The filter is always a *prefilter* — the join re-checks its full
    condition — so honoring it partially (or ignoring it) is never
    incorrect, just slower. Attribute naming follows the carrier: the
    planner builds filters over source-qualified names, the wrapper
    layer receives them translated to local names.
    """

    attribute: str
    values: frozenset

    def __post_init__(self) -> None:
        if not isinstance(self.values, frozenset):
            object.__setattr__(self, "values", frozenset(self.values))

    def matches(self, row: Mapping[str, object]) -> bool:
        return row.get(self.attribute) in self.values

    def __len__(self) -> int:
        return len(self.values)

    def notation(self) -> str:
        return f"{self.attribute}∈{{{len(self.values)} ids}}"


# ---------------------------------------------------------------------------
# Scan cache
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScanKey:
    """Identity of one physical scan result.

    ``data_version`` ties the entry to the state of the backing data
    (wrappers bump it when their source mutates in place), so a cache
    can survive across calls without serving stale rows.
    """

    wrapper: str
    data_version: int
    columns: frozenset[str] | None
    id_filter: tuple[str, frozenset] | None


@dataclass
class ScanStats:
    """Counters of one :class:`ScanCache` (shared-scan observability)."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    #: entries dropped because their wrapper's data_version moved on
    evictions: int = 0

    @property
    def shared_fetches_avoided(self) -> int:
        return self.hits

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict[str, int | float]:
        return {"hits": self.hits, "misses": self.misses,
                "invalidations": self.invalidations,
                "evictions": self.evictions,
                "hit_rate": round(self.hit_rate, 4)}


class _Inflight:
    """Single-flight slot: one thread fetches, the rest wait."""

    __slots__ = ("event", "relation", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.relation: Relation | None = None
        self.error: BaseException | None = None


class ScanCache:
    """Shared, thread-safe cache of materialized wrapper scans.

    Keys are :class:`ScanKey`; values are :class:`Relation` objects
    shared between all consumers — treat them as immutable. Concurrent
    requests for the same key are single-flighted: one thread fetches,
    the rest block on the result, while *distinct* keys fetch fully in
    parallel (wrapper I/O overlaps).

    Epoch invalidation: :meth:`validate` compares the ontology
    fingerprint the cache was populated under with the current one and
    clears everything on mismatch — a release landing through
    Algorithm 1 (or any out-of-band mutation of ``T``) drops all cached
    scans at the epoch boundary.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict[ScanKey, _Inflight] = {}  # guarded-by: _lock
        #: wrapper → data_version last seen; when a wrapper's version
        #: moves on, its superseded entries are evicted so a
        #: long-running cache cannot accumulate one generation of
        #: materialized relations per data write
        self._versions: dict[str, int] = {}  # guarded-by: _lock
        self._fingerprint: "OntologyFingerprint | None" = \
            None  # guarded-by: _lock
        self.stats = ScanStats()  # guarded-by: _lock

    def __len__(self) -> int:
        with self._lock:
            return sum(1 for slot in self._entries.values()
                       if slot.event.is_set() and slot.error is None)

    def clear(self) -> int:
        """Drop every cached scan; returns how many were dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._versions.clear()
            if dropped:
                self.stats.invalidations += 1
            return dropped

    def validate(self, fingerprint: "OntologyFingerprint") -> None:
        """Clear the cache if the ontology evolved since it was filled."""
        with self._lock:
            if self._fingerprint is not None and \
                    self._fingerprint != fingerprint and self._entries:
                self._entries.clear()
                self._versions.clear()
                self.stats.invalidations += 1
            self._fingerprint = fingerprint

    def get_or_fetch(self, key: ScanKey,
                     fetch: Callable[[], Relation]) -> Relation:
        with self._lock:
            last = self._versions.get(key.wrapper)
            if last is not None and last != key.data_version:
                stale = [k for k in self._entries
                         if k.wrapper == key.wrapper
                         and k.data_version != key.data_version]
                for k in stale:
                    del self._entries[k]
                self.stats.evictions += len(stale)
            self._versions[key.wrapper] = key.data_version
            slot = self._entries.get(key)
            if slot is None:
                slot = _Inflight()
                self._entries[key] = slot
                owner = True
                self.stats.misses += 1
            else:
                owner = False
                self.stats.hits += 1
        if owner:
            try:
                slot.relation = fetch()
            except BaseException as exc:
                slot.error = exc
                with self._lock:
                    # Failed fetches are not cached; waiters re-raise.
                    if self._entries.get(key) is slot:
                        del self._entries[key]
                slot.event.set()
                raise
            slot.event.set()
            return slot.relation
        slot.event.wait()
        if slot.error is not None:
            raise slot.error
        return slot.relation


# ---------------------------------------------------------------------------
# Scan providers
# ---------------------------------------------------------------------------


class ScanProvider:
    """Resolves physical scans (qualified columns) for plan execution."""

    def scan(self, name: str, columns: Sequence[str] | None = None,
             id_filter: IdFilter | None = None) -> Relation:
        """Materialize wrapper *name* restricted to *columns* (qualified
        attribute names, None = all) and filtered by *id_filter*."""
        raise NotImplementedError

    def estimate(self, name: str) -> int | None:
        """Estimated cardinality of the wrapper (None = unknown)."""
        return None

    def data_version(self, name: str) -> int:
        """Version token of the wrapper's backing data."""
        return 0


class WrapperScanProvider(ScanProvider):
    """Scans served by bound physical wrappers (the production path).

    *resolve* maps a wrapper name to its :class:`~repro.wrappers.base.
    Wrapper` — usually ``ontology.physical_wrapper``. Qualified column
    names are translated to the wrapper's local names so its capability
    protocol can push the work into the source.
    """

    def __init__(self, resolve: Callable[[str], object]) -> None:
        self._resolve = resolve

    def scan(self, name: str, columns: Sequence[str] | None = None,
             id_filter: IdFilter | None = None) -> Relation:
        wrapper = self._resolve(name)
        local = {f"{wrapper.source_name}/{a}": a
                 for a in wrapper.attributes}
        local_columns = None
        if columns is not None:
            try:
                local_columns = [local[c] for c in columns]
            except KeyError as exc:
                raise SchemaError(
                    f"wrapper {name} is missing attribute {exc.args[0]!r}; "
                    "the source likely evolved under the wrapper"
                ) from None
        local_filter = None
        if id_filter is not None:
            attr = local.get(id_filter.attribute)
            if attr is None:
                raise SchemaError(
                    f"wrapper {name} has no attribute "
                    f"{id_filter.attribute!r} to filter on")
            local_filter = IdFilter(attr, id_filter.values)
        return wrapper.relation(qualified=True, columns=local_columns,
                                id_filter=local_filter)

    def estimate(self, name: str) -> int | None:
        try:
            return self._resolve(name).estimate_rows()
        except Exception:
            return None

    def data_version(self, name: str) -> int:
        try:
            return self._resolve(name).data_version()
        except Exception:
            return 0


class RelationScanProvider(ScanProvider):
    """Adapts a logical :data:`~repro.relational.algebra.DataProvider`
    (mapping or callable of *full* qualified relations) to the physical
    protocol: projection and filtering happen here, after the fetch.

    The capability-less fallback — used for explicitly supplied test
    providers, and the baseline the pushdown benchmarks compare against.
    """

    def __init__(self, provider: DataProvider) -> None:
        self._provider = provider

    def _resolve(self, name: str) -> Relation:
        provider = self._provider
        if callable(provider):
            return provider(name)
        try:
            return provider[name]
        except KeyError:
            raise SchemaError(f"no data for relation {name!r}") from None

    def scan(self, name: str, columns: Sequence[str] | None = None,
             id_filter: IdFilter | None = None) -> Relation:
        relation = self._resolve(name)
        if columns is None and id_filter is None:
            return relation
        schema = relation.schema
        if columns is not None:
            missing = [c for c in columns if c not in schema]
            if missing:
                raise SchemaError(
                    f"wrapper {name} is missing attributes "
                    f"{sorted(missing)}")
            wanted = frozenset(columns)
            out_schema = RelationSchema(
                schema.name,
                tuple(a for a in schema.attributes if a.name in wanted),
                schema.source)
            names: tuple[str, ...] = tuple(
                a.name for a in out_schema.attributes)
        else:
            out_schema = schema
            names = schema.attribute_names
        rows = []
        for row in relation:
            if id_filter is not None and not id_filter.matches(row):
                continue
            rows.append({n: row[n] for n in names}
                        if columns is not None else dict(row))
        return Relation.from_trusted(out_schema, rows)

    def estimate(self, name: str) -> int | None:
        provider = self._provider
        if callable(provider):
            return None  # resolving would trigger a fetch
        try:
            return len(provider[name])
        except (KeyError, TypeError):
            return None


class CachingScanProvider(ScanProvider):
    """Wraps a provider with a :class:`ScanCache` (shared scans)."""

    def __init__(self, inner: ScanProvider, cache: ScanCache) -> None:
        self.inner = inner
        self.cache = cache

    def scan(self, name: str, columns: Sequence[str] | None = None,
             id_filter: IdFilter | None = None) -> Relation:
        key = ScanKey(
            wrapper=name,
            data_version=self.inner.data_version(name),
            columns=frozenset(columns) if columns is not None else None,
            id_filter=(id_filter.attribute, id_filter.values)
            if id_filter is not None else None)
        return self.cache.get_or_fetch(
            key, lambda: self.inner.scan(name, columns, id_filter))

    def estimate(self, name: str) -> int | None:
        return self.inner.estimate(name)

    def data_version(self, name: str) -> int:
        return self.inner.data_version(name)


def as_scan_provider(provider: "DataProvider | ScanProvider | None",
                     resolve_wrapper: Callable[[str], object]
                     | None = None) -> ScanProvider:
    """Coerce whatever the caller supplied into a :class:`ScanProvider`.

    ``None`` requires *resolve_wrapper* (the ontology's bound physical
    wrappers); an existing :class:`ScanProvider` passes through; plain
    mappings/callables get the :class:`RelationScanProvider` fallback.
    """
    if isinstance(provider, ScanProvider):
        return provider
    if provider is None:
        if resolve_wrapper is None:
            raise SchemaError(
                "no data provider given and no physical wrappers bound")
        return WrapperScanProvider(resolve_wrapper)
    return RelationScanProvider(provider)


# ---------------------------------------------------------------------------
# Fused pipelines
# ---------------------------------------------------------------------------


class FusedBatch:
    """The deferred result of a fused pipeline segment (PR 10).

    The vectorized engine (PR 7) materializes one :class:`ColumnBatch`
    per operator — every join gathers *every* column of both sides even
    when the closing projection keeps three of them. A fused segment
    instead carries

    * ``leaves`` — the scan batches feeding the segment, untouched (so
      their relation-memoized column pivots and dictionary encodings
      stay shared across queries), and
    * ``indices`` — one gather list per leaf mapping each *output* row
      onto that leaf's stored rows (``None`` = identity over a dense
      leaf).

    Joins only compose the index lists; values are gathered exactly
    once, at the closing projection, and only for the columns it
    outputs. Pipeline breakers (join build, union dedup) remain — they
    are where a segment's indices are finally consumed.

    Column lookup is by qualified name, first leaf wins — the same
    leftmost-match rule :meth:`ColumnBatch.rename` applies over a
    joined batch's concatenated attributes, so self-joins resolve
    identically in both engines.
    """

    __slots__ = ("leaves", "indices", "length")

    #: an index entry is ``None`` (identity), a Python int list, or —
    #: on the accelerated path — an int64 numpy vector; every consumer
    #: handles all three.
    def __init__(self, leaves: Sequence[ColumnBatch],
                 indices: Sequence[Any],
                 length: int) -> None:
        self.leaves = tuple(leaves)
        self.indices = tuple(indices)
        self.length = length

    @classmethod
    def from_batch(cls, batch: ColumnBatch) -> "FusedBatch":
        """Wrap a materialized batch as a single-leaf fused result."""
        if batch.selection is not None:
            return cls((batch,), (batch.selection,), len(batch))
        return cls((batch,), (None,), len(batch))

    def __len__(self) -> int:
        return self.length

    def locate(self, name: str) -> tuple[int, int]:
        """``(leaf, column)`` position of attribute *name*."""
        for leaf_pos, leaf in enumerate(self.leaves):
            names = leaf.schema.attribute_names
            if name in names:
                return leaf_pos, names.index(name)
        raise SchemaError(
            f"fused pipeline has no attribute {name!r}")

    def code_lane(self, leaf_pos: int, column: int
                  ) -> "tuple[EncodedColumn, Any] | None":
        """``(encoding, per-output-row codes)`` of one leaf column, or
        ``None`` when the column fell back to raw values. Codes come
        back as an int64 vector on the accelerated path, a Python list
        otherwise."""
        leaf = self.leaves[leaf_pos]
        encoded = leaf.encoded_at(column)
        if encoded is None:
            return None
        index = self.indices[leaf_pos]
        if accel.available():
            if index is None:
                return encoded, encoded.codes_vector()
            return encoded, accel.take(encoded.codes_vector(), index)
        if index is None:
            return encoded, encoded.codes
        return encoded, list(map(encoded.codes.__getitem__, index))

    def value_lane(self, leaf_pos: int, column: int) -> list[object]:
        """Per-output-row raw values of one leaf column (shared when
        the leaf is dense and untouched — treat as read-only)."""
        leaf = self.leaves[leaf_pos]
        data = leaf.columns[column]
        index = self.indices[leaf_pos]
        if index is None:
            return data
        if accel.is_array(index):
            index = index.tolist()
        return list(map(data.__getitem__, index))

    def compose(self, picks: Any) -> tuple[Any, ...]:
        """Every index list re-gathered through *picks* (output-row
        positions) — how a join threads its match list through both
        sides' existing gather state."""
        out: list[Any] = []
        use_accel = accel.available()
        for index in self.indices:
            if index is None:
                out.append(picks)  # aliases across leaves: read-only
            elif use_accel:
                out.append(accel.take(index, picks))
            else:
                out.append(list(map(index.__getitem__, picks)))
        return tuple(out)

    def materialize(self) -> ColumnBatch:
        """Gather every leaf column (the unfused interop boundary)."""
        attrs: list[Attribute] = []
        columns: list[list[object]] = []
        for leaf, index in zip(self.leaves, self.indices):
            attrs.extend(leaf.schema.attributes)
            if index is None:
                columns.extend(leaf.columns)
            else:
                if accel.is_array(index):
                    index = index.tolist()
                columns.extend(
                    list(map(data.__getitem__, index))
                    for data in leaf.columns)
        if len(self.leaves) == 1:
            name = self.leaves[0].schema.name
        else:
            name = "({})".format(
                "⋈̃".join(leaf.schema.name for leaf in self.leaves))
        return ColumnBatch(RelationSchema(name, tuple(attrs), None),
                           columns, _length=self.length)

    def project(self, mapping: Mapping[str, str],
                schema: RelationSchema,
                distinct: bool = False) -> ColumnBatch:
        """Materialize exactly the *mapping*'s columns under *schema*.

        This is where a fused segment's values finally move. Encoded
        leaf columns are gathered as int codes and decoded afterwards;
        the gathered codes are installed on the output batch so a
        downstream DISTINCT (or a union's global dedup over a single
        branch) reuses them. With ``distinct`` the first-occurrence
        keep list is computed *on the code lanes first* — packed into
        single ints when every output column is encoded — and only
        surviving rows are decoded.
        """
        located = [self.locate(src) for src in mapping.values()]
        if not located:
            length = min(self.length, 1) if distinct else self.length
            return ColumnBatch(schema, (), _length=length)
        encodings: "list[EncodedColumn | None]" = []
        # Any-typed lanes: a lane holds either int codes or raw
        # values, and list invariance would otherwise reject the mix.
        lanes: list[list[Any]] = []
        for leaf_pos, column in located:
            coded = self.code_lane(leaf_pos, column)
            if coded is not None:
                encodings.append(coded[0])
                lanes.append(coded[1])
            else:
                encodings.append(None)
                lanes.append(self.value_lane(leaf_pos, column))
        if distinct:
            keep = _first_occurrences(lanes)
            if keep is not None:
                lanes = [accel.take(lane, keep)
                         if accel.is_array(lane)
                         else list(map(lane.__getitem__, keep))
                         for lane in lanes]
        length = len(lanes[0])
        columns: list[list[object]] = []
        for lane, encoded in zip(lanes, encodings):
            if encoded is None:
                columns.append(lane)
            else:
                picks = lane.tolist() if accel.is_array(lane) else lane
                columns.append(
                    list(map(encoded.values.__getitem__, picks)))
        batch = ColumnBatch(schema, columns, _length=length)
        for position, (lane, encoded) in enumerate(
                zip(lanes, encodings)):
            if encoded is not None:
                batch.install_encoding(position, EncodedColumn(
                    lane, encoded.values, encoded.index))
        return batch


def _first_occurrences(lanes: Sequence[list[Any]],
                       ) -> "list[int] | None":
    """Keep list of first-occurrence rows over *lanes*, or ``None``
    when every row is already unique (keep everything, gather nothing
    twice). Encoded lanes carry int codes, so the zip keys hash small
    ints instead of arbitrary objects — same dedup strategy as
    :meth:`ColumnBatch.distinct`."""
    if lanes and all(map(accel.is_array, lanes)):
        return accel.first_occurrence_keep(lanes)
    keys: Iterable[object]
    if len(lanes) == 1:
        keys = lanes[0]
    else:
        keys = zip(*lanes)
    seen: set = set()
    keep: list[int] = []
    add = seen.add
    for i, key in enumerate(keys):
        if key not in seen:
            add(key)
            keep.append(i)
    if len(keep) == len(lanes[0]):
        return None
    return keep


# ---------------------------------------------------------------------------
# Physical operators
# ---------------------------------------------------------------------------


_ExecResult = TypeVar("_ExecResult", Relation, ColumnBatch, FusedBatch)


class PhysicalOperator:
    """Base class of physical plan nodes.

    Every operator offers three execution tiers over the same plan
    shape: :meth:`execute` is the original row-at-a-time engine
    (per-row dicts and itemgetters — kept as the comparison baseline
    and fallback), :meth:`execute_batch` is the vectorized engine
    exchanging :class:`~repro.relational.columnar.ColumnBatch` objects,
    and :meth:`execute_encoded` is the encoded tier (PR 10): joins run
    on dictionary codes and pipeline-compatible chains fuse into one
    gather pass (:meth:`execute_fused` / :class:`FusedBatch`).

    The public ``execute*`` methods are thin instrumented wrappers:
    when the thread has an active
    :class:`~repro.relational.metrics.MetricsCollector`, each call
    records a :class:`~repro.relational.metrics.PlanMetrics` frame
    (rows out, wall time) around the ``_execute*`` implementation.
    Subclasses override the underscored implementations; each tier
    defaults to degrading one tier down (encoded → batch → rows), so a
    custom operator implementing only ``_execute`` still runs inside
    any plan.
    """

    def schema(self) -> RelationSchema:
        raise NotImplementedError

    # -- public entry points (metrics instrumentation) -----------------------

    def execute(self, provider: ScanProvider,
                runtime_filter: IdFilter | None = None) -> Relation:
        """Materialize the node row-at-a-time. *runtime_filter* only
        reaches scans — a parent hash join pushes its build-side key
        set down here."""
        return self._instrumented(self._execute, provider,
                                  runtime_filter)

    def execute_batch(self, provider: ScanProvider,
                      runtime_filter: IdFilter | None = None,
                      ) -> ColumnBatch:
        """Vectorized execution: materialize the node as a batch."""
        return self._instrumented(self._execute_batch, provider,
                                  runtime_filter)

    def execute_encoded(self, provider: ScanProvider,
                        runtime_filter: IdFilter | None = None,
                        ) -> ColumnBatch:
        """Encoded execution: vectorized, with dictionary-coded join
        keys and fused pipeline segments where the node supports them.
        """
        return self._instrumented(self._execute_encoded, provider,
                                  runtime_filter)

    def execute_fused(self, provider: ScanProvider,
                      runtime_filter: IdFilter | None = None,
                      ) -> FusedBatch:
        """Execute as (part of) a fused pipeline segment: the result
        is gather state, not materialized columns. Operators that do
        not fuse return a single-leaf :class:`FusedBatch` wrapping
        their materialized batch — fusion degrades, never breaks."""
        return self._instrumented(self._execute_fused, provider,
                                  runtime_filter)

    def _instrumented(self,
                      impl: "Callable[[ScanProvider, IdFilter | None],"
                            " _ExecResult]",
                      provider: ScanProvider,
                      runtime_filter: IdFilter | None) -> _ExecResult:
        collector = active_collector()
        if collector is None:
            return impl(provider, runtime_filter)
        kind, label, detail = self._metrics_entry(runtime_filter)
        frame = collector.enter(self, kind, label, detail)
        try:
            result = impl(provider, runtime_filter)
        except BaseException:
            collector.abort(frame)
            raise
        collector.exit(frame, len(result))
        return result

    def _metrics_entry(self, runtime_filter: IdFilter | None
                       ) -> tuple[str, str, dict[str, object] | None]:
        """``(kind, label, detail)`` of this node's metrics frame."""
        name = type(self).__name__
        return (name.lower(), name, None)

    # -- implementations (overridden by subclasses) --------------------------

    def _execute(self, provider: ScanProvider,
                 runtime_filter: IdFilter | None = None) -> Relation:
        raise NotImplementedError

    def _execute_batch(self, provider: ScanProvider,
                       runtime_filter: IdFilter | None = None,
                       ) -> ColumnBatch:
        # Adapts the row engine so custom operators keep working inside
        # a vectorized plan. Calls the *public* execute — the collector
        # collapses the re-entrant frame onto this node's own.
        return self.execute(provider, runtime_filter).columnar()

    def _execute_encoded(self, provider: ScanProvider,
                         runtime_filter: IdFilter | None = None,
                         ) -> ColumnBatch:
        return self.execute_batch(provider, runtime_filter)

    def _execute_fused(self, provider: ScanProvider,
                       runtime_filter: IdFilter | None = None,
                       ) -> FusedBatch:
        return FusedBatch.from_batch(
            self.execute_encoded(provider, runtime_filter))

    def explain_lines(self, indent: int = 0) -> list[str]:
        raise NotImplementedError

    def notation(self) -> str:
        return "\n".join(self.explain_lines())

    def __str__(self) -> str:
        return self.notation()


@dataclass
class PhysicalScan(PhysicalOperator):
    """A leaf scan with pushed-down projection (and, at run time, an
    optional pushed-down semi-join filter)."""

    relation_schema: RelationSchema
    #: qualified column subset to fetch; None = all columns
    columns: tuple[str, ...] | None = None
    #: columns of the wrapper's full relation (for explain's "k/n")
    total_columns: int = 0
    #: filled by the planner: "(shared ×3)" etc.
    annotation: str = ""

    @property
    def wrapper_name(self) -> str:
        return self.relation_schema.name

    def schema(self) -> RelationSchema:
        return self.relation_schema

    def _execute(self, provider: ScanProvider,
                 runtime_filter: IdFilter | None = None) -> Relation:
        return provider.scan(self.wrapper_name, self.columns,
                             runtime_filter)

    def _execute_batch(self, provider: ScanProvider,
                       runtime_filter: IdFilter | None = None,
                       ) -> ColumnBatch:
        # The row→batch boundary: the wrapper's relation pivots to
        # columns once and the pivot is memoized on the relation, so a
        # scan shared through the ScanCache pays it once per fetch.
        # Wrappers are free to order columns differently than the plan
        # declared (rows are dicts, so the row engine never noticed);
        # the batch is realigned to the plan's order — a zero-copy
        # rename — so downstream operators can trust plan schemas.
        batch = provider.scan(self.wrapper_name, self.columns,
                              runtime_filter).columnar()
        return batch.reorder(self.relation_schema.attribute_names)

    def _execute_fused(self, provider: ScanProvider,
                       runtime_filter: IdFilter | None = None,
                       ) -> FusedBatch:
        # No reorder here: fused consumers resolve columns by name, so
        # the relation-memoized batch — and the dictionary encodings
        # memoized on it — stays the *same object* for every query
        # scanning this wrapper, instead of one rename wrapper each.
        batch = provider.scan(self.wrapper_name, self.columns,
                              runtime_filter).columnar()
        return FusedBatch.from_batch(batch)

    def _metrics_entry(self, runtime_filter: IdFilter | None
                       ) -> tuple[str, str, dict[str, object] | None]:
        detail: dict[str, object] = {"wrapper": self.wrapper_name}
        label = f"scan {self.wrapper_name}"
        if runtime_filter is not None:
            detail["filtered"] = True
            label += f" [{runtime_filter.notation()}]"
        return ("scan", label, detail)

    def explain_lines(self, indent: int = 0) -> list[str]:
        pad = "  " * indent
        if self.columns is None:
            cols = f"cols=*/{self.total_columns or '?'}"
        else:
            pushed = (self.total_columns - len(self.columns)
                      if self.total_columns else 0)
            cols = (f"cols={len(self.columns)}/{self.total_columns}"
                    f" [pushed ↓{pushed}]")
        note = f" {self.annotation}" if self.annotation else ""
        return [f"{pad}scan {self.wrapper_name} {cols}{note}"]


@dataclass
class PhysicalHashJoin(PhysicalOperator):
    """Hash equi-join with plan-time build-side choice and optional
    semi-join pushdown into a probe-side scan.

    *conditions* pairs ``(build_attr, probe_attr)`` in qualified names.
    Execution materializes the build side first; when the probe is a
    :class:`PhysicalScan` the distinct build keys of the first condition
    travel down as an :class:`IdFilter`, so the probe fetches only
    joinable rows. The join re-checks every condition, so the filter is
    free to be a superset.
    """

    build: PhysicalOperator
    probe: PhysicalOperator
    conditions: tuple[tuple[str, str], ...]
    #: estimated build-side cardinality (explain; None = unknown)
    build_estimate: int | None = None
    semi_join: bool = True

    def schema(self) -> RelationSchema:
        b, p = self.build.schema(), self.probe.schema()
        return RelationSchema(
            f"({b.name}⋈̃{p.name})",
            tuple(b.attributes) + tuple(p.attributes), None)

    def _execute(self, provider: ScanProvider,
                 runtime_filter: IdFilter | None = None) -> Relation:
        build_rel = self.build.execute(provider)
        out_schema = self.schema()
        if not len(build_rel):
            return Relation.from_trusted(out_schema, [])

        build_keys = [c[0] for c in self.conditions]
        probe_keys = [c[1] for c in self.conditions]
        # itemgetter keys: a scalar for single-condition joins, a tuple
        # otherwise — consistent between the two sides.
        build_key = itemgetter(*build_keys)
        probe_key = itemgetter(*probe_keys)
        table: dict[object, list[dict[str, object]]] = {}
        for row in build_rel:
            table.setdefault(build_key(row), []).append(row)

        pushed: IdFilter | None = None
        if self.semi_join and isinstance(self.probe, PhysicalScan):
            try:
                values = frozenset(
                    row[build_keys[0]] for row in build_rel)
                pushed = IdFilter(probe_keys[0], values)
            except TypeError:
                pushed = None  # unhashable key values: fetch unfiltered
        probe_rel = self.probe.execute(provider, pushed)

        rows: list[dict[str, object]] = []
        for row in probe_rel:
            matches = table.get(probe_key(row), ())
            for match in matches:
                merged = dict(match)
                merged.update(row)
                rows.append(merged)
        return Relation.from_trusted(out_schema, rows)

    def _execute_batch(self, provider: ScanProvider,
                       runtime_filter: IdFilter | None = None,
                       ) -> ColumnBatch:
        """Vectorized hash join: key columns are zipped once into an
        index table, matches join as two index lists, and every output
        column is gathered in a single pass — no per-match dict
        merging."""
        build = self.build.execute_batch(provider)
        if not len(build):
            return ColumnBatch.empty(self.schema())

        build_keys = [c[0] for c in self.conditions]
        probe_keys = [c[1] for c in self.conditions]
        build_key_columns = [build.raw_column(k) for k in build_keys]
        table: dict[object, list[int]] = {}
        if len(build_key_columns) == 1:
            for i, key in enumerate(build_key_columns[0]):
                table.setdefault(key, []).append(i)
        else:
            for i, key in enumerate(zip(*build_key_columns)):
                table.setdefault(key, []).append(i)

        pushed: IdFilter | None = None
        if self.semi_join and isinstance(self.probe, PhysicalScan):
            try:
                pushed = IdFilter(probe_keys[0],
                                  frozenset(build_key_columns[0]))
            except TypeError:
                pushed = None  # unhashable key values: fetch unfiltered
        probe = self.probe.execute_batch(provider, pushed)

        probe_key_columns = [probe.raw_column(k) for k in probe_keys]
        probe_iter: Iterable[object]
        if len(probe_key_columns) == 1:
            probe_iter = probe_key_columns[0]
        else:
            probe_iter = zip(*probe_key_columns)
        build_indices: list[int] = []
        probe_indices: list[int] = []
        get = table.get
        append_probe = probe_indices.append
        for j, key in enumerate(probe_iter):
            matches = get(key)
            if matches is None:
                continue
            build_indices += matches
            if len(matches) == 1:
                append_probe(j)
            else:
                probe_indices += [j] * len(matches)

        columns = [list(map(column.__getitem__, build_indices))
                   for column in build.dense_columns()]
        columns += [list(map(column.__getitem__, probe_indices))
                    for column in probe.dense_columns()]
        # Output schema follows the executed batches' actual column
        # order (a custom child may emit columns in any order); all
        # downstream access is by name, so order is free to differ
        # from the planner's declared schema.
        out_schema = RelationSchema(
            f"({build.schema.name}⋈̃{probe.schema.name})",
            tuple(build.schema.attributes) + tuple(probe.schema.attributes),
            None)
        return ColumnBatch(out_schema, columns,
                           _length=len(build_indices))

    def _execute_encoded(self, provider: ScanProvider,
                         runtime_filter: IdFilter | None = None,
                         ) -> ColumnBatch:
        return self._execute_fused(provider,
                                   runtime_filter).materialize()

    def _execute_fused(self, provider: ScanProvider,
                       runtime_filter: IdFilter | None = None,
                       ) -> FusedBatch:
        """Fused, int-coded hash join.

        Both sides execute fused; the join never gathers data columns —
        it only produces two match lists and composes them through the
        children's gather state. When the (single) key column is
        dictionary-encoded on both sides, the probe dictionary is
        remapped onto the build code space once
        (:meth:`EncodedColumn.remap_onto` — one hash per *distinct*
        value) and the build table becomes a dense code-indexed bucket
        list, so the per-row probe is a list index instead of an object
        hash. When only the *probe* side is encoded (typical shape: a
        unique-ID build column aborts encoding, its fanned-out foreign
        side doesn't), each build row hashes once through the probe
        dictionary's existing value→code index and the bucket list is
        laid out over the probe code space — the probe loop is still a
        list index per row. Multi-condition joins and joins with an
        unencoded probe key fall back to the raw-value hash table over
        the fused lanes.
        """
        build = self.build.execute_fused(provider)
        if not len(build):
            # Single empty leaf under the *plan* schema: parents still
            # resolve every attribute by name, zero rows flow.
            return FusedBatch.from_batch(
                ColumnBatch.empty(self.schema()))

        build_keys = [c[0] for c in self.conditions]
        probe_keys = [c[1] for c in self.conditions]
        build_located = [build.locate(k) for k in build_keys]
        build_coded = (build.code_lane(*build_located[0])
                       if len(self.conditions) == 1 else None)

        pushed: IdFilter | None = None
        if self.semi_join and isinstance(self.probe, PhysicalScan):
            if build_coded is not None:
                # Distinct build keys via the dictionary: decode each
                # *present* code once (values are hashable by
                # construction — they were dictionary keys).
                decode = build_coded[0].values
                present: "Iterable[int]" = (
                    accel.unique_codes(build_coded[1])
                    if accel.is_array(build_coded[1])
                    else set(build_coded[1]))
                pushed = IdFilter(probe_keys[0], frozenset(
                    map(decode.__getitem__, present)))
            else:
                try:
                    pushed = IdFilter(probe_keys[0], frozenset(
                        build.value_lane(*build_located[0])))
                except TypeError:
                    pushed = None  # unhashable keys: fetch unfiltered
        probe = self.probe.execute_fused(provider, pushed)
        if not len(probe):
            return FusedBatch(build.leaves + probe.leaves,
                              build.compose([]) + probe.compose([]), 0)

        build_sel: Any = []
        probe_sel: Any = []
        append_probe = probe_sel.append
        probe_coded = (probe.code_lane(*probe.locate(probe_keys[0]))
                       if len(self.conditions) == 1 else None)
        if build_coded is not None and probe_coded is not None:
            build_enc, build_codes = build_coded
            probe_enc, probe_codes = probe_coded
            translate = probe_enc.remap_onto(build_enc)
            if accel.available():
                mapped = accel.translate_codes(translate, probe_codes)
                match = accel.csr_probe(build_codes, mapped,
                                        build_enc.cardinality)
                if match is not None:
                    build_sel, probe_sel = match
            else:
                buckets: "list[list[int] | None]" = \
                    [None] * build_enc.cardinality
                for i, code in enumerate(build_codes):
                    bucket = buckets[code]
                    if bucket is None:
                        buckets[code] = [i]
                    else:
                        bucket.append(i)
                for j, probe_code in enumerate(probe_codes):
                    target = translate[probe_code]
                    if target < 0:
                        continue
                    bucket = buckets[target]
                    if bucket is None:
                        continue
                    build_sel += bucket
                    if len(bucket) == 1:
                        append_probe(j)
                    else:
                        probe_sel += [j] * len(bucket)
        elif probe_coded is not None:
            probe_enc, probe_codes = probe_coded
            lookup = probe_enc.index.get
            if accel.available():
                mapped = [lookup(value, -1) for value in
                          build.value_lane(*build_located[0])]
                match = accel.csr_probe(mapped, probe_codes,
                                        probe_enc.cardinality)
                if match is not None:
                    build_sel, probe_sel = match
            else:
                buckets = [None] * probe_enc.cardinality
                for i, value in enumerate(
                        build.value_lane(*build_located[0])):
                    code = lookup(value)
                    if code is None:
                        continue
                    bucket = buckets[code]
                    if bucket is None:
                        buckets[code] = [i]
                    else:
                        bucket.append(i)
                for j, probe_code in enumerate(probe_codes):
                    bucket = buckets[probe_code]
                    if bucket is None:
                        continue
                    build_sel += bucket
                    if len(bucket) == 1:
                        append_probe(j)
                    else:
                        probe_sel += [j] * len(bucket)
        else:
            build_lanes = [build.value_lane(*loc)
                           for loc in build_located]
            table: dict[object, list[int]] = {}
            if len(build_lanes) == 1:
                for i, key in enumerate(build_lanes[0]):
                    table.setdefault(key, []).append(i)
            else:
                for i, key in enumerate(zip(*build_lanes)):
                    table.setdefault(key, []).append(i)
            probe_lanes = [probe.value_lane(*probe.locate(k))
                           for k in probe_keys]
            probe_iter: Iterable[object] = (
                probe_lanes[0] if len(probe_lanes) == 1
                else zip(*probe_lanes))
            get = table.get
            for j, key in enumerate(probe_iter):
                matches = get(key)
                if matches is None:
                    continue
                build_sel += matches
                if len(matches) == 1:
                    append_probe(j)
                else:
                    probe_sel += [j] * len(matches)

        return FusedBatch(build.leaves + probe.leaves,
                          build.compose(build_sel)
                          + probe.compose(probe_sel),
                          len(build_sel))

    def _metrics_entry(self, runtime_filter: IdFilter | None
                       ) -> tuple[str, str, dict[str, object] | None]:
        conds = ",".join(f"{b}={p}" for b, p in self.conditions)
        return ("join", f"⋈ₕ[{conds}]", {"conditions": conds})

    def explain_lines(self, indent: int = 0) -> list[str]:
        pad = "  " * indent
        conds = ",".join(f"{b}={p}" for b, p in self.conditions)
        est = (f" build≈{self.build_estimate}"
               if self.build_estimate is not None else "")
        semi = ""
        if self.semi_join and isinstance(self.probe, PhysicalScan):
            semi = (f" semi-join→{self.probe.wrapper_name}"
                    f"[{self.conditions[0][1]}]")
        lines = [f"{pad}⋈ₕ[{conds}]{est}{semi}"]
        lines.extend(self.build.explain_lines(indent + 1))
        lines.extend(self.probe.explain_lines(indent + 1))
        return lines


@dataclass
class PhysicalProject(PhysicalOperator):
    """The closing projection of one UCQ branch: rename qualified
    attributes onto feature column names (π of the paper's final step),
    executed in one pass over the child's rows."""

    child: PhysicalOperator
    #: output column name → qualified input attribute
    mapping: dict[str, str] = field(default_factory=dict)

    def schema(self) -> RelationSchema:
        child_schema = self.child.schema()
        attrs = tuple(
            Attribute(out_name, child_schema.attribute(in_name).is_id)
            for out_name, in_name in self.mapping.items())
        return RelationSchema(f"π({child_schema.name})", attrs, None)

    def _execute(self, provider: ScanProvider,
                 runtime_filter: IdFilter | None = None) -> Relation:
        child_rows = self.child.execute(provider)
        items = tuple(self.mapping.items())
        rows = [{out: row[src] for out, src in items}
                for row in child_rows]
        return Relation.from_trusted(self.schema(), rows)

    def _execute_batch(self, provider: ScanProvider,
                       runtime_filter: IdFilter | None = None,
                       ) -> ColumnBatch:
        # Vectorized projection is a rename: output columns alias the
        # child's lists, no data moves at all.
        return self.child.execute_batch(provider).rename(self.mapping)

    def _execute_encoded(self, provider: ScanProvider,
                         runtime_filter: IdFilter | None = None,
                         ) -> ColumnBatch:
        # The closing projection is where a fused pipeline finally
        # gathers values — and only for the mapped columns.
        return self.child.execute_fused(
            provider, runtime_filter).project(self.mapping,
                                              self.schema())

    def execute_encoded_distinct(self, provider: ScanProvider
                                 ) -> ColumnBatch:
        """Project with branch-local dedup fused in (a distinct
        union's pre-pass): first occurrences are computed on the code
        lanes *before* any value is gathered or decoded."""
        return self._instrumented(self._execute_encoded_distinct,
                                  provider, None)

    def _execute_encoded_distinct(self, provider: ScanProvider,
                                  runtime_filter: IdFilter | None
                                  = None) -> ColumnBatch:
        return self.child.execute_fused(
            provider, runtime_filter).project(self.mapping,
                                              self.schema(),
                                              distinct=True)

    def _metrics_entry(self, runtime_filter: IdFilter | None
                       ) -> tuple[str, str, dict[str, object] | None]:
        return ("project", f"π[{len(self.mapping)} cols]", None)

    def explain_lines(self, indent: int = 0) -> list[str]:
        pad = "  " * indent
        cols = ",".join(f"{dst}←{src}" if src != dst else dst
                        for dst, src in self.mapping.items())
        return [f"{pad}π{{{cols}}}",
                *self.child.explain_lines(indent + 1)]


@dataclass
class PhysicalUnion(PhysicalOperator):
    """Union of schema-compatible branches; ``distinct`` deduplicates
    during the single output pass. Branch scans hitting one
    :class:`ScanCache` fetch each shared wrapper once."""

    branches: tuple[PhysicalOperator, ...]
    distinct: bool = True

    def __post_init__(self) -> None:
        if not self.branches:
            raise SchemaError("union requires at least one branch")
        first = set(self.branches[0].schema().attribute_names)
        for branch in self.branches[1:]:
            other = set(branch.schema().attribute_names)
            if other != first:
                raise SchemaError(
                    "union branches have incompatible schemas: "
                    f"{sorted(first)} vs {sorted(other)}")

    def schema(self) -> RelationSchema:
        return self.branches[0].schema()

    def _execute(self, provider: ScanProvider,
                 runtime_filter: IdFilter | None = None) -> Relation:
        # Branch schemas are validated compatible, so branch rows are
        # adopted as-is (consumers treat result rows as immutable);
        # distinct deduplicates during the single pass.
        rows: list[dict[str, object]] = []
        if not self.distinct:
            for branch in self.branches:
                rows.extend(branch.execute(provider))
            return Relation.from_trusted(self.schema(), rows)
        key_of = itemgetter(*self.schema().attribute_names)
        seen: set[object] = set()
        for branch in self.branches:
            for row in branch.execute(provider):
                key = key_of(row)
                if key in seen:
                    continue
                seen.add(key)
                rows.append(row)
        return Relation.from_trusted(self.schema(), rows)

    def _execute_batch(self, provider: ScanProvider,
                       runtime_filter: IdFilter | None = None,
                       ) -> ColumnBatch:
        """Vectorized union: branch batches are aligned by attribute
        name, concatenated column-wise, and deduplicated (when
        ``distinct``) in one zip pass over the value columns."""
        schema = self.schema()
        batches = [branch.execute_batch(provider)
                   for branch in self.branches]
        merged = concat_batches(schema, batches)
        return merged.distinct() if self.distinct else merged

    def _execute_encoded(self, provider: ScanProvider,
                         runtime_filter: IdFilter | None = None,
                         ) -> ColumnBatch:
        """Encoded union: each projection branch pre-deduplicates on
        its own code lanes (so the bulk of duplicate rows never
        decode), then the global dedup runs over the shrunken concat —
        and is skipped entirely for a single pre-deduped branch."""
        schema = self.schema()
        batches: list[ColumnBatch] = []
        pre_deduped: list[bool] = []
        for branch in self.branches:
            if self.distinct and isinstance(branch, PhysicalProject):
                batches.append(
                    branch.execute_encoded_distinct(provider))
                pre_deduped.append(True)
            else:
                batches.append(branch.execute_encoded(provider))
                pre_deduped.append(False)
        merged = concat_batches(schema, batches)
        if not self.distinct:
            return merged
        if len(batches) == 1 and pre_deduped[0]:
            return merged
        return merged.distinct()

    def _metrics_entry(self, runtime_filter: IdFilter | None
                       ) -> tuple[str, str, dict[str, object] | None]:
        kind = "distinct" if self.distinct else "all"
        return ("union", f"∪ {kind}", None)

    def explain_lines(self, indent: int = 0) -> list[str]:
        pad = "  " * indent
        kind = "distinct" if self.distinct else "all"
        lines = [f"{pad}∪ {kind} [{len(self.branches)} branch"
                 f"{'es' if len(self.branches) != 1 else ''}]"]
        for branch in self.branches:
            lines.extend(branch.explain_lines(indent + 1))
        return lines
