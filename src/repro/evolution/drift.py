"""Unanticipated schema-change (drift) detection and adaptation.

The paper handles *announced* evolution: providers publish releases, the
steward runs Algorithm 1. Its closing future-work direction is to
"semi-automatically adapt to **unanticipated** schema changes" — sources
that silently change their payloads. This module implements that
extension on top of the existing machinery:

1. :func:`detect_drift` compares documents actually arriving from a
   source against a wrapper's declared field set and classifies the
   differences into the Table 5 taxonomy (additions, deletions, renames
   via the alignment heuristic, type changes);
2. :func:`propose_release` turns a drift report into a ready
   :class:`~repro.core.release.Release` for a new wrapper version —
   renamed attributes inherit their predecessors' features through the
   ``F`` function, exactly like an announced release would;
3. the confidence of each rename proposal is reported so the steward can
   veto low-confidence alignments (this is what keeps the loop
   *semi*-automatic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.core.ontology import BDIOntology
from repro.core.release import Release
from repro.core.vocabulary import attribute_uri
from repro.errors import EvolutionError
from repro.evolution.changes import Change, ChangeKind
from repro.evolution.release_builder import build_release
from repro.rdf.term import IRI
from repro.util.text import name_similarity
from repro.wrappers.json_flatten import flatten_documents

__all__ = ["FieldDrift", "DriftReport", "detect_drift",
           "propose_release"]

#: Below this confidence a rename proposal is reported but not applied
#: automatically — the steward must confirm.
AUTO_RENAME_CONFIDENCE = 0.6

#: Pairing threshold: below this, removed+added fields are reported as
#: independent delete/add instead of a rename candidate. Calibrated so
#: the running example's own rename (``lagRatio`` → ``bufferingRatio``,
#: similarity 0.38) pairs up, while unrelated fields (``bitrate`` vs
#: ``bufferingRatio``, 0.18) stay well below.
PAIRING_THRESHOLD = 0.33


@dataclass(frozen=True)
class FieldDrift:
    """One detected rename candidate with its confidence."""

    old_field: str
    new_field: str
    confidence: float

    @property
    def auto_applicable(self) -> bool:
        return self.confidence >= AUTO_RENAME_CONFIDENCE


@dataclass
class DriftReport:
    """Outcome of comparing observed documents against a declared schema."""

    source_name: str
    wrapper_name: str
    declared_fields: tuple[str, ...]
    observed_fields: tuple[str, ...]
    added: list[str] = field(default_factory=list)
    removed: list[str] = field(default_factory=list)
    renames: list[FieldDrift] = field(default_factory=list)
    unchanged: list[str] = field(default_factory=list)

    @property
    def has_drift(self) -> bool:
        return bool(self.added or self.removed or self.renames)

    @property
    def pending_confirmations(self) -> list[FieldDrift]:
        """Rename candidates too uncertain to apply automatically."""
        return [r for r in self.renames if not r.auto_applicable]

    def to_changes(self) -> list[Change]:
        """The drift expressed in the Table 5 taxonomy."""
        changes: list[Change] = []
        for rename in self.renames:
            changes.append(Change(
                ChangeKind.PARAM_RENAME_RESPONSE_PARAMETER,
                self.source_name,
                {"endpoint": self.wrapper_name,
                 "parameter": rename.old_field,
                 "new_name": rename.new_field,
                 "confidence": round(rename.confidence, 3)}))
        for added in self.added:
            changes.append(Change(
                ChangeKind.PARAM_ADD_PARAMETER, self.source_name,
                {"endpoint": self.wrapper_name, "parameter": added}))
        for removed in self.removed:
            changes.append(Change(
                ChangeKind.PARAM_DELETE_PARAMETER, self.source_name,
                {"endpoint": self.wrapper_name, "parameter": removed}))
        return changes

    def summary(self) -> str:
        lines = [f"drift report for {self.wrapper_name} "
                 f"(source {self.source_name}):"]
        if not self.has_drift:
            lines.append("  no drift detected")
            return "\n".join(lines)
        for rename in self.renames:
            marker = "auto" if rename.auto_applicable else "CONFIRM"
            lines.append(f"  rename {rename.old_field} → "
                         f"{rename.new_field} "
                         f"(confidence {rename.confidence:.2f}, {marker})")
        for added in self.added:
            lines.append(f"  new field {added}")
        for removed in self.removed:
            lines.append(f"  dropped field {removed}")
        return "\n".join(lines)


def _observed_fields(documents: Sequence[Mapping]) -> list[str]:
    flat = flatten_documents(documents)
    seen: dict[str, None] = {}
    for row in flat:
        for key in row:
            seen.setdefault(key)
    return list(seen)


def detect_drift(source_name: str, wrapper_name: str,
                 declared_fields: Iterable[str],
                 documents: Sequence[Mapping],
                 pairing_threshold: float = PAIRING_THRESHOLD,
                 ) -> DriftReport:
    """Compare incoming *documents* against the declared field set.

    Documents are flattened to 1NF paths first (nested payloads work).
    Removed/added pairs above *pairing_threshold* similarity become
    rename candidates, best matches first, each field used once.
    """
    declared = list(dict.fromkeys(declared_fields))
    if not documents:
        raise EvolutionError(
            "cannot detect drift without observed documents")
    observed = _observed_fields(documents)

    declared_set = set(declared)
    observed_set = set(observed)
    removed = sorted(declared_set - observed_set)
    added = sorted(observed_set - declared_set)
    unchanged = sorted(declared_set & observed_set)

    candidates: list[tuple[float, str, str]] = []
    for gone in removed:
        for came in added:
            score = name_similarity(gone, came)
            if score >= pairing_threshold:
                candidates.append((score, gone, came))
    candidates.sort(key=lambda c: (-c[0], c[1], c[2]))

    renames: list[FieldDrift] = []
    used_old: set[str] = set()
    used_new: set[str] = set()
    for score, gone, came in candidates:
        if gone in used_old or came in used_new:
            continue
        used_old.add(gone)
        used_new.add(came)
        renames.append(FieldDrift(gone, came, score))

    return DriftReport(
        source_name=source_name,
        wrapper_name=wrapper_name,
        declared_fields=tuple(declared),
        observed_fields=tuple(observed),
        added=[a for a in added if a not in used_new],
        removed=[r for r in removed if r not in used_old],
        renames=renames,
        unchanged=unchanged,
    )


def propose_release(ontology: BDIOntology, report: DriftReport,
                    new_wrapper_name: str,
                    id_fields: Iterable[str],
                    confirmed_renames: Mapping[str, str] | None = None,
                    feature_hints: Mapping[str, IRI | str] | None = None,
                    ) -> Release:
    """Build the release adapting the ontology to the detected drift.

    Renames above :data:`AUTO_RENAME_CONFIDENCE` are applied
    automatically; the steward passes *confirmed_renames*
    (``new_field → old_field``) for the uncertain ones, and
    *feature_hints* for genuinely new fields that need new or existing
    features of G.

    Raises :class:`EvolutionError` listing unresolved uncertain renames.
    """
    confirmed = dict(confirmed_renames or {})
    unresolved = [r for r in report.pending_confirmations
                  if r.new_field not in confirmed]
    if unresolved:
        raise EvolutionError(
            "steward confirmation required for low-confidence renames: "
            + ", ".join(f"{r.old_field}→{r.new_field} "
                        f"({r.confidence:.2f})" for r in unresolved))

    # new field name → the old attribute whose feature it inherits
    inherit: dict[str, str] = dict(confirmed)
    for rename in report.renames:
        if rename.auto_applicable and rename.new_field not in inherit:
            inherit[rename.new_field] = rename.old_field

    hints: dict[str, IRI] = {
        k: IRI(str(v)) for k, v in (feature_hints or {}).items()}
    for new_field, old_field in inherit.items():
        feature = ontology.mappings.feature_of_attribute(
            attribute_uri(report.source_name, old_field))
        if feature is None:
            raise EvolutionError(
                f"cannot inherit feature: attribute {old_field!r} of "
                f"source {report.source_name} is not mapped")
        hints.setdefault(new_field, feature)

    ids = [f for f in report.observed_fields if f in set(id_fields)
           or f in inherit and inherit[f] in set(id_fields)]
    non_ids = [f for f in report.observed_fields if f not in ids]
    if not ids:
        raise EvolutionError(
            "the observed schema exposes no ID field; joins would be "
            "impossible (Definition 5.1)")

    return build_release(
        ontology, report.source_name, new_wrapper_name,
        id_attributes=ids, non_id_attributes=non_ids,
        feature_hints=hints)
