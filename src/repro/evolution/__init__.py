"""Evolution management: taxonomy, classification, releases, studies."""

from repro.evolution.apply import ChangeReport, GovernedApi
from repro.evolution.changes import (
    Change, ChangeKind, ChangeLevel, Handler, KIND_HANDLERS,
    kinds_at_level,
)
from repro.evolution.classifier import (
    Accommodation, AccommodationStats, accommodation_of, change_impact,
    classify, classify_batch, handler_table,
)
from repro.evolution.drift import (
    DriftReport, FieldDrift, detect_drift, propose_release,
)
from repro.evolution.growth import GrowthRecord, ascii_chart, \
    replay_wordpress
from repro.evolution.industrial import (
    ApiChangeCounts, IndustrialRow, LI_ET_AL_COUNTS, industrial_study,
    materialize_changes, pooled_stats,
)
from repro.evolution.release_builder import (
    build_release, release_impact, subgraph_for_features,
    suggest_feature,
)
from repro.evolution.schema_diff import diff_versions
from repro.evolution.wordpress import (
    WORDPRESS_RELEASES, WordpressRelease, all_wordpress_fields,
    build_wordpress_endpoint,
)

__all__ = [
    "ChangeReport", "GovernedApi",
    "Change", "ChangeKind", "ChangeLevel", "Handler", "KIND_HANDLERS",
    "kinds_at_level",
    "Accommodation", "AccommodationStats", "accommodation_of",
    "change_impact", "classify", "classify_batch", "handler_table",
    "DriftReport", "FieldDrift", "detect_drift", "propose_release",
    "GrowthRecord", "ascii_chart", "replay_wordpress",
    "ApiChangeCounts", "IndustrialRow", "LI_ET_AL_COUNTS",
    "industrial_study", "materialize_changes", "pooled_stats",
    "build_release", "release_impact", "subgraph_for_features",
    "suggest_feature",
    "diff_versions",
    "WORDPRESS_RELEASES", "WordpressRelease", "all_wordpress_fields",
    "build_wordpress_endpoint",
]
