"""Classification of changes onto their handling component (§6.2-6.3).

Answers, for a change (or a batch of them):

* which component must act — wrapper, ontology, or both;
* whether the BDI ontology *fully* accommodates it (ontology-only
  changes), *partially* accommodates it (changes also concerning the
  wrappers) or is not involved (wrapper-only, request-side changes);
* aggregate counts and percentages, i.e. the arithmetic behind Table 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.evolution.changes import (
    Change, ChangeKind, ChangeLevel, Handler, KIND_HANDLERS,
    kinds_at_level,
)
from repro.rdf.term import IRI

__all__ = [
    "Accommodation", "classify", "accommodation_of",
    "AccommodationStats", "classify_batch", "handler_table",
    "change_impact",
]


class Accommodation:
    """How far the ontology absorbs a change (Table 6 vocabulary)."""

    FULL = "fully accommodated"          # ontology-only change
    PARTIAL = "partially accommodated"   # wrapper & ontology change
    NONE = "not accommodated"            # wrapper-only change


def classify(change: Change | ChangeKind) -> Handler:
    """The component that handles a change (the table checkmarks)."""
    kind = change.kind if isinstance(change, Change) else change
    return KIND_HANDLERS[kind]


def accommodation_of(change: Change | ChangeKind) -> str:
    handler = classify(change)
    if handler is Handler.ONTOLOGY:
        return Accommodation.FULL
    if handler is Handler.BOTH:
        return Accommodation.PARTIAL
    return Accommodation.NONE


#: Ontology-handled kinds that deliberately leave T untouched: deletions
#: preserve every historical element (§6.2), so nothing a cached
#: rewriting depends on can change.
_PRESERVING_KINDS = frozenset({
    ChangeKind.METHOD_DELETE_METHOD,
    ChangeKind.API_DELETE_RESPONSE_FORMAT,
})


def change_impact(change: Change,
                  endpoint_concepts: Mapping[str, IRI],
                  ) -> frozenset[IRI]:
    """The Global-graph concepts an applied change affected.

    The release-change classifier hook of the rewriting cache: it maps a
    taxonomy change onto the invalidation granule of
    :class:`~repro.query.cache.RewriteCache`.

    * wrapper-side changes never touch ``T`` → empty set (no cached
      rewriting is invalidated — request-side evolution is free);
    * deletions keep every historical element in ``T`` → empty set;
    * API-level response-format changes re-release *every* endpoint →
      all modeled concepts;
    * method/parameter changes → the concept of the named endpoint
      (after a method rename, the concept is found under either name).

    *endpoint_concepts* maps endpoint names to their concepts **after**
    the change was applied, as kept by
    :class:`~repro.evolution.apply.GovernedApi`.
    """
    if classify(change) is Handler.WRAPPER:
        return frozenset()
    if change.kind in _PRESERVING_KINDS:
        return frozenset()
    if change.level is ChangeLevel.API:
        return frozenset(endpoint_concepts.values())
    names = [change.details.get("endpoint")]
    if change.kind is ChangeKind.METHOD_CHANGE_METHOD_NAME:
        # Only here does new_name denote an endpoint; for parameter
        # renames it is a parameter name and must not be looked up.
        names.append(change.details.get("new_name"))
    return frozenset(endpoint_concepts[name] for name in names
                     if name is not None and name in endpoint_concepts)


@dataclass
class AccommodationStats:
    """Counts per handler plus the Table 6 percentages."""

    wrapper_only: int = 0
    ontology_only: int = 0
    both: int = 0

    @property
    def total(self) -> int:
        return self.wrapper_only + self.ontology_only + self.both

    @property
    def partially_pct(self) -> float:
        """% of changes partially accommodated (both components)."""
        return 100.0 * self.both / self.total if self.total else 0.0

    @property
    def fully_pct(self) -> float:
        """% of changes fully accommodated (ontology only)."""
        return 100.0 * self.ontology_only / self.total if self.total \
            else 0.0

    @property
    def solved_pct(self) -> float:
        """% of changes the semi-automatic approach solves (full+partial).

        This is the paper's headline 71.62% when pooled over the five
        studied APIs.
        """
        return self.partially_pct + self.fully_pct

    def __add__(self, other: "AccommodationStats") -> "AccommodationStats":
        return AccommodationStats(
            self.wrapper_only + other.wrapper_only,
            self.ontology_only + other.ontology_only,
            self.both + other.both)


def classify_batch(changes: Iterable[Change]) -> AccommodationStats:
    """Classify many changes into accommodation statistics."""
    stats = AccommodationStats()
    for change in changes:
        handler = classify(change)
        if handler is Handler.WRAPPER:
            stats.wrapper_only += 1
        elif handler is Handler.ONTOLOGY:
            stats.ontology_only += 1
        else:
            stats.both += 1
    return stats


def handler_table(level: ChangeLevel) -> list[tuple[str, bool, bool]]:
    """Rows of Table 3/4/5: (label, handled by wrapper, handled by ont.).

    ``BOTH`` rows check both columns, exactly as the paper prints them.
    """
    rows = []
    for kind in kinds_at_level(level):
        handler = KIND_HANDLERS[kind]
        rows.append((
            kind.label,
            handler in (Handler.WRAPPER, Handler.BOTH),
            handler in (Handler.ONTOLOGY, Handler.BOTH),
        ))
    return rows
