"""Ontology growth analysis over release histories (paper §6.4, Fig. 11).

Replays a release history against a fresh BDI ontology — one wrapper
providing all attributes per release, exactly the paper's assumption —
and measures, per release, the number of triples added to S (split by
kind: new sources/wrappers/attributes vs ``S:hasAttribute`` edges), to M,
and the cumulative totals. :func:`ascii_chart` renders the Figure 11
bar-plus-cumulative-line view on a terminal.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ontology import BDIOntology
from repro.core.release import new_release
from repro.evolution.release_builder import build_release
from repro.evolution.wordpress import WORDPRESS_RELEASES, \
    WordpressRelease, all_wordpress_fields
from repro.rdf.namespace import Namespace, S as S_NS

__all__ = ["GrowthRecord", "replay_wordpress", "ascii_chart"]

#: Domain vocabulary for the Wordpress study.
WP = Namespace("urn:wordpress:")


@dataclass
class GrowthRecord:
    """Triples added by one release (the bars of Figure 11)."""

    version: str
    wrapper: str
    added_s: int
    added_m: int
    added_lav: int
    added_g: int
    has_attribute_edges: int
    new_attributes: int
    cumulative_s: int

    @property
    def added_total(self) -> int:
        return self.added_s + self.added_m + self.added_lav + self.added_g


def _prepare_global_graph(ontology: BDIOntology) -> None:
    """Model the Post concept with every feature ever served.

    The steward models the domain once; minor releases map renamed
    attributes onto existing features, so G does not grow during the
    replay — the paper's "Notice also that G does not grow".
    """
    post = ontology.globals.add_concept(WP.Post)
    ontology.globals.add_feature(post, WP["post/id"], is_id=True)
    for name in all_wordpress_fields():
        feature = WP[f"post/{_canonical_feature(name)}"]
        if not ontology.globals.is_feature(feature):
            ontology.globals.add_feature(post, feature)


#: attribute name → canonical feature local name (rename classes).
_FEATURE_ALIASES = {
    "ID": "id",
    "featured_image": "featured_media",
    "meta_fields": "meta",
    "post_meta": "meta",
    "content_raw": "content",
}


def _canonical_feature(attribute: str) -> str:
    return _FEATURE_ALIASES.get(attribute, attribute)


def replay_wordpress(releases: list[WordpressRelease] | None = None,
                     ) -> tuple[BDIOntology, list[GrowthRecord]]:
    """Replay the Wordpress history; return the ontology and the records."""
    history = releases if releases is not None else WORDPRESS_RELEASES
    ontology = BDIOntology()
    _prepare_global_graph(ontology)

    records: list[GrowthRecord] = []
    cumulative_s = len(ontology.s)
    source_name = "wordpress_posts"

    for index, release_spec in enumerate(history, start=1):
        wrapper_name = f"wp_v{release_spec.version.replace('.', '_')}"
        id_attr = "ID" if "ID" in release_spec.fields else "id"
        non_ids = [f for f in release_spec.fields if f != id_attr]
        hints = {
            name: WP[f"post/{_canonical_feature(name)}"]
            for name in release_spec.fields
        }
        hints[id_attr] = WP["post/id"]

        attrs_before = len(ontology.sources.attributes())
        s_before = len(ontology.s)
        m_before = len(ontology.m)
        g_before = len(ontology.g)
        lav_before = ontology.triple_counts()["lav_graphs"]
        edges_before = ontology.s.count(None, S_NS.hasAttribute, None)

        release = build_release(
            ontology, source_name, wrapper_name,
            id_attributes=[id_attr], non_id_attributes=non_ids,
            feature_hints=hints)
        new_release(ontology, release)

        added_s = len(ontology.s) - s_before
        cumulative_s += added_s
        records.append(GrowthRecord(
            version=release_spec.version,
            wrapper=wrapper_name,
            added_s=added_s,
            added_m=len(ontology.m) - m_before,
            added_lav=ontology.triple_counts()["lav_graphs"] - lav_before,
            added_g=len(ontology.g) - g_before,
            has_attribute_edges=(
                ontology.s.count(None, S_NS.hasAttribute, None)
                - edges_before),
            new_attributes=(len(ontology.sources.attributes())
                            - attrs_before),
            cumulative_s=cumulative_s,
        ))
    return ontology, records


def ascii_chart(records: list[GrowthRecord], width: int = 50) -> str:
    """Figure 11 as an ASCII chart: bars = added triples to S per release,
    trailing column = cumulative S size (the paper's red line)."""
    if not records:
        return "(no releases)"
    peak = max(r.added_s for r in records) or 1
    lines = [
        f"{'release':>8} | {'triples added to S':<{width}} |"
        f" {'+S':>5} | {'cum S':>6}",
        "-" * (width + 28),
    ]
    for record in records:
        bar = "#" * max(1, round(width * record.added_s / peak))
        lines.append(
            f"{record.version:>8} | {bar:<{width}} |"
            f" {record.added_s:>5} | {record.cumulative_s:>6}")
    return "\n".join(lines)
