"""Industrial applicability study (paper §6.3, Table 6).

The paper takes the 16 change patterns of Li et al. (ICWS'13) observed on
five widely used APIs and counts, per API, how many changes concern (a)
the wrappers, (b) the ontology, (c) both. We encode those per-API counts,
*materialize* them into concrete change instances distributed over the
taxonomy kinds of each handler class, push every instance through the
classifier, and re-derive the table — so the benchmark actually exercises
the classification pipeline rather than echoing constants.

Pooled percentages are weighted by total change count, which is how the
paper's 48.84% / 22.77% / 71.62% figures arise (we verified the
arithmetic: e.g. 148 both-changes out of 303 total = 48.84%).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.evolution.changes import Change, ChangeKind, Handler, \
    KIND_HANDLERS
from repro.evolution.classifier import AccommodationStats, classify_batch

__all__ = [
    "ApiChangeCounts", "LI_ET_AL_COUNTS", "materialize_changes",
    "IndustrialRow", "industrial_study", "pooled_stats",
]


@dataclass(frozen=True)
class ApiChangeCounts:
    """Observed change counts for one API (columns 2-4 of Table 6)."""

    api: str
    wrapper_only: int
    ontology_only: int
    both: int

    @property
    def total(self) -> int:
        return self.wrapper_only + self.ontology_only + self.both


#: Table 6 input data (from Li et al. 2013 as reported by the paper).
LI_ET_AL_COUNTS: list[ApiChangeCounts] = [
    ApiChangeCounts("Google Calendar", 0, 24, 23),
    ApiChangeCounts("Google Gadgets", 2, 6, 30),
    ApiChangeCounts("Amazon MWS", 22, 36, 14),
    ApiChangeCounts("Twitter API", 27, 0, 25),
    ApiChangeCounts("Sina Weibo", 35, 3, 56),
]

_KINDS_BY_HANDLER: dict[Handler, list[ChangeKind]] = {
    handler: [kind for kind in ChangeKind
              if KIND_HANDLERS[kind] is handler]
    for handler in Handler
}


def materialize_changes(counts: ApiChangeCounts) -> list[Change]:
    """Expand per-category counts into concrete change instances.

    Instances are spread round-robin over the taxonomy kinds of each
    handler class (the per-kind breakdown is not published; only the
    category totals matter for Table 6, and they are preserved exactly).
    """
    changes: list[Change] = []
    for handler, amount in (
            (Handler.WRAPPER, counts.wrapper_only),
            (Handler.ONTOLOGY, counts.ontology_only),
            (Handler.BOTH, counts.both)):
        kinds = _KINDS_BY_HANDLER[handler]
        for index in range(amount):
            kind = kinds[index % len(kinds)]
            changes.append(Change(kind, counts.api,
                                  {"instance": index + 1}))
    return changes


@dataclass
class IndustrialRow:
    """One output row of Table 6."""

    api: str
    wrapper_only: int
    ontology_only: int
    both: int
    partially_pct: float
    fully_pct: float

    @property
    def total(self) -> int:
        return self.wrapper_only + self.ontology_only + self.both


def industrial_study(counts: list[ApiChangeCounts] | None = None,
                     ) -> list[IndustrialRow]:
    """Run the full pipeline: materialize → classify → aggregate."""
    data = counts if counts is not None else LI_ET_AL_COUNTS
    rows: list[IndustrialRow] = []
    for api_counts in data:
        stats = classify_batch(materialize_changes(api_counts))
        rows.append(IndustrialRow(
            api=api_counts.api,
            wrapper_only=stats.wrapper_only,
            ontology_only=stats.ontology_only,
            both=stats.both,
            partially_pct=stats.partially_pct,
            fully_pct=stats.fully_pct,
        ))
    return rows


def pooled_stats(rows: list[IndustrialRow]) -> AccommodationStats:
    """Pooled (change-count weighted) statistics over all APIs.

    ``partially_pct`` ≈ 48.84, ``fully_pct`` ≈ 22.77 and
    ``solved_pct`` ≈ 71.62 on the paper's data.
    """
    total = AccommodationStats()
    for row in rows:
        total += AccommodationStats(row.wrapper_only, row.ontology_only,
                                    row.both)
    return total
