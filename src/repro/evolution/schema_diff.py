"""Schema diffing between endpoint versions.

Derives the parameter-level changes (Table 5) between two released
schemas: additions, deletions, renames and type changes. Renames are
detected by pairing removed and added fields through
:func:`~repro.util.text.name_similarity` — the deterministic stand-in for
the probabilistic alignment (PARIS) the paper suggests as a steward aid.
"""

from __future__ import annotations

from repro.evolution.changes import Change, ChangeKind
from repro.sources.rest_api import ApiVersion
from repro.util.text import name_similarity

__all__ = ["diff_versions", "RENAME_SIMILARITY_THRESHOLD"]

#: Minimum similarity for an (added, removed) pair to count as a rename.
#: Calibrated so realistic renames (``meta`` → ``meta_fields``,
#: ``featured_image`` → ``featured_media``) pair up while unrelated
#: add/delete pairs (token-disjoint names) stay far below.
RENAME_SIMILARITY_THRESHOLD = 0.40


def diff_versions(api: str, endpoint: str, old: ApiVersion,
                  new: ApiVersion,
                  rename_threshold: float = RENAME_SIMILARITY_THRESHOLD,
                  ) -> list[Change]:
    """Parameter-level changes between two versions of one endpoint."""
    old_fields = {f.name: f for f in old.fields}
    new_fields = {f.name: f for f in new.fields}

    removed = sorted(set(old_fields) - set(new_fields))
    added = sorted(set(new_fields) - set(old_fields))
    kept = sorted(set(old_fields) & set(new_fields))

    changes: list[Change] = []

    # Pair removed/added fields into renames, best similarity first.
    candidates: list[tuple[float, str, str]] = []
    for gone in removed:
        for came in added:
            score = name_similarity(gone, came)
            if score >= rename_threshold:
                candidates.append((score, gone, came))
    candidates.sort(key=lambda c: (-c[0], c[1], c[2]))
    renamed_from: dict[str, str] = {}
    used_added: set[str] = set()
    for score, gone, came in candidates:
        if gone in renamed_from or came in used_added:
            continue
        renamed_from[gone] = came
        used_added.add(came)

    for gone in removed:
        if gone in renamed_from:
            changes.append(Change(
                ChangeKind.PARAM_RENAME_RESPONSE_PARAMETER, api,
                {"endpoint": endpoint, "parameter": gone,
                 "new_name": renamed_from[gone],
                 "from_version": old.version, "to_version": new.version}))
        else:
            changes.append(Change(
                ChangeKind.PARAM_DELETE_PARAMETER, api,
                {"endpoint": endpoint, "parameter": gone,
                 "from_version": old.version, "to_version": new.version}))

    for came in added:
        if came in used_added:
            continue  # target side of a rename
        changes.append(Change(
            ChangeKind.PARAM_ADD_PARAMETER, api,
            {"endpoint": endpoint, "parameter": came,
             "from_version": old.version, "to_version": new.version}))

    for name in kept:
        if old_fields[name].field_type != new_fields[name].field_type:
            changes.append(Change(
                ChangeKind.PARAM_CHANGE_FORMAT_OR_TYPE, api,
                {"endpoint": endpoint, "parameter": name,
                 "old_type": old_fields[name].field_type,
                 "new_type": new_fields[name].field_type,
                 "from_version": old.version, "to_version": new.version}))

    if old.response_format != new.response_format:
        changes.append(Change(
            ChangeKind.METHOD_CHANGE_RESPONSE_FORMAT, api,
            {"endpoint": endpoint,
             "old_format": old.response_format,
             "new_format": new.response_format}))
    return changes
