"""Applying taxonomy changes to a live, governed API (§6.2 end to end).

:class:`GovernedApi` binds a simulated :class:`~repro.sources.rest_api.RestApi`
to a :class:`~repro.core.ontology.BDIOntology` following the paper's
modeling: **each REST method is an instance of ``S:DataSource``** and each
of its versions is a wrapper. :meth:`GovernedApi.apply` then executes any
change of the Tables 3-5 taxonomy:

* wrapper-side changes (auth, URLs, rate limits, error codes, ...) mutate
  the API/wrapper configuration and must leave the ontology untouched;
* ontology-side changes trigger a *release*: a new endpoint version, a
  new wrapper, Algorithm 1 — analyst queries keep working, both on the
  latest and on historical versions.

The functional evaluation (bench for Tables 3-5) and the integration
tests drive every change kind through this class and verify the
invariants above.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.core.ontology import BDIOntology
from repro.core.vocabulary import attribute_uri
from repro.errors import ChangeApplicationError
from repro.evolution.changes import Change, ChangeKind, Handler
from repro.evolution.classifier import change_impact
from repro.evolution.release_builder import build_release, release_impact
from repro.rdf.namespace import Namespace
from repro.rdf.term import IRI
from repro.sources.rest_api import ApiVersion, Endpoint, FieldSpec, RestApi
from repro.storage.journal import execute_command, execute_release
from repro.wrappers.rest import RestWrapper

__all__ = ["ChangeReport", "GovernedApi"]


def _slug(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9]+", "_", text).strip("_")


@dataclass
class ChangeReport:
    """Outcome of applying one change."""

    change: Change
    handler: Handler
    ontology_triples_added: int = 0
    new_wrapper: str | None = None
    notes: list[str] = field(default_factory=list)
    #: Global-graph concepts the change affected (the invalidation
    #: granule fed to release-aware rewriting caches); empty for
    #: wrapper-side and history-preserving changes.
    affected_concepts: frozenset[IRI] = frozenset()

    @property
    def touched_ontology(self) -> bool:
        return self.ontology_triples_added > 0 or self.new_wrapper is not \
            None


@dataclass
class _EndpointState:
    """Bookkeeping per governed endpoint (= per data source)."""

    source_name: str
    concept: IRI
    id_field: str
    #: stable key for feature IRI minting; survives method renames so the
    #: renamed method keeps its features (and data-source identity)
    feature_key: str = ""
    version_counter: int = 1
    current_wrapper: str | None = None
    wrapper_config: dict[str, object] = field(default_factory=dict)


class GovernedApi:
    """A simulated API governed by the BDI ontology."""

    def __init__(self, api: RestApi,
                 ontology: BDIOntology | None = None,
                 journal=None) -> None:
        self.api = api
        self.ontology = ontology or BDIOntology()
        #: optional :class:`~repro.storage.journal.Journal`: every
        #: ontology mutation this object performs (concept/feature
        #: minting, datatype updates, releases) is then serialized as a
        #: change record before it applies, so replaying the journal
        #: reconstructs the governed state this API produced
        self.journal = journal
        self.namespace = Namespace(f"urn:api:{_slug(api.name)}:")
        self._endpoints: dict[str, _EndpointState] = {}
        self.reports: list[ChangeReport] = []
        #: concepts of the most recently landed release (debugging aid)
        self.last_release_impact: frozenset[IRI] = frozenset()
        #: True when ontology edits NOT made by this object were seen;
        #: the next release event is then marked ungoverned instead of
        #: absorbing the edits into the endpoint's concept.
        self._foreign_gap = False

    def _check_foreign_edits(self) -> None:
        """Record whether T was edited behind our back.

        Called at every public entry point *before* this object mutates
        the ontology itself, so its own steward edits (feature minting,
        datatype updates) are never mistaken for foreign ones.
        """
        if self.ontology.has_ungoverned_gap():
            self._foreign_gap = True

    # -- modeling ----------------------------------------------------------------

    def model_endpoint(self, endpoint_name: str, id_field: str,
                       source_name: str | None = None) -> _EndpointState:
        """Model one endpoint: concept + features in G, first release.

        The endpoint must already exist on the API with at least one
        version; its latest version's fields become features of a fresh
        concept, and the first wrapper is registered through Algorithm 1.
        """
        self._check_foreign_edits()
        endpoint = self.api.endpoint(endpoint_name)
        version = endpoint.latest_version()
        if id_field not in version.field_names():
            raise ChangeApplicationError(
                f"id field {id_field!r} is not part of "
                f"{endpoint_name} {version.version}")
        source = source_name or _slug(f"{self.api.name}_{endpoint_name}")
        concept = self.namespace[_slug(endpoint_name)]
        execute_command(self, "add_concept", {"concept": str(concept)},
                        journal=self.journal)
        state = _EndpointState(source_name=source, concept=concept,
                               id_field=id_field,
                               feature_key=_slug(endpoint_name))
        for spec in version.fields:
            self._ensure_feature(state, spec.name,
                                 is_id=(spec.name == id_field))
        self._endpoints[endpoint_name] = state
        self._register_version(endpoint_name, version)
        return state

    def _feature_iri(self, state: _EndpointState, field_name: str) -> IRI:
        return self.namespace[f"{state.feature_key}/{field_name}"]

    def _ensure_feature(self, state: _EndpointState,
                        field_name: str, is_id: bool = False) -> IRI:
        feature = self._feature_iri(state, field_name)
        if not self.ontology.globals.is_feature(feature):
            execute_command(
                self, "add_feature",
                {"concept": str(state.concept),
                 "feature": str(feature), "is_id": is_id},
                journal=self.journal)
        return feature

    def state(self, endpoint_name: str) -> _EndpointState:
        try:
            return self._endpoints[endpoint_name]
        except KeyError:
            raise ChangeApplicationError(
                f"endpoint {endpoint_name!r} is not modeled; call "
                "model_endpoint first") from None

    # -- releases -----------------------------------------------------------------

    def _register_version(self, endpoint_name: str,
                          version: ApiVersion,
                          rename_hints: dict[str, str] | None = None,
                          ) -> str:
        """Create wrapper + release for one endpoint version.

        *rename_hints* maps new field names to the old field names whose
        feature they inherit (the rename-response-parameter case).
        """
        state = self.state(endpoint_name)
        endpoint = self.api.endpoint(endpoint_name)
        wrapper_name = f"{state.source_name}_v{state.version_counter}"
        state.version_counter += 1

        fields = version.field_names()
        id_attrs = [f for f in fields if f == state.id_field]
        non_id_attrs = [f for f in fields if f != state.id_field]

        hints: dict[str, IRI] = {}
        for field_name in fields:
            # Attribute semantics are stable within a source (§3.2): an
            # attribute already mapped by a previous version keeps its
            # feature (covers fields introduced by earlier renames).
            existing = self.ontology.mappings.feature_of_attribute(
                attribute_uri(state.source_name, field_name))
            if existing is not None:
                hints[field_name] = existing
                continue
            feature = self._feature_iri(state, field_name)
            if self.ontology.globals.is_feature(feature):
                hints[field_name] = feature
        for new_name, old_name in (rename_hints or {}).items():
            inherited = self.ontology.mappings.feature_of_attribute(
                attribute_uri(state.source_name, old_name))
            hints[new_name] = (inherited if inherited is not None
                               else self._feature_iri(state, old_name))

        missing = [f for f in fields if f not in hints]
        for field_name in missing:
            # Steward extends G for genuinely new parameters.
            self._ensure_feature(state, field_name)
            hints[field_name] = self._feature_iri(state, field_name)

        release = build_release(
            self.ontology, state.source_name, wrapper_name,
            id_attributes=id_attrs, non_id_attributes=non_id_attrs,
            feature_hints=hints)
        release.wrapper = RestWrapper(
            wrapper_name, state.source_name, endpoint, version.version,
            id_attributes=id_attrs, non_id_attributes=non_id_attrs,
            field_map={f: f for f in fields})
        # Landing the release bumps the ontology's evolution epoch with
        # exactly these concepts — cached rewritings over other concepts
        # survive the release untouched. The steward's G extensions for
        # this version (_ensure_feature, datatype updates) all target the
        # endpoint's concept, so they are absorbed into the same event
        # instead of degrading it to an ungoverned (flush-all) one —
        # unless edits foreign to this object were detected, in which
        # case nothing can be attributed and the event must flush all.
        self.last_release_impact = release_impact(release, self.ontology)
        execute_release(self, release,
                        absorbed_concepts=None if self._foreign_gap
                        else {state.concept},
                        journal=self.journal)
        # The event (governed or ungoverned) now covers everything seen.
        self._foreign_gap = False
        state.current_wrapper = wrapper_name
        return wrapper_name

    # -- change application -----------------------------------------------------------

    def apply(self, change: Change) -> ChangeReport:
        """Apply one taxonomy change; returns what happened."""
        self._check_foreign_edits()
        before = self.ontology.triple_counts()["total"]
        handler = change.handler
        report = ChangeReport(change=change, handler=handler)

        dispatch = {
            ChangeKind.API_ADD_AUTHENTICATION_MODEL: self._set_auth,
            ChangeKind.API_CHANGE_AUTHENTICATION_MODEL: self._set_auth,
            ChangeKind.API_CHANGE_RESOURCE_URL: self._set_resource_url,
            ChangeKind.API_CHANGE_RATE_LIMIT: self._set_api_rate_limit,
            ChangeKind.API_ADD_RESPONSE_FORMAT: self._add_response_format,
            ChangeKind.API_CHANGE_RESPONSE_FORMAT:
                self._change_response_format_api,
            ChangeKind.API_DELETE_RESPONSE_FORMAT:
                self._delete_response_format,
            ChangeKind.METHOD_ADD_ERROR_CODE: self._add_error_code,
            ChangeKind.METHOD_CHANGE_RATE_LIMIT:
                self._set_method_rate_limit,
            ChangeKind.METHOD_CHANGE_AUTHENTICATION_MODEL: self._set_auth,
            ChangeKind.METHOD_CHANGE_DOMAIN_URL: self._set_domain_url,
            ChangeKind.METHOD_ADD_METHOD: self._add_method,
            ChangeKind.METHOD_DELETE_METHOD: self._delete_method,
            ChangeKind.METHOD_CHANGE_METHOD_NAME: self._rename_method,
            ChangeKind.METHOD_CHANGE_RESPONSE_FORMAT:
                self._change_response_format_method,
            ChangeKind.PARAM_CHANGE_RATE_LIMIT:
                self._set_parameter_config,
            ChangeKind.PARAM_CHANGE_REQUIRE_TYPE:
                self._set_parameter_config,
            ChangeKind.PARAM_ADD_PARAMETER: self._add_parameter,
            ChangeKind.PARAM_DELETE_PARAMETER: self._delete_parameter,
            ChangeKind.PARAM_RENAME_RESPONSE_PARAMETER:
                self._rename_parameter,
            ChangeKind.PARAM_CHANGE_FORMAT_OR_TYPE: self._change_type,
        }
        handler_fn = dispatch.get(change.kind)
        if handler_fn is None:  # pragma: no cover - taxonomy is closed
            raise ChangeApplicationError(
                f"no applicator for {change.kind}")
        handler_fn(change, report)

        # Release-change classifier hook: attribute the change to the
        # concepts it affected (endpoint map read *after* the handler so
        # freshly added or renamed methods resolve).
        report.affected_concepts = change_impact(change, {
            name: state.concept
            for name, state in self._endpoints.items()})

        report.ontology_triples_added = (
            self.ontology.triple_counts()["total"] - before)
        if handler is Handler.WRAPPER and report.touched_ontology:
            raise ChangeApplicationError(
                f"{change.kind.label} is a wrapper-side change but "
                "modified the ontology")
        self.reports.append(report)
        return report

    # -- wrapper-side applicators ------------------------------------------------------

    def _set_auth(self, change: Change, report: ChangeReport) -> None:
        model = change.details.get("model", "oauth2")
        self.api.auth_model = model
        report.notes.append(f"wrapper reconfigured for auth {model!r}")

    def _set_resource_url(self, change: Change,
                          report: ChangeReport) -> None:
        url = change.details.get("url", self.api.resource_url)
        self.api.resource_url = url
        report.notes.append(f"wrapper base URL set to {url!r}")

    def _set_api_rate_limit(self, change: Change,
                            report: ChangeReport) -> None:
        self.api.rate_limit = change.details.get("limit", 1000)
        report.notes.append("wrapper throttling reconfigured")

    def _add_error_code(self, change: Change,
                        report: ChangeReport) -> None:
        endpoint = self.api.endpoint(change.details["endpoint"])
        endpoint.error_codes.add(change.details.get("code", 429))
        report.notes.append("wrapper error handling extended")

    def _set_method_rate_limit(self, change: Change,
                               report: ChangeReport) -> None:
        endpoint = self.api.endpoint(change.details["endpoint"])
        endpoint.rate_limit = change.details.get("limit", 100)
        report.notes.append("wrapper throttling reconfigured (method)")

    def _set_domain_url(self, change: Change,
                        report: ChangeReport) -> None:
        endpoint = self.api.endpoint(change.details["endpoint"])
        endpoint.domain_url = change.details.get("url", "https://api")
        report.notes.append("wrapper domain URL updated")

    def _set_parameter_config(self, change: Change,
                              report: ChangeReport) -> None:
        state = self.state(change.details["endpoint"])
        key = (f"{change.details.get('parameter', '?')}:"
               f"{change.kind.name.lower()}")
        state.wrapper_config[key] = change.details
        report.notes.append("wrapper request parametrization updated")

    # -- ontology-side applicators --------------------------------------------------------

    def _next_version(self, endpoint: Endpoint) -> str:
        latest = endpoint.latest_version().version
        head = latest.split(".")[0]
        minors = [int(v.split(".")[1]) for v in endpoint.versions
                  if v.startswith(head + ".") and
                  v.split(".")[1].isdigit()]
        nxt = (max(minors) + 1) if minors else 1
        return f"{head}.{nxt}"

    def _release_new_version(self, endpoint_name: str,
                             fields: list[FieldSpec],
                             report: ChangeReport,
                             response_format: str = "json",
                             rename_hints: dict[str, str] | None = None,
                             ) -> None:
        endpoint = self.api.endpoint(endpoint_name)
        version = ApiVersion(self._next_version(endpoint), list(fields),
                             response_format=response_format)
        endpoint.add_version(version)
        wrapper = self._register_version(endpoint_name, version,
                                         rename_hints)
        report.new_wrapper = wrapper
        report.notes.append(
            f"release {version.version} registered as wrapper {wrapper}")

    def _add_response_format(self, change: Change,
                             report: ChangeReport) -> None:
        fmt = change.details.get("format", "xml")
        self.api.response_formats.add(fmt)
        for endpoint_name in sorted(self._endpoints):
            endpoint = self.api.endpoint(endpoint_name)
            self._release_new_version(
                endpoint_name, endpoint.latest_version().fields, report,
                response_format=fmt)

    def _change_response_format_api(self, change: Change,
                                    report: ChangeReport) -> None:
        fmt = change.details.get("format", "json-v2")
        self.api.response_formats = {fmt}
        for endpoint_name in sorted(self._endpoints):
            endpoint = self.api.endpoint(endpoint_name)
            self._release_new_version(
                endpoint_name, endpoint.latest_version().fields, report,
                response_format=fmt)

    def _delete_response_format(self, change: Change,
                                report: ChangeReport) -> None:
        fmt = change.details.get("format", "xml")
        self.api.response_formats.discard(fmt)
        # Historic backwards compatibility: no element leaves T (§6.2).
        report.notes.append(
            "no ontology action; historical elements preserved")

    def _add_method(self, change: Change, report: ChangeReport) -> None:
        name = change.details["endpoint"]
        raw_fields = change.details.get(
            "fields", [("id", "int"), ("value", "string")])
        id_field = change.details.get("id_field", raw_fields[0][0])
        endpoint = Endpoint(name)
        endpoint.add_version(ApiVersion(
            "1", [FieldSpec(n, t) for n, t in raw_fields]))
        self.api.add_endpoint(endpoint)
        state = self.model_endpoint(name, id_field)
        report.new_wrapper = state.current_wrapper
        report.notes.append(
            f"method {name} modeled as data source {state.source_name}")

    def _delete_method(self, change: Change,
                       report: ChangeReport) -> None:
        name = change.details["endpoint"]
        self.api.remove_endpoint(name)
        # Ontology untouched: wrappers stay for historical queries, but
        # the wrapper stops polling the (gone) endpoint.
        report.notes.append(
            "endpoint removed; ontology preserved for historical queries")

    def _rename_method(self, change: Change,
                       report: ChangeReport) -> None:
        old = change.details["endpoint"]
        new = change.details["new_name"]
        state = self.state(old)
        self.api.rename_endpoint(old, new)
        # The concept, features and data-source identity stay (the state
        # keeps its feature_key and source_name); the renamed method gets
        # a fresh wrapper for the renamed endpoint (request side). The
        # paper renames the data-source instance; attribute URIs embed
        # the source prefix, so identity is preserved by keeping the
        # source name stable.
        self._endpoints[new] = state
        del self._endpoints[old]
        endpoint = self.api.endpoint(new)
        self._release_new_version(new, endpoint.latest_version().fields,
                                  report)

    def _change_response_format_method(self, change: Change,
                                       report: ChangeReport) -> None:
        endpoint_name = change.details["endpoint"]
        endpoint = self.api.endpoint(endpoint_name)
        fmt = change.details.get("format", "json-v2")
        self._release_new_version(
            endpoint_name, endpoint.latest_version().fields, report,
            response_format=fmt)

    def _add_parameter(self, change: Change,
                       report: ChangeReport) -> None:
        endpoint_name = change.details["endpoint"]
        endpoint = self.api.endpoint(endpoint_name)
        parameter = change.details["parameter"]
        field_type = change.details.get("type", "string")
        fields = list(endpoint.latest_version().fields)
        if any(f.name == parameter for f in fields):
            raise ChangeApplicationError(
                f"parameter {parameter!r} already exists on "
                f"{endpoint_name}")
        fields.append(FieldSpec(parameter, field_type))
        self._release_new_version(endpoint_name, fields, report)

    def _delete_parameter(self, change: Change,
                          report: ChangeReport) -> None:
        endpoint_name = change.details["endpoint"]
        endpoint = self.api.endpoint(endpoint_name)
        parameter = change.details["parameter"]
        state = self.state(endpoint_name)
        if parameter == state.id_field:
            raise ChangeApplicationError(
                f"cannot delete the ID parameter {parameter!r}")
        fields = [f for f in endpoint.latest_version().fields
                  if f.name != parameter]
        if len(fields) == len(endpoint.latest_version().fields):
            raise ChangeApplicationError(
                f"parameter {parameter!r} does not exist on "
                f"{endpoint_name}")
        self._release_new_version(endpoint_name, fields, report)

    def _rename_parameter(self, change: Change,
                          report: ChangeReport) -> None:
        endpoint_name = change.details["endpoint"]
        endpoint = self.api.endpoint(endpoint_name)
        parameter = change.details["parameter"]
        new_name = change.details["new_name"]
        fields = []
        found = False
        for spec in endpoint.latest_version().fields:
            if spec.name == parameter:
                fields.append(FieldSpec(new_name, spec.field_type,
                                        spec.generator))
                found = True
            else:
                fields.append(spec)
        if not found:
            raise ChangeApplicationError(
                f"parameter {parameter!r} does not exist on "
                f"{endpoint_name}")
        state = self.state(endpoint_name)
        if parameter == state.id_field:
            state.id_field = new_name
        # The renamed attribute inherits the old attribute's feature —
        # exactly the w4/bufferingRatio pattern of §2.1.
        self._release_new_version(endpoint_name, fields, report,
                                  rename_hints={new_name: parameter})

    def _change_type(self, change: Change,
                     report: ChangeReport) -> None:
        endpoint_name = change.details["endpoint"]
        endpoint = self.api.endpoint(endpoint_name)
        parameter = change.details["parameter"]
        new_type = change.details.get("new_type", "string")
        fields = []
        found = False
        for spec in endpoint.latest_version().fields:
            if spec.name == parameter:
                fields.append(FieldSpec(parameter, new_type))
                found = True
            else:
                fields.append(spec)
        if not found:
            raise ChangeApplicationError(
                f"parameter {parameter!r} does not exist on "
                f"{endpoint_name}")
        xsd_map = {"int": "integer", "float": "double", "bool": "boolean",
                   "string": "string", "timestamp": "long"}
        state = self.state(endpoint_name)
        # Renamed attributes inherit another field's feature — resolve
        # through the serialized F first, then fall back to the minted IRI.
        feature = self.ontology.mappings.feature_of_attribute(
            attribute_uri(state.source_name, parameter))
        if feature is None:
            feature = self._feature_iri(state, parameter)
        execute_command(
            self, "set_datatype",
            {"feature": str(feature),
             "datatype": f"http://www.w3.org/2001/XMLSchema#"
                         f"{xsd_map.get(new_type, 'string')}"},
            journal=self.journal)
        self._release_new_version(endpoint_name, fields, report)
        report.notes.append(
            f"feature {feature.local_name} datatype updated")
