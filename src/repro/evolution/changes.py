"""The REST API change taxonomy of the functional evaluation (§6.2).

Encodes every change kind of Tables 3, 4 and 5 — the structural evolution
patterns of Wang et al. (ICSOC'14) at API, method and parameter level —
together with which component handles it (wrapper, BDI ontology, or
both). The handler assignment *is* the content of those tables; the
benchmark regenerating them simply walks this taxonomy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.errors import UnknownChangeKindError

__all__ = ["ChangeLevel", "Handler", "ChangeKind", "Change",
           "KIND_HANDLERS", "kinds_at_level"]


class ChangeLevel(Enum):
    """Where in the API surface the change occurs."""

    API = "API-level"
    METHOD = "method-level"
    PARAMETER = "parameter-level"


class Handler(Enum):
    """Which component(s) accommodate the change (the table checkmarks)."""

    WRAPPER = "wrapper"
    ONTOLOGY = "ontology"
    BOTH = "wrapper & ontology"


class ChangeKind(Enum):
    """All change kinds of Tables 3-5 (paper §6.2)."""

    # --- Table 3: API-level ------------------------------------------------
    API_ADD_AUTHENTICATION_MODEL = "add authentication model"
    API_CHANGE_RESOURCE_URL = "change resource URL"
    API_CHANGE_AUTHENTICATION_MODEL = "change authentication model"
    API_CHANGE_RATE_LIMIT = "change rate limit"
    API_DELETE_RESPONSE_FORMAT = "delete response format"
    API_ADD_RESPONSE_FORMAT = "add response format"
    API_CHANGE_RESPONSE_FORMAT = "change response format"

    # --- Table 4: method-level ----------------------------------------------
    METHOD_ADD_ERROR_CODE = "add error code"
    METHOD_CHANGE_RATE_LIMIT = "change rate limit (method)"
    METHOD_CHANGE_AUTHENTICATION_MODEL = "change authentication model (method)"
    METHOD_CHANGE_DOMAIN_URL = "change domain URL"
    METHOD_ADD_METHOD = "add method"
    METHOD_DELETE_METHOD = "delete method"
    METHOD_CHANGE_METHOD_NAME = "change method name"
    METHOD_CHANGE_RESPONSE_FORMAT = "change response format (method)"

    # --- Table 5: parameter-level ---------------------------------------------
    PARAM_CHANGE_RATE_LIMIT = "change rate limit (parameter)"
    PARAM_CHANGE_REQUIRE_TYPE = "change require type"
    PARAM_ADD_PARAMETER = "add parameter"
    PARAM_DELETE_PARAMETER = "delete parameter"
    PARAM_RENAME_RESPONSE_PARAMETER = "rename response parameter"
    PARAM_CHANGE_FORMAT_OR_TYPE = "change format or type"

    @property
    def level(self) -> ChangeLevel:
        if self.name.startswith("API_"):
            return ChangeLevel.API
        if self.name.startswith("METHOD_"):
            return ChangeLevel.METHOD
        return ChangeLevel.PARAMETER

    @property
    def label(self) -> str:
        """Row label as printed in the paper's tables."""
        return _TABLE_LABELS[self]


#: Handler assignment exactly as the checkmarks of Tables 3-5.
KIND_HANDLERS: dict[ChangeKind, Handler] = {
    # Table 3
    ChangeKind.API_ADD_AUTHENTICATION_MODEL: Handler.WRAPPER,
    ChangeKind.API_CHANGE_RESOURCE_URL: Handler.WRAPPER,
    ChangeKind.API_CHANGE_AUTHENTICATION_MODEL: Handler.WRAPPER,
    ChangeKind.API_CHANGE_RATE_LIMIT: Handler.WRAPPER,
    ChangeKind.API_DELETE_RESPONSE_FORMAT: Handler.ONTOLOGY,
    ChangeKind.API_ADD_RESPONSE_FORMAT: Handler.ONTOLOGY,
    ChangeKind.API_CHANGE_RESPONSE_FORMAT: Handler.ONTOLOGY,
    # Table 4
    ChangeKind.METHOD_ADD_ERROR_CODE: Handler.WRAPPER,
    ChangeKind.METHOD_CHANGE_RATE_LIMIT: Handler.WRAPPER,
    ChangeKind.METHOD_CHANGE_AUTHENTICATION_MODEL: Handler.WRAPPER,
    ChangeKind.METHOD_CHANGE_DOMAIN_URL: Handler.WRAPPER,
    ChangeKind.METHOD_ADD_METHOD: Handler.BOTH,
    ChangeKind.METHOD_DELETE_METHOD: Handler.BOTH,
    ChangeKind.METHOD_CHANGE_METHOD_NAME: Handler.BOTH,
    ChangeKind.METHOD_CHANGE_RESPONSE_FORMAT: Handler.ONTOLOGY,
    # Table 5
    ChangeKind.PARAM_CHANGE_RATE_LIMIT: Handler.WRAPPER,
    ChangeKind.PARAM_CHANGE_REQUIRE_TYPE: Handler.WRAPPER,
    ChangeKind.PARAM_ADD_PARAMETER: Handler.BOTH,
    ChangeKind.PARAM_DELETE_PARAMETER: Handler.BOTH,
    ChangeKind.PARAM_RENAME_RESPONSE_PARAMETER: Handler.ONTOLOGY,
    ChangeKind.PARAM_CHANGE_FORMAT_OR_TYPE: Handler.ONTOLOGY,
}

_TABLE_LABELS: dict[ChangeKind, str] = {
    ChangeKind.API_ADD_AUTHENTICATION_MODEL: "Add authentication model",
    ChangeKind.API_CHANGE_RESOURCE_URL: "Change resource URL",
    ChangeKind.API_CHANGE_AUTHENTICATION_MODEL:
        "Change authentication model",
    ChangeKind.API_CHANGE_RATE_LIMIT: "Change rate limit",
    ChangeKind.API_DELETE_RESPONSE_FORMAT: "Delete response format",
    ChangeKind.API_ADD_RESPONSE_FORMAT: "Add response format",
    ChangeKind.API_CHANGE_RESPONSE_FORMAT: "Change response format",
    ChangeKind.METHOD_ADD_ERROR_CODE: "Add error code",
    ChangeKind.METHOD_CHANGE_RATE_LIMIT: "Change rate limit",
    ChangeKind.METHOD_CHANGE_AUTHENTICATION_MODEL:
        "Change authentication model",
    ChangeKind.METHOD_CHANGE_DOMAIN_URL: "Change domain URL",
    ChangeKind.METHOD_ADD_METHOD: "Add method",
    ChangeKind.METHOD_DELETE_METHOD: "Delete method",
    ChangeKind.METHOD_CHANGE_METHOD_NAME: "Change method name",
    ChangeKind.METHOD_CHANGE_RESPONSE_FORMAT: "Change response format",
    ChangeKind.PARAM_CHANGE_RATE_LIMIT: "Change rate limit",
    ChangeKind.PARAM_CHANGE_REQUIRE_TYPE: "Change require type",
    ChangeKind.PARAM_ADD_PARAMETER: "Add parameter",
    ChangeKind.PARAM_DELETE_PARAMETER: "Delete parameter",
    ChangeKind.PARAM_RENAME_RESPONSE_PARAMETER:
        "Rename response parameter",
    ChangeKind.PARAM_CHANGE_FORMAT_OR_TYPE: "Change format or type",
}


def kinds_at_level(level: ChangeLevel) -> list[ChangeKind]:
    """Change kinds of one table, in row order."""
    return [kind for kind in ChangeKind if kind.level is level]


@dataclass
class Change:
    """One concrete change instance against a concrete API.

    *details* carries kind-specific payload, e.g. ``{"endpoint": "GET
    /posts", "parameter": "lagRatio", "new_name": "bufferingRatio"}``.
    """

    kind: ChangeKind
    api: str
    details: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.kind, ChangeKind):
            raise UnknownChangeKindError(
                f"unknown change kind: {self.kind!r}")

    @property
    def handler(self) -> Handler:
        return KIND_HANDLERS[self.kind]

    @property
    def level(self) -> ChangeLevel:
        return self.kind.level

    def __str__(self) -> str:
        return f"[{self.api}] {self.kind.label} {self.details or ''}"
