"""Semi-automatic construction of releases (the data steward's aid, §4.1).

Given a new endpoint version, build the :class:`~repro.core.release.Release`
that Algorithm 1 needs:

* the attribute→feature function ``F`` is proposed automatically — reuse
  the source's existing mappings for unchanged attribute names, align
  renamed attributes onto features by name similarity (our deterministic
  analogue of PARIS), and accept explicit steward hints for genuinely new
  attributes;
* the LAV subgraph is derived from the mapped features: for every mapped
  feature its ``hasFeature`` edge, plus the object-property edges of G
  connecting the concepts involved.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.ontology import BDIOntology
from repro.core.release import Release, subgraph_concepts
from repro.core.vocabulary import attribute_uri
from repro.errors import ReleaseError
from repro.rdf.graph import Graph
from repro.rdf.namespace import G as G_NS
from repro.rdf.term import IRI
from repro.util.text import name_similarity

__all__ = ["suggest_feature", "subgraph_for_features", "build_release",
           "release_impact"]

#: Minimum similarity for an automatic attribute→feature alignment.
ALIGNMENT_THRESHOLD = 0.5


def suggest_feature(ontology: BDIOntology, source_name: str,
                    attribute: str,
                    candidate_features: list[IRI] | None = None,
                    threshold: float = ALIGNMENT_THRESHOLD) -> IRI | None:
    """Propose the feature an attribute should map to.

    Strategy (in order):

    1. the source already maps an attribute of that name — reuse its
       feature (attribute semantics are stable within a source, §3.2);
    2. best name-similarity match against *candidate_features* (defaults
       to every feature of G) above *threshold*.
    """
    existing = ontology.mappings.feature_of_attribute(
        attribute_uri(source_name, attribute))
    if existing is not None:
        return existing

    candidates = (candidate_features if candidate_features is not None
                  else ontology.globals.features())
    best: tuple[float, IRI] | None = None
    for feature in candidates:
        score = name_similarity(attribute, feature.local_name)
        if best is None or score > best[0]:
            best = (score, feature)
    if best is not None and best[0] >= threshold:
        return best[1]
    return None


def subgraph_for_features(ontology: BDIOntology,
                          features: list[IRI]) -> Graph:
    """The minimal LAV subgraph induced by a set of mapped features.

    Contains ``⟨concept, G:hasFeature, feature⟩`` for every feature plus
    all object-property edges of G between the involved concepts.
    """
    subgraph = Graph()
    concepts: set[IRI] = set()
    for feature in features:
        owner = ontology.globals.concept_of_feature(feature)
        if owner is None:
            raise ReleaseError(
                f"feature {feature} belongs to no concept in G")
        subgraph.add((owner, G_NS.hasFeature, feature))
        concepts.add(owner)
    for edge in ontology.globals.object_properties():
        if edge.s in concepts and edge.o in concepts:
            subgraph.add(edge)
    return subgraph


def release_impact(release: Release,
                   ontology: BDIOntology | None = None) -> frozenset[IRI]:
    """The concepts a release will affect when it lands (Algorithm 1).

    Exposed here so stewards can preview, before applying a release,
    which cached rewritings it is going to invalidate — everything over
    a disjoint concept set survives (see
    :class:`~repro.query.cache.RewriteCache`). Pass *ontology* to get
    the full picture for wrapper re-releases: replacing an existing
    wrapper's mapping also affects the concepts of its previous LAV
    subgraph, exactly as Algorithm 1 will record.
    """
    affected = release.affected_concepts()
    if ontology is not None:
        previous = ontology.mappings.mapping_graph_of(release.wrapper_name)
        if previous is not None:
            affected |= subgraph_concepts(previous)
    return affected


def build_release(ontology: BDIOntology, source_name: str,
                  wrapper_name: str,
                  id_attributes: list[str],
                  non_id_attributes: list[str],
                  feature_hints: Mapping[str, IRI | str] | None = None,
                  candidate_features: list[IRI] | None = None,
                  threshold: float = ALIGNMENT_THRESHOLD) -> Release:
    """Assemble a release for a new wrapper, semi-automatically.

    *feature_hints* lets the steward pin attributes whose alignment the
    similarity heuristic cannot decide; attributes that remain unmapped
    raise :class:`ReleaseError` listing them (the steward must intervene —
    this is the "semi" in semi-automatic).
    """
    hints = {k: IRI(str(v)) for k, v in (feature_hints or {}).items()}
    mapping: dict[str, IRI] = {}
    unmapped: list[str] = []
    for attribute in list(id_attributes) + list(non_id_attributes):
        if attribute in hints:
            mapping[attribute] = hints[attribute]
            continue
        suggestion = suggest_feature(ontology, source_name, attribute,
                                     candidate_features, threshold)
        if suggestion is None:
            unmapped.append(attribute)
        else:
            mapping[attribute] = suggestion
    if unmapped:
        raise ReleaseError(
            f"cannot align attributes {unmapped} of wrapper "
            f"{wrapper_name} to features of G; provide feature_hints "
            "or extend the Global graph first")

    subgraph = subgraph_for_features(ontology,
                                     sorted(set(mapping.values())))
    return Release(
        wrapper_name=wrapper_name,
        source_name=source_name,
        id_attributes=tuple(id_attributes),
        non_id_attributes=tuple(non_id_attributes),
        subgraph=subgraph,
        attribute_to_feature=mapping,
    )
