"""Reconstructed Wordpress REST API release history (paper §6.4).

The paper studies the structural evolution of the GET-Posts endpoint from
the (deprecated) version 1 through major version 2 and 13 minor 2.x
releases, measuring ontology growth per release. The authors' analysis
file is no longer online, so this module reconstructs a release history
that is faithful to the qualitative description:

* **v1** — the first occurrence: every element must be added ("carries a
  big overhead");
* **v2** — a major rework "where few elements can be reused": most
  attributes renamed or restructured;
* **v2.1 … v2.13** — minor releases with "few attribute additions,
  deletions or renames"; each release re-asserts ``S:hasAttribute`` edges
  for all attributes it serves, which dominates the per-release growth.

Field sets follow the real WP REST API plugin (v1) and core endpoint
(v2) schemas where documented, trimmed to response parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sources.rest_api import ApiVersion, Endpoint, FieldSpec

__all__ = ["WORDPRESS_RELEASES", "WordpressRelease",
           "build_wordpress_endpoint", "all_wordpress_fields"]


@dataclass(frozen=True)
class WordpressRelease:
    """One release of the GET-Posts endpoint: version + field list."""

    version: str
    fields: tuple[str, ...]
    major: bool = False


_V1_FIELDS = (
    "ID", "title", "status", "type", "author", "content", "parent",
    "link", "date", "modified", "format", "slug", "guid", "excerpt",
    "menu_order", "comment_status", "ping_status", "sticky",
    "date_gmt", "modified_gmt", "terms", "post_meta", "featured_image",
)

_V2_FIELDS = (
    "id", "date", "date_gmt", "guid", "modified", "modified_gmt",
    "slug", "status", "type", "link", "title", "content", "excerpt",
    "author", "featured_media", "comment_status", "ping_status",
    "sticky", "format", "meta", "categories", "tags",
)


def _evolve(fields: tuple[str, ...], add: tuple[str, ...] = (),
            drop: tuple[str, ...] = (),
            rename: dict[str, str] | None = None) -> tuple[str, ...]:
    rename = rename or {}
    out: list[str] = []
    for name in fields:
        if name in drop:
            continue
        out.append(rename.get(name, name))
    out.extend(a for a in add if a not in out)
    return tuple(out)


def _build_releases() -> list[WordpressRelease]:
    releases = [
        WordpressRelease("1", _V1_FIELDS, major=True),
        WordpressRelease("2", _V2_FIELDS, major=True),
    ]
    current = _V2_FIELDS
    # Thirteen minor releases; deltas reconstructed from the v2 endpoint
    # changelog (template/password/permalink additions, occasional
    # renames/drops), sized to the paper's "few changes per minor".
    minor_deltas: list[dict] = [
        {"add": ("template",)},                                  # 2.1
        {"add": ("password",)},                                  # 2.2
        {"rename": {"meta": "meta_fields"}},                     # 2.3
        {"add": ("liveblog_likes",)},                            # 2.4
        {"drop": ("liveblog_likes",)},                           # 2.5
        {"add": ("permalink_template", "generated_slug")},       # 2.6
        {},                                                      # 2.7
        {"rename": {"meta_fields": "meta"}},                     # 2.8
        {"add": ("block_version",)},                             # 2.9
        {},                                                      # 2.10
        {"add": ("content_raw",)},                               # 2.11
        {"drop": ("content_raw",)},                              # 2.12
        {"add": ("menu_order",)},                                # 2.13
    ]
    for index, delta in enumerate(minor_deltas, start=1):
        current = _evolve(current, delta.get("add", ()),
                          delta.get("drop", ()),
                          delta.get("rename"))
        releases.append(WordpressRelease(f"2.{index}", current))
    return releases


#: v1, v2 and the thirteen 2.x minor releases, in order.
WORDPRESS_RELEASES: list[WordpressRelease] = _build_releases()


def all_wordpress_fields() -> list[str]:
    """Every field name ever served across the release history."""
    seen: dict[str, None] = {}
    for release in WORDPRESS_RELEASES:
        for name in release.fields:
            seen.setdefault(name)
    return list(seen)


def build_wordpress_endpoint() -> Endpoint:
    """The simulated ``GET /posts`` endpoint serving every release."""
    endpoint = Endpoint("GET /posts")
    for release in WORDPRESS_RELEASES:
        endpoint.add_version(ApiVersion(
            release.version,
            [FieldSpec(name, "string") for name in release.fields]))
    return endpoint
