"""RDFS entailment (the regime assumed by the paper, §2: "a triplestore
with a SPARQL endpoint supporting the RDFS entailment regime (e.g., subclass
relations are automatically inferred)").

Two complementary interfaces are offered:

* :func:`materialize` — forward-chaining closure of the standard RDFS rules
  over a graph, returning a new graph with all inferred triples added. This
  mirrors what a Jena RDFS reasoner does at load time.
* :class:`RDFSView` — a lazy view answering the two queries the BDI
  algorithms actually rely on (transitive ``rdfs:subClassOf`` and inherited
  ``rdf:type``) without paying full materialization. The SPARQL evaluator
  can wrap the queried graph in this view.

Implemented rules (names from the RDFS semantics document):

=======  =====================================================
rdfs2    (p domain c) & (x p y)     ⇒ (x type c)
rdfs3    (p range c) & (x p y)      ⇒ (y type c)   [y not literal]
rdfs5    subPropertyOf transitivity
rdfs7    (p subPropertyOf q) & (x p y) ⇒ (x q y)
rdfs9    (c subClassOf d) & (x type c) ⇒ (x type d)
rdfs11   subClassOf transitivity
=======  =====================================================
"""

from __future__ import annotations

from typing import Iterator

from repro.rdf.graph import Graph
from repro.rdf.namespace import RDF, RDFS
from repro.rdf.term import IRI, Literal, Term
from repro.rdf.triple import Triple

__all__ = ["materialize", "subclass_closure", "superclasses",
           "subclasses", "RDFSView"]


def _transitive(graph: Graph, start: Term, predicate: IRI,
                forward: bool = True) -> set[Term]:
    """Nodes reachable from *start* over *predicate* (excluding start).

    ``forward=True`` follows subject→object, else object→subject.
    """
    seen: set[Term] = set()
    frontier = [start]
    while frontier:
        node = frontier.pop()
        if forward:
            nexts = graph.objects(node, predicate)
        else:
            nexts = graph.subjects(predicate, node)
        for nxt in nexts:
            if nxt not in seen and nxt != start:
                seen.add(nxt)
                frontier.append(nxt)
    return seen


def superclasses(graph: Graph, cls: Term,
                 reflexive: bool = False) -> set[Term]:
    """All (transitive) superclasses of *cls* via ``rdfs:subClassOf``."""
    result = _transitive(graph, cls, RDFS.subClassOf, forward=True)
    if reflexive:
        result.add(cls)
    return result


def subclasses(graph: Graph, cls: Term,
               reflexive: bool = False) -> set[Term]:
    """All (transitive) subclasses of *cls* via ``rdfs:subClassOf``."""
    result = _transitive(graph, cls, RDFS.subClassOf, forward=False)
    if reflexive:
        result.add(cls)
    return result


def subclass_closure(graph: Graph, sub: Term, sup: Term) -> bool:
    """True when ``sub rdfs:subClassOf* sup`` holds (reflexive)."""
    if sub == sup:
        return True
    return sup in superclasses(graph, sub)


def materialize(graph: Graph, max_iterations: int = 100) -> Graph:
    """Forward-chain the RDFS rules to a fixpoint on a copy of *graph*.

    The closure is finite (no new terms are minted), so the fixpoint always
    terminates; *max_iterations* is a safety valve only.
    """
    closed = graph.copy()
    for _ in range(max_iterations):
        added = _apply_rules_once(closed)
        if not added:
            return closed
    raise RuntimeError(
        "RDFS materialization did not reach a fixpoint "
        f"after {max_iterations} iterations")  # pragma: no cover


def _apply_rules_once(g: Graph) -> int:
    new: list[Triple] = []

    # rdfs11: subClassOf transitivity
    for t in list(g.match(None, RDFS.subClassOf, None)):
        for sup in list(g.objects(t.o, RDFS.subClassOf)):
            cand = Triple(t.s, RDFS.subClassOf, sup)
            if cand not in g:
                new.append(cand)

    # rdfs5: subPropertyOf transitivity
    for t in list(g.match(None, RDFS.subPropertyOf, None)):
        for sup in list(g.objects(t.o, RDFS.subPropertyOf)):
            cand = Triple(t.s, RDFS.subPropertyOf, sup)
            if cand not in g:
                new.append(cand)

    # rdfs7: property inheritance
    for t in list(g.match(None, RDFS.subPropertyOf, None)):
        if not isinstance(t.s, IRI) or not isinstance(t.o, IRI):
            continue
        for usage in list(g.match(None, t.s, None)):
            cand = Triple(usage.s, t.o, usage.o)
            if cand not in g:
                new.append(cand)

    # rdfs2 / rdfs3: domain and range
    for t in list(g.match(None, RDFS.domain, None)):
        if not isinstance(t.s, IRI):
            continue
        for usage in list(g.match(None, t.s, None)):
            cand = Triple(usage.s, RDF.type, t.o)
            if cand not in g:
                new.append(cand)
    for t in list(g.match(None, RDFS.range, None)):
        if not isinstance(t.s, IRI):
            continue
        for usage in list(g.match(None, t.s, None)):
            if isinstance(usage.o, Literal):
                continue
            cand = Triple(usage.o, RDF.type, t.o)
            if cand not in g:
                new.append(cand)

    # rdfs9: type inheritance through subClassOf
    for t in list(g.match(None, RDFS.subClassOf, None)):
        for inst in list(g.subjects(RDF.type, t.s)):
            cand = Triple(inst, RDF.type, t.o)
            if cand not in g:
                new.append(cand)

    for t in new:
        g.add(t)
    return len(new)


class RDFSView:
    """A read-only entailment view over a graph.

    Exposes the :meth:`match`/:meth:`contains` subset of the
    :class:`~repro.rdf.graph.Graph` API, augmenting results with:

    * transitive ``rdfs:subClassOf`` answers, and
    * ``rdf:type`` answers inherited through ``rdfs:subClassOf``.

    These are the two entailments the paper's algorithms depend on (for ID
    detection via ``?t rdfs:subClassOf sc:identifier`` over feature
    taxonomies of arbitrary depth). Domain/range and subPropertyOf rules are
    available through :func:`materialize` when full closure is wanted.
    """

    __slots__ = ("_g",)

    def __init__(self, graph: Graph) -> None:
        self._g = graph

    @property
    def raw(self) -> Graph:
        return self._g

    def match(self, s: object | None = None, p: object | None = None,
              o: object | None = None) -> Iterator[Triple]:
        yield from self._g.match(s, p, o)
        from repro.rdf.graph import _pattern_term  # local import, no cycle
        ms, mp, mo = _pattern_term(s), _pattern_term(p), _pattern_term(o)

        if mp == RDFS.subClassOf:
            yield from self._match_subclass(ms, mo)
        elif mp == RDF.type:
            yield from self._match_type(ms, mo)

    def _match_subclass(self, ms: Term | None,
                        mo: Term | None) -> Iterator[Triple]:
        asserted = set(self._g.match(None, RDFS.subClassOf, None))
        if ms is not None:
            sups = superclasses(self._g, ms)
            for sup in sups:
                t = Triple(ms, RDFS.subClassOf, sup)
                if t not in asserted and (mo is None or mo == sup):
                    yield t
            return
        if mo is not None:
            subs = subclasses(self._g, mo)
            for sub in subs:
                t = Triple(sub, RDFS.subClassOf, mo)
                if t not in asserted:
                    yield t
            return
        # Fully unbound: transitive closure over all asserted edges.
        subjects = {t.s for t in asserted}
        for subj in subjects:
            for sup in superclasses(self._g, subj):
                t = Triple(subj, RDFS.subClassOf, sup)
                if t not in asserted:
                    yield t

    def _match_type(self, ms: Term | None,
                    mo: Term | None) -> Iterator[Triple]:
        asserted = set(self._g.match(None, RDF.type, None))
        if ms is not None:
            direct = set(self._g.objects(ms, RDF.type))
            inferred: set[Term] = set()
            for cls in direct:
                inferred |= superclasses(self._g, cls)
            for cls in inferred - direct:
                if mo is None or mo == cls:
                    yield Triple(ms, RDF.type, cls)
            return
        if mo is not None:
            for sub in subclasses(self._g, mo):
                for inst in self._g.subjects(RDF.type, sub):
                    t = Triple(inst, RDF.type, mo)
                    if t not in asserted:
                        yield t
            return
        for t in list(asserted):
            for sup in superclasses(self._g, t.o):
                cand = Triple(t.s, RDF.type, sup)
                if cand not in asserted:
                    yield cand

    def contains(self, s: object | None = None, p: object | None = None,
                 o: object | None = None) -> bool:
        return next(iter(self.match(s, p, o)), None) is not None

    def objects(self, s: object | None = None,
                p: object | None = None) -> Iterator[Term]:
        seen: set[Term] = set()
        for t in self.match(s, p, None):
            if t.o not in seen:
                seen.add(t.o)
                yield t.o

    def subjects(self, p: object | None = None,
                 o: object | None = None) -> Iterator[Term]:
        seen: set[Term] = set()
        for t in self.match(None, p, o):
            if t.s not in seen:
                seen.add(t.s)
                yield t.s
