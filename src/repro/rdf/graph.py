"""An indexed in-memory RDF graph.

The graph maintains three nested-dictionary indexes (SPO, POS, OSP) so that
every triple-pattern shape resolves through a dictionary walk instead of a
scan — the same layout Jena TDB uses on disk, here in memory. This is the
workhorse of the reproduction: all BDI algorithms are sequences of pattern
matches over graphs of this kind.

Pattern positions accept ``None`` (wildcard) or a
:class:`~repro.rdf.term.Variable` (treated as a wildcard as well); concrete
terms must match exactly.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.rdf.term import IRI, Term, Variable
from repro.rdf.triple import Triple, coerce_node

__all__ = ["Graph"]

_Index = dict  # nested: {t1: {t2: set(t3)}}


def _pattern_term(value: object | None) -> Optional[Term]:
    """Normalize one pattern position: None/Variable -> None wildcard."""
    if value is None or isinstance(value, Variable):
        return None
    return coerce_node(value)


class Graph:
    """A set of RDF triples with SPO/POS/OSP indexing.

    Supports the container protocol (``in``, ``len``, iteration), set-like
    bulk operations, and :meth:`match` for pattern queries.

    >>> g = Graph()
    >>> _ = g.add(("http://x/a", "http://x/p", "http://x/b"))
    >>> len(g)
    1
    """

    __slots__ = ("identifier", "_spo", "_pos", "_osp", "_size",
                 "_mutations")

    def __init__(self, identifier: IRI | str | None = None,
                 triples: Iterable[object] | None = None) -> None:
        if identifier is not None and not isinstance(identifier, str):
            # Graph([...triples...]) convenience form.
            if triples is not None:
                raise TypeError(
                    "pass either positional triples or identifier, "
                    "not both")
            identifier, triples = None, identifier
        self.identifier: Optional[IRI] = (
            None if identifier is None else IRI(str(identifier)))
        self._spo: _Index = {}
        self._pos: _Index = {}
        self._osp: _Index = {}
        self._size = 0
        self._mutations = 0
        if triples is not None:
            self.update(triples)

    # -- coercion ------------------------------------------------------------

    @staticmethod
    def _as_triple(item: object) -> Triple:
        if isinstance(item, Triple):
            return item.validate_concrete()
        if isinstance(item, tuple) and len(item) == 3:
            return Triple.of(*item).validate_concrete()
        raise TypeError(f"expected a triple, got {item!r}")

    # -- mutation --------------------------------------------------------------

    def add(self, item: object) -> "Graph":
        """Add one triple; returns self for chaining. Idempotent."""
        t = self._as_triple(item)
        leaf = self._spo.setdefault(t.s, {}).setdefault(t.p, set())
        if t.o in leaf:
            return self
        leaf.add(t.o)
        self._pos.setdefault(t.p, {}).setdefault(t.o, set()).add(t.s)
        self._osp.setdefault(t.o, {}).setdefault(t.s, set()).add(t.p)
        self._size += 1
        self._mutations += 1
        return self

    def update(self, items: Iterable[object]) -> "Graph":
        """Add many triples (or the content of another graph)."""
        for item in items:
            self.add(item)
        return self

    def remove(self, item: object) -> bool:
        """Remove one concrete triple. Returns True when it was present."""
        t = self._as_triple(item)
        try:
            leaf = self._spo[t.s][t.p]
            leaf.remove(t.o)
        except KeyError:
            return False
        if not leaf:
            del self._spo[t.s][t.p]
            if not self._spo[t.s]:
                del self._spo[t.s]
        self._pos[t.p][t.o].discard(t.s)
        if not self._pos[t.p][t.o]:
            del self._pos[t.p][t.o]
            if not self._pos[t.p]:
                del self._pos[t.p]
        self._osp[t.o][t.s].discard(t.p)
        if not self._osp[t.o][t.s]:
            del self._osp[t.o][t.s]
            if not self._osp[t.o]:
                del self._osp[t.o]
        self._size -= 1
        self._mutations += 1
        return True

    def remove_matching(self, s: object | None = None, p: object | None = None,
                        o: object | None = None) -> int:
        """Remove every triple matching the pattern; return removal count."""
        victims = list(self.match(s, p, o))
        for t in victims:
            self.remove(t)
        return len(victims)

    def clear(self) -> None:
        if self._size:
            self._mutations += 1
        self._spo.clear()
        self._pos.clear()
        self._osp.clear()
        self._size = 0

    @property
    def mutation_count(self) -> int:
        """Count of effective mutations (adds, removals, clears) so far.

        Monotonic; lets fingerprints detect count-neutral edits (remove
        one triple, add another) that leave ``len(graph)`` unchanged.
        """
        return self._mutations

    def restore_mutation_count(self, count: int) -> None:
        """Reinstate a recorded mutation count (snapshot restore only).

        Fingerprints hash the mutation count, so a graph rebuilt from a
        snapshot must resume counting where the snapshotted graph left
        off — otherwise the restored ontology could never reproduce the
        writer's fingerprint. Monotonicity is preserved: the count may
        only move forward.
        """
        if count < self._mutations:
            raise ValueError(
                f"mutation count may only advance ({self._mutations} -> "
                f"{count})")
        self._mutations = count

    # -- queries ----------------------------------------------------------------

    def match(self, s: object | None = None, p: object | None = None,
              o: object | None = None) -> Iterator[Triple]:
        """Yield triples matching the pattern (None/Variable = wildcard).

        Chooses the index according to which positions are bound:

        ========= =========
        bound     index
        ========= =========
        s ? ?     SPO
        s p ?     SPO
        s p o     SPO
        ? p ?     POS
        ? p o     POS
        ? ? o     OSP
        s ? o     OSP
        ? ? ?     SPO scan
        ========= =========
        """
        ms, mp, mo = _pattern_term(s), _pattern_term(p), _pattern_term(o)

        if ms is not None:
            if mp is not None:
                objects = self._spo.get(ms, {}).get(mp, ())
                if mo is not None:
                    if mo in objects:
                        yield Triple(ms, mp, mo)
                    return
                for obj in objects:
                    yield Triple(ms, mp, obj)
                return
            if mo is not None:  # s ? o -> OSP
                preds = self._osp.get(mo, {}).get(ms, ())
                for pred in preds:
                    yield Triple(ms, pred, mo)
                return
            for pred, objects in self._spo.get(ms, {}).items():
                for obj in objects:
                    yield Triple(ms, pred, obj)
            return

        if mp is not None:  # ? p ? / ? p o -> POS
            by_obj = self._pos.get(mp, {})
            if mo is not None:
                for subj in by_obj.get(mo, ()):
                    yield Triple(subj, mp, mo)
                return
            for obj, subjects in by_obj.items():
                for subj in subjects:
                    yield Triple(subj, mp, obj)
            return

        if mo is not None:  # ? ? o -> OSP
            for subj, preds in self._osp.get(mo, {}).items():
                for pred in preds:
                    yield Triple(subj, pred, mo)
            return

        for subj, by_pred in self._spo.items():  # full scan
            for pred, objects in by_pred.items():
                for obj in objects:
                    yield Triple(subj, pred, obj)

    def contains(self, s: object | None = None, p: object | None = None,
                 o: object | None = None) -> bool:
        """True when at least one triple matches the pattern."""
        return next(iter(self.match(s, p, o)), None) is not None

    def count(self, s: object | None = None, p: object | None = None,
              o: object | None = None) -> int:
        """Number of triples matching the pattern."""
        return sum(1 for _ in self.match(s, p, o))

    # Convenience accessors used pervasively by the BDI algorithms ------------

    def subjects(self, p: object | None = None,
                 o: object | None = None) -> Iterator[Term]:
        seen: set[Term] = set()
        for t in self.match(None, p, o):
            if t.s not in seen:
                seen.add(t.s)
                yield t.s

    def objects(self, s: object | None = None,
                p: object | None = None) -> Iterator[Term]:
        seen: set[Term] = set()
        for t in self.match(s, p, None):
            if t.o not in seen:
                seen.add(t.o)
                yield t.o

    def predicates(self, s: object | None = None,
                   o: object | None = None) -> Iterator[Term]:
        seen: set[Term] = set()
        for t in self.match(s, None, o):
            if t.p not in seen:
                seen.add(t.p)
                yield t.p

    def value(self, s: object | None = None, p: object | None = None,
              o: object | None = None) -> Optional[Term]:
        """Return one term filling the single ``None`` position, if any."""
        pattern = (s, p, o)
        holes = [i for i, v in enumerate(pattern) if v is None]
        if len(holes) != 1:
            raise ValueError("value() requires exactly one unbound position")
        t = next(iter(self.match(s, p, o)), None)
        if t is None:
            return None
        return t[holes[0]]

    # -- protocols ------------------------------------------------------------

    def __contains__(self, item: object) -> bool:
        if isinstance(item, (Triple, tuple)) and len(item) == 3:
            s, p, o = item
            return self.contains(s, p, o)
        return False

    def __iter__(self) -> Iterator[Triple]:
        return self.match()

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __eq__(self, other: object) -> bool:
        """Graphs compare by triple-set equality (identifier ignored)."""
        if not isinstance(other, Graph):
            return NotImplemented
        return self._size == other._size and all(t in other for t in self)

    def __ne__(self, other: object) -> bool:
        eq = self.__eq__(other)
        return NotImplemented if eq is NotImplemented else not eq

    __hash__ = None  # type: ignore[assignment]  # mutable container

    # -- set-like algebra -------------------------------------------------------

    def copy(self, identifier: IRI | str | None = None) -> "Graph":
        g = Graph(identifier if identifier is not None else self.identifier)
        g.update(self)
        return g

    def union(self, other: "Graph") -> "Graph":
        return self.copy().update(other)

    def __or__(self, other: "Graph") -> "Graph":
        return self.union(other)

    def __ior__(self, other: Iterable[object]) -> "Graph":
        return self.update(other)

    def intersection(self, other: "Graph") -> "Graph":
        small, large = (self, other) if len(self) <= len(other) else (other, self)
        return Graph(triples=(t for t in small if t in large))

    def difference(self, other: "Graph") -> "Graph":
        return Graph(triples=(t for t in self if t not in other))

    def issubset(self, other: "Graph") -> bool:
        """True when every triple of self is in other (⊆, used for coverage)."""
        return len(self) <= len(other) and all(t in other for t in self)

    def __le__(self, other: "Graph") -> bool:
        return self.issubset(other)

    # -- display ---------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = self.identifier or "anonymous"
        return f"<Graph {name} with {self._size} triples>"
