"""Self-contained RDF substrate.

Implements what the paper obtains from Jena + TDB + ARQ:

* :mod:`repro.rdf.term` — IRIs, literals, blank nodes, variables;
* :mod:`repro.rdf.graph` — an SPO/POS/OSP-indexed triple store;
* :mod:`repro.rdf.dataset` — named-graph datasets;
* :mod:`repro.rdf.turtle` / :mod:`repro.rdf.ntriples` — serialization;
* :mod:`repro.rdf.reasoner` — RDFS entailment;
* :mod:`repro.rdf.sparql` — the SPARQL subset of the paper.
"""

from repro.rdf.dataset import Dataset
from repro.rdf.graph import Graph
from repro.rdf.namespace import (
    DCT, DUV, G, M, OWL, PREFIXES, RDF, RDFS, S, SC, SUP, VANN, VOAF, XSD,
    Namespace, expand_curie, shrink_iri,
)
from repro.rdf.ntriples import (
    parse_nquads, parse_ntriples, serialize_nquads, serialize_ntriples,
)
from repro.rdf.reasoner import (
    RDFSView, materialize, subclass_closure, subclasses, superclasses,
)
from repro.rdf.sparql import ask, evaluate, parse_sparql, select, select_one
from repro.rdf.term import BlankNode, IRI, Literal, Term, Variable
from repro.rdf.triple import Quad, Triple

__all__ = [
    "Dataset", "Graph", "Namespace",
    "BlankNode", "IRI", "Literal", "Term", "Variable",
    "Quad", "Triple",
    "RDF", "RDFS", "OWL", "XSD", "VOAF", "VANN",
    "G", "S", "M", "SUP", "SC", "DUV", "DCT", "PREFIXES",
    "expand_curie", "shrink_iri",
    "parse_nquads", "parse_ntriples",
    "serialize_nquads", "serialize_ntriples",
    "RDFSView", "materialize", "subclass_closure",
    "subclasses", "superclasses",
    "ask", "evaluate", "parse_sparql", "select", "select_one",
]
