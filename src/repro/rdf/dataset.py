"""RDF datasets: collections of named graphs plus a default graph.

The BDI ontology ``T = ⟨G, S, M⟩`` is stored as a dataset: the Global,
Source and Mapping graphs are named graphs, and every LAV mapping is *also*
a named graph (one per wrapper) per paper §3.3. SPARQL ``GRAPH ?g { ... }``
evaluation therefore needs fast iteration over named graphs, which this
class provides.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import GraphNotFoundError
from repro.rdf.graph import Graph
from repro.rdf.term import IRI
from repro.rdf.triple import Quad

__all__ = ["Dataset"]


class Dataset:
    """A mutable collection of named :class:`Graph` objects.

    >>> ds = Dataset()
    >>> g = ds.graph("http://example.org/g1")
    >>> _ = g.add(("http://x/a", "http://x/p", "http://x/b"))
    >>> ds.quad_count()
    1
    """

    __slots__ = ("_default", "_named", "_retired_mutations")

    def __init__(self) -> None:
        self._default = Graph()
        self._named: dict[IRI, Graph] = {}
        self._retired_mutations = 0

    # -- graph management -------------------------------------------------------

    @property
    def default_graph(self) -> Graph:
        return self._default

    def graph(self, name: IRI | str | None = None) -> Graph:
        """Return the named graph *name*, creating it when missing.

        ``None`` returns the default graph.
        """
        if name is None:
            return self._default
        iri = IRI(str(name))
        existing = self._named.get(iri)
        if existing is None:
            existing = Graph(iri)
            self._named[iri] = existing
        return existing

    def get_graph(self, name: IRI | str) -> Graph:
        """Return the named graph *name*; raise if absent (no creation)."""
        iri = IRI(str(name))
        try:
            return self._named[iri]
        except KeyError:
            raise GraphNotFoundError(f"no named graph {iri}") from None

    def has_graph(self, name: IRI | str) -> bool:
        return IRI(str(name)) in self._named

    def remove_graph(self, name: IRI | str) -> bool:
        """Drop a named graph entirely. Returns True when it existed."""
        dropped = self._named.pop(IRI(str(name)), None)
        if dropped is None:
            return False
        # Keep mutation_count() monotonic: retain the dropped graph's
        # history and count the drop itself as one more mutation.
        self._retired_mutations += dropped.mutation_count + 1
        return True

    def graph_names(self) -> list[IRI]:
        """Deterministically ordered list of named-graph IRIs."""
        return sorted(self._named)

    def named_graphs(self) -> Iterator[tuple[IRI, Graph]]:
        for name in self.graph_names():
            yield name, self._named[name]

    # -- quad-level operations ----------------------------------------------------

    def add_quad(self, quad: Quad | tuple) -> "Dataset":
        if not isinstance(quad, Quad):
            quad = Quad.of(*quad)
        self.graph(quad.graph).add(quad.triple)
        return self

    def quads(self, s: object | None = None, p: object | None = None,
              o: object | None = None,
              graph: IRI | str | None | type(Ellipsis) = Ellipsis,
              ) -> Iterator[Quad]:
        """Yield quads matching the pattern.

        *graph* semantics: ``Ellipsis`` (default) searches everywhere,
        ``None`` only the default graph, an IRI only that named graph.
        """
        if graph is Ellipsis:
            scopes: list[tuple[Optional[IRI], Graph]] = [(None, self._default)]
            scopes.extend(self.named_graphs())
        elif graph is None:
            scopes = [(None, self._default)]
        else:
            scopes = [(IRI(str(graph)), self.graph(graph))]
        for name, g in scopes:
            for t in g.match(s, p, o):
                yield Quad(t.s, t.p, t.o, name)

    def quad_count(self) -> int:
        return len(self._default) + sum(len(g) for g in self._named.values())

    def mutation_count(self) -> int:
        """Total effective mutations across all graphs (monotonic).

        Dropped graphs keep contributing their history (plus one for the
        drop), so drop-and-recreate cannot reproduce an earlier value;
        this makes count-neutral edits detectable by fingerprints.
        """
        return (self._retired_mutations + self._default.mutation_count
                + sum(g.mutation_count for g in self._named.values()))

    def mutation_counts(self) -> dict[str, int]:
        """Per-graph mutation counts plus the retired-graph carry-over.

        The default graph is keyed ``""`` and dropped-graph history is
        keyed ``"*retired*"`` — the exact state a snapshot must persist
        for :meth:`restore_mutation_counts` to make a rebuilt dataset
        fingerprint-identical to the writer.
        """
        counts = {"": self._default.mutation_count,
                  "*retired*": self._retired_mutations}
        for name, graph in self._named.items():
            counts[str(name)] = graph.mutation_count
        return counts

    def restore_mutation_counts(self, counts: dict[str, int]) -> None:
        """Reinstate recorded mutation counts (snapshot restore only)."""
        retired = counts.get("*retired*", 0)
        if retired < self._retired_mutations:
            raise ValueError("retired mutation count may only advance")
        self._retired_mutations = retired
        for name, count in counts.items():
            if name == "*retired*":
                continue
            graph = self._default if name == "" else self.graph(name)
            graph.restore_mutation_count(count)

    def graphs_containing(self, s: object | None = None,
                          p: object | None = None,
                          o: object | None = None) -> list[IRI]:
        """Named graphs holding at least one triple matching the pattern.

        This is the primitive behind the paper's
        ``SELECT ?g WHERE { GRAPH ?g { ... } }`` queries (Algorithms 4-5).
        """
        return [name for name, g in self.named_graphs()
                if g.contains(s, p, o)]

    # -- views ---------------------------------------------------------------------

    def union_graph(self, names: list[IRI | str] | None = None) -> Graph:
        """A merged copy of the selected named graphs (default: all + default).

        Used to evaluate queries whose ``FROM`` clause spans several graphs.
        """
        merged = Graph()
        if names is None:
            merged.update(self._default)
            for _, g in self.named_graphs():
                merged.update(g)
        else:
            for name in names:
                merged.update(self.graph(name))
        return merged

    # -- protocols -------------------------------------------------------------------

    def __len__(self) -> int:
        return self.quad_count()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Dataset with {len(self._named)} named graphs, "
                f"{self.quad_count()} quads>")
