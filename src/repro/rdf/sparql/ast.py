"""Abstract syntax tree for the accepted SPARQL subset.

The paper restricts OMQs to the template of Code 3:

.. code-block:: sparql

    SELECT ?v1 ... ?vn
    FROM G
    WHERE {
        VALUES (?v1 ... ?vn) { (attr1 ... attrn) }
        s1 p1 attr1 .
        ...
        sm pm om
    }

The engine accepts a slightly larger subset (multiple ``FROM``, ``GRAPH``
blocks, ``SELECT *``, ``DISTINCT``) because the paper's *internal*
algorithms (Algorithms 1, 4, 5) issue such queries over the ontology
dataset itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.rdf.term import IRI, Term, Variable
from repro.rdf.triple import Triple

__all__ = [
    "TriplePattern",
    "BGP",
    "GraphPattern",
    "ValuesClause",
    "SelectQuery",
    "Pattern",
]


#: A triple pattern reuses :class:`Triple`; positions may hold variables.
TriplePattern = Triple


@dataclass(frozen=True)
class BGP:
    """A basic graph pattern: a conjunction of triple patterns."""

    patterns: tuple[TriplePattern, ...]

    def variables(self) -> list[Variable]:
        seen: list[Variable] = []
        for pattern in self.patterns:
            for var in pattern.variables():
                if var not in seen:
                    seen.append(var)
        return seen

    def __len__(self) -> int:
        return len(self.patterns)


@dataclass(frozen=True)
class GraphPattern:
    """``GRAPH ?g { ... }`` or ``GRAPH <iri> { ... }``."""

    graph: Union[Variable, IRI]
    bgp: BGP

    def variables(self) -> list[Variable]:
        result = [self.graph] if isinstance(self.graph, Variable) else []
        for var in self.bgp.variables():
            if var not in result:
                result.append(var)
        return result


@dataclass(frozen=True)
class ValuesClause:
    """``VALUES (?v1 ... ?vn) { (t11 ... t1n) (t21 ... t2n) ... }``.

    Encodes an inline solution-sequence table. The paper uses a single-row
    VALUES to bind projected variables to feature IRIs.
    """

    variables: tuple[Variable, ...]
    rows: tuple[tuple[Term, ...], ...]

    def __post_init__(self) -> None:
        for row in self.rows:
            if len(row) != len(self.variables):
                raise ValueError(
                    "VALUES row arity does not match variable list: "
                    f"{len(row)} vs {len(self.variables)}")


#: Union of the pattern kinds allowed in a WHERE clause.
Pattern = Union[BGP, GraphPattern, ValuesClause]


@dataclass(frozen=True)
class SelectQuery:
    """A parsed SELECT query.

    Attributes
    ----------
    variables:
        The projection list; empty tuple with ``select_all=True`` encodes
        ``SELECT *``.
    from_graphs:
        Graph IRIs named by ``FROM`` clauses; empty means "query the whole
        dataset" (default graph union).
    patterns:
        WHERE-clause constituents in source order.
    distinct:
        Whether ``DISTINCT`` was given.
    """

    variables: tuple[Variable, ...]
    patterns: tuple[Pattern, ...]
    from_graphs: tuple[IRI, ...] = ()
    select_all: bool = False
    distinct: bool = False
    prefixes: dict[str, str] = field(default_factory=dict, compare=False)

    def values_clause(self) -> Optional[ValuesClause]:
        """The first VALUES clause, if any (the OMQ template has one)."""
        for pattern in self.patterns:
            if isinstance(pattern, ValuesClause):
                return pattern
        return None

    def bgp(self) -> BGP:
        """All plain triple patterns merged into a single BGP."""
        triples: list[TriplePattern] = []
        for pattern in self.patterns:
            if isinstance(pattern, BGP):
                triples.extend(pattern.patterns)
        return BGP(tuple(triples))

    def projected(self) -> tuple[Variable, ...]:
        """Variables the query projects (resolves ``SELECT *``)."""
        if not self.select_all:
            return self.variables
        seen: list[Variable] = []
        for pattern in self.patterns:
            vars_of: list[Variable]
            if isinstance(pattern, ValuesClause):
                vars_of = list(pattern.variables)
            else:
                vars_of = pattern.variables()
            for var in vars_of:
                if var not in seen:
                    seen.append(var)
        return tuple(seen)
