"""SPARQL subset: parser, algebra and evaluator.

See :mod:`repro.rdf.sparql.parser` for the accepted grammar. The usual
entry points are :func:`select` (dict rows keyed by variable name),
:func:`evaluate` (raw solution mappings) and :func:`ask`.
"""

from repro.rdf.sparql.algebra import AlgebraNode, render_algebra, to_algebra
from repro.rdf.sparql.ast import (
    BGP, GraphPattern, SelectQuery, TriplePattern, ValuesClause,
)
from repro.rdf.sparql.evaluator import (
    Solution, ask, evaluate, select, select_one,
)
from repro.rdf.sparql.parser import parse_sparql

__all__ = [
    "AlgebraNode", "render_algebra", "to_algebra",
    "BGP", "GraphPattern", "SelectQuery", "TriplePattern", "ValuesClause",
    "Solution", "ask", "evaluate", "select", "select_one",
    "parse_sparql",
]
