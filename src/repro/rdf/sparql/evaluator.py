"""Evaluation of the SPARQL subset over graphs and datasets.

Solutions are immutable-ish dictionaries mapping
:class:`~repro.rdf.term.Variable` to concrete terms. Evaluation follows the
SPARQL algebra shape of the paper's Code 4::

    project(?v1 ... ?vn,
        join(table(VALUES rows),
             bgp(triple patterns)))

BGPs are solved by backtracking with a most-selective-first pattern order;
``GRAPH ?g`` patterns iterate the dataset's named graphs (this is how the
LAV mappings are resolved in Algorithms 4 and 5). RDFS entailment can be
switched on, in which case subclass/type matching is answered through
:class:`~repro.rdf.reasoner.RDFSView`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Union

from repro.errors import SparqlEvaluationError
from repro.rdf.dataset import Dataset
from repro.rdf.graph import Graph
from repro.rdf.reasoner import RDFSView
from repro.rdf.sparql.ast import (
    BGP, GraphPattern, SelectQuery, TriplePattern, ValuesClause,
)
from repro.rdf.sparql.parser import parse_sparql
from repro.rdf.term import IRI, Term, Variable
from repro.rdf.triple import Triple

__all__ = ["Solution", "evaluate", "select", "select_one", "ask"]

#: One SPARQL solution mapping.
Solution = dict[Variable, Term]

_Matchable = Union[Graph, RDFSView]


def _substitute(pattern: TriplePattern, binding: Solution) -> TriplePattern:
    """Replace bound variables in *pattern* by their values."""
    def sub(term: Term) -> Term:
        if isinstance(term, Variable):
            return binding.get(term, term)
        return term
    return Triple(sub(pattern.s), sub(pattern.p), sub(pattern.o))


def _selectivity(pattern: TriplePattern, binding: Solution) -> int:
    """Bound-position count after substitution; higher = more selective."""
    concrete = _substitute(pattern, binding)
    return sum(0 if isinstance(t, Variable) else 1 for t in concrete)


def _match_bgp(graph: _Matchable, patterns: tuple[TriplePattern, ...],
               binding: Solution) -> Iterator[Solution]:
    """Backtracking BGP matcher."""
    if not patterns:
        yield dict(binding)
        return
    # Pick the currently most selective pattern (greedy heuristic).
    index = max(range(len(patterns)),
                key=lambda i: _selectivity(patterns[i], binding))
    chosen = patterns[index]
    rest = patterns[:index] + patterns[index + 1:]
    concrete = _substitute(chosen, binding)

    s = None if isinstance(concrete.s, Variable) else concrete.s
    p = None if isinstance(concrete.p, Variable) else concrete.p
    o = None if isinstance(concrete.o, Variable) else concrete.o

    for found in graph.match(s, p, o):
        new_binding = dict(binding)
        consistent = True
        for pat_term, got in zip(concrete, found):
            if isinstance(pat_term, Variable):
                existing = new_binding.get(pat_term)
                if existing is None:
                    new_binding[pat_term] = got
                elif existing != got:
                    consistent = False
                    break
        if consistent:
            yield from _match_bgp(graph, rest, new_binding)


def _compatible(a: Solution, b: Solution) -> Solution | None:
    """Merge two solutions when their shared variables agree."""
    merged = dict(a)
    for var, term in b.items():
        existing = merged.get(var)
        if existing is None:
            merged[var] = term
        elif existing != term:
            return None
    return merged


class _Scope:
    """Resolved evaluation scope: the graph for BGPs and the dataset for
    GRAPH patterns."""

    def __init__(self, target: Graph | Dataset,
                 from_graphs: tuple[IRI, ...],
                 entailment: bool) -> None:
        self.entailment = entailment
        if isinstance(target, Dataset):
            self.dataset: Dataset | None = target
            if from_graphs:
                base = target.union_graph(list(from_graphs))
            else:
                base = target.union_graph()
        else:
            self.dataset = None
            base = target
        self.base_graph: _Matchable = (
            RDFSView(base) if entailment else base)

    def named_graphs(self) -> Iterable[tuple[IRI, _Matchable]]:
        if self.dataset is None:
            return ()
        result = []
        for name, g in self.dataset.named_graphs():
            result.append((name, RDFSView(g) if self.entailment else g))
        return result

    def named_graph(self, name: IRI) -> _Matchable | None:
        if self.dataset is None or not self.dataset.has_graph(name):
            return None
        g = self.dataset.graph(name)
        return RDFSView(g) if self.entailment else g


def _eval_patterns(scope: _Scope, patterns: tuple, index: int,
                   binding: Solution) -> Iterator[Solution]:
    if index == len(patterns):
        yield binding
        return
    pattern = patterns[index]

    if isinstance(pattern, ValuesClause):
        for row in pattern.rows:
            row_binding = dict(zip(pattern.variables, row))
            merged = _compatible(binding, row_binding)
            if merged is not None:
                yield from _eval_patterns(scope, patterns, index + 1, merged)
        return

    if isinstance(pattern, BGP):
        for solution in _match_bgp(scope.base_graph, pattern.patterns,
                                   binding):
            yield from _eval_patterns(scope, patterns, index + 1, solution)
        return

    if isinstance(pattern, GraphPattern):
        if isinstance(pattern.graph, Variable):
            graph_var = pattern.graph
            bound = binding.get(graph_var)
            if bound is not None:
                candidates: Iterable[tuple[IRI, _Matchable]]
                target = (scope.named_graph(bound)
                          if isinstance(bound, IRI) else None)
                candidates = [(bound, target)] if target is not None else []
            else:
                candidates = scope.named_graphs()
            for name, graph in candidates:
                start = dict(binding)
                start[graph_var] = name
                for solution in _match_bgp(graph, pattern.bgp.patterns,
                                           start):
                    yield from _eval_patterns(scope, patterns, index + 1,
                                              solution)
            return
        graph = scope.named_graph(pattern.graph)
        if graph is None:
            return
        for solution in _match_bgp(graph, pattern.bgp.patterns, binding):
            yield from _eval_patterns(scope, patterns, index + 1, solution)
        return

    raise SparqlEvaluationError(
        f"unsupported pattern type {type(pattern)!r}")  # pragma: no cover


def evaluate(target: Graph | Dataset, query: SelectQuery | str,
             entailment: bool = True,
             prefixes: dict[str, str] | None = None) -> list[Solution]:
    """Evaluate *query* against *target*, returning projected solutions.

    ``entailment=True`` (the default, matching the paper's RDFS entailment
    regime) answers ``rdfs:subClassOf`` / ``rdf:type`` patterns through the
    transitive closure.
    """
    if isinstance(query, str):
        query = parse_sparql(query, prefixes)
    scope = _Scope(target, query.from_graphs, entailment)

    raw = _eval_patterns(scope, query.patterns, 0, {})
    projected_vars = query.projected()

    results: list[Solution] = []
    seen: set[tuple] = set()
    for solution in raw:
        projected = {v: solution[v] for v in projected_vars if v in solution}
        if query.distinct:
            key = tuple(projected.get(v) for v in projected_vars)
            if key in seen:
                continue
            seen.add(key)
        results.append(projected)
    return results


def select(target: Graph | Dataset, query: SelectQuery | str,
           entailment: bool = True,
           prefixes: dict[str, str] | None = None) -> list[dict[str, Term]]:
    """Like :func:`evaluate` but keys results by variable *name*.

    This is the convenience entry point used by the BDI algorithms::

        rows = select(ontology.dataset, '''
            SELECT ?ds WHERE { ?ds rdf:type S:DataSource }
        ''')
    """
    solutions = evaluate(target, query, entailment, prefixes)
    return [{var.name: term for var, term in sol.items()}
            for sol in solutions]


def select_one(target: Graph | Dataset, query: SelectQuery | str,
               entailment: bool = True,
               prefixes: dict[str, str] | None = None,
               ) -> dict[str, Term] | None:
    """First solution of :func:`select`, or None."""
    rows = select(target, query, entailment, prefixes)
    return rows[0] if rows else None


def ask(target: Graph | Dataset, query: SelectQuery | str,
        entailment: bool = True,
        prefixes: dict[str, str] | None = None) -> bool:
    """True when the query has at least one solution."""
    return bool(evaluate(target, query, entailment, prefixes))
