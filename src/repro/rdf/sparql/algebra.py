"""SPARQL algebra rendering (paper Code 4).

The paper manipulates accepted OMQs through their SPARQL algebra form::

    (project (?v1 ... ?vn)
      (join
        (table (vars ?v1 ... ?vn)
          (row [?v1 attr1] ... [?vn attrn]))
        (bgp
          (triple s1 p1 attr1)
          ...)))

This module renders that s-expression for any accepted query — it is what
ARQ's ``algebra`` pretty printer produces in the paper — and offers a tiny
structured form for tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rdf.namespace import shrink_iri
from repro.rdf.sparql.ast import BGP, GraphPattern, SelectQuery, ValuesClause
from repro.rdf.term import IRI, Term, Variable

__all__ = ["AlgebraNode", "to_algebra", "render_algebra"]


@dataclass(frozen=True)
class AlgebraNode:
    """One node of the algebra tree: an operator plus children/payload."""

    op: str
    args: tuple

    def __str__(self) -> str:
        return render_algebra(self)


def _term_text(term: Term) -> str:
    if isinstance(term, Variable):
        return term.n3()
    if isinstance(term, IRI):
        return shrink_iri(str(term))
    return term.n3()


def to_algebra(query: SelectQuery) -> AlgebraNode:
    """Build the algebra tree ``project(join(table, bgp))`` of a query.

    GRAPH patterns are represented as ``(graph <name> (bgp ...))`` children
    of the join, which generalizes Code 4 to the internal queries of
    Algorithms 4-5.
    """
    children: list[AlgebraNode] = []
    for pattern in query.patterns:
        if isinstance(pattern, ValuesClause):
            rows = tuple(
                AlgebraNode("row", tuple(zip(pattern.variables, row)))
                for row in pattern.rows)
            children.append(
                AlgebraNode("table", (tuple(pattern.variables),) + rows))
        elif isinstance(pattern, BGP):
            children.append(AlgebraNode("bgp", tuple(pattern.patterns)))
        elif isinstance(pattern, GraphPattern):
            children.append(AlgebraNode(
                "graph",
                (pattern.graph, AlgebraNode("bgp",
                                            tuple(pattern.bgp.patterns)))))
    if len(children) == 1:
        body = children[0]
    else:
        body = AlgebraNode("join", tuple(children))
    return AlgebraNode("project", (query.projected(), body))


def render_algebra(node: AlgebraNode, indent: int = 0) -> str:
    """Pretty-print an algebra tree as an ARQ-style s-expression."""
    pad = "  " * indent

    if node.op == "project":
        variables, body = node.args
        vars_text = " ".join(v.n3() for v in variables)
        return (f"{pad}(project ({vars_text})\n"
                f"{render_algebra(body, indent + 1)}{pad})")

    if node.op == "join":
        parts = "".join(render_algebra(child, indent + 1)
                        for child in node.args)
        return f"{pad}(join\n{parts}{pad})\n"

    if node.op == "table":
        variables = node.args[0]
        rows = node.args[1:]
        vars_text = " ".join(v.n3() for v in variables)
        lines = [f"{pad}(table (vars {vars_text})"]
        for row in rows:
            cells = " ".join(
                f"[{var.n3()} {_term_text(value)}]"
                for var, value in row.args)
            lines.append(f"{pad}  (row {cells})")
        return "\n".join(lines) + f"\n{pad})\n"

    if node.op == "bgp":
        lines = [f"{pad}(bgp"]
        for triple in node.args:
            parts = " ".join(_term_text(t) for t in triple)
            lines.append(f"{pad}  (triple {parts})")
        return "\n".join(lines) + f"\n{pad})\n"

    if node.op == "graph":
        name, body = node.args
        return (f"{pad}(graph {_term_text(name)}\n"
                f"{render_algebra(body, indent + 1)}{pad})\n")

    raise ValueError(f"unknown algebra operator {node.op!r}")
