"""Tokenizer for the SPARQL subset."""

from __future__ import annotations

import re
from typing import Iterator, NamedTuple

from repro.errors import SparqlSyntaxError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "NAMED", "WHERE", "VALUES", "GRAPH",
    "PREFIX", "BASE", "UNDEF", "ASK", "A",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<COMMENT>\#[^\n]*)
  | (?P<IRIREF><[^<>"{}|^`\\\s]*>)
  | (?P<STRING>"(?:[^"\\\n]|\\.)*")
  | (?P<VAR>[?$][A-Za-z_][A-Za-z0-9_]*)
  | (?P<NUMBER>[+-]?(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?)
  | (?P<PNAME>(?:[A-Za-z_][A-Za-z0-9_.-]*)?:[A-Za-z0-9_][A-Za-z0-9_.%/-]*)
  | (?P<PREFIX_NAME>(?:[A-Za-z_][A-Za-z0-9_.-]*)?:)
  | (?P<BOOL>\b(?:true|false)\b)
  | (?P<WORD>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<LANGTAG>@[a-zA-Z]+(?:-[a-zA-Z0-9]+)*)
  | (?P<DOUBLE_CARET>\^\^)
  | (?P<PUNCT>[{}().;,*\[\]])
  | (?P<WS>\s+)
  | (?P<BAD>.)
    """,
    re.VERBOSE,
)


class Token(NamedTuple):
    kind: str
    value: str
    line: int
    column: int


def tokenize(text: str) -> Iterator[Token]:
    """Yield tokens; keywords are uppercased into their own kinds."""
    line = 1
    line_start = 0
    for m in _TOKEN_RE.finditer(text):
        kind = m.lastgroup or "BAD"
        value = m.group()
        column = m.start() - line_start + 1
        if kind in ("WS", "COMMENT"):
            newlines = value.count("\n")
            if newlines:
                line += newlines
                line_start = m.start() + value.rfind("\n") + 1
            continue
        if kind == "BAD":
            raise SparqlSyntaxError(
                f"unexpected character {value!r}", line, column)
        if kind == "WORD":
            upper = value.upper()
            if upper in KEYWORDS:
                kind = upper if upper != "A" else "A"
            else:
                raise SparqlSyntaxError(
                    f"unexpected bare word {value!r} "
                    "(did you mean a prefixed name?)", line, column)
        yield Token(kind, value, line, column)
    yield Token("EOF", "", line, 0)
