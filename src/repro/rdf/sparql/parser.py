"""Recursive-descent parser for the SPARQL subset.

Grammar (EBNF, whitespace/comments elided)::

    Query        := Prologue SelectClause FromClause* WhereClause
    Prologue     := ("PREFIX" PNAME_NS IRIREF | "BASE" IRIREF)*
    SelectClause := "SELECT" "DISTINCT"? ( "*" | Var+ )
    FromClause   := "FROM" "NAMED"? (IRIREF | PNAME)
    WhereClause  := "WHERE"? "{" Block* "}"
    Block        := ValuesBlock | GraphBlock | TriplesBlock
    ValuesBlock  := "VALUES" "(" Var+ ")" "{" ( "(" Term+ ")" )* "}"
    GraphBlock   := "GRAPH" (Var | IRI) "{" TriplesBlock "}"
    TriplesBlock := (Triple ".")* Triple "."?

Exactly what Algorithms 1-5 and the OMQ template (Code 3) require.
"""

from __future__ import annotations

from repro.errors import SparqlSyntaxError
from repro.rdf.namespace import PREFIXES, RDF
from repro.rdf.sparql.ast import (
    BGP, GraphPattern, Pattern, SelectQuery, TriplePattern, ValuesClause,
)
from repro.rdf.sparql.lexer import Token, tokenize
from repro.rdf.term import IRI, Literal, Term, Variable
from repro.rdf.triple import Triple

__all__ = ["parse_sparql"]


class _Parser:
    def __init__(self, text: str,
                 extra_prefixes: dict[str, str] | None = None) -> None:
        self.tokens = list(tokenize(text))
        self.pos = 0
        self.prefixes: dict[str, str] = {
            k: str(v) for k, v in PREFIXES.items()}
        if extra_prefixes:
            self.prefixes.update(
                {k: str(v) for k, v in extra_prefixes.items()})

    # -- plumbing -----------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def expect(self, kind: str) -> Token:
        tok = self.advance()
        if tok.kind != kind:
            raise SparqlSyntaxError(
                f"expected {kind}, found {tok.kind} ({tok.value!r})",
                tok.line, tok.column)
        return tok

    def expect_punct(self, char: str) -> Token:
        tok = self.advance()
        if tok.kind != "PUNCT" or tok.value != char:
            raise SparqlSyntaxError(
                f"expected {char!r}, found {tok.value!r}",
                tok.line, tok.column)
        return tok

    def at_punct(self, char: str) -> bool:
        tok = self.peek()
        return tok.kind == "PUNCT" and tok.value == char

    # -- grammar -------------------------------------------------------------

    def parse(self) -> SelectQuery:
        self._prologue()
        distinct, select_all, variables = self._select_clause()
        from_graphs = self._from_clauses()
        patterns = self._where_clause()
        tok = self.peek()
        if tok.kind != "EOF":
            raise SparqlSyntaxError(
                f"trailing content after query: {tok.value!r}",
                tok.line, tok.column)
        return SelectQuery(
            variables=tuple(variables),
            patterns=tuple(patterns),
            from_graphs=tuple(from_graphs),
            select_all=select_all,
            distinct=distinct,
            prefixes=dict(self.prefixes),
        )

    def _prologue(self) -> None:
        while self.peek().kind in ("PREFIX", "BASE"):
            tok = self.advance()
            if tok.kind == "PREFIX":
                name_tok = self.advance()
                if name_tok.kind not in ("PREFIX_NAME", "PNAME"):
                    raise SparqlSyntaxError(
                        f"expected prefix name, found {name_tok.value!r}",
                        name_tok.line, name_tok.column)
                prefix = name_tok.value.split(":", 1)[0]
                iri_tok = self.expect("IRIREF")
                self.prefixes[prefix] = iri_tok.value[1:-1]
            else:  # BASE — accepted and ignored (not needed by the paper)
                self.expect("IRIREF")

    def _select_clause(self) -> tuple[bool, bool, list[Variable]]:
        self.expect("SELECT")
        distinct = False
        if self.peek().kind == "DISTINCT":
            self.advance()
            distinct = True
        if self.at_punct("*"):
            self.advance()
            return distinct, True, []
        variables: list[Variable] = []
        while self.peek().kind == "VAR":
            variables.append(Variable(self.advance().value))
        if not variables:
            tok = self.peek()
            raise SparqlSyntaxError(
                "SELECT requires at least one variable or *",
                tok.line, tok.column)
        return distinct, False, variables

    def _from_clauses(self) -> list[IRI]:
        graphs: list[IRI] = []
        while self.peek().kind == "FROM":
            self.advance()
            if self.peek().kind == "NAMED":
                self.advance()
            graphs.append(self._iri())
        return graphs

    def _where_clause(self) -> list[Pattern]:
        if self.peek().kind == "WHERE":
            self.advance()
        self.expect_punct("{")
        patterns: list[Pattern] = []
        triples: list[TriplePattern] = []

        def flush() -> None:
            if triples:
                patterns.append(BGP(tuple(triples)))
                triples.clear()

        while not self.at_punct("}"):
            tok = self.peek()
            if tok.kind == "VALUES":
                flush()
                patterns.append(self._values_block())
            elif tok.kind == "GRAPH":
                flush()
                patterns.append(self._graph_block())
            elif tok.kind == "EOF":
                raise SparqlSyntaxError("unterminated WHERE block",
                                        tok.line, tok.column)
            else:
                triples.append(self._triple())
                if self.at_punct("."):
                    self.advance()
        self.expect_punct("}")
        flush()
        return patterns

    def _values_block(self) -> ValuesClause:
        self.expect("VALUES")
        self.expect_punct("(")
        variables: list[Variable] = []
        while self.peek().kind == "VAR":
            variables.append(Variable(self.advance().value))
        self.expect_punct(")")
        self.expect_punct("{")
        rows: list[tuple[Term, ...]] = []
        while self.at_punct("("):
            self.advance()
            row: list[Term] = []
            while not self.at_punct(")"):
                row.append(self._term(allow_var=False))
            self.advance()  # )
            if len(row) != len(variables):
                tok = self.peek()
                raise SparqlSyntaxError(
                    f"VALUES row has {len(row)} terms for "
                    f"{len(variables)} variables", tok.line, tok.column)
            rows.append(tuple(row))
        self.expect_punct("}")
        return ValuesClause(tuple(variables), tuple(rows))

    def _graph_block(self) -> GraphPattern:
        self.expect("GRAPH")
        tok = self.peek()
        if tok.kind == "VAR":
            self.advance()
            graph: Variable | IRI = Variable(tok.value)
        else:
            graph = self._iri()
        self.expect_punct("{")
        triples: list[TriplePattern] = []
        while not self.at_punct("}"):
            triples.append(self._triple())
            if self.at_punct("."):
                self.advance()
        self.expect_punct("}")
        return GraphPattern(graph, BGP(tuple(triples)))

    def _triple(self) -> TriplePattern:
        s = self._term(allow_var=True, allow_literal=False)
        p = self._predicate()
        o = self._term(allow_var=True, allow_literal=True)
        return Triple(s, p, o)

    def _predicate(self) -> Term:
        if self.peek().kind == "A":
            self.advance()
            return RDF.type
        return self._term(allow_var=True, allow_literal=False)

    def _iri(self) -> IRI:
        tok = self.advance()
        if tok.kind == "IRIREF":
            return IRI(tok.value[1:-1])
        if tok.kind == "PNAME":
            return self._expand(tok)
        raise SparqlSyntaxError(
            f"expected IRI, found {tok.value!r}", tok.line, tok.column)

    def _expand(self, tok: Token) -> IRI:
        prefix, _, local = tok.value.partition(":")
        try:
            return IRI(self.prefixes[prefix] + local)
        except KeyError:
            raise SparqlSyntaxError(
                f"unknown prefix {prefix!r}", tok.line, tok.column) from None

    def _term(self, allow_var: bool = True,
              allow_literal: bool = True) -> Term:
        tok = self.advance()
        if tok.kind == "VAR":
            if not allow_var:
                raise SparqlSyntaxError(
                    "variable not allowed here", tok.line, tok.column)
            return Variable(tok.value)
        if tok.kind == "IRIREF":
            return IRI(tok.value[1:-1])
        if tok.kind == "PNAME":
            return self._expand(tok)
        if tok.kind == "UNDEF":
            raise SparqlSyntaxError(
                "UNDEF is not supported in this subset",
                tok.line, tok.column)
        if allow_literal:
            if tok.kind == "STRING":
                return self._literal(tok)
            if tok.kind == "NUMBER":
                text = tok.value
                if "." in text or "e" in text or "E" in text:
                    return Literal(float(text))
                return Literal(int(text))
            if tok.kind == "BOOL":
                return Literal(tok.value == "true")
        raise SparqlSyntaxError(
            f"unexpected token {tok.value!r}", tok.line, tok.column)

    def _literal(self, tok: Token) -> Literal:
        value = tok.value[1:-1]
        value = (value.replace("\\\\", "\x00").replace('\\"', '"')
                 .replace("\\n", "\n").replace("\\t", "\t")
                 .replace("\x00", "\\"))
        nxt = self.peek()
        if nxt.kind == "LANGTAG":
            self.advance()
            return Literal(value, lang=nxt.value[1:])
        if nxt.kind == "DOUBLE_CARET":
            self.advance()
            return Literal(value, datatype=self._iri())
        return Literal(value)


def parse_sparql(text: str,
                 prefixes: dict[str, str] | None = None) -> SelectQuery:
    """Parse a SPARQL SELECT query of the accepted subset.

    *prefixes* extends the default prefix table (``rdf``, ``rdfs``, ``owl``,
    ``xsd``, ``G``, ``S``, ``M``, ``sup``, ``sc``, ...).
    """
    return _Parser(text, prefixes).parse()
