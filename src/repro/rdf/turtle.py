"""Turtle serialization and parsing.

Supports the Turtle subset used by the paper's listings (Codes 6 and 7) and
by this library's own persistence needs:

* ``@prefix`` / ``@base`` directives,
* prefixed names and ``<IRI>`` references,
* the ``a`` keyword for ``rdf:type``,
* predicate lists (``;``) and object lists (``,``),
* string literals with escapes, ``@lang`` tags and ``^^datatype``,
* integer / decimal / double / boolean shorthand literals,
* blank node labels (``_:b0``) and anonymous nodes (``[]``),
* ``#`` comments.

Not supported (not needed anywhere in the reproduction): collections
``( ... )``, nested blank-node property lists with content, triple-quoted
long strings.
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.errors import TurtleSyntaxError
from repro.rdf.graph import Graph
from repro.rdf.namespace import PREFIXES, RDF, XSD, Namespace, shrink_iri
from repro.rdf.term import BlankNode, IRI, Literal, Term
from repro.rdf.triple import Triple

__all__ = ["parse_turtle", "serialize_turtle"]


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<COMMENT>\#[^\n]*)
  | (?P<IRIREF><[^<>"{}|^`\\\s]*>)
  | (?P<STRING>"(?:[^"\\\n]|\\.)*")
  | (?P<PREFIX_DECL>@prefix\b)
  | (?P<BASE_DECL>@base\b)
  | (?P<LANGTAG>@[a-zA-Z]+(?:-[a-zA-Z0-9]+)*)
  | (?P<DOUBLE_CARET>\^\^)
  | (?P<BOOL>\b(?:true|false)\b)
  | (?P<NUMBER>[+-]?(?:\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?))
  | (?P<BNODE>_:[A-Za-z0-9_][A-Za-z0-9_.-]*)
  | (?P<ANON>\[\s*\])
  | (?P<PNAME>[A-Za-z_][A-Za-z0-9_.-]*)?:(?P<LOCAL>[A-Za-z0-9_][A-Za-z0-9_.%-]*(?:/[A-Za-z0-9_.%-]+)*)?
  | (?P<KEYWORD_A>\ba\b)
  | (?P<PUNCT>[;,.\[\]])
  | (?P<WS>\s+)
  | (?P<BAD>.)
    """,
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "value", "line", "column", "extra")

    def __init__(self, kind: str, value: str, line: int, column: int,
                 extra: str | None = None) -> None:
        self.kind = kind
        self.value = value
        self.line = line
        self.column = column
        self.extra = extra

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Token({self.kind}, {self.value!r})"


def _tokenize(text: str) -> Iterator[_Token]:
    line = 1
    line_start = 0
    for m in _TOKEN_RE.finditer(text):
        kind = m.lastgroup
        value = m.group()
        column = m.start() - line_start + 1
        if kind in ("WS", "COMMENT"):
            newlines = value.count("\n")
            if newlines:
                line += newlines
                line_start = m.start() + value.rfind("\n") + 1
            continue
        if kind == "BAD":
            raise TurtleSyntaxError(
                f"unexpected character {value!r}", line, column)
        if kind == "LOCAL" or (kind is None and ":" in value):
            kind = "PNAME_FULL"
        if kind == "PNAME":
            # The regex puts prefix in PNAME and local in LOCAL; recombine.
            kind = "PNAME_FULL"
        if kind == "KEYWORD_A":
            kind = "A"
        token = _Token(kind or "PNAME_FULL", value, line, column)
        yield token
    yield _Token("EOF", "", line, 0)


_STRING_ESCAPES = {
    "t": "\t", "n": "\n", "r": "\r", '"': '"', "\\": "\\",
    "b": "\b", "f": "\f", "'": "'",
}


def _unescape(raw: str, line: int) -> str:
    out: list[str] = []
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        if i + 1 >= len(raw):
            raise TurtleSyntaxError("dangling escape in string", line)
        nxt = raw[i + 1]
        if nxt in _STRING_ESCAPES:
            out.append(_STRING_ESCAPES[nxt])
            i += 2
        elif nxt == "u" and i + 6 <= len(raw):
            out.append(chr(int(raw[i + 2:i + 6], 16)))
            i += 6
        elif nxt == "U" and i + 10 <= len(raw):
            out.append(chr(int(raw[i + 2:i + 10], 16)))
            i += 10
        else:
            raise TurtleSyntaxError(f"bad escape \\{nxt}", line)
    return "".join(out)


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, text: str,
                 prefixes: dict[str, Namespace] | None = None) -> None:
        self.tokens = list(_tokenize(text))
        self.pos = 0
        self.prefixes: dict[str, str] = {
            k: str(v) for k, v in (prefixes or PREFIXES).items()}
        self.base = ""
        self.graph = Graph()

    # -- token plumbing ---------------------------------------------------

    def peek(self) -> _Token:
        return self.tokens[self.pos]

    def advance(self) -> _Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def expect(self, kind: str) -> _Token:
        tok = self.advance()
        if tok.kind != kind:
            raise TurtleSyntaxError(
                f"expected {kind}, found {tok.kind} ({tok.value!r})",
                tok.line, tok.column)
        return tok

    def expect_punct(self, char: str) -> _Token:
        tok = self.advance()
        if tok.kind != "PUNCT" or tok.value != char:
            raise TurtleSyntaxError(
                f"expected {char!r}, found {tok.value!r}",
                tok.line, tok.column)
        return tok

    # -- grammar ------------------------------------------------------------

    def parse(self) -> Graph:
        while self.peek().kind != "EOF":
            tok = self.peek()
            if tok.kind == "PREFIX_DECL":
                self._prefix_decl()
            elif tok.kind == "BASE_DECL":
                self._base_decl()
            else:
                self._triples_block()
        return self.graph

    def _prefix_decl(self) -> None:
        self.expect("PREFIX_DECL")
        name_tok = self.advance()
        if name_tok.kind != "PNAME_FULL":
            raise TurtleSyntaxError(
                f"expected prefix name, found {name_tok.value!r}",
                name_tok.line, name_tok.column)
        prefix = name_tok.value.rstrip(":")
        iri_tok = self.expect("IRIREF")
        self.prefixes[prefix] = self._resolve(iri_tok.value[1:-1])
        self.expect_punct(".")

    def _base_decl(self) -> None:
        self.expect("BASE_DECL")
        iri_tok = self.expect("IRIREF")
        self.base = iri_tok.value[1:-1]
        self.expect_punct(".")

    def _resolve(self, iri: str) -> str:
        if self.base and not re.match(r"^[A-Za-z][A-Za-z0-9+.-]*:", iri):
            return self.base + iri
        return iri

    def _triples_block(self) -> None:
        subject = self._node(allow_literal=False)
        self._predicate_object_list(subject)
        self.expect_punct(".")

    def _predicate_object_list(self, subject: Term) -> None:
        while True:
            predicate = self._predicate()
            self._object_list(subject, predicate)
            tok = self.peek()
            if tok.kind == "PUNCT" and tok.value == ";":
                self.advance()
                # Allow trailing semicolon before the final dot.
                nxt = self.peek()
                if nxt.kind == "PUNCT" and nxt.value == ".":
                    return
                continue
            return

    def _object_list(self, subject: Term, predicate: Term) -> None:
        while True:
            obj = self._node(allow_literal=True)
            self.graph.add(Triple(subject, predicate, obj))
            tok = self.peek()
            if tok.kind == "PUNCT" and tok.value == ",":
                self.advance()
                continue
            return

    def _predicate(self) -> Term:
        tok = self.peek()
        if tok.kind == "A":
            self.advance()
            return RDF.type
        return self._node(allow_literal=False)

    def _node(self, allow_literal: bool) -> Term:
        tok = self.advance()
        if tok.kind == "IRIREF":
            return IRI(self._resolve(tok.value[1:-1]))
        if tok.kind == "PNAME_FULL":
            return self._expand_pname(tok)
        if tok.kind == "BNODE":
            return BlankNode(tok.value[2:])
        if tok.kind == "ANON":
            return BlankNode()
        if allow_literal:
            if tok.kind == "STRING":
                return self._literal(tok)
            if tok.kind == "NUMBER":
                return self._number(tok)
            if tok.kind == "BOOL":
                return Literal(tok.value == "true")
        raise TurtleSyntaxError(
            f"unexpected token {tok.value!r}", tok.line, tok.column)

    def _expand_pname(self, tok: _Token) -> IRI:
        prefix, _, local = tok.value.partition(":")
        try:
            base = self.prefixes[prefix]
        except KeyError:
            raise TurtleSyntaxError(
                f"unknown prefix {prefix!r}", tok.line, tok.column) from None
        return IRI(base + local)

    def _literal(self, tok: _Token) -> Literal:
        value = _unescape(tok.value[1:-1], tok.line)
        nxt = self.peek()
        if nxt.kind == "LANGTAG":
            self.advance()
            return Literal(value, lang=nxt.value[1:])
        if nxt.kind == "DOUBLE_CARET":
            self.advance()
            dt_tok = self.advance()
            if dt_tok.kind == "IRIREF":
                datatype = IRI(self._resolve(dt_tok.value[1:-1]))
            elif dt_tok.kind == "PNAME_FULL":
                datatype = self._expand_pname(dt_tok)
            else:
                raise TurtleSyntaxError(
                    "expected datatype IRI after ^^",
                    dt_tok.line, dt_tok.column)
            return Literal(value, datatype=datatype)
        return Literal(value)

    def _number(self, tok: _Token) -> Literal:
        text = tok.value
        if re.search(r"[eE]", text):
            return Literal(text, datatype=XSD.double)
        if "." in text:
            return Literal(text, datatype=XSD.decimal)
        return Literal(int(text))


def parse_turtle(text: str,
                 prefixes: dict[str, Namespace] | None = None) -> Graph:
    """Parse a Turtle document into a :class:`Graph`.

    *prefixes* seeds the prefix table (the library defaults are always
    available); ``@prefix`` directives in the document override it.
    """
    return _Parser(text, prefixes).parse()


# ---------------------------------------------------------------------------
# Serializer
# ---------------------------------------------------------------------------


def _term_turtle(term: Term, prefixes: dict[str, Namespace]) -> str:
    if isinstance(term, IRI):
        if term == RDF.type:
            return "a"
        return shrink_iri(str(term), prefixes)
    return term.n3()


def serialize_turtle(graph: Graph,
                     prefixes: dict[str, Namespace] | None = None,
                     emit_prefixes: bool = True) -> str:
    """Serialize *graph* in Turtle, grouped by subject, sorted.

    Only prefixes actually used appear in the ``@prefix`` preamble.
    """
    table = PREFIXES if prefixes is None else prefixes
    lines: list[str] = []
    used_prefixes: set[str] = set()

    def render(term: Term) -> str:
        text = _term_turtle(term, table)
        if ":" in text and not text.startswith(("<", '"', "_:")):
            used_prefixes.add(text.split(":", 1)[0])
        return text

    body: list[str] = []
    subjects = sorted({t.s for t in graph}, key=lambda s: s.n3())
    for subj in subjects:
        subj_text = render(subj)
        pred_groups = []
        preds = sorted(graph.predicates(subj, None), key=lambda p: p.n3())
        # rdf:type first, Turtle convention.
        preds.sort(key=lambda p: (p != RDF.type, p.n3()))
        for pred in preds:
            objs = sorted(graph.objects(subj, pred), key=lambda o: o.n3())
            objs_text = ", ".join(render(o) for o in objs)
            pred_groups.append(f"{render(pred)} {objs_text}")
        joined = " ;\n    ".join(pred_groups)
        body.append(f"{subj_text} {joined} .")

    if emit_prefixes:
        # 'a' contributes no prefix
        used_prefixes.discard("a")
        for prefix in sorted(used_prefixes):
            ns = table.get(prefix)
            if ns is not None:
                lines.append(f"@prefix {prefix}: <{ns}> .")
        if lines:
            lines.append("")
    lines.extend(body)
    return "\n".join(lines) + ("\n" if body else "")
