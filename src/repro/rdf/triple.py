"""Triples and quads.

A :class:`Triple` is an immutable ``(subject, predicate, object)`` value
object; a :class:`Quad` additionally names the graph holding the triple.
Triple *patterns* — triples whose positions may hold
:class:`~repro.rdf.term.Variable` or ``None`` wildcards — reuse the same
classes; the store decides what it accepts.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple, Optional

from repro.errors import TermError
from repro.rdf.term import BlankNode, IRI, Literal, Term, Variable

__all__ = ["Triple", "Quad", "coerce_node"]


def coerce_node(value: object) -> Term:
    """Coerce *value* into an RDF term.

    Strings become IRIs (the overwhelmingly common case inside the BDI
    algorithms, which manipulate URIs); terms pass through; Python natives
    become typed literals.
    """
    if isinstance(value, Term):
        return value
    if isinstance(value, str):
        return IRI(value)
    if isinstance(value, (bool, int, float)):
        return Literal(value)
    raise TermError(f"cannot coerce {value!r} into an RDF term")


class Triple(NamedTuple):
    """An RDF triple (or triple pattern).

    >>> from repro.rdf.namespace import RDF, G
    >>> t = Triple(IRI("http://x/c"), RDF.type, G.Concept)
    >>> t.s, t.p, t.o == G.Concept
    (IRI('http://x/c'), IRI('http://www.w3.org/1999/02/22-rdf-syntax-ns#type'), True)
    """

    s: Term
    p: Term
    o: Term

    @classmethod
    def of(cls, s: object, p: object, o: object) -> "Triple":
        """Build a triple coercing plain strings/natives into terms."""
        return cls(coerce_node(s), coerce_node(p), coerce_node(o))

    def is_concrete(self) -> bool:
        """True when no position holds a variable (assertable triple)."""
        return not any(isinstance(t, Variable) for t in self)

    def variables(self) -> Iterator[Variable]:
        """Yield the variables appearing in this pattern, in s/p/o order."""
        for t in self:
            if isinstance(t, Variable):
                yield t

    def n3(self) -> str:
        return f"{self.s.n3()} {self.p.n3()} {self.o.n3()} ."

    def validate_concrete(self) -> "Triple":
        """Raise :class:`TermError` unless this triple may be asserted.

        RDF 1.1: subject is IRI/bnode, predicate is IRI, object is any
        non-variable term.
        """
        if not isinstance(self.s, (IRI, BlankNode)):
            raise TermError(
                f"triple subject must be an IRI or blank node: {self.s!r}")
        if not isinstance(self.p, IRI):
            raise TermError(
                f"triple predicate must be an IRI: {self.p!r}")
        if isinstance(self.o, Variable) or not isinstance(self.o, Term):
            raise TermError(
                f"triple object must be a concrete term: {self.o!r}")
        return self


class Quad(NamedTuple):
    """A triple plus the IRI of the named graph containing it.

    ``graph is None`` denotes the default graph of a dataset.
    """

    s: Term
    p: Term
    o: Term
    graph: Optional[IRI]

    @classmethod
    def of(cls, s: object, p: object, o: object,
           graph: object | None = None) -> "Quad":
        g = None if graph is None else IRI(str(graph))
        return cls(coerce_node(s), coerce_node(p), coerce_node(o), g)

    @property
    def triple(self) -> Triple:
        return Triple(self.s, self.p, self.o)

    def n3(self) -> str:
        head = f"{self.s.n3()} {self.p.n3()} {self.o.n3()}"
        if self.graph is None:
            return head + " ."
        return f"{head} {self.graph.n3()} ."
